"""Tests for the dependency-free metrics core (repro.obs.metrics)."""

import json
import threading

import numpy as np
import pytest

from repro.core.spec import DcimSpec
from repro.dse.nsga2 import NSGA2Config
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.service import CampaignConfig, run_campaign


class TestCounter:
    def test_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_set_total_replaces(self):
        counter = Counter()
        counter.inc(10)
        counter.set_total(3)
        assert counter.value == 3.0


class TestGauge:
    def test_goes_both_ways(self):
        gauge = Gauge()
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(4)
        assert gauge.value == 3.0


class TestHistogram:
    def test_bucket_le_semantics(self):
        hist = Histogram(buckets=(0.1, 1.0))
        for value in (0.05, 0.1, 0.5, 1.0, 2.0):
            hist.observe(value)
        snap = hist.snapshot()
        # le is less-OR-EQUAL: 0.1 lands in the first bucket, 1.0 in
        # the second, and the implicit +Inf cumulative equals count.
        assert snap["cumulative"] == [2, 4, 5]
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(3.65)

    def test_percentiles_from_reservoir(self):
        hist = Histogram()
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.percentile(0.5) == 50.0
        assert hist.percentile(0.95) == 95.0
        assert hist.percentile(0.0) == 1.0
        assert hist.percentile(1.0) == 100.0
        assert hist.quantiles() == {"p50": 50.0, "p95": 95.0, "p99": 99.0}

    def test_percentile_validates_quantile(self):
        with pytest.raises(ValueError):
            Histogram().percentile(1.5)

    def test_empty_percentile_is_zero(self):
        assert Histogram().percentile(0.99) == 0.0

    def test_reservoir_stays_bounded(self):
        hist = Histogram(reservoir_size=16)
        for value in range(10_000):
            hist.observe(float(value))
        assert hist.count == 10_000
        assert len(hist._reservoir) == 16

    def test_rejects_duplicate_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))

    def test_observe_many_matches_observe(self):
        one_by_one, batched = Histogram(), Histogram()
        values = [0.001 * i for i in range(50)]
        for value in values:
            one_by_one.observe(value)
        batched.observe_many(values)
        assert batched.snapshot() == one_by_one.snapshot()
        assert batched.quantiles() == one_by_one.quantiles()

    def test_time_context_manager(self):
        hist = Histogram()
        with hist.time():
            pass
        assert hist.count == 1


class TestMetricFamily:
    def test_labels_get_or_create(self):
        registry = MetricsRegistry()
        family = registry.counter("hits", labelnames=("tier",))
        family.labels("ram").inc()
        family.labels("ram").inc()
        family.labels(tier="disk").inc()
        assert family.labels("ram").value == 2.0
        assert family.labels("disk").value == 1.0

    def test_label_arity_mismatch_raises(self):
        family = MetricsRegistry().counter("hits", labelnames=("tier",))
        with pytest.raises(ValueError):
            family.labels("a", "b")
        with pytest.raises(ValueError):
            family.labels(wrong="x")

    def test_labelled_family_rejects_bare_calls(self):
        family = MetricsRegistry().counter("hits", labelnames=("tier",))
        with pytest.raises(ValueError):
            family.inc()

    def test_unlabelled_passthrough(self):
        registry = MetricsRegistry()
        registry.counter("total").inc(3)
        assert registry.counter("total").value == 3.0


class TestMetricsRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError):
            registry.gauge("a")

    def test_labelname_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a", labelnames=("x",))
        with pytest.raises(ValueError):
            registry.counter("a", labelnames=("y",))

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("repro_hits_total", "Cache hits", ("tier",)).labels(
            "ram"
        ).inc(7)
        registry.gauge("repro_depth").set(3)
        registry.histogram(
            "repro_wait_seconds", "Queue wait", buckets=(0.1, 1.0)
        ).observe(0.5)
        text = registry.render_prometheus()
        assert "# HELP repro_hits_total Cache hits" in text
        assert "# TYPE repro_hits_total counter" in text
        assert 'repro_hits_total{tier="ram"} 7' in text
        assert "repro_depth 3" in text
        assert 'repro_wait_seconds_bucket{le="0.1"} 0' in text
        assert 'repro_wait_seconds_bucket{le="1"} 1' in text
        assert 'repro_wait_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_wait_seconds_sum 0.5" in text
        assert "repro_wait_seconds_count 1" in text
        assert text.endswith("\n")

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("x", labelnames=("name",)).labels('a"b\\c\nd').inc()
        line = registry.render_prometheus().splitlines()[-1]
        assert line == 'x{name="a\\"b\\\\c\\nd"} 1'

    def test_to_dict_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("a", labelnames=("k",)).labels("v").inc()
        registry.histogram("h").observe(0.2)
        payload = json.loads(json.dumps(registry.to_dict()))
        by_name = {f["name"]: f for f in payload["metrics"]}
        assert by_name["a"]["series"][0] == {"labels": {"k": "v"}, "value": 1.0}
        hist_row = by_name["h"]["series"][0]
        assert hist_row["count"] == 1
        assert hist_row["p50"] == pytest.approx(0.2)

    def test_sample_values_flattens_histograms(self):
        registry = MetricsRegistry()
        registry.counter("a", labelnames=("k",)).labels("v").inc(2)
        registry.histogram("h").observe(0.25)
        sample = registry.sample_values()
        assert sample['a{k="v"}'] == 2.0
        assert sample["h_count"] == 1.0
        assert sample["h_sum"] == pytest.approx(0.25)
        assert sample["h_p95"] == pytest.approx(0.25)

    def test_collector_runs_at_scrape_time(self):
        registry = MetricsRegistry()
        mirrored = registry.counter("mirrored_total")
        source = {"count": 0}
        registry.register_collector(lambda: mirrored.set_total(source["count"]))
        source["count"] = 41
        assert "mirrored_total 41" in registry.render_prometheus()
        source["count"] = 42
        assert registry.sample_values()["mirrored_total"] == 42.0

    def test_dead_bound_collector_is_dropped(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("alive")

        class Source:
            def collect(self):
                gauge.inc()

        source = Source()
        registry.register_collector(source.collect)
        registry.families()
        assert gauge.value == 1.0
        del source
        registry.families()  # weakref is dead: collector silently gone
        registry.families()
        assert gauge.value == 1.0

    def test_broken_collector_never_breaks_the_scrape(self):
        registry = MetricsRegistry()
        registry.counter("ok").inc()

        def explode():
            raise RuntimeError("boom")

        registry.register_collector(explode)
        assert "ok 1" in registry.render_prometheus()

    def test_concurrent_writers_and_scrapers(self):
        # Many threads hammer one labelled family while a scraper
        # renders concurrently: no exceptions, no lost increments.
        registry = MetricsRegistry()
        counter = registry.counter("hits", labelnames=("worker",))
        hist = registry.histogram("lat")
        threads, writers, per_thread = 8, [], 500
        stop_scraping = threading.Event()
        scrape_errors = []

        def write(worker_id):
            series = counter.labels(str(worker_id % 2))
            for i in range(per_thread):
                series.inc()
                hist.observe(i * 1e-4)

        def scrape():
            while not stop_scraping.is_set():
                try:
                    registry.render_prometheus()
                    registry.sample_values()
                except Exception as exc:  # pragma: no cover - failure path
                    scrape_errors.append(exc)
                    return

        scraper = threading.Thread(target=scrape)
        scraper.start()
        for worker_id in range(threads):
            writers.append(
                threading.Thread(target=write, args=(worker_id,))
            )
            writers[-1].start()
        for thread in writers:
            thread.join(timeout=30.0)
        stop_scraping.set()
        scraper.join(timeout=30.0)
        assert not scrape_errors
        total = sum(
            instrument.value for _, instrument in counter.series()
        )
        assert total == threads * per_thread
        assert hist.labels().count == threads * per_thread


class TestNullRegistry:
    def test_absorbs_everything(self):
        NULL_REGISTRY.counter("a", labelnames=("x",)).labels("v").inc()
        NULL_REGISTRY.gauge("b").set(3)
        with NULL_REGISTRY.histogram("c").time():
            pass
        assert NULL_REGISTRY.render_prometheus() == ""
        assert NULL_REGISTRY.to_dict() == {"metrics": []}
        assert NULL_REGISTRY.sample_values() == {}

    def test_set_registry_swaps_and_restores(self):
        scoped = MetricsRegistry()
        previous = set_registry(scoped)
        try:
            assert get_registry() is scoped
        finally:
            set_registry(previous)
        assert get_registry() is previous


class TestCampaignParity:
    def test_instrumentation_never_changes_the_front(self):
        # Acceptance criterion: per seed, an instrumented campaign is
        # bit-identical to one recorded into the null registry.
        specs = [DcimSpec(wstore=4096, precision="INT4")]
        config = CampaignConfig(
            nsga2=NSGA2Config(population_size=16, generations=5)
        )
        # The GA and exhaustive paths are instrumented alike; either
        # strategy must satisfy this parity criterion.

        def run():
            return run_campaign(specs, config)

        previous = set_registry(MetricsRegistry())
        try:
            instrumented = run()
            set_registry(NULL_REGISTRY)
            silent = run()
        finally:
            set_registry(previous)
        assert np.array_equal(
            instrumented.merged_objectives, silent.merged_objectives
        )
        assert instrumented.evaluations == silent.evaluations

    def test_campaign_feeds_the_registry(self):
        scoped = MetricsRegistry()
        previous = set_registry(scoped)
        try:
            run_campaign(
                [DcimSpec(wstore=4096, precision="INT4")],
                CampaignConfig(
                    nsga2=NSGA2Config(population_size=16, generations=3),
                    exhaustive_threshold=0,  # force the GA: we count generations
                ),
            )
            sample = scoped.sample_values()
        finally:
            set_registry(previous)
        from repro.dse.kernels import resolve_kernel_backend

        backend = resolve_kernel_backend("auto")
        assert (
            sample[
                "repro_campaign_generations_total"
                f'{{problem="dcim",ga_backend="{backend}"}}'
            ]
            == 3.0
        )
        assert (
            sample[
                "repro_campaigns_total"
                f'{{problem="dcim",status="done",ga_backend="{backend}"}}'
            ]
            == 1.0
        )
        assert any(
            key.startswith("repro_evaluations_total") and value > 0
            for key, value in sample.items()
        )
