"""Tests for repro.netlist.timing (STA) and repro.reporting.plots."""

import pytest

from repro.netlist import (
    Netlist,
    build_adder_tree,
    build_column,
    build_compute_unit,
    build_shift_accumulator,
)
from repro.netlist.timing import GATE_DELAYS, analyze_timing
from repro.reporting.plots import ascii_scatter


class TestAnalyzeTiming:
    def test_single_gate(self):
        nl = Netlist("t")
        a = nl.input_bus("a", 1)[0]
        b = nl.input_bus("b", 1)[0]
        nl.output_bus("y", [nl.add_gate("AND", a, b)])
        report = analyze_timing(nl)
        assert report.critical_delay == GATE_DELAYS["AND"]
        assert report.logic_depth == 1

    def test_chain_delay_adds(self):
        nl = Netlist("t")
        a = nl.input_bus("a", 1)[0]
        x = a
        for _ in range(5):
            x = nl.add_gate("NOT", x)
        nl.output_bus("y", [x])
        report = analyze_timing(nl)
        assert report.critical_delay == pytest.approx(5 * GATE_DELAYS["NOT"])
        assert report.logic_depth == 5

    def test_parallel_paths_take_max(self):
        nl = Netlist("t")
        a = nl.input_bus("a", 1)[0]
        slow = nl.add_gate("NOT", nl.add_gate("NOT", a))
        fast = a
        nl.output_bus("y", [nl.add_gate("AND", slow, fast)])
        report = analyze_timing(nl)
        assert report.critical_delay == pytest.approx(
            2 * GATE_DELAYS["NOT"] + GATE_DELAYS["AND"]
        )

    def test_dff_cuts_paths(self):
        # in -> NOT -> DFF -> NOT -> out: two half-paths, not one long one.
        nl = Netlist("t")
        a = nl.input_bus("a", 1)[0]
        pre = nl.add_gate("NOT", a)
        q = nl.add_dff(pre)
        post = nl.add_gate("NOT", q)
        nl.output_bus("y", [post])
        report = analyze_timing(nl)
        assert report.critical_delay == pytest.approx(GATE_DELAYS["NOT"])

    def test_custom_delays(self):
        nl = Netlist("t")
        a = nl.input_bus("a", 1)[0]
        nl.output_bus("y", [nl.add_gate("NOT", a)])
        report = analyze_timing(nl, delays={"NOT": 42.0})
        assert report.critical_delay == 42.0

    def test_path_trace_consistent(self):
        nl = build_adder_tree(8, 4)
        report = analyze_timing(nl)
        # The path's cumulative delay equals the critical delay.
        total = sum(GATE_DELAYS[nl.gates[i].kind] for i in report.critical_path)
        assert total == pytest.approx(report.critical_delay)
        # Consecutive path gates are actually connected.
        for src, dst in zip(report.critical_path, report.critical_path[1:]):
            assert nl.gates[src].output in nl.gates[dst].inputs


class TestStaOnDcimBlocks:
    def test_tree_delay_grows_with_height(self):
        delays = [
            analyze_timing(build_adder_tree(h, 8)).critical_delay
            for h in (2, 8, 32)
        ]
        assert delays == sorted(delays)

    def test_sta_below_analytical_model(self):
        # The Table II/IV composition assumes fully serialised ripple
        # chains; at gate level the carries of consecutive tree levels
        # overlap, so STA must be <= the analytical bound.
        from repro.model.components import adder_tree
        from repro.tech.cells import CellLibrary

        lib = CellLibrary.default()
        for h in (4, 16, 64):
            sta = analyze_timing(build_adder_tree(h, 8)).critical_delay
            model = adder_tree(lib, h, 8).delay
            assert sta <= model

    def test_compute_unit_path(self):
        report = analyze_timing(build_compute_unit(16, 8))
        # mux tree (4 levels) + inverter + NOR.
        expected = 4 * GATE_DELAYS["MUX2"] + GATE_DELAYS["NOT"] + GATE_DELAYS["NOR"]
        assert report.critical_delay == pytest.approx(expected)

    def test_column_register_endpoint(self):
        nl = build_column(8, 4, 2, 8)
        report = analyze_timing(nl)
        dff_inputs = {dff.d for dff in nl.dffs}
        assert report.endpoint in dff_inputs  # reg-to-reg path dominates

    def test_accumulator_loop_timed(self):
        report = analyze_timing(build_shift_accumulator(8, 2, 8))
        assert report.critical_delay > 0


class TestAsciiScatter:
    def test_basic_render(self):
        text = ascii_scatter({"s": ([0, 1, 2], [0, 1, 4])}, width=20, height=5)
        assert "legend: x=s" in text
        assert text.count("\n") >= 6

    def test_log_axes(self):
        text = ascii_scatter(
            {"s": ([1, 10, 100], [1, 10, 100])},
            log_x=True,
            log_y=True,
        )
        assert "[log x]" in text

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_scatter({"s": ([0, 1], [1, 2])}, log_x=True)

    def test_multiple_series_distinct_markers(self):
        text = ascii_scatter(
            {"a": ([0, 1], [0, 1]), "b": ([0.5], [0.5])}, width=10, height=5
        )
        assert "x=a" in text and "o=b" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_scatter({})

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_scatter({"s": ([1, 2], [1])})

    def test_constant_series(self):
        text = ascii_scatter({"s": ([1, 1], [2, 2])}, width=10, height=4)
        assert "x" in text
