"""Schema v2: v1 upgrade, fingerprints, tolerant loaders, discovery.

The golden v1 payload below is frozen in the exact layout the v1-era
code wrote (no ``schema_version``/``problem`` keys); the golden
fingerprint is the SHA-256 ``stable_hash`` the v1 code computed for it.
Both must stay valid forever: request files, cache dedup and run
registries written before the v2 schema keep working bit-identically.
"""

import json
import warnings

import pytest

from repro.service import CampaignConfig, run_campaign
from repro.service.api import (
    SCHEMA_VERSION,
    CampaignRequest,
    CampaignResponse,
    FrontierPoint,
    SpecRequest,
)
from repro.service.campaign import execute_request
from repro.store import RunStore

GOLDEN_V1_JSON = json.dumps(
    {
        "specs": [
            {"wstore": 4096, "precision": "INT4", "max_l": 64,
             "max_h": 2048, "min_n_factor": 4, "max_n": None},
            {"wstore": 4096, "precision": "INT8", "max_l": 64,
             "max_h": 2048, "min_n_factor": 4, "max_n": None},
        ],
        "population_size": 16,
        "generations": 4,
        "seed": 1,
        "backend": "serial",
        "workers": 1,
        "chunk_size": None,
        "engine": "auto",
    },
    sort_keys=True,
)

#: stable_hash of the payload above, as computed by the v1-era code.
GOLDEN_V1_FINGERPRINT = (
    "b06efebc6d3294e3a91511ee5c712c2101937ceec0ebe894fa439cc1fa974ec3"
)


def equivalent_v2_request() -> CampaignRequest:
    """The same campaign, written in the v2 layout."""
    return CampaignRequest.from_dict(
        {
            "schema_version": 2,
            "problem": "dcim",
            "specs": [
                {"wstore": 4096, "precision": "INT4"},
                {"wstore": 4096, "precision": "INT8"},
            ],
            "population_size": 16,
            "generations": 4,
            "seed": 1,
        }
    )


class TestV1Upgrade:
    def test_v1_payload_upgrades_to_dcim(self):
        request = CampaignRequest.from_json(GOLDEN_V1_JSON)
        assert request.schema_version == SCHEMA_VERSION
        assert request.problem == "dcim"
        assert request.specs == (
            SpecRequest(4096, "INT4"), SpecRequest(4096, "INT8"),
        )

    def test_v1_fingerprint_is_frozen(self):
        """The dcim fingerprint must never drift across schema bumps."""
        request = CampaignRequest.from_json(GOLDEN_V1_JSON)
        assert request.fingerprint() == GOLDEN_V1_FINGERPRINT

    def test_v1_and_v2_payloads_share_fingerprint(self):
        v1 = CampaignRequest.from_json(GOLDEN_V1_JSON)
        v2 = equivalent_v2_request()
        assert v1 == v2
        assert v2.fingerprint() == GOLDEN_V1_FINGERPRINT

    def test_v1_and_v2_produce_bit_identical_campaigns(self):
        v1_response = execute_request(CampaignRequest.from_json(GOLDEN_V1_JSON))
        v2_response = execute_request(equivalent_v2_request())
        assert [p.to_dict() for p in v1_response.frontier] == [
            p.to_dict() for p in v2_response.frontier
        ]
        assert v1_response.evaluations == v2_response.evaluations

    def test_v1_and_v2_record_identical_store_fingerprints(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite") as store:
            for request in (
                CampaignRequest.from_json(GOLDEN_V1_JSON),
                equivalent_v2_request(),
            ):
                store.record_response(execute_request(request), request)
            a, b = store.list_runs()
            assert a.fingerprint == b.fingerprint == GOLDEN_V1_FINGERPRINT
            assert a.problem == b.problem == "dcim"

    def test_unsupported_schema_version_rejected(self):
        payload = json.loads(GOLDEN_V1_JSON)
        payload["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            CampaignRequest.from_dict(payload)
        with pytest.raises(ValueError, match="schema_version"):
            CampaignRequest(
                specs=({"wstore": 4096, "precision": "INT8"},),
                schema_version=3,
            )

    def test_constructed_requests_write_v2(self):
        request = CampaignRequest(
            specs=({"wstore": 4096, "precision": "INT8"},)
        )
        payload = request.to_dict()
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["problem"] == "dcim"

    def test_omitted_ga_sizing_resolves_to_problem_defaults(self):
        """The wire layer honours the sizing GET /api/problems
        advertises: omitted fields resolve per problem, and dcim's
        resolution reproduces the v1-era 64x60 exactly."""
        dcim = CampaignRequest(specs=({"wstore": 4096, "precision": "INT8"},))
        assert (dcim.population_size, dcim.generations) == (64, 60)
        mapping = CampaignRequest.from_dict(
            {"problem": "mapping", "schema_version": 2,
             "specs": [{"network": "tiny_cnn", "wstore": 4096}]}
        )
        assert (mapping.population_size, mapping.generations) == (32, 24)
        # explicit values always win
        explicit = CampaignRequest(
            problem="mapping",
            specs=({"network": "tiny_cnn", "wstore": 4096},),
            population_size=16,
        )
        assert (explicit.population_size, explicit.generations) == (16, 24)

    def test_no_problem_hashes_schema_version(self):
        """Fingerprints identify workloads: a future schema bump must
        not silently re-fingerprint any problem's requests."""
        from repro.service.cache import stable_hash

        request = CampaignRequest(
            problem="mapping",
            specs=({"network": "tiny_cnn", "wstore": 4096},),
        )
        expected = request.to_dict()
        del expected["schema_version"]
        # GA backend and the default exhaustive threshold never change
        # results, so they are excluded from workload identity too.
        del expected["ga_backend"]
        del expected["exhaustive_threshold"]
        assert request.fingerprint() == stable_hash(expected)

    def test_dcim_wire_spec_fails_fast_on_bad_precision(self):
        """A dict payload with a bad precision is rejected at the API
        boundary (HTTP submits answer 400) instead of queueing a
        campaign doomed to fail; programmatic SpecRequest instances
        stay trusted (their failure path is covered elsewhere)."""
        from repro.problems import SpecValidationError

        with pytest.raises(SpecValidationError, match="NOPE"):
            CampaignRequest(specs=({"wstore": 4096, "precision": "NOPE"},))
        # instance pass-through is not re-validated
        CampaignRequest(specs=(SpecRequest(4096, "NOPE"),))


class TestForwardCompatibility:
    def test_request_loader_ignores_unknown_keys_with_warning(self):
        payload = json.loads(GOLDEN_V1_JSON)
        payload["added_in_v3"] = {"x": 1}
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            request = CampaignRequest.from_dict(payload)
        assert request.fingerprint() == GOLDEN_V1_FINGERPRINT
        assert any("added_in_v3" in str(w.message) for w in caught)

    def test_spec_loader_ignores_unknown_keys_with_warning(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            spec = SpecRequest.from_dict(
                {"wstore": 4096, "precision": "INT8", "novel": True}
            )
        assert spec == SpecRequest(4096, "INT8")
        assert any("novel" in str(w.message) for w in caught)

    def test_response_loader_ignores_unknown_keys_with_warning(self):
        payload = {
            "frontier": [
                {"precision": "INT8", "n": 64, "h": 64, "l": 1, "k": 8,
                 "objectives": [1.0, 2.0, 3.0, -4.0], "hologram": 9}
            ],
            "evaluations": 1,
            "from_the_future": "yes",
        }
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            response = CampaignResponse.from_dict(payload)
        assert response.evaluations == 1
        assert response.frontier[0].n == 64
        assert len(caught) >= 2  # one per unknown-key site


class TestFrontierPointExtras:
    def test_empty_extras_serialise_identically_to_v1(self):
        point = FrontierPoint("INT8", 64, 64, 1, 8, (1.0, 2.0))
        payload = point.to_dict()
        assert "extras" not in payload
        assert FrontierPoint.from_dict(payload) == point

    def test_non_empty_extras_round_trip(self):
        point = FrontierPoint(
            "INT8", 64, 64, 1, 8, (1.0,), extras={"n_macros": 4}
        )
        clone = FrontierPoint.from_dict(point.to_dict())
        assert clone == point

    def test_points_stay_hashable(self):
        """extras must not cost FrontierPoint its set/dict-key use."""
        plain = FrontierPoint("INT8", 64, 64, 1, 8, (1.0,))
        extended = FrontierPoint(
            "INT8", 64, 64, 1, 8, (1.0,), extras={"n_macros": 4}
        )
        twin = FrontierPoint(
            "INT8", 64, 64, 1, 8, (1.0,), extras={"n_macros": 4}
        )
        assert len({plain, extended, twin}) == 2
        assert hash(extended) == hash(twin)
        # custom problems may put nested JSON in extras; still hashable
        nested = FrontierPoint(
            "-", 0, 0, 0, 0, (1.0,), extras={"tiles": [4, 2]}
        )
        assert hash(nested) == hash(
            FrontierPoint("-", 0, 0, 0, 0, (1.0,), extras={"tiles": [4, 2]})
        )

    def test_point_hash_unchanged_without_extras(self):
        from repro.service.cache import stable_hash
        from repro.store.runstore import point_hash

        point = FrontierPoint("INT8", 64, 64, 1, 8, (1.0, 2.0))
        legacy = stable_hash(
            {"precision": "INT8", "n": 64, "h": 64, "l": 1, "k": 8,
             "objectives": [1.0, 2.0]}
        )
        assert point_hash(point) == legacy
        extended = FrontierPoint(
            "INT8", 64, 64, 1, 8, (1.0, 2.0), extras={"n_macros": 2}
        )
        assert point_hash(extended) != legacy


class TestProgrammaticFingerprint:
    def test_dcim_config_fingerprint_matches_pre_v2_layout(self):
        """run_campaign(store=...) fingerprints must not drift either."""
        import dataclasses

        from repro.core.spec import DcimSpec
        from repro.service.campaign import _campaign_fingerprint
        from repro.service.cache import stable_hash

        specs = [DcimSpec(wstore=4096, precision="INT8")]
        config = CampaignConfig()
        legacy_config = dataclasses.asdict(config)
        del legacy_config["problem"]  # the pre-v2 config had no such key
        # bit-parity knobs that never affect results stay out of the hash
        del legacy_config["nsga2"]["backend"]
        del legacy_config["exhaustive_threshold"]
        del legacy_config["cache_flush_every"]
        del legacy_config["cache_backend"]
        assert _campaign_fingerprint(specs, config) == stable_hash(
            {
                "specs": [dataclasses.asdict(s) for s in specs],
                "config": legacy_config,
            }
        )
