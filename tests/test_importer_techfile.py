"""Tests for the Verilog importer, tech-file I/O and new CLI commands."""

import numpy as np
import pytest

from repro.cli import main
from repro.netlist import (
    GateSimulator,
    build_adder_tree,
    build_compute_unit,
    build_shift_accumulator,
)
from repro.netlist.export import netlist_to_verilog
from repro.netlist.importer import verilog_to_netlist
from repro.tech import GENERIC28, Technology
from repro.tech.techfile import dump_technology, load_technology


def roundtrip(netlist):
    return verilog_to_netlist(netlist_to_verilog(netlist))


class TestVerilogImporter:
    def test_structure_preserved(self):
        original = build_adder_tree(8, 4)
        back = roundtrip(original)
        assert back.stats() == original.stats()
        assert set(back.inputs) == set(original.inputs)
        assert set(back.outputs) == set(original.outputs)

    @pytest.mark.parametrize("h,k", [(2, 2), (8, 4), (16, 8)])
    def test_simulation_equivalent_combinational(self, h, k):
        original = build_adder_tree(h, k)
        back = roundtrip(original)
        sim_a = GateSimulator(original)
        sim_b = GateSimulator(back)
        rng = np.random.default_rng(0)
        for _ in range(20):
            # Compose wide stimulus from 32-bit chunks (numpy's integer
            # sampler is bounded to int64).
            value = 0
            for chunk in range((h * k + 31) // 32):
                value |= int(rng.integers(0, 2**32)) << (32 * chunk)
            value &= (1 << (h * k)) - 1
            for sim in (sim_a, sim_b):
                sim.set_bus("terms", value)
                sim.eval()
            assert sim_a.get_bus("total") == sim_b.get_bus("total")

    def test_simulation_equivalent_sequential(self):
        original = build_shift_accumulator(8, 2, 8)
        back = roundtrip(original)
        sim_a = GateSimulator(original)
        sim_b = GateSimulator(back)
        rng = np.random.default_rng(1)
        for sim in (sim_a, sim_b):
            sim.set_bus("clear", 1)
            sim.step()
            sim.set_bus("clear", 0)
        for _ in range(4):
            partial = int(rng.integers(0, 2**5))
            for sim in (sim_a, sim_b):
                sim.set_bus("partial", partial)
                sim.step()
        assert sim_a.get_bus("acc") == sim_b.get_bus("acc")

    def test_compute_unit_roundtrip(self):
        original = build_compute_unit(4, 4)
        back = roundtrip(original)
        sim = GateSimulator(back)
        sim.set_bus("weights", 0b0100)
        sim.set_bus("sel", 2)
        sim.set_bus("din", 9)
        sim.eval()
        assert sim.get_bus("product") == 9

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            verilog_to_netlist("not verilog")

    def test_rejects_missing_net_array(self):
        with pytest.raises(ValueError, match="net array"):
            verilog_to_netlist("module a (x);\n  input x;\nendmodule")


class TestTechFile:
    def test_roundtrip(self):
        text = dump_technology(GENERIC28)
        back = load_technology(text)
        assert back == GENERIC28

    def test_dump_format(self):
        text = dump_technology(GENERIC28)
        assert text.startswith("technology (generic28) {")
        assert "gate_area_um2:" in text

    def test_load_rejects_garbage(self):
        with pytest.raises(ValueError):
            load_technology("nope")

    def test_load_rejects_missing_field(self):
        text = "technology (x) { node_nm: 28; }"
        with pytest.raises(ValueError, match="missing"):
            load_technology(text)

    def test_custom_node_roundtrip(self):
        tech = Technology(
            name="n5", node_nm=5, gate_area_um2=0.01,
            gate_delay_ps=3, gate_energy_fj=0.05,
            voltage_v=0.7, nominal_voltage_v=0.7,
            activity=0.2, utilization=0.8,
        )
        assert load_technology(dump_technology(tech)) == tech


class TestNewCliCommands:
    def test_lint_clean(self, capsys, tmp_path):
        from repro.core.spec import DesignPoint
        from repro.rtl import generate_rtl, write_bundle

        bundle = generate_rtl(DesignPoint(precision="INT8", n=16, h=8, l=4, k=4))
        paths = write_bundle(bundle, tmp_path)
        v_files = [str(p) for p in paths if p.suffix == ".v"]
        assert main(["lint", *v_files]) == 0
        assert "CLEAN" in capsys.readouterr().out

    def test_lint_broken(self, capsys, tmp_path):
        bad = tmp_path / "bad.v"
        bad.write_text("module a (x);\n  input x;\n")
        assert main(["lint", str(bad)]) == 1
        assert "lint error" in capsys.readouterr().err

    def test_sweep(self, capsys):
        assert main([
            "sweep", "--precision", "INT8", "--wstores", "4096,8192",
        ]) == 0
        out = capsys.readouterr().out
        assert "4K" in out and "8K" in out

    def test_mc(self, capsys):
        assert main([
            "mc", "--precision", "INT8",
            "--n", "64", "--h", "128", "--l", "16", "--k", "8",
            "--samples", "100",
        ]) == 0
        assert "delay_ns_p50" in capsys.readouterr().out
