"""Tests for the problem registry and definition abstraction."""

import warnings

import pytest

from repro.problems import (
    DEFAULT_PROBLEM,
    GASizing,
    ProblemDefinition,
    ProblemRegistry,
    SpecValidationError,
    get_problem,
    problem_catalog,
    problem_names,
)
from repro.service.api import SpecRequest


class TestBuiltins:
    def test_both_builtins_registered(self):
        assert problem_names() == ["dcim", "mapping"]
        assert DEFAULT_PROBLEM == "dcim"

    def test_get_problem_unknown_lists_known(self):
        with pytest.raises(KeyError, match="dcim"):
            get_problem("nope")

    def test_catalog_entries_are_self_describing(self):
        catalogue = {entry["name"]: entry for entry in problem_catalog()}
        assert set(catalogue) == {"dcim", "mapping"}
        dcim = catalogue["dcim"]
        assert dcim["objectives"] == ["area", "delay", "energy",
                                      "neg_throughput"]
        assert dcim["defaults"] == {"population_size": 64, "generations": 60}
        assert dcim["spec_schema"]["wstore"]["required"] is True
        assert dcim["spec_schema"]["max_l"] == {
            "type": "int", "required": False, "default": 64,
        }
        mapping = catalogue["mapping"]
        assert mapping["spec_schema"]["network"]["required"] is True
        assert "area_mm2" in mapping["objectives"]

    def test_dcim_parse_spec_validates(self):
        definition = get_problem("dcim")
        spec = definition.parse_spec({"wstore": 4096, "precision": "INT8"})
        assert spec == SpecRequest(4096, "INT8")
        with pytest.raises(SpecValidationError, match=r"\[dcim\]"):
            definition.parse_spec({"precision": "INT8"})  # missing wstore
        with pytest.raises(SpecValidationError):
            definition.parse_spec("4096:INT8")  # not a mapping

    def test_parse_spec_ignores_unknown_keys_with_warning(self):
        definition = get_problem("dcim")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            spec = definition.parse_spec(
                {"wstore": 4096, "precision": "INT8", "shiny_new_field": 3}
            )
        assert spec == SpecRequest(4096, "INT8")
        assert any("shiny_new_field" in str(w.message) for w in caught)

    def test_dcim_cli_spec_parsing(self):
        definition = get_problem("dcim")
        assert definition.parse_cli_spec("8192:INT8") == SpecRequest(
            8192, "INT8"
        )
        with pytest.raises(SpecValidationError, match="WSTORE:PRECISION"):
            definition.parse_cli_spec("8192")
        with pytest.raises(SpecValidationError):
            definition.parse_cli_spec("8192:NOPE")

    def test_request_label_survives_bad_precision(self):
        definition = get_problem("dcim")
        assert definition.request_label(SpecRequest(4096, "NOPE")) \
            == "4096:NOPE"

    def test_dcim_point_row_matches_columns(self):
        """The dcim definition's table contract (used by API consumers
        rendering frontiers generically) stays consistent."""
        import random

        definition = get_problem("dcim")
        problem = definition.make_problem(
            definition.to_spec(SpecRequest(4096, "INT8"))
        )
        genome = problem.sample(random.Random(0))
        row = definition.point_row(
            problem.decode(genome), problem.evaluate(genome)
        )
        assert len(row) == len(definition.point_columns())
        assert row[0] == "INT8"


class _ToySpec:
    pass


class TestRegistry:
    def _toy_definition(self, name="toy"):
        import dataclasses

        @dataclasses.dataclass(frozen=True)
        class ToySpec:
            width: int = 4

        class ToyDefinition(ProblemDefinition):
            title = "toy"
            objectives = ("a", "b")
            spec_type = ToySpec
            sizing = GASizing(8, 2)

            def to_spec(self, spec_request):
                return spec_request

            def spec_label(self, spec):
                return f"toy:{spec.width}"

            def parse_cli_spec(self, text):
                return ToySpec(width=int(text))

            def make_problem(self, spec, library=None, engine="auto"):
                raise NotImplementedError

        ToyDefinition.name = name
        return ToyDefinition()

    def test_register_and_lookup(self):
        registry = ProblemRegistry()
        definition = registry.register(self._toy_definition())
        assert registry.get("toy") is definition
        assert "toy" in registry
        assert registry.names() == ["toy"]

    def test_duplicate_name_rejected_unless_replace(self):
        registry = ProblemRegistry()
        registry.register(self._toy_definition())
        with pytest.raises(ValueError, match="already registered"):
            registry.register(self._toy_definition())
        registry.register(self._toy_definition(), replace=True)
        assert len(registry) == 1

    def test_bad_names_rejected(self):
        registry = ProblemRegistry()
        for bad in ("", "no spaces", "hy-phen", None):
            with pytest.raises(ValueError, match="problem name"):
                registry.register(self._toy_definition(name=bad))

    def test_custom_problem_visible_in_campaign_request(self):
        """A user-registered problem is usable from the wire format."""
        from repro.problems import REGISTRY, register_problem
        from repro.service.api import CampaignRequest

        definition = self._toy_definition(name="toy_wire")
        register_problem(definition)
        try:
            request = CampaignRequest(
                problem="toy_wire", specs=({"width": 3},)
            )
            assert request.specs[0].width == 3
            clone = CampaignRequest.from_json(request.to_json())
            assert clone == request
            # non-default problems hash their problem name
            assert request.fingerprint() != CampaignRequest(
                specs=({"wstore": 4096, "precision": "INT8"},)
            ).fingerprint()
        finally:
            REGISTRY._definitions.pop("toy_wire", None)

    def test_unknown_problem_in_request_raises_value_error(self):
        from repro.service.api import CampaignRequest

        with pytest.raises(ValueError, match="unknown problem"):
            CampaignRequest(problem="nope", specs=({"x": 1},))
