"""Concurrent-writer tests for SqliteCache and RunStore.

Both persistence layers share one SQLite connection behind a lock and
run the database in WAL mode; these tests hammer them from many
threads sharing one instance and check the file round-trips a reopen.
"""

import threading

from repro.service.api import CampaignResponse, FrontierPoint
from repro.service.cache import EvaluationCache
from repro.store import RunStore


def run_threads(worker, count=8):
    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(count)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestSqliteCacheConcurrency:
    def test_concurrent_writers_share_one_cache(self, tmp_path):
        path = tmp_path / "evals.sqlite"
        cache = EvaluationCache(path, backend="sqlite")
        per_thread = 50

        def worker(tid):
            for i in range(per_thread):
                key = f"key-{tid}-{i}"
                cache.put(key, (float(tid), float(i)))
                assert cache.get(key) == (float(tid), float(i))

        run_threads(worker)
        assert len(cache) == 8 * per_thread
        assert cache.stats.puts == 8 * per_thread
        cache.close()

        # WAL round trip: a fresh instance sees every write.
        reopened = EvaluationCache(path, backend="sqlite")
        assert len(reopened) == 8 * per_thread
        assert reopened.get("key-3-17") == (3.0, 17.0)
        reopened.close()

    def test_concurrent_writers_same_keys(self, tmp_path):
        cache = EvaluationCache(tmp_path / "evals.sqlite", backend="sqlite")

        def worker(tid):
            for i in range(30):
                cache.put(f"key-{i}", (float(i),))

        run_threads(worker)
        assert len(cache) == 30
        assert all(cache.get(f"key-{i}") == (float(i),) for i in range(30))
        cache.close()


def fp(n, objectives):
    return FrontierPoint(
        precision="INT8", n=n, h=128, l=4, k=8, objectives=tuple(objectives)
    )


class TestRunStoreConcurrency:
    def test_concurrent_recorders(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        store = RunStore(path)
        per_thread = 10
        recorded: list[str] = []
        lock = threading.Lock()

        def worker(tid):
            for i in range(per_thread):
                record = store.record_response(
                    CampaignResponse(
                        # One point shared by everyone, one unique.
                        frontier=(fp(32, (1.0, 2.0)), fp(64, (tid, i))),
                        evaluations=i,
                    ),
                    specs=[f"spec-{tid}"],
                    name=f"run-{tid}-{i}",
                )
                with lock:
                    recorded.append(record.run_id)

        run_threads(worker)
        assert len(store) == 8 * per_thread
        assert len(set(recorded)) == 8 * per_thread
        # The shared point was content-deduplicated across all writers.
        assert store.point_count() == 8 * per_thread + 1
        store.close()

        # WAL round trip after reopen.
        with RunStore(path) as reopened:
            assert len(reopened) == 8 * per_thread
            some = reopened.resolve("run-3-7")
            assert reopened.front(some.run_id)[0] == fp(32, (1.0, 2.0))

    def test_concurrent_readers_and_writers(self, tmp_path):
        store = RunStore(tmp_path / "runs.sqlite")
        seed = store.record_response(
            CampaignResponse(frontier=(fp(32, (1.0, 2.0)),))
        )
        store.set_baseline("main", seed.run_id)
        errors: list[Exception] = []

        def worker(tid):
            try:
                for i in range(20):
                    if tid % 2:
                        store.record_response(
                            CampaignResponse(frontier=(fp(64, (tid, i)),))
                        )
                    else:
                        store.list_runs(limit=5)
                        assert store.get_baseline("main").run_id == seed.run_id
                        store.front(seed.run_id)
            except Exception as exc:  # surfaced below
                errors.append(exc)

        run_threads(worker)
        assert not errors
        assert len(store) == 1 + 4 * 20
        store.close()
