"""Tests for repro.core.precision."""

import pytest

from repro.core.precision import STANDARD_PRECISIONS, Precision, parse_precision


class TestStandardPrecisions:
    def test_all_eight_paper_precisions_present(self):
        assert set(STANDARD_PRECISIONS) == {
            "INT2", "INT4", "INT8", "INT16", "FP8", "FP16", "BF16", "FP32",
        }

    @pytest.mark.parametrize("name,bits", [("INT2", 2), ("INT4", 4), ("INT8", 8), ("INT16", 16)])
    def test_integer_widths(self, name, bits):
        p = STANDARD_PRECISIONS[name]
        assert not p.is_float
        assert p.bits == bits
        assert p.input_bits == bits
        assert p.weight_bits == bits
        assert p.kind == "int"

    def test_fp8_is_e4m3(self):
        p = STANDARD_PRECISIONS["FP8"]
        assert p.exponent_bits == 4
        assert p.mantissa_field_bits == 3
        assert p.mantissa_bits == 4  # field + hidden bit

    def test_fp16_fields(self):
        p = STANDARD_PRECISIONS["FP16"]
        assert (p.exponent_bits, p.mantissa_bits) == (5, 11)

    def test_bf16_mantissa_matches_int8_datapath(self):
        # The paper's key claim: BF16 overhead ~ INT8 because the
        # mantissa datapath is 8 bits wide.
        p = STANDARD_PRECISIONS["BF16"]
        assert p.mantissa_bits == 8
        assert p.exponent_bits == 8
        assert p.input_bits == STANDARD_PRECISIONS["INT8"].input_bits

    def test_fp32_fields(self):
        p = STANDARD_PRECISIONS["FP32"]
        assert (p.exponent_bits, p.mantissa_bits) == (8, 24)

    def test_sign_exponent_mantissa_fill_storage(self):
        for p in STANDARD_PRECISIONS.values():
            if p.is_float:
                assert 1 + p.exponent_bits + p.mantissa_field_bits == p.bits


class TestParsePrecision:
    def test_case_insensitive(self):
        assert parse_precision("bf16") is STANDARD_PRECISIONS["BF16"]
        assert parse_precision("int8") is STANDARD_PRECISIONS["INT8"]

    def test_passthrough(self):
        p = STANDARD_PRECISIONS["FP16"]
        assert parse_precision(p) is p

    def test_custom_integer_width(self):
        p = parse_precision("INT12")
        assert not p.is_float
        assert p.bits == 12

    @pytest.mark.parametrize("bad", ["FP12", "float16x", "", "INTx", "INT0"])
    def test_rejects_unknown(self, bad):
        with pytest.raises(ValueError):
            parse_precision(bad)


class TestPrecisionValidation:
    def test_float_needs_exponent(self):
        with pytest.raises(ValueError):
            Precision(name="bad", is_float=True, bits=16)

    def test_int_cannot_have_mantissa(self):
        with pytest.raises(ValueError):
            Precision(name="bad", is_float=False, bits=8, mantissa_bits=4)

    def test_positive_bits(self):
        with pytest.raises(ValueError):
            Precision(name="bad", is_float=False, bits=0)
