"""Tests for repro.netlist.ir, primitives and simulate."""

import pytest

from repro.netlist.ir import Dff, Gate, Netlist
from repro.netlist.primitives import (
    barrel_shifter_right,
    constant_shift_left,
    greater_than,
    mux_tree,
    nor_multiplier,
    ripple_adder,
    ripple_subtractor,
)
from repro.netlist.simulate import GateSimulator


class TestIr:
    def test_gate_arity_checked(self):
        with pytest.raises(ValueError):
            Gate("AND", (1,), 2)
        with pytest.raises(ValueError):
            Gate("NAND9", (1, 2), 3)

    def test_constants_preallocated(self):
        nl = Netlist("t")
        assert nl.n_nets == 2
        assert nl.ZERO == 0 and nl.ONE == 1

    def test_duplicate_port_rejected(self):
        nl = Netlist("t")
        nl.input_bus("a", 2)
        with pytest.raises(ValueError):
            nl.input_bus("a", 2)

    def test_stats(self):
        nl = Netlist("t")
        a = nl.input_bus("a", 1)[0]
        out = nl.add_gate("NOT", a)
        nl.add_dff(out)
        stats = nl.stats()
        assert stats["NOT"] == 1
        assert stats["DFF"] == 1

    def test_gate_count_filter(self):
        nl = Netlist("t")
        a = nl.input_bus("a", 1)[0]
        nl.add_gate("NOT", a)
        nl.add_gate("NOT", a)
        assert nl.gate_count("NOT") == 2
        assert nl.gate_count() == 2


class TestSimulatorBasics:
    def test_not_gate(self):
        nl = Netlist("t")
        a = nl.input_bus("a", 1)[0]
        nl.output_bus("y", [nl.add_gate("NOT", a)])
        sim = GateSimulator(nl)
        sim.set_bus("a", 0)
        sim.eval()
        assert sim.get_bus("y") == 1
        sim.set_bus("a", 1)
        sim.eval()
        assert sim.get_bus("y") == 0

    @pytest.mark.parametrize(
        "kind,table",
        [
            ("AND", {(0, 0): 0, (0, 1): 0, (1, 0): 0, (1, 1): 1}),
            ("OR", {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 1}),
            ("NOR", {(0, 0): 1, (0, 1): 0, (1, 0): 0, (1, 1): 0}),
            ("XOR", {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 0}),
        ],
    )
    def test_truth_tables(self, kind, table):
        nl = Netlist("t")
        a = nl.input_bus("a", 1)[0]
        b = nl.input_bus("b", 1)[0]
        nl.output_bus("y", [nl.add_gate(kind, a, b)])
        sim = GateSimulator(nl)
        for (va, vb), expected in table.items():
            sim.set_bus("a", va)
            sim.set_bus("b", vb)
            sim.eval()
            assert sim.get_bus("y") == expected, (kind, va, vb)

    def test_mux2(self):
        nl = Netlist("t")
        s = nl.input_bus("s", 1)[0]
        a = nl.input_bus("a", 1)[0]
        b = nl.input_bus("b", 1)[0]
        nl.output_bus("y", [nl.add_gate("MUX2", s, a, b)])
        sim = GateSimulator(nl)
        sim.set_bus("a", 1)
        sim.set_bus("b", 0)
        sim.set_bus("s", 0)
        sim.eval()
        assert sim.get_bus("y") == 1  # sel=0 -> a
        sim.set_bus("s", 1)
        sim.eval()
        assert sim.get_bus("y") == 0  # sel=1 -> b

    def test_combinational_cycle_detected(self):
        nl = Netlist("t")
        a = nl.new_net()
        b = nl.new_net()
        nl.gates.append(Gate("NOT", (a,), b))
        nl.gates.append(Gate("NOT", (b,), a))
        with pytest.raises(ValueError, match="cycle"):
            GateSimulator(nl)

    def test_dff_breaks_cycle(self):
        # A toggle flop: q -> NOT -> d is legal.
        nl = Netlist("t")
        d = nl.new_net()
        q = nl.add_dff(d)
        inv = nl.add_gate("NOT", q)
        nl.dffs[0] = Dff(d=inv, q=q)
        nl.output_bus("q", [q])
        sim = GateSimulator(nl)
        values = []
        for _ in range(4):
            sim.step()
            values.append(sim.get_bus("q"))
        assert values == [1, 0, 1, 0]

    def test_dff_clear(self):
        nl = Netlist("t")
        clear = nl.input_bus("clear", 1)[0]
        q = nl.add_dff(nl.ONE, clear=clear)
        nl.output_bus("q", [q])
        sim = GateSimulator(nl)
        sim.set_bus("clear", 0)
        sim.step()
        assert sim.get_bus("q") == 1
        sim.set_bus("clear", 1)
        sim.step()
        assert sim.get_bus("q") == 0

    def test_set_bus_range_checked(self):
        nl = Netlist("t")
        nl.input_bus("a", 2)
        sim = GateSimulator(nl)
        with pytest.raises(ValueError):
            sim.set_bus("a", 4)
        with pytest.raises(KeyError):
            sim.set_bus("b", 0)


def run_comb(nl, **inputs):
    sim = GateSimulator(nl)
    for name, value in inputs.items():
        sim.set_bus(name, value)
    sim.eval()
    return sim


class TestPrimitives:
    def test_ripple_adder(self):
        nl = Netlist("t")
        a = nl.input_bus("a", 4)
        b = nl.input_bus("b", 4)
        nl.output_bus("y", ripple_adder(nl, a, b))
        for va, vb in [(0, 0), (15, 15), (9, 6), (1, 15)]:
            sim = run_comb(nl, a=va, b=vb)
            assert sim.get_bus("y") == va + vb

    def test_ripple_subtractor(self):
        nl = Netlist("t")
        a = nl.input_bus("a", 4)
        b = nl.input_bus("b", 4)
        diff, borrow = ripple_subtractor(nl, a, b)
        nl.output_bus("d", diff)
        nl.output_bus("borrow", [borrow])
        sim = run_comb(nl, a=9, b=3)
        assert sim.get_bus("d") == 6
        assert sim.get_bus("borrow") == 0
        sim = run_comb(nl, a=3, b=9)
        assert sim.get_bus("borrow") == 1

    def test_greater_than(self):
        nl = Netlist("t")
        a = nl.input_bus("a", 4)
        b = nl.input_bus("b", 4)
        nl.output_bus("gt", [greater_than(nl, a, b)])
        assert run_comb(nl, a=5, b=4).get_bus("gt") == 1
        assert run_comb(nl, a=4, b=5).get_bus("gt") == 0
        assert run_comb(nl, a=7, b=7).get_bus("gt") == 0

    def test_mux_tree(self):
        nl = Netlist("t")
        sel = nl.input_bus("sel", 2)
        choices = [nl.input_bus(f"c{i}", 3) for i in range(4)]
        nl.output_bus("y", mux_tree(nl, sel, choices))
        sim = GateSimulator(nl)
        for i, v in enumerate([5, 2, 7, 1]):
            sim.set_bus(f"c{i}", v)
        for i, expected in enumerate([5, 2, 7, 1]):
            sim.set_bus("sel", i)
            sim.eval()
            assert sim.get_bus("y") == expected

    def test_barrel_shifter_right(self):
        nl = Netlist("t")
        v = nl.input_bus("v", 8)
        amt = nl.input_bus("amt", 3)
        nl.output_bus("y", barrel_shifter_right(nl, v, amt))
        sim = GateSimulator(nl)
        sim.set_bus("v", 0b10110100)
        for a in range(8):
            sim.set_bus("amt", a)
            sim.eval()
            assert sim.get_bus("y") == 0b10110100 >> a

    def test_constant_shift_left(self):
        nl = Netlist("t")
        v = nl.input_bus("v", 4)
        nl.output_bus("y", constant_shift_left(nl, v, 3))
        assert run_comb(nl, v=0b1011).get_bus("y") == 0b1011000

    def test_nor_multiplier(self):
        nl = Netlist("t")
        din = nl.input_bus("din", 4)
        w = nl.input_bus("w", 1)[0]
        nl.output_bus("y", nor_multiplier(nl, din, w))
        assert run_comb(nl, din=0b1010, w=1).get_bus("y") == 0b1010
        assert run_comb(nl, din=0b1010, w=0).get_bus("y") == 0


class TestToggleCounting:
    def test_toggle_counts_on_change(self):
        from repro.netlist.ir import Netlist
        from repro.netlist.simulate import GateSimulator

        nl = Netlist("t")
        a = nl.input_bus("a", 1)[0]
        nl.output_bus("y", [nl.add_gate("NOT", a)])
        sim = GateSimulator(nl, count_toggles=True)
        sim.reset_toggles()
        sim.set_bus("a", 1)
        sim.eval()
        sim.set_bus("a", 0)
        sim.eval()
        sim.set_bus("a", 0)  # no change
        sim.eval()
        assert sim.gate_toggles[0] == 2

    def test_dff_toggles(self):
        from repro.netlist.ir import Netlist
        from repro.netlist.simulate import GateSimulator

        nl = Netlist("t")
        d = nl.input_bus("d", 1)[0]
        q = nl.add_dff(d)
        nl.output_bus("q", [q])
        sim = GateSimulator(nl, count_toggles=True)
        sim.reset_toggles()
        sim.set_bus("d", 1)
        sim.step()
        sim.step()  # q stays 1: no toggle
        sim.set_bus("d", 0)
        sim.step()
        assert sim.dff_toggles[0] == 2

    def test_counting_does_not_change_results(self):
        from repro.netlist import build_adder_tree
        from repro.netlist.simulate import GateSimulator

        nl = build_adder_tree(8, 4)
        plain = GateSimulator(nl)
        counting = GateSimulator(nl, count_toggles=True)
        for value in (0, 12345, 999999):
            for sim in (plain, counting):
                sim.set_bus("terms", value)
                sim.eval()
            assert plain.get_bus("total") == counting.get_bus("total")


class TestMeasurePower:
    def test_density_extremes(self):
        from repro.netlist import build_adder_tree
        from repro.netlist.power import measure_power

        nl = build_adder_tree(8, 4)
        zero = measure_power(nl, vectors=20, density=0.0)
        assert zero.toggles == 0  # constant-zero stimulus never switches

    def test_density_validated(self):
        from repro.netlist import build_adder_tree
        from repro.netlist.power import measure_power

        with pytest.raises(ValueError):
            measure_power(build_adder_tree(4, 2), density=1.5)

    def test_no_inputs_rejected(self):
        from repro.netlist.ir import Netlist
        from repro.netlist.power import measure_power

        with pytest.raises(ValueError):
            measure_power(Netlist("empty"))

    def test_clocked_measurement(self):
        from repro.netlist import build_shift_accumulator
        from repro.netlist.power import measure_power

        m = measure_power(
            build_shift_accumulator(8, 2, 8), vectors=20, clocked=True
        )
        assert m.toggles > 0
        assert m.energy_per_vector > 0
