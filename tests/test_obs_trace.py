"""Tests for the span tracer: core mechanics, W3C propagation, the
service-layer trace (queue -> campaign -> executor -> cache), store
persistence, and the bit-parity guarantee (tracing never changes
results)."""

import json
import threading
import time

import pytest

from repro.obs.log import JsonLogger
from repro.obs.trace import (
    KNOWN_SOURCES,
    NULL_SPAN,
    NULL_TRACER,
    SpanContext,
    Tracer,
    chrome_trace,
    current_span,
    format_traceparent,
    get_tracer,
    normalize_source,
    parse_traceparent,
    set_tracer,
    spans_to_dicts,
    trace_tree,
    use_span,
)
from repro.service.api import CampaignRequest, SpecRequest
from repro.service.cache import EvaluationCache
from repro.service.campaign import CampaignConfig, run_campaign
from repro.service.events import CampaignCancelled
from repro.service.executor import SerialExecutor, make_executor
from repro.service.jobs import JobQueue
from repro.core.spec import DcimSpec
from repro.dse.nsga2 import NSGA2Config
from repro.dse.problem import DcimProblem


@pytest.fixture
def tracer():
    """A fully-sampling tracer installed as the process global."""
    tracer = Tracer(sample_ratio=1.0, seed=13)
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def only_trace(tracer) -> list:
    records = tracer.finished()
    assert len(records) == 1, [r.name for r in records]
    return records[0]


class TestSpanBasics:
    def test_span_lifecycle_and_dict_shape(self, tracer):
        scope = tracer.span("root", attributes={"k": 1}, root_if_orphan=True)
        with scope as root:
            assert current_span() is root
            assert root.recording
            root.set_attribute("x", 2).set_attributes(y=3)
        assert current_span() is None
        assert not root.recording
        record = only_trace(tracer)
        row = record.spans[0].to_dict()
        assert row["name"] == "root"
        assert row["parent_id"] is None
        assert row["attributes"] == {"k": 1, "x": 2, "y": 3}
        assert row["status"] == "ok"
        assert len(row["trace_id"]) == 32 and len(row["span_id"]) == 16
        assert row["duration_s"] >= 0.0

    def test_end_is_idempotent(self, tracer):
        span = tracer.start_root("once")
        span.end()
        first = span.duration_s
        span.end(status="error")  # ignored: already sealed
        assert span.duration_s == first
        assert span.status == "ok"
        assert tracer.completed == 1

    def test_exception_marks_error_status(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("boom", root_if_orphan=True):
                raise ValueError("bad input")
        record = only_trace(tracer)
        assert record.status == "error"
        span = record.spans[0]
        assert span.status == "error"
        assert span.error == "ValueError: bad input"

    def test_nesting_parents_and_ambient(self, tracer):
        with tracer.span("outer", root_if_orphan=True) as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
                assert current_span() is inner
            assert current_span() is outer
        record = only_trace(tracer)
        assert {s.name for s in record.spans} == {"outer", "inner"}

    def test_orphan_child_is_null_unless_rooted(self, tracer):
        assert tracer.start_span("leaf") is NULL_SPAN
        span = tracer.start_span("entry", root_if_orphan=True)
        assert span is not NULL_SPAN
        span.end()
        assert only_trace(tracer).name == "entry"

    def test_null_span_absorbs_everything(self):
        assert NULL_SPAN.context is None
        assert not NULL_SPAN.recording
        assert NULL_SPAN.set_attribute("a", 1) is NULL_SPAN
        assert NULL_SPAN.to_dict() == {}
        with NULL_SPAN as span:
            assert span is NULL_SPAN
        NULL_SPAN.end()  # no-op


class TestTraceparent:
    def test_round_trip(self):
        context = SpanContext("0af7651916cd43dd8448eb211c80319c",
                              "b7ad6b7169203331", sampled=True)
        header = format_traceparent(context)
        assert header == ("00-0af7651916cd43dd8448eb211c80319c-"
                          "b7ad6b7169203331-01")
        assert parse_traceparent(header) == context

    def test_unsampled_flag(self):
        context = SpanContext("0af7651916cd43dd8448eb211c80319c",
                              "b7ad6b7169203331", sampled=False)
        header = format_traceparent(context)
        assert header.endswith("-00")
        assert parse_traceparent(header).sampled is False

    def test_format_none_context(self):
        assert format_traceparent(None) is None

    @pytest.mark.parametrize("header", [
        None,
        "",
        "garbage",
        "00-abc-def-01",                                           # short ids
        "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",  # bad ver
        "00-" + "0" * 32 + "-b7ad6b7169203331-01",                  # zero trace
        "00-0af7651916cd43dd8448eb211c80319c-" + "0" * 16 + "-01",  # zero span
        "00-0af7651916cd43dd8448eb211c80319z-b7ad6b7169203331-01",  # non-hex
        "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-zz",  # bad flags
    ])
    def test_malformed_headers_dropped(self, header):
        assert parse_traceparent(header) is None

    def test_uppercase_ids_folded(self):
        header = "00-0AF7651916CD43DD8448EB211C80319C-B7AD6B7169203331-01"
        context = parse_traceparent(header)
        assert context.trace_id == "0af7651916cd43dd8448eb211c80319c"

    def test_join_remote_parent(self, tracer):
        remote = SpanContext("0af7651916cd43dd8448eb211c80319c",
                             "b7ad6b7169203331", sampled=True)
        span = tracer.start_root("server-side", parent_context=remote)
        assert span.trace_id == remote.trace_id
        assert span.parent_id == remote.span_id
        span.end()
        record = tracer.get(remote.trace_id)
        assert record is not None
        assert record.name == "server-side"


class TestSamplingAndRetention:
    def test_sampled_out_clean_trace_dropped(self):
        tracer = Tracer(sample_ratio=0.0)
        with tracer.span("quiet", root_if_orphan=True):
            pass
        assert tracer.finished() == []
        assert tracer.stats()["dropped"] == 1

    def test_error_trace_kept_despite_sampling(self):
        tracer = Tracer(sample_ratio=0.0)
        with pytest.raises(RuntimeError):
            with tracer.span("failing", root_if_orphan=True):
                raise RuntimeError("kept")
        record = only_trace(tracer)
        assert record.status == "error"

    def test_slow_trace_kept_despite_sampling(self):
        tracer = Tracer(sample_ratio=0.0, slow_threshold_s=0.5)
        root = tracer.start_root("slowpath")
        # The slow span arrives through the bulk series path, so the
        # retention scan must look through deferred recordings too.
        tracer.record_span_series(
            "chunk", [0.75], [time.time()], parent=root
        )
        root.end()
        record = only_trace(tracer)
        assert any(s.duration_s >= 0.5 for s in record.spans)

    def test_ring_is_bounded(self):
        tracer = Tracer(sample_ratio=1.0, max_traces=4)
        for i in range(10):
            tracer.start_root(f"t{i}").end()
        names = [r.name for r in tracer.finished()]
        assert names == ["t9", "t8", "t7", "t6"]  # newest first

    def test_span_budget_counts_drops(self):
        # Spans land in the trace when they *end*, so the root — which
        # ends last — competes for the final slot: with the budget
        # already full of children it is itself counted as dropped.
        tracer = Tracer(sample_ratio=1.0, max_spans_per_trace=3)
        with tracer.span("root", root_if_orphan=True) as root:
            for i in range(5):
                tracer.record_span("child", 0.001, parent=root)
        record = only_trace(tracer)
        assert len(record.spans) == 3
        assert all(s.name == "child" for s in record.spans)
        # 2 children over budget + the root itself.
        assert record.spans[0].attributes["dropped_spans"] == 3

    def test_span_budget_keeps_root_when_it_fits(self):
        tracer = Tracer(sample_ratio=1.0, max_spans_per_trace=3)
        with tracer.span("root", root_if_orphan=True) as root:
            tracer.record_span("child", 0.001, parent=root)
            tracer.record_span("child", 0.001, parent=root)
        record = only_trace(tracer)
        assert {s.name for s in record.spans} == {"root", "child"}
        root_span = next(s for s in record.spans if s.name == "root")
        assert "dropped_spans" not in root_span.attributes

    def test_max_active_evicts_oldest_as_incomplete(self):
        tracer = Tracer(sample_ratio=1.0, max_active=2)
        first = tracer.start_root("first")
        tracer.record_span("done-work", 0.01, parent=first)
        tracer.start_root("second")
        tracer.start_root("third")  # evicts "first" (its finished spans)
        record = only_trace(tracer)
        assert record.spans[0].name == "done-work"
        assert record.spans[0].attributes.get("incomplete") is True
        first.end()  # late end lands as its own single-span record
        assert len(tracer.finished()) == 2

    def test_evicted_empty_trace_leaves_no_record(self):
        tracer = Tracer(sample_ratio=1.0, max_active=1)
        tracer.start_root("first")  # never ends, no finished spans
        tracer.start_root("second")  # evicts "first", which is empty
        assert tracer.finished() == []

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_ratio=1.5)
        with pytest.raises(ValueError):
            Tracer(slow_threshold_s=-1.0)


class TestRecordedSpans:
    def test_record_span_backdates_start(self, tracer):
        with tracer.span("root", root_if_orphan=True) as root:
            before = time.time()
            span = tracer.record_span(
                "work", 2.0, parent=root, category="executor"
            )
            assert span.start_time == pytest.approx(before - 2.0, abs=0.25)
            assert span.duration_s == 2.0
            assert not span.recording

    def test_record_span_clamps_negative_duration(self, tracer):
        with tracer.span("root", root_if_orphan=True) as root:
            span = tracer.record_span("work", -5.0, parent=root)
            assert span.duration_s == 0.0

    def test_record_without_trace_is_noop(self, tracer):
        assert tracer.record_span("work", 1.0) is NULL_SPAN
        assert tracer.record_spans([("a", 1.0, None, None)]) == 0
        assert tracer.record_span_series("a", [1.0], [time.time()]) == 0
        assert tracer.finished() == []

    def test_record_spans_batch(self, tracer):
        now = time.time()
        with tracer.span("root", root_if_orphan=True) as root:
            n = tracer.record_spans(
                [
                    ("chunk", 0.01, now, {"genomes": 32}),
                    ("chunk", 0.02, None, None),  # None end -> "now"
                ],
                parent=root,
                category="executor",
            )
            assert n == 2
        record = only_trace(tracer)
        chunks = [s for s in record.spans if s.name == "chunk"]
        assert len(chunks) == 2
        assert all(c.parent_id == root.span_id for c in chunks)
        by_duration = {c.duration_s: c.attributes for c in chunks}
        assert by_duration[0.01] == {"genomes": 32}
        assert by_duration[0.02] == {}

    def test_record_span_series_shared_and_per_span_attrs(self, tracer):
        now = time.time()
        with tracer.span("root", root_if_orphan=True) as root:
            n = tracer.record_span_series(
                "chunk",
                [0.01, 0.02, 0.03],
                [now, now, now],
                parent=root,
                category="executor",
                attributes={"backend": "serial"},
                per_span=("genomes", [32, 32, 7]),
            )
            assert n == 3
        record = only_trace(tracer)
        chunks = [s for s in record.spans if s.name == "chunk"]
        # Spans sort by start time (= shared end minus duration), so
        # compare by duration instead of presentation order.
        assert {
            c.duration_s: c.attributes["genomes"] for c in chunks
        } == {0.01: 32, 0.02: 32, 0.03: 7}
        assert all(c.attributes["backend"] == "serial" for c in chunks)
        assert all(c.category == "executor" for c in chunks)

    def test_lazy_assembly_yields_stable_ids(self, tracer):
        with tracer.span("root", root_if_orphan=True) as root:
            tracer.record_spans(
                [("chunk", 0.01, None, None)], parent=root
            )
        first = tracer.finished()[0]
        second = tracer.get(first.trace_id)
        assert [s.span_id for s in first.spans] == [
            s.span_id for s in second.spans
        ]
        assert all(len(s.span_id) == 16 for s in first.spans)

    def test_bulk_respects_span_budget(self, tracer):
        tracer.max_spans_per_trace = 4
        with tracer.span("root", root_if_orphan=True) as root:
            now = time.time()
            recorded = tracer.record_span_series(
                "chunk", [0.01] * 10, [now] * 10, parent=root
            )
            assert recorded == 4  # truncated to the remaining room
        record = only_trace(tracer)
        # 6 series spans over budget, plus the root (which ends last,
        # after the series already filled the trace).
        assert len(record.spans) == 4
        assert record.spans[0].attributes["dropped_spans"] == 7

    def test_sink_sees_assembled_record(self, tracer):
        seen = []
        tracer.add_sink(seen.append)
        tracer.add_sink(lambda record: 1 / 0)  # broken sinks are swallowed
        with tracer.span("root", root_if_orphan=True) as root:
            tracer.record_spans([("chunk", 0.01, None, None)], parent=root)
        assert len(seen) == 1
        assert {s.name for s in seen[0].spans} == {"root", "chunk"}
        assert all(len(s.span_id) == 16 for s in seen[0].spans)


class TestNullTracer:
    def test_everything_is_noop(self):
        with NULL_TRACER.span("x") as span:
            assert span is NULL_SPAN
        assert NULL_TRACER.start_root("x") is NULL_SPAN
        assert NULL_TRACER.start_span("x", root_if_orphan=True) is NULL_SPAN
        assert NULL_TRACER.record_span("x", 1.0) is NULL_SPAN
        assert NULL_TRACER.record_spans([("x", 1.0, None, None)]) == 0
        assert NULL_TRACER.record_span_series("x", [1.0], [0.0]) == 0
        NULL_TRACER.add_sink(lambda record: None)
        assert NULL_TRACER.finished() == []

    def test_set_tracer_swaps_global(self):
        previous = set_tracer(NULL_TRACER)
        try:
            assert get_tracer() is NULL_TRACER
        finally:
            set_tracer(previous)


class TestPropagationEdges:
    def test_fresh_thread_has_no_ambient_span(self, tracer):
        """contextvars do not cross threads: a worker sees no span."""
        seen = {}

        def worker():
            seen["ambient"] = current_span()
            seen["child"] = tracer.start_span("lost")

        with tracer.span("root", root_if_orphan=True):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["ambient"] is None
        assert seen["child"] is NULL_SPAN

    def test_use_span_carries_trace_into_thread(self, tracer):
        seen = {}

        def worker(root):
            with use_span(root):
                with tracer.span("threaded") as span:
                    seen["trace_id"] = span.trace_id
                    seen["parent_id"] = span.parent_id

        root = tracer.start_root("root")
        thread = threading.Thread(target=worker, args=(root,))
        thread.start()
        thread.join()
        root.end()
        assert seen["trace_id"] == root.trace_id
        assert seen["parent_id"] == root.span_id
        record = only_trace(tracer)
        assert {s.name for s in record.spans} == {"root", "threaded"}

    def test_process_pool_chunks_recorded_parent_side(self, tracer):
        """Pool workers cannot trace; the parent records their chunks."""
        problem = DcimProblem(DcimSpec(wstore=64 * 1024, precision="INT8"))
        genomes = problem.codec.enumerate()[:64]
        executor = make_executor("process", workers=2, chunk_size=16)
        try:
            with tracer.span("root", root_if_orphan=True):
                executor.evaluate_batch(problem, genomes)
        finally:
            executor.close()
        record = only_trace(tracer)
        chunks = [s for s in record.spans if s.name == "executor.chunk"]
        assert chunks, [s.name for s in record.spans]
        root = next(s for s in record.spans if s.name == "root")
        assert all(c.parent_id == root.span_id for c in chunks)
        assert all(c.category == "executor" for c in chunks)

    def test_cancelled_campaign_closes_trace_as_error(self, tracer):
        with pytest.raises(CampaignCancelled):
            run_campaign(
                [DcimSpec(wstore=4096, precision="INT4")],
                CampaignConfig(
                    nsga2=NSGA2Config(population_size=16, generations=50),
                    exhaustive_threshold=0,
                ),
                should_stop=lambda: True,
            )
        record = only_trace(tracer)
        assert record.name == "campaign"
        assert record.status == "error"
        campaign = next(s for s in record.spans if s.name == "campaign")
        assert campaign.status == "error"
        assert "cancelled" in (campaign.error or "")

    def test_failed_campaign_closes_trace_as_error(self, tracer):
        class BrokenExecutor(SerialExecutor):
            def evaluate_batch(self, problem, genomes):
                raise OSError("pool died")

        with pytest.raises(OSError):
            run_campaign(
                [DcimSpec(wstore=4096, precision="INT4")],
                CampaignConfig(
                    nsga2=NSGA2Config(population_size=16, generations=4),
                    exhaustive_threshold=0,
                ),
                executor=BrokenExecutor(),
            )
        record = only_trace(tracer)
        assert record.status == "error"
        assert tracer.active_count() == 0  # nothing left open


def tiny_request(**overrides) -> CampaignRequest:
    payload = dict(
        specs=(SpecRequest(4096, "INT4"),),
        population_size=16,
        generations=3,
        seed=1,
        exhaustive_threshold=0,
    )
    payload.update(overrides)
    return CampaignRequest(**payload)


class TestServiceTrace:
    def test_job_queue_trace_covers_wait_run_campaign(self, tracer):
        queue = JobQueue(cache=EvaluationCache(), workers=1)
        try:
            job_id = queue.submit(tiny_request())
            queue.wait(job_id, timeout=60.0)
        finally:
            queue.close()
        record = only_trace(tracer)
        names = {s.name for s in record.spans}
        assert {
            "job.queue_wait", "job.run", "campaign", "spec", "generation",
            "executor.chunk",
        } <= names
        by_name = {s.name: s for s in record.spans}
        wait, run = by_name["job.queue_wait"], by_name["job.run"]
        assert run.parent_id == wait.span_id
        assert by_name["campaign"].parent_id == run.span_id
        generations = [s for s in record.spans if s.name == "generation"]
        assert len(generations) == 3
        spec_span = by_name["spec"]
        assert all(g.parent_id == spec_span.span_id for g in generations)

    def test_cache_batches_traced_inside_campaign(self, tracer):
        result = run_campaign(
            [DcimSpec(wstore=4096, precision="INT4")],
            CampaignConfig(
                nsga2=NSGA2Config(population_size=16, generations=3),
                exhaustive_threshold=0,
            ),
            cache=EvaluationCache(),
        )
        assert result.evaluations > 0
        record = only_trace(tracer)
        names = {s.name for s in record.spans}
        assert {"cache.get_many", "cache.put_many"} <= names
        gets = [s for s in record.spans if s.name == "cache.get_many"]
        assert all(s.category == "cache" for s in gets)


class TestBitParity:
    def test_results_identical_tracing_on_off_and_sampled_out(self):
        spec = DcimSpec(wstore=4096, precision="INT4")
        config = CampaignConfig(
            nsga2=NSGA2Config(population_size=16, generations=3),
            exhaustive_threshold=0,
        )

        def fingerprint():
            result = run_campaign([spec], config)
            return (
                result.evaluations,
                result.merged_objectives.tobytes(),
                tuple(
                    (p.precision, p.n, p.h, p.l, p.k)
                    for p in result.merged_points
                ),
            )

        previous = set_tracer(NULL_TRACER)
        try:
            baseline = fingerprint()
            set_tracer(Tracer(sample_ratio=1.0, seed=99))
            assert fingerprint() == baseline
            set_tracer(Tracer(sample_ratio=0.0))
            assert fingerprint() == baseline
            set_tracer(Tracer(sample_ratio=0.5, seed=5, slow_threshold_s=10))
            assert fingerprint() == baseline
        finally:
            set_tracer(previous)

    def test_request_fingerprint_blind_to_tracing(self):
        request = tiny_request()
        previous = set_tracer(Tracer(sample_ratio=0.25, seed=3))
        try:
            traced = request.fingerprint()
        finally:
            set_tracer(previous)
        assert traced == tiny_request().fingerprint()


class TestLogCorrelation:
    def test_log_lines_carry_trace_ids_under_span(self, tracer):
        import io

        stream = io.StringIO()
        log = JsonLogger("test", level="info", stream=stream)
        with tracer.span("root", root_if_orphan=True) as root:
            log.info("inside")
        log.info("outside")
        inside, outside = [
            json.loads(line) for line in stream.getvalue().splitlines()
        ]
        assert inside["trace_id"] == root.trace_id
        assert inside["span_id"] == root.span_id
        assert "trace_id" not in outside


class TestSourceVocabulary:
    def test_known_sources_pass_through(self):
        for source in KNOWN_SOURCES:
            assert normalize_source(source) == source

    def test_free_form_folds(self):
        assert normalize_source("Serve") == "serve"
        assert normalize_source("  CLI ") == "cli"
        assert normalize_source("") == "cli"


class TestExporters:
    def make_record(self, tracer):
        with tracer.span("root", root_if_orphan=True) as root:
            with tracer.span("child", attributes={"k": "v"}):
                pass
            tracer.record_span("late", 0.01, parent=root, status="error",
                               error="boom")
        return only_trace(tracer)

    def test_trace_tree_renders_hierarchy(self, tracer):
        record = self.make_record(tracer)
        tree = trace_tree(record.spans)
        lines = tree.splitlines()
        assert lines[0] == f"trace {record.trace_id}"
        assert any("root" in line for line in lines)
        child_line = next(line for line in lines if "child" in line)
        assert child_line.startswith(("│", " "))  # indented under root
        assert "{k=v}" in child_line
        error_line = next(line for line in lines if "late" in line)
        assert "[error]" in error_line and "boom" in error_line

    def test_trace_tree_handles_pruned_parent(self):
        rows = [{
            "trace_id": "t" * 32, "span_id": "a" * 16,
            "parent_id": "missing0missing0", "name": "stranded",
            "start_time": 0.0, "duration_s": 1.0, "status": "ok",
        }]
        tree = trace_tree(rows)
        assert "stranded" in tree  # renders as an extra root

    def test_trace_tree_empty(self):
        assert trace_tree([]) == "(empty trace)"

    def test_chrome_trace_shape(self, tracer):
        record = self.make_record(tracer)
        payload = chrome_trace(record.spans)
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(record.spans)
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in complete)
        late = next(e for e in complete if e["name"] == "late")
        assert late["args"]["status"] == "error"
        assert late["args"]["error"] == "boom"
        metadata = [e for e in events if e["ph"] == "M"]
        assert metadata, "expected thread_name metadata events"
        json.dumps(payload)  # must be JSON-serialisable as-is

    def test_spans_to_dicts_passthrough(self):
        rows = [{"name": "already-a-dict"}]
        assert spans_to_dicts(rows) == rows


def make_span_rows(trace_id, run_id=None, start=1000.0):
    root_id, child_id = "a" * 16, "b" * 16
    attributes = {"run_id": run_id} if run_id else {}
    return [
        {
            "trace_id": trace_id, "span_id": root_id, "parent_id": None,
            "name": "campaign", "category": "campaign",
            "start_time": start, "duration_s": 2.0, "status": "ok",
            "error": None, "attributes": attributes, "thread": "main",
        },
        {
            "trace_id": trace_id, "span_id": child_id, "parent_id": root_id,
            "name": "executor.chunk", "category": "executor",
            "start_time": start + 0.5, "duration_s": 1.0, "status": "ok",
            "error": None, "attributes": {}, "thread": "main",
        },
    ]


class TestRunStoreTraces:
    def test_append_and_read_back(self, tmp_path):
        from repro.store import RunStore

        with RunStore(str(tmp_path / "runs.sqlite")) as store:
            rows = make_span_rows("1" * 32, run_id="run-x")
            assert store.append_trace_spans(rows, source="serve") == 2
            spans = store.trace_spans("1" * 32)
            assert [s["name"] for s in spans] == ["campaign", "executor.chunk"]
            assert all(s["run_id"] == "run-x" for s in spans)
            assert all(s["source"] == "serve" for s in spans)
            # Idempotent: re-appending the same trace changes nothing.
            assert store.append_trace_spans(rows, source="serve") == 2
            assert len(store.trace_spans("1" * 32)) == 2

    def test_trace_list_summaries_and_filters(self, tmp_path):
        from repro.store import RunStore

        with RunStore(str(tmp_path / "runs.sqlite")) as store:
            store.append_trace_spans(
                make_span_rows("1" * 32, run_id="run-x", start=1000.0),
                source="serve",
            )
            store.append_trace_spans(
                make_span_rows("2" * 32, start=2000.0), source="cli"
            )
            summaries = store.trace_list()
            assert [s["trace_id"] for s in summaries] == ["2" * 32, "1" * 32]
            newest = summaries[0]
            assert newest["name"] == "campaign"
            assert newest["span_count"] == 2
            assert newest["duration_s"] == pytest.approx(2.0)
            assert store.trace_list(run_id="run-x")[0]["trace_id"] == "1" * 32
            assert store.trace_list(source="cli")[0]["trace_id"] == "2" * 32
            assert store.trace_list(limit=1)[0]["trace_id"] == "2" * 32

    def test_prune_trace_spans(self, tmp_path):
        from repro.store import RunStore

        with RunStore(str(tmp_path / "runs.sqlite")) as store:
            old = make_span_rows("1" * 32, start=time.time() - 3600)
            fresh = make_span_rows("2" * 32, start=time.time())
            store.append_trace_spans(old, source="test")
            store.append_trace_spans(fresh, source="test")
            assert store.prune_trace_spans(60.0) == 2
            assert store.trace_spans("1" * 32) == []
            assert len(store.trace_spans("2" * 32)) == 2

    def test_runs_gc_keep_traces_flag(self, tmp_path, capsys):
        from repro.cli import main
        from repro.store import RunStore

        path = str(tmp_path / "runs.sqlite")
        with RunStore(path) as store:
            store.append_trace_spans(
                make_span_rows("1" * 32, start=time.time() - 3600),
                source="test",
            )
        assert main(["runs", "gc", "--store", path, "--keep-traces", "60"]) == 0
        out = capsys.readouterr().out
        assert "trace" in out.lower()
        with RunStore(path) as store:
            assert store.trace_list() == []


class TestServerTracing:
    @pytest.fixture
    def served(self, tracer):
        from repro.service.server import CampaignClient, serve

        server = serve("127.0.0.1", 0, workers=1, cache=EvaluationCache(),
                       tracer=tracer)
        thread = server.serve_in_background()
        try:
            yield server, CampaignClient(server.url)
        finally:
            server.shutdown()
            server.queue.close()
            thread.join(timeout=10)

    def test_response_echoes_traceparent(self, served):
        import urllib.request

        server, _ = served
        response = urllib.request.urlopen(f"{server.url}/api/problems")
        header = response.headers.get("traceparent")
        context = parse_traceparent(header)
        assert context is not None
        assert len(context.trace_id) == 32

    def test_incoming_traceparent_joins_trace(self, served, tracer):
        import urllib.request

        server, _ = served
        remote = SpanContext("3" * 32, "4" * 16, sampled=True)
        request = urllib.request.Request(
            f"{server.url}/api/problems",
            headers={"traceparent": format_traceparent(remote)},
        )
        response = urllib.request.urlopen(request)
        context = parse_traceparent(response.headers.get("traceparent"))
        assert context.trace_id == remote.trace_id
        # The span ends after the response is written: poll briefly.
        deadline = time.time() + 5
        record = tracer.get(remote.trace_id)
        while record is None and time.time() < deadline:
            time.sleep(0.02)
            record = tracer.get(remote.trace_id)
        assert record is not None
        http_span = next(
            s for s in record.spans if s.name == "http.request"
        )
        assert http_span.parent_id == remote.span_id

    def test_malformed_traceparent_starts_fresh_trace(self, served):
        import urllib.request

        server, _ = served
        request = urllib.request.Request(
            f"{server.url}/api/problems",
            headers={"traceparent": "not-a-traceparent"},
        )
        response = urllib.request.urlopen(request)
        context = parse_traceparent(response.headers.get("traceparent"))
        assert context is not None
        assert context.trace_id != "not-a-traceparent"

    def test_http_campaign_trace_covers_all_layers(self, served, tracer):
        server, client = served
        job_id = client.submit(tiny_request())
        deadline = time.time() + 60
        status = None
        while time.time() < deadline:
            status = client.status(job_id)
            if status.get("status") in ("done", "failed", "cancelled"):
                break
            time.sleep(0.1)
        assert status and status.get("status") == "done", status
        # The trace completes moments after the result lands.
        deadline = time.time() + 10
        full = None
        while time.time() < deadline and full is None:
            for summary in client.traces():
                detail = client.trace(summary["trace_id"])
                names = {s["name"] for s in detail["spans"]}
                if "campaign" in names and "http.request" in names:
                    full = detail
                    break
            else:
                time.sleep(0.1)
        assert full is not None
        names = {s["name"] for s in full["spans"]}
        assert {
            "http.request", "job.queue_wait", "job.run", "campaign",
            "spec", "generation", "executor.chunk",
        } <= names
        ids = {s["span_id"] for s in full["spans"]}
        orphans = [
            s["name"] for s in full["spans"]
            if s["parent_id"] and s["parent_id"] not in ids
        ]
        assert orphans == []
        # The span tree renders without error.
        tree = trace_tree(full["spans"])
        assert "http.request" in tree and "generation" in tree

    def test_api_traces_store_fallback(self, tmp_path, tracer):
        from repro.service.server import CampaignClient, serve
        from repro.store import RunStore

        with RunStore(str(tmp_path / "runs.sqlite")) as store:
            store.append_trace_spans(
                make_span_rows("5" * 32, run_id="run-z"), source="serve"
            )
            server = serve("127.0.0.1", 0, workers=1,
                           cache=EvaluationCache(), store=store,
                           tracer=tracer)
            thread = server.serve_in_background()
            try:
                client = CampaignClient(server.url)
                listed = client.traces()
                assert any(t["trace_id"] == "5" * 32 for t in listed)
                detail = client.trace("5" * 32)
                assert {s["name"] for s in detail["spans"]} == {
                    "campaign", "executor.chunk"
                }
            finally:
                server.shutdown()
                server.queue.close()
                thread.join(timeout=10)


class TestTraceCLI:
    @pytest.fixture
    def store_path(self, tmp_path):
        from repro.store import RunStore

        path = str(tmp_path / "runs.sqlite")
        with RunStore(path) as store:
            store.append_trace_spans(
                make_span_rows("6" * 32, run_id="run-q"), source="cli"
            )
        return path

    def test_trace_list(self, store_path, capsys):
        from repro.cli import main

        assert main(["trace", "list", "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert "6" * 32 in out
        assert "run-q" in out

    def test_trace_list_json_filters_run(self, store_path, capsys):
        from repro.cli import main

        assert main(["trace", "list", "--store", store_path,
                     "--run", "run-q", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["traces"][0]["trace_id"] == "6" * 32
        assert main(["trace", "list", "--store", store_path,
                     "--run", "run-other", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["traces"] == []

    def test_trace_show_tree_and_json(self, store_path, capsys):
        from repro.cli import main

        assert main(["trace", "show", "6" * 32, "--store", store_path]) == 0
        tree = capsys.readouterr().out
        assert "campaign" in tree and "executor.chunk" in tree
        assert main(["trace", "show", "6" * 32, "--store", store_path,
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["spans"]) == 2

    def test_trace_show_unknown_id(self, store_path, capsys):
        from repro.cli import main

        assert main(["trace", "show", "f" * 32, "--store", store_path]) == 1
        assert "unknown trace id" in capsys.readouterr().err

    def test_trace_export_perfetto(self, store_path, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "t.json")
        assert main(["trace", "export", "6" * 32, "--store", store_path,
                     "--out", out]) == 0
        with open(out) as fh:
            payload = json.load(fh)
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 2

    def test_trace_missing_store(self, tmp_path, capsys):
        from repro.cli import main

        missing = str(tmp_path / "nope.sqlite")
        assert main(["trace", "list", "--store", missing]) == 1
        assert "no run registry" in capsys.readouterr().err
