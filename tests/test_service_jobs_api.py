"""Tests for the job queue and the typed request/response API."""

import pytest

from repro.core.spec import DcimSpec
from repro.service.api import (
    CampaignRequest,
    CampaignResponse,
    FrontierPoint,
    SpecRequest,
)
from repro.service.cache import EvaluationCache
from repro.service.events import EventKind
from repro.service.jobs import JobQueue, JobStatus


def tiny_request(**overrides) -> CampaignRequest:
    payload = dict(
        specs=(SpecRequest(4096, "INT4"), SpecRequest(4096, "INT8")),
        population_size=16,
        generations=4,
        seed=1,
        exhaustive_threshold=0,  # force the GA: these tests watch generations
    )
    payload.update(overrides)
    return CampaignRequest(**payload)


class TestApiRoundTrips:
    def test_spec_request_round_trip(self):
        spec = DcimSpec(wstore=8192, precision="BF16", max_l=32)
        assert SpecRequest.from_spec(spec).to_spec() == spec

    def test_campaign_request_json_round_trip(self):
        request = tiny_request()
        assert CampaignRequest.from_json(request.to_json()) == request

    def test_campaign_request_accepts_raw_dicts(self):
        request = CampaignRequest(specs=({"wstore": 4096, "precision": "INT8"},))
        assert request.specs[0] == SpecRequest(4096, "INT8")

    def test_campaign_request_rejects_empty(self):
        with pytest.raises(ValueError):
            CampaignRequest(specs=())

    def test_fingerprint_is_content_addressed(self):
        assert tiny_request().fingerprint() == tiny_request().fingerprint()
        assert tiny_request().fingerprint() != tiny_request(seed=2).fingerprint()

    def test_frontier_point_round_trip(self):
        spec = DcimSpec(wstore=4096, precision="INT8")
        from repro.dse.problem import DcimProblem

        problem = DcimProblem(spec)
        point = problem.decode(problem.codec.enumerate()[0])
        frontier = FrontierPoint.from_design(point, (1.0, 2.0, 3.0, -4.0))
        rebuilt = frontier.to_design()
        assert (rebuilt.n, rebuilt.h, rebuilt.l, rebuilt.k) == (
            point.n, point.h, point.l, point.k
        )

    def test_campaign_response_json_round_trip(self):
        response = CampaignResponse(
            frontier=(
                FrontierPoint("INT8", 32, 16, 8, 4, (1.0, 2.0)),
                FrontierPoint("INT4", 64, 8, 8, 2, (0.5, 3.0)),
            ),
            evaluations=42,
            per_spec_evaluations=(20, 22),
            cache_stats={"hits": 10, "misses": 32},
            wall_time_s=1.25,
        )
        assert CampaignResponse.from_json(response.to_json()) == response


class TestJobQueue:
    def test_submit_run_result(self):
        queue = JobQueue(cache=EvaluationCache())
        job_id = queue.submit(tiny_request())
        assert queue.status(job_id) is JobStatus.PENDING
        executed = queue.run_all()
        assert [job.job_id for job in executed] == [job_id]
        assert queue.status(job_id) is JobStatus.DONE
        response = queue.result(job_id)
        assert response.frontier
        assert response.evaluations > 0

    def test_identical_requests_deduplicate(self):
        queue = JobQueue(cache=EvaluationCache())
        first = queue.submit(tiny_request())
        second = queue.submit(tiny_request())
        assert first == second
        assert queue.pending_count() == 1
        assert queue.record(first).submissions == 2
        assert queue.stats.deduplicated == 1

    def test_distinct_requests_queue_separately(self):
        queue = JobQueue(cache=EvaluationCache())
        first = queue.submit(tiny_request())
        second = queue.submit(tiny_request(seed=9))
        assert first != second
        assert queue.pending_count() == 2

    def test_done_job_absorbs_resubmission(self):
        queue = JobQueue(cache=EvaluationCache())
        job_id = queue.submit(tiny_request())
        queue.run_all()
        assert queue.submit(tiny_request()) == job_id
        assert queue.pending_count() == 0

    def test_failed_job_allows_retry(self):
        calls = {"n": 0}

        def flaky(request):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("backend exploded")
            from repro.service.campaign import execute_request

            return execute_request(request)

        queue = JobQueue(runner=flaky)
        job_id = queue.submit(tiny_request())
        queue.run_all()
        assert queue.status(job_id) is JobStatus.FAILED
        assert "backend exploded" in queue.record(job_id).error
        with pytest.raises(RuntimeError):
            queue.result(job_id)
        retry_id = queue.submit(tiny_request())
        assert retry_id != job_id
        queue.run_all()
        assert queue.status(retry_id) is JobStatus.DONE

    def test_run_next_idle_returns_none(self):
        assert JobQueue().run_next() is None

    def test_unknown_job_id(self):
        with pytest.raises(KeyError):
            JobQueue().status("job-404")

    def test_result_before_finish_raises(self):
        queue = JobQueue()
        job_id = queue.submit(tiny_request())
        with pytest.raises(RuntimeError):
            queue.result(job_id)

    def test_shared_cache_across_jobs(self):
        cache = EvaluationCache()
        queue = JobQueue(cache=cache)
        queue.submit(tiny_request())
        queue.run_all()
        misses_after_first = cache.stats.misses
        queue.submit(tiny_request(generations=5))  # overlapping genome space
        queue.run_all()
        assert cache.stats.hits > 0
        assert cache.stats.misses >= misses_after_first


class TestQueueStatsAndPurge:
    def test_queue_depth_tracks_pending(self):
        queue = JobQueue(cache=EvaluationCache())
        assert queue.stats.queue_depth == 0
        queue.submit(tiny_request())
        queue.submit(tiny_request(seed=9))
        assert queue.stats.queue_depth == 2
        queue.run_next()
        assert queue.stats.queue_depth == 1
        queue.run_all()
        assert queue.stats.queue_depth == 0
        assert queue.stats.as_dict()["completed"] == 2

    def test_purge_drops_old_terminal_records(self):
        queue = JobQueue(cache=EvaluationCache())
        job_id = queue.submit(tiny_request())
        queue.run_all()
        keep_id = queue.submit(tiny_request(seed=9))  # still pending
        assert queue.purge(0) == 1
        assert queue.stats.purged == 1
        with pytest.raises(KeyError):
            queue.status(job_id)
        assert queue.status(keep_id) is JobStatus.PENDING
        # The fingerprint slot is free again: resubmitting requeues.
        assert queue.submit(tiny_request()) != job_id

    def test_purge_without_ttl_requires_age(self):
        with pytest.raises(ValueError):
            JobQueue().purge()

    def test_ttl_purges_on_submit(self):
        queue = JobQueue(cache=EvaluationCache(), ttl_s=0.0)
        job_id = queue.submit(tiny_request())
        queue.run_all()
        # The next submit sweeps the aged-out record first, so the same
        # fingerprint gets a fresh job instead of the purged id.
        retry = queue.submit(tiny_request())
        assert retry != job_id
        with pytest.raises(KeyError):
            queue.status(job_id)


class TestCancellation:
    def test_cancel_pending_job(self):
        queue = JobQueue(cache=EvaluationCache())
        job_id = queue.submit(tiny_request())
        assert queue.cancel(job_id) is JobStatus.CANCELLED
        assert queue.run_next() is None  # nothing runnable remains
        events, _, done = queue.events_since(job_id)
        assert done
        assert events[-1].kind is EventKind.CAMPAIGN_CANCELLED
        assert queue.stats.cancelled == 1
        with pytest.raises(RuntimeError):
            queue.result(job_id)
        # Cancelled jobs do not absorb resubmissions.
        assert queue.submit(tiny_request()) != job_id

    def test_cancel_terminal_job_is_noop(self):
        queue = JobQueue(cache=EvaluationCache())
        job_id = queue.submit(tiny_request())
        queue.run_all()
        assert queue.cancel(job_id) is JobStatus.DONE

    def test_cancel_running_job_stops_between_generations(self):
        # A long campaign (200 generations) cancelled after its first
        # generation event must stop early: the cancelled job's stream
        # proves far fewer generations ran than were configured.
        queue = JobQueue(cache=EvaluationCache(), workers=1)
        job_id = queue.submit(
            tiny_request(specs=(SpecRequest(4096, "INT4"),), generations=200)
        )
        events, cursor, _ = queue.wait_events(job_id, 0, timeout=30.0)
        while not any(e.kind is EventKind.GENERATION_DONE for e in events):
            more, cursor, done = queue.wait_events(job_id, cursor, timeout=30.0)
            assert not done, "campaign finished before it could be cancelled"
            events.extend(more)
        queue.cancel(job_id)
        assert queue.wait(job_id, timeout=30.0) is JobStatus.CANCELLED
        stream, _, done = queue.events_since(job_id)
        assert done
        assert stream[-1].kind is EventKind.CAMPAIGN_CANCELLED
        generations_seen = sum(
            1 for e in stream if e.kind is EventKind.GENERATION_DONE
        )
        assert 1 <= generations_seen < 200
        queue.close()


class TestBackgroundWorkers:
    def test_workers_drain_submissions(self):
        with JobQueue(cache=EvaluationCache(), workers=2) as queue:
            ids = [queue.submit(tiny_request(seed=s)) for s in range(4)]
            for job_id in ids:
                assert queue.wait(job_id, timeout=60.0) is JobStatus.DONE
                assert queue.result(job_id).frontier
            assert queue.stats.workers == 2
            assert queue.stats.completed == 4

    def test_submit_after_close_raises(self):
        queue = JobQueue(cache=EvaluationCache(), workers=1)
        queue.close()
        with pytest.raises(RuntimeError):
            queue.submit(tiny_request())

    def test_wait_times_out(self):
        queue = JobQueue(cache=EvaluationCache())  # nothing drives it
        job_id = queue.submit(tiny_request())
        with pytest.raises(TimeoutError):
            queue.wait(job_id, timeout=0.05)

    def test_threaded_submits_deduplicate_while_running(self):
        import threading as _threading

        started = _threading.Event()
        release = _threading.Event()

        def gated(request, observer=None, should_stop=None):
            started.set()
            assert release.wait(timeout=30.0)
            from repro.service.campaign import execute_request

            return execute_request(request, observer=observer,
                                    should_stop=should_stop)

        queue = JobQueue(runner=gated, workers=1)
        first = queue.submit(tiny_request())
        assert started.wait(timeout=30.0)  # job is RUNNING, not queued
        ids = []
        threads = [
            _threading.Thread(
                target=lambda: ids.append(queue.submit(tiny_request()))
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        release.set()
        assert set(ids) == {first}
        assert queue.record(first).submissions == 9
        assert queue.stats.deduplicated == 8
        assert queue.wait(first, timeout=60.0) is JobStatus.DONE
        queue.close()

    def test_failed_job_resubmission_through_workers(self):
        calls = {"n": 0}

        def flaky(request, observer=None, should_stop=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("backend exploded")
            from repro.service.campaign import execute_request

            return execute_request(request, observer=observer,
                                    should_stop=should_stop)

        with JobQueue(runner=flaky, workers=1) as queue:
            job_id = queue.submit(tiny_request())
            assert queue.wait(job_id, timeout=60.0) is JobStatus.FAILED
            events, _, done = queue.events_since(job_id)
            assert done
            assert events[-1].kind is EventKind.CAMPAIGN_FAILED
            assert "backend exploded" in events[-1].message
            retry = queue.submit(tiny_request())
            assert retry != job_id
            assert queue.wait(retry, timeout=60.0) is JobStatus.DONE

    def test_event_cursor_reads_race_the_worker(self):
        # Stream a running job's events concurrently with the producing
        # worker: the cursor protocol must deliver every event exactly
        # once, in order, ending with the terminal event.
        with JobQueue(cache=EvaluationCache(), workers=1) as queue:
            job_id = queue.submit(
                tiny_request(specs=(SpecRequest(4096, "INT8"),),
                             generations=12)
            )
            seen = []
            cursor = 0
            while True:
                events, cursor, done = queue.wait_events(
                    job_id, cursor, timeout=30.0
                )
                seen.extend(events)
                if done:
                    break
            assert [e.seq for e in seen] == list(range(len(seen)))
            kinds = [e.kind for e in seen]
            assert kinds[0] is EventKind.SPEC_STARTED
            assert kinds[-1] is EventKind.CAMPAIGN_DONE
            assert kinds.count(EventKind.GENERATION_DONE) == 12
            assert queue.record(job_id).events.dropped == 0


class TestReviewRegressions:
    def test_cancel_requested_job_does_not_absorb_resubmission(self):
        # A running job with a pending cancel request is doomed; a
        # resubmission of the same fingerprint must queue fresh work
        # instead of being silently cancelled along with it.
        import threading as _threading

        started = _threading.Event()
        release = _threading.Event()

        def gated(request, observer=None, should_stop=None):
            started.set()
            assert release.wait(timeout=30.0)
            if should_stop():
                from repro.service.events import CampaignCancelled

                raise CampaignCancelled("stopped")
            from repro.service.campaign import execute_request

            return execute_request(request)

        queue = JobQueue(runner=gated, workers=1)
        first = queue.submit(tiny_request())
        assert started.wait(timeout=30.0)
        queue.cancel(first)  # running: flags cancel_requested
        retry = queue.submit(tiny_request())
        assert retry != first
        release.set()
        assert queue.wait(first, timeout=60.0) is JobStatus.CANCELLED
        assert queue.wait(retry, timeout=60.0) is JobStatus.DONE
        queue.close()

    def test_terminal_event_implies_result_is_ready(self):
        # The stream's done flag must never race the status/response
        # transition: once wait_events reports done, result() works.
        with JobQueue(cache=EvaluationCache(), workers=1) as queue:
            job_id = queue.submit(tiny_request())
            cursor = 0
            while True:
                _, cursor, done = queue.wait_events(job_id, cursor, timeout=30.0)
                if done:
                    break
            assert queue.status(job_id) is JobStatus.DONE
            assert queue.result(job_id).frontier
