"""Tests for the job queue and the typed request/response API."""

import pytest

from repro.core.spec import DcimSpec
from repro.service.api import (
    CampaignRequest,
    CampaignResponse,
    FrontierPoint,
    SpecRequest,
)
from repro.service.cache import EvaluationCache
from repro.service.jobs import JobQueue, JobStatus


def tiny_request(**overrides) -> CampaignRequest:
    payload = dict(
        specs=(SpecRequest(4096, "INT4"), SpecRequest(4096, "INT8")),
        population_size=16,
        generations=4,
        seed=1,
    )
    payload.update(overrides)
    return CampaignRequest(**payload)


class TestApiRoundTrips:
    def test_spec_request_round_trip(self):
        spec = DcimSpec(wstore=8192, precision="BF16", max_l=32)
        assert SpecRequest.from_spec(spec).to_spec() == spec

    def test_campaign_request_json_round_trip(self):
        request = tiny_request()
        assert CampaignRequest.from_json(request.to_json()) == request

    def test_campaign_request_accepts_raw_dicts(self):
        request = CampaignRequest(specs=({"wstore": 4096, "precision": "INT8"},))
        assert request.specs[0] == SpecRequest(4096, "INT8")

    def test_campaign_request_rejects_empty(self):
        with pytest.raises(ValueError):
            CampaignRequest(specs=())

    def test_fingerprint_is_content_addressed(self):
        assert tiny_request().fingerprint() == tiny_request().fingerprint()
        assert tiny_request().fingerprint() != tiny_request(seed=2).fingerprint()

    def test_frontier_point_round_trip(self):
        spec = DcimSpec(wstore=4096, precision="INT8")
        from repro.dse.problem import DcimProblem

        problem = DcimProblem(spec)
        point = problem.decode(problem.codec.enumerate()[0])
        frontier = FrontierPoint.from_design(point, (1.0, 2.0, 3.0, -4.0))
        rebuilt = frontier.to_design()
        assert (rebuilt.n, rebuilt.h, rebuilt.l, rebuilt.k) == (
            point.n, point.h, point.l, point.k
        )

    def test_campaign_response_json_round_trip(self):
        response = CampaignResponse(
            frontier=(
                FrontierPoint("INT8", 32, 16, 8, 4, (1.0, 2.0)),
                FrontierPoint("INT4", 64, 8, 8, 2, (0.5, 3.0)),
            ),
            evaluations=42,
            per_spec_evaluations=(20, 22),
            cache_stats={"hits": 10, "misses": 32},
            wall_time_s=1.25,
        )
        assert CampaignResponse.from_json(response.to_json()) == response


class TestJobQueue:
    def test_submit_run_result(self):
        queue = JobQueue(cache=EvaluationCache())
        job_id = queue.submit(tiny_request())
        assert queue.status(job_id) is JobStatus.PENDING
        executed = queue.run_all()
        assert [job.job_id for job in executed] == [job_id]
        assert queue.status(job_id) is JobStatus.DONE
        response = queue.result(job_id)
        assert response.frontier
        assert response.evaluations > 0

    def test_identical_requests_deduplicate(self):
        queue = JobQueue(cache=EvaluationCache())
        first = queue.submit(tiny_request())
        second = queue.submit(tiny_request())
        assert first == second
        assert queue.pending_count() == 1
        assert queue.record(first).submissions == 2
        assert queue.stats.deduplicated == 1

    def test_distinct_requests_queue_separately(self):
        queue = JobQueue(cache=EvaluationCache())
        first = queue.submit(tiny_request())
        second = queue.submit(tiny_request(seed=9))
        assert first != second
        assert queue.pending_count() == 2

    def test_done_job_absorbs_resubmission(self):
        queue = JobQueue(cache=EvaluationCache())
        job_id = queue.submit(tiny_request())
        queue.run_all()
        assert queue.submit(tiny_request()) == job_id
        assert queue.pending_count() == 0

    def test_failed_job_allows_retry(self):
        calls = {"n": 0}

        def flaky(request):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("backend exploded")
            from repro.service.campaign import execute_request

            return execute_request(request)

        queue = JobQueue(runner=flaky)
        job_id = queue.submit(tiny_request())
        queue.run_all()
        assert queue.status(job_id) is JobStatus.FAILED
        assert "backend exploded" in queue.record(job_id).error
        with pytest.raises(RuntimeError):
            queue.result(job_id)
        retry_id = queue.submit(tiny_request())
        assert retry_id != job_id
        queue.run_all()
        assert queue.status(retry_id) is JobStatus.DONE

    def test_run_next_idle_returns_none(self):
        assert JobQueue().run_next() is None

    def test_unknown_job_id(self):
        with pytest.raises(KeyError):
            JobQueue().status("job-404")

    def test_result_before_finish_raises(self):
        queue = JobQueue()
        job_id = queue.submit(tiny_request())
        with pytest.raises(RuntimeError):
            queue.result(job_id)

    def test_shared_cache_across_jobs(self):
        cache = EvaluationCache()
        queue = JobQueue(cache=cache)
        queue.submit(tiny_request())
        queue.run_all()
        misses_after_first = cache.stats.misses
        queue.submit(tiny_request(generations=5))  # overlapping genome space
        queue.run_all()
        assert cache.stats.hits > 0
        assert cache.stats.misses >= misses_after_first
