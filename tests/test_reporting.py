"""Tests for repro.reporting (tables, power reports)."""

import pytest

from repro.core.spec import DesignPoint
from repro.reporting import ascii_table, csv_table, format_si
from repro.reporting.power import (
    area_report,
    full_report,
    power_report,
    timing_report,
)
from repro.tech import GENERIC28


class TestAsciiTable:
    def test_alignment(self):
        text = ascii_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = text.splitlines()
        assert lines[0].startswith("+")
        assert all(len(l) == len(lines[0]) for l in lines)

    def test_float_formatting(self):
        text = ascii_table(["x"], [[3.14159265]])
        assert "3.142" in text

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            ascii_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        text = ascii_table(["a"], [])
        assert "a" in text


class TestCsvTable:
    def test_roundtrip_shape(self):
        text = csv_table(["a", "b"], [[1, 2], [3, 4]])
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2"

    def test_rejects_commas(self):
        with pytest.raises(ValueError):
            csv_table(["a"], [["x,y"]])


class TestFormatSi:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (8192, "8K"),
            (65536, "64K"),
            (128 * 1024, "128K"),
            (2**20, "1M"),
            (1500, "1.5K"),
            (12, "12"),
            (2.5e9, "2.5G"),
        ],
    )
    def test_values(self, value, expected):
        assert format_si(value) == expected

    def test_unit_suffix(self):
        assert format_si(65536, "b") == "64Kb"


DESIGN = DesignPoint(precision="INT8", n=64, h=128, l=64, k=8)
COST = DESIGN.macro_cost()


class TestPowerReports:
    def test_area_report_shares_sum(self):
        text = area_report(COST, GENERIC28)
        assert "TOTAL" in text
        assert "sram" in text
        # SRAM + selection dominate the dense design.
        first_component = text.splitlines()[4]
        assert "sram" in first_component or "weight_select" in first_component

    def test_timing_report_marks_critical(self):
        text = timing_report(COST, GENERIC28)
        assert "<- critical" in text
        assert "clock period" in text

    def test_power_report_header(self):
        text = power_report(COST, GENERIC28)
        assert "W at" in text
        assert "TOTAL/pass" in text

    def test_power_sram_zero(self):
        text = power_report(COST, GENERIC28)
        sram_row = next(l for l in text.splitlines() if "| sram" in l)
        assert "| 0 " in sram_row or "| 0.0 " in sram_row

    def test_full_report_concatenates(self):
        text = full_report(COST, GENERIC28)
        assert "Area report" in text
        assert "Timing report" in text
        assert "Power report" in text

    def test_fp_report_includes_fp_blocks(self):
        fp = DesignPoint(precision="BF16", n=64, h=128, l=64, k=8)
        text = area_report(fp.macro_cost(), GENERIC28)
        assert "prealign" in text
        assert "int_to_fp" in text
