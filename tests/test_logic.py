"""Tests for repro.model.logic (paper Table II)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.logic import (
    adder,
    barrel_shifter,
    clog2,
    comparator,
    multiplier_1xn,
    mux,
    register_bank,
)
from repro.tech.cells import CellLibrary

LIB = CellLibrary.default()
widths = st.integers(min_value=1, max_value=256)


class TestClog2:
    @pytest.mark.parametrize("n,expected", [(1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (1024, 10)])
    def test_values(self, n, expected):
        assert clog2(n) == expected

    def test_rejects_below_one(self):
        with pytest.raises(ValueError):
            clog2(0)


class TestMultiplier:
    @given(widths)
    def test_table2_row(self, n):
        c = multiplier_1xn(LIB, n)
        assert c.area == pytest.approx(n * LIB.nor.area)
        assert c.delay == LIB.nor.delay  # all NORs fire in parallel
        assert c.energy == pytest.approx(n * LIB.nor.energy)

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            multiplier_1xn(LIB, 0)


class TestAdder:
    def test_table2_row(self):
        c = adder(LIB, 8)
        fa, ha = LIB.full_adder, LIB.half_adder
        assert c.area == pytest.approx(7 * fa.area + ha.area)
        assert c.delay == pytest.approx(7 * fa.delay + ha.delay)
        assert c.energy == pytest.approx(7 * fa.energy + ha.energy)

    def test_one_bit_is_half_adder(self):
        assert adder(LIB, 1).area == LIB.half_adder.area

    @given(widths)
    def test_delay_linear_in_width(self, n):
        # Carry-ripple: delay grows linearly.
        assert adder(LIB, n + 1).delay > adder(LIB, n).delay


class TestMux:
    def test_wire_for_one_input(self):
        c = mux(LIB, 1)
        assert (c.area, c.delay, c.energy) == (0.0, 0.0, 0.0)

    def test_table2_row(self):
        c = mux(LIB, 16)
        assert c.area == pytest.approx(15 * LIB.mux2.area)
        assert c.delay == pytest.approx(4 * LIB.mux2.delay)

    @given(st.integers(min_value=2, max_value=256))
    def test_tree_depth_is_log(self, n):
        assert mux(LIB, n).delay == clog2(n) * LIB.mux2.delay


class TestBarrelShifter:
    def test_wire_for_one_bit(self):
        c = barrel_shifter(LIB, 1)
        assert c.area == 0.0

    def test_paper_literal_formulas(self):
        # A_shift(N) = N * A_sel(N); D_shift(N) = log2(N) * D_sel(N).
        n = 8
        sel = mux(LIB, n)
        c = barrel_shifter(LIB, n)
        assert c.area == pytest.approx(n * sel.area)
        assert c.delay == pytest.approx(clog2(n) * sel.delay)
        assert c.energy == pytest.approx(n * sel.energy)


class TestComparator:
    @given(widths)
    def test_equals_adder(self, n):
        assert comparator(LIB, n) == adder(LIB, n)


class TestRegisterBank:
    def test_scales_with_width(self):
        c = register_bank(LIB, 10)
        assert c.area == pytest.approx(10 * LIB.dff.area)
        assert c.energy == pytest.approx(10 * LIB.dff.energy)
        assert c.delay == LIB.dff.delay == 0.0
