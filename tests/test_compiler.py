"""Integration tests for the SegaDcim compiler pipeline."""

import pytest

from repro import DcimSpec, NSGA2Config, Requirements, SegaDcim


@pytest.fixture(scope="module")
def compiler():
    return SegaDcim(config=NSGA2Config(population_size=32, generations=20, seed=0))


@pytest.fixture(scope="module")
def int_result(compiler):
    return compiler.compile(
        DcimSpec(wstore=8 * 1024, precision="INT8"),
        exhaustive=True,
        verify=True,
    )


@pytest.fixture(scope="module")
def fp_result(compiler):
    return compiler.compile(
        DcimSpec(wstore=8 * 1024, precision="BF16"),
        exhaustive=True,
        verify=True,
    )


class TestCompileInt:
    def test_selected_meets_spec(self, int_result):
        assert int_result.selected.wstore == 8 * 1024
        assert int_result.selected.satisfies(int_result.spec)

    def test_selected_is_on_frontier(self, int_result):
        keys = {(p.n, p.h, p.l, p.k) for p in int_result.exploration.points}
        s = int_result.selected
        assert (s.n, s.h, s.l, s.k) in keys

    def test_rtl_generated(self, int_result):
        assert int_result.rtl is not None
        assert int_result.rtl.top.startswith("dcim_macro_int")
        assert len(int_result.rtl.modules) == 8

    def test_layout_generated(self, int_result):
        assert int_result.layout is not None
        assert int_result.layout.area_mm2 == pytest.approx(
            int_result.metrics.layout_area_mm2, rel=1e-6
        )

    def test_verification_passed(self, int_result):
        assert int_result.verification.passed

    def test_summary_renders(self, int_result):
        text = int_result.summary()
        assert "TOPS/W" in text or "energy efficiency" in text
        assert "8K" in text


class TestCompileFp:
    def test_fp_architecture_selected(self, fp_result):
        assert fp_result.selected.arch == "fp-prealign"
        assert fp_result.rtl.top.startswith("dcim_macro_fp")

    def test_fp_bundle_has_prealign_and_converter(self, fp_result):
        names = fp_result.rtl.module_names()
        assert any("prealign" in n for n in names)
        assert any("int2fp" in n for n in names)

    def test_fp_verification_passed(self, fp_result):
        assert fp_result.verification.passed


class TestRequirementsAndStrategies:
    def test_area_budget_respected(self, compiler):
        result = compiler.compile(
            DcimSpec(wstore=8 * 1024, precision="INT8"),
            requirements=Requirements(max_area_mm2=0.5),
            exhaustive=True,
            generate=False,
            layout=False,
        )
        assert result.metrics.layout_area_mm2 <= 0.5
        assert all(m.layout_area_mm2 <= 0.5 for _, m in result.distilled)

    def test_impossible_budget_raises(self, compiler):
        with pytest.raises(ValueError, match="no designs"):
            compiler.compile(
                DcimSpec(wstore=8 * 1024, precision="INT8"),
                requirements=Requirements(max_area_mm2=1e-9),
                exhaustive=True,
            )

    def test_strategy_changes_selection(self, compiler):
        spec = DcimSpec(wstore=8 * 1024, precision="INT8")
        small = compiler.compile(
            spec, strategy="min_area", exhaustive=True, generate=False, layout=False
        )
        fast = compiler.compile(
            spec, strategy="max_tops", exhaustive=True, generate=False, layout=False
        )
        assert small.metrics.layout_area_mm2 <= fast.metrics.layout_area_mm2
        assert fast.metrics.tops >= small.metrics.tops

    def test_ga_mode_runs(self, compiler):
        result = compiler.compile(
            DcimSpec(wstore=4 * 1024, precision="INT4"),
            seed=3,
            generate=False,
            layout=False,
        )
        assert len(result.exploration.points) > 0

    def test_stages_can_be_disabled(self, compiler):
        result = compiler.compile(
            DcimSpec(wstore=4 * 1024, precision="INT4"),
            exhaustive=True,
            generate=False,
            layout=False,
            verify=False,
        )
        assert result.rtl is None
        assert result.layout is None
        assert result.verification is None
