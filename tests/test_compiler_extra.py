"""Additional compiler-pipeline coverage: FP paths, GA mode, artifacts."""

import pytest

from repro import DcimSpec, NSGA2Config, SegaDcim
from repro.core.manifest import write_artifacts
from repro.layout.checks import run_drc, run_lvs
from repro.tech import GENERIC28, apply_corner


@pytest.fixture(scope="module")
def compiler():
    return SegaDcim(config=NSGA2Config(population_size=32, generations=15, seed=4))


class TestFpPipeline:
    @pytest.mark.parametrize("precision", ["FP8", "FP16", "FP32"])
    def test_fp_precisions_compile(self, compiler, precision):
        result = compiler.compile(
            DcimSpec(wstore=8 * 1024, precision=precision),
            exhaustive=True,
            generate=True,
            layout=True,
        )
        assert result.selected.precision.name == precision
        assert result.rtl.top.startswith("dcim_macro_fp")
        assert result.extras["lint"].passed
        assert result.layout.area_mm2 > 0

    def test_fp16_verify_runs_datapath(self, compiler):
        result = compiler.compile(
            DcimSpec(wstore=4 * 1024, precision="FP16"),
            exhaustive=True,
            generate=False,
            layout=False,
            verify=True,
        )
        assert result.verification.passed
        assert "fp_datapath" in result.verification.block

    def test_fp_artifacts_skip_int_testbench(self, compiler, tmp_path):
        result = compiler.compile(
            DcimSpec(wstore=4 * 1024, precision="BF16"), exhaustive=True
        )
        write_artifacts(result, tmp_path, GENERIC28)
        tb_files = list((tmp_path / "rtl").glob("tb_*.v"))
        assert tb_files == []  # FP testbench generation is out of scope
        assert (tmp_path / "reports" / "macro.rpt").exists()


class TestGaMode:
    def test_ga_fp16_handles_prime_mantissa(self, compiler):
        # FP16's mantissa datapath is 11 bits: only k in {1, 11} is
        # legal, exercising the non-power-of-two divisor path in the GA.
        result = compiler.compile(
            DcimSpec(wstore=4 * 1024, precision="FP16"),
            seed=2,
            generate=False,
            layout=False,
        )
        assert all(p.k in (1, 11) for p in result.exploration.points)

    def test_ga_int16(self, compiler):
        result = compiler.compile(
            DcimSpec(wstore=8 * 1024, precision="INT16"),
            seed=3,
            generate=False,
            layout=False,
        )
        assert result.selected.wstore == 8 * 1024


class TestPhysicalChecksOnCompiled:
    @pytest.mark.parametrize("precision", ["INT8", "BF16"])
    def test_drc_lvs_clean(self, compiler, precision):
        result = compiler.compile(
            DcimSpec(wstore=8 * 1024, precision=precision), exhaustive=True
        )
        assert run_drc(result.layout).passed
        assert run_lvs(result.layout).passed


class TestCornerCompile:
    def test_compile_at_slow_corner(self):
        slow = SegaDcim(tech=apply_corner(GENERIC28, "ss"))
        nominal = SegaDcim()
        spec = DcimSpec(wstore=4 * 1024, precision="INT8")
        s = slow.compile(spec, exhaustive=True, generate=False, layout=False)
        n = nominal.compile(spec, exhaustive=True, generate=False, layout=False)
        # Same Pareto structure (normalised objectives are corner-free),
        # slower absolute metrics.
        assert len(s.exploration.points) == len(n.exploration.points)
        assert s.metrics.delay_ns > n.metrics.delay_ns


class TestSummaryContent:
    def test_summary_lists_front_and_distilled_sizes(self, compiler):
        result = compiler.compile(
            DcimSpec(wstore=4 * 1024, precision="INT8"),
            exhaustive=True,
            generate=False,
            layout=False,
        )
        text = result.summary()
        assert str(len(result.exploration.points)) in text
        assert "INT8" in text
