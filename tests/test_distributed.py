"""Tests for distributed campaign execution.

Coordinator protocol (leases, heartbeats, expiry, idempotent results,
bounded attempts), the HTTP worker round trip and its bit-parity with
the in-process path, the remote cache backend's cross-worker dedup,
client retries, and the run-store / dashboard plumbing.  Tests marked
``distributed`` additionally spawn real ``repro serve`` / ``repro
worker`` subprocesses.
"""

import threading
import time

import pytest

from repro.service.api import CampaignRequest, SpecRequest
from repro.service.cache import EvaluationCache
from repro.service.distributed import WorkCoordinator
from repro.service.events import CampaignCancelled
from repro.service.server import CampaignClient, serve
from repro.service.worker import CampaignWorker, worker_cache


def tiny_request(**overrides) -> CampaignRequest:
    payload = dict(
        specs=(SpecRequest(4096, "INT4"), SpecRequest(8192, "INT8")),
        population_size=16,
        generations=4,
        seed=1,
        exhaustive_threshold=0,
    )
    payload.update(overrides)
    return CampaignRequest(**payload)


def done_payload(evaluations: int = 3) -> dict:
    return {
        "status": "done",
        "front": [],
        "evaluations": evaluations,
        "generations_run": 4,
        "strategy": "ga",
        "engine_backend": "python",
        "ga_backend": "python",
        "cache_stats": None,
        "wall_time_s": 0.01,
    }


def run_execute(coordinator, request, should_stop=None):
    """Drive ``coordinator.execute`` on a thread; return (thread, box)."""
    box = {}

    def target():
        try:
            box["response"] = coordinator.execute(
                request, should_stop=should_stop
            )
        except Exception as exc:  # surfaced by the test
            box["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread, box


def finished(client: CampaignClient, job_id: str):
    """Block on the event stream, then fetch the job's response."""
    for _ in client.watch(job_id, poll_s=0.1):
        pass
    return client.result(job_id)


def wait_for(predicate, timeout_s: float = 10.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError("condition not reached in time")


class TestWorkCoordinator:
    def test_unit_ids_content_addressed(self):
        coord = WorkCoordinator()
        request = tiny_request()
        first = coord._decompose("dc-1", request, request.fingerprint())
        second = coord._decompose("dc-2", request, request.fingerprint())
        assert [u.unit_id for u in first] == [u.unit_id for u in second]
        assert len({u.unit_id for u in first}) == len(first)
        other = tiny_request(seed=2)
        third = coord._decompose("dc-3", other, other.fingerprint())
        assert {u.unit_id for u in third}.isdisjoint(
            u.unit_id for u in first
        )

    def test_unit_request_rebases_seed_single_spec(self):
        coord = WorkCoordinator()
        request = tiny_request(seed=7)
        units = coord._decompose("dc-1", request, request.fingerprint())
        assert [u.request_payload["seed"] for u in units] == [7, 8]
        for unit in units:
            assert len(unit.request_payload["specs"]) == 1
            assert unit.request_payload["workers"] == 1

    def test_lease_heartbeat_and_expiry_requeue(self):
        now = [0.0]
        coord = WorkCoordinator(lease_ttl_s=10.0, clock=lambda: now[0])
        thread, box = run_execute(coord, tiny_request())
        wait_for(lambda: coord.stats()["units_pending"] == 2)

        first = coord.lease("w1")
        second = coord.lease("w1")
        assert first is not None and second is not None
        assert first["attempt"] == 1
        assert coord.lease("w1") is None  # queue drained

        # Heartbeats renew the lease: advance past the original
        # deadline in renewed steps and nothing expires.
        for _ in range(3):
            now[0] += 6.0
            answer = coord.heartbeat("w1", [first["unit_id"], second["unit_id"]])
            assert sorted(answer["renewed"]) == sorted(
                [first["unit_id"], second["unit_id"]]
            )
            assert answer["lost"] == []

        # Stop heartbeating: the leases expire and both units requeue.
        now[0] += 11.0
        reassigned = coord.lease("w2")
        assert reassigned is not None
        assert reassigned["attempt"] == 2
        # The late worker learns it lost the unit on its next heartbeat.
        answer = coord.heartbeat("w1", [reassigned["unit_id"]])
        assert answer["lost"] == [reassigned["unit_id"]]

        other = coord.lease("w2")
        for unit in (reassigned, other):
            coord.submit_result("w2", unit["unit_id"], done_payload())
        thread.join(timeout=10)
        assert "response" in box
        assert box["response"].evaluations == 6

    def test_duplicate_result_submission_is_idempotent(self):
        coord = WorkCoordinator(lease_ttl_s=10.0)
        thread, box = run_execute(coord, tiny_request())
        wait_for(lambda: coord.stats()["units_pending"] == 2)
        units = [coord.lease("w1"), coord.lease("w1")]
        first = coord.submit_result("w1", units[0]["unit_id"], done_payload())
        assert first == {"accepted": True, "status": "done"}
        again = coord.submit_result("w2", units[0]["unit_id"], done_payload())
        assert again == {"accepted": False, "duplicate": True}
        unknown = coord.submit_result("w2", "no-such-unit", done_payload())
        assert unknown == {"accepted": False, "reason": "unknown_unit"}
        coord.submit_result("w1", units[1]["unit_id"], done_payload())
        thread.join(timeout=10)
        assert box["response"].evaluations == 6

    def test_attempts_exhausted_fails_campaign_structurally(self):
        coord = WorkCoordinator(lease_ttl_s=10.0, max_attempts=2)
        request = tiny_request(specs=(SpecRequest(4096, "INT4"),))
        thread, box = run_execute(coord, request)
        wait_for(lambda: coord.stats()["units_pending"] == 1)
        for _ in range(2):  # both attempts fail
            unit = coord.lease("w1")
            coord.submit_result(
                "w1",
                unit["unit_id"],
                {"status": "failed", "error": "boom: divide by zero"},
            )
        thread.join(timeout=10)
        error = box.get("error")
        assert isinstance(error, RuntimeError)
        message = str(error)
        assert "failed after 2 attempts" in message
        assert "boom: divide by zero" in message
        assert "spec" in message

    def test_should_stop_cancels_leased_units(self):
        coord = WorkCoordinator(lease_ttl_s=10.0)
        stop = threading.Event()
        thread, box = run_execute(
            coord, tiny_request(), should_stop=stop.is_set
        )
        wait_for(lambda: coord.stats()["units_pending"] == 2)
        unit = coord.lease("w1")
        stop.set()
        thread.join(timeout=10)
        assert isinstance(box.get("error"), CampaignCancelled)
        # A straggler result for the cancelled unit is dropped.
        answer = coord.submit_result("w1", unit["unit_id"], done_payload())
        assert answer["accepted"] is False

    def test_workers_info_states(self):
        now = [0.0]
        coord = WorkCoordinator(lease_ttl_s=1.0, clock=lambda: now[0])
        coord.register_worker("alpha", meta={"host": "box1"})
        rows = coord.workers_info()
        assert rows[0]["worker_id"] == "alpha"
        assert rows[0]["state"] == "idle"
        assert rows[0]["host"] == "box1"
        now[0] += 10.0
        assert coord.workers_info()[0]["state"] == "lost"


@pytest.fixture()
def distributed_setup(tmp_path):
    """A serving coordinator + two in-thread workers + a run registry."""
    from repro.store import RunStore

    store = RunStore(tmp_path / "runs.sqlite")
    coordinator = WorkCoordinator(lease_ttl_s=5.0)
    cache = EvaluationCache()
    server = serve(
        port=0, workers=2, cache=cache, store=store, coordinator=coordinator
    )
    server.serve_in_background()
    workers, threads = [], []
    for _ in range(2):
        worker = CampaignWorker(
            server.url,
            cache=worker_cache("remote", server.url),
            poll_s=0.05,
        )
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        workers.append(worker)
        threads.append(thread)
    yield CampaignClient(server.url), server, workers, store
    for worker in workers:
        worker.stop()
    for thread in threads:
        thread.join(timeout=10)
    server.shutdown()
    server.queue.close(wait=False)
    store.close()
    cache.close()


class TestDistributedRoundTrip:
    def test_healthz_payload(self, distributed_setup):
        client, _, _, _ = distributed_setup
        payload = client.health()
        assert payload["status"] == "ok"
        assert payload["version"]
        assert payload["uptime_s"] >= 0
        assert payload["queue_depth"] == 0
        assert payload["distributed"]["lease_ttl_s"] == 5.0

    def test_two_workers_bit_identical_to_in_process(
        self, distributed_setup
    ):
        from repro.service.campaign import execute_request

        client, _, workers, store = distributed_setup
        request = tiny_request()
        reference = execute_request(request, cache=EvaluationCache())

        job_id = client.submit(request)
        response = finished(client, job_id)

        assert [p.to_dict() for p in response.frontier] == [
            p.to_dict() for p in reference.frontier
        ]
        assert response.evaluations == reference.evaluations
        assert response.per_spec_evaluations == (
            reference.per_spec_evaluations
        )
        # The recorded run carries the same request fingerprint as the
        # in-process path would, and both units landed with worker ids.
        run = store.list_runs()[0]
        assert run.fingerprint == request.fingerprint()
        rows = store.work_units(run.run_id)
        assert [row["spec_index"] for row in rows] == [0, 1]
        assert all(row["status"] == "done" for row in rows)
        assert all(row["worker_id"] for row in rows)
        worker_ids = {w.worker_id for w in workers}
        assert {row["worker_id"] for row in rows} <= worker_ids

        # The workers table aggregates across runs, and the dashboard
        # renders it.
        summary = store.worker_summary()
        assert sum(row["units_done"] for row in summary) == 2
        from repro.reporting.dashboard import render_dashboard

        html = render_dashboard(store)
        assert "Distributed workers" in html
        assert rows[0]["worker_id"] in html

    def test_remote_cache_dedups_across_workers(self, distributed_setup):
        client, server, _, _ = distributed_setup
        first = finished(client, client.submit(tiny_request()))
        assert first.fresh_evaluations > 0
        assert len(server.cache) == first.fresh_evaluations

        # A distinct campaign (different fingerprint, same evaluation
        # space) re-runs every unit — but every genome any worker
        # evaluated is already in the shared remote cache.
        second_request = tiny_request(workers=3)
        assert second_request.fingerprint() != tiny_request().fingerprint()
        second = finished(client, client.submit(second_request))
        assert second.fresh_evaluations == 0
        assert second.evaluations == first.evaluations
        assert [p.to_dict() for p in second.frontier] == [
            p.to_dict() for p in first.frontier
        ]
        assert second.cache_stats["hits"] == second.evaluations

    def test_workers_endpoint_lists_registered_workers(
        self, distributed_setup
    ):
        client, _, workers, _ = distributed_setup
        finished(client, client.submit(tiny_request()))
        rows = client.workers()
        assert {row["worker_id"] for row in rows} == {
            w.worker_id for w in workers
        }
        assert all(row["state"] in ("idle", "active") for row in rows)

    def test_remote_cache_endpoint_round_trip(self, distributed_setup):
        client, _, _, _ = distributed_setup
        stored = client.cache_put_many(
            {"key-a": (1.0, 2.0), "key-b": (3.0, 4.0)}
        )
        assert stored["stored"] == 2
        answer = client.cache_get_many(["key-a", "key-b", "key-c"])
        assert answer["found"] == {
            "key-a": [1.0, 2.0], "key-b": [3.0, 4.0]
        }
        assert client.cache_info()["entries"] >= 2


class TestWorkerFaultTolerance:
    def test_dead_worker_lease_expires_and_unit_requeues(self, tmp_path):
        """A worker that leases a unit and dies must not wedge the run."""
        from repro.store import RunStore

        store = RunStore(tmp_path / "runs.sqlite")
        coordinator = WorkCoordinator(lease_ttl_s=0.5)
        server = serve(
            port=0,
            workers=1,
            cache=EvaluationCache(),
            store=store,
            coordinator=coordinator,
        )
        server.serve_in_background()
        client = CampaignClient(server.url)
        try:
            request = tiny_request(specs=(SpecRequest(4096, "INT4"),))
            job_id = client.submit(request)
            # "Worker" that leases the only unit and then disappears —
            # no heartbeat, no result.
            client.register_worker(worker_id="doomed")
            wait_for(
                lambda: client.lease_unit("doomed") is not None,
                timeout_s=10.0,
            )

            # A healthy worker shows up after the lease has expired and
            # completes the campaign.
            worker = CampaignWorker(
                server.url,
                cache=worker_cache("remote", server.url),
                poll_s=0.05,
                max_units=1,
            )
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            response = finished(client, job_id)
            worker.stop()
            thread.join(timeout=10)
            assert response.frontier

            rows = store.work_units(store.list_runs()[0].run_id)
            assert len(rows) == 1
            assert rows[0]["status"] == "done"
            assert rows[0]["attempts"] == 2  # doomed lease + real one
            assert rows[0]["worker_id"] == worker.worker_id
        finally:
            server.shutdown()
            server.queue.close(wait=False)
            store.close()

    def test_campaign_fails_structured_when_attempts_run_out(self):
        coordinator = WorkCoordinator(lease_ttl_s=0.2, max_attempts=2)
        server = serve(
            port=0, workers=1, cache=EvaluationCache(),
            coordinator=coordinator,
        )
        server.serve_in_background()
        client = CampaignClient(server.url)
        try:
            request = tiny_request(specs=(SpecRequest(4096, "INT4"),))
            job_id = client.submit(request)
            client.register_worker(worker_id="doomed")
            # Burn through every attempt without ever reporting back.
            for _ in range(2):
                wait_for(
                    lambda: client.lease_unit("doomed") is not None,
                    timeout_s=10.0,
                )
            with pytest.raises(RuntimeError) as excinfo:
                finished(client, job_id)
            assert "failed after 2 attempts" in str(excinfo.value)
            assert "lease expired" in str(excinfo.value)
        finally:
            server.shutdown()
            server.queue.close(wait=False)


class TestClientRetry:
    def test_retries_connection_errors_with_backoff(self):
        sleeps = []
        # Nothing listens on this port: every attempt fails fast.
        client = CampaignClient(
            "http://127.0.0.1:9",
            timeout=0.2,
            retries=3,
            backoff_s=0.1,
            backoff_cap_s=0.25,
            _sleep=sleeps.append,
        )
        with pytest.raises(RuntimeError) as excinfo:
            client.health()
        assert "failed after 4 attempts" in str(excinfo.value)
        assert len(sleeps) == 3
        # Exponential with a cap, plus up to 25% jitter.
        assert 0.1 <= sleeps[0] <= 0.125
        assert 0.2 <= sleeps[1] <= 0.25
        assert 0.25 <= sleeps[2] <= 0.3125

    def test_http_errors_are_never_retried(self, distributed_setup):
        client, server, _, _ = distributed_setup
        sleeps = []
        retrying = CampaignClient(
            server.url, retries=5, _sleep=sleeps.append
        )
        with pytest.raises(RuntimeError):
            retrying.status("job-does-not-exist")
        assert sleeps == []  # the server answered; retrying can't help

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            CampaignClient("http://127.0.0.1:9", retries=-1)


@pytest.mark.distributed
class TestSubprocessRoundTrip:
    """Real ``repro serve --workers-remote`` + ``repro worker`` processes."""

    def test_two_worker_processes_match_in_process(self, tmp_path):
        import os
        import subprocess
        import sys

        from repro.service.campaign import execute_request

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        serve_proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--workers-remote", "--lease-ttl", "10",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
        )
        workers = []
        try:
            line = serve_proc.stdout.readline()
            assert "serving campaigns on" in line, line
            url = line.split()[3]
            for _ in range(2):
                workers.append(
                    subprocess.Popen(
                        [
                            sys.executable, "-m", "repro.cli", "worker",
                            "--url", url, "--poll", "0.05",
                            "--exit-idle", "30",
                        ],
                        stdout=subprocess.DEVNULL,
                        stderr=subprocess.DEVNULL,
                        env=env,
                    )
                )
            client = CampaignClient(url, retries=4)
            wait_for(lambda: client.healthy(), timeout_s=30.0)
            request = tiny_request()
            response = finished(client, client.submit(request))
            reference = execute_request(request, cache=EvaluationCache())
            assert [p.to_dict() for p in response.frontier] == [
                p.to_dict() for p in reference.frontier
            ]
            assert response.evaluations == reference.evaluations
            # Both worker processes registered with the coordinator.
            assert len(client.workers()) == 2
        finally:
            for proc in workers:
                proc.terminate()
            serve_proc.terminate()
            for proc in [*workers, serve_proc]:
                proc.wait(timeout=30)
