"""Tests for front-quality analytics and the regression gate."""

import pytest

from repro.service.api import CampaignResponse, FrontierPoint
from repro.store import (
    GateConfig,
    RunStore,
    check_regression,
    compare_fronts,
    compare_runs,
    epsilon_indicator,
    front_coverage,
    knee_drift,
    union_hypervolumes,
)


def fp(n, objectives):
    return FrontierPoint(
        precision="INT8", n=n, h=128, l=4, k=8, objectives=tuple(objectives)
    )


#: A clean 2-D front and a uniformly worse copy of it.
GOOD = [fp(32, (1.0, 3.0)), fp(64, (2.0, 2.0)), fp(96, (3.0, 1.0))]
WORSE = [fp(32, (1.5, 3.5)), fp(64, (2.5, 2.5)), fp(96, (3.5, 1.5))]


class TestIndicators:
    def test_epsilon_zero_for_self(self):
        assert epsilon_indicator(GOOD, GOOD) == 0.0

    def test_epsilon_is_the_uniform_shift(self):
        # WORSE = GOOD + 0.5 everywhere: GOOD covers WORSE with
        # headroom (negative eps); WORSE needs exactly +0.5.
        assert epsilon_indicator(GOOD, WORSE) == pytest.approx(-0.5)
        assert epsilon_indicator(WORSE, GOOD) == pytest.approx(0.5)

    def test_epsilon_rejects_dim_mismatch(self):
        with pytest.raises(ValueError):
            epsilon_indicator(GOOD, [fp(32, (1.0, 2.0, 3.0))])
        with pytest.raises(ValueError):
            epsilon_indicator([], GOOD)

    def test_coverage(self):
        assert front_coverage(GOOD, WORSE) == 1.0
        assert front_coverage(WORSE, GOOD) == 0.0
        assert front_coverage(GOOD, GOOD) == 1.0

    def test_comparison_epsilon_is_scale_free(self):
        # Same fronts, one objective blown up 1e6x: the normalised
        # epsilons must not change (this is what makes a fixed 0.05
        # gate tolerance meaningful on mixed-magnitude objectives).
        def scaled(front):
            return [
                fp(p.n, (p.objectives[0] * 1e6, p.objectives[1]))
                for p in front
            ]

        plain = compare_fronts(GOOD, WORSE)
        blown = compare_fronts(scaled(GOOD), scaled(WORSE))
        assert blown.epsilon_ba == pytest.approx(plain.epsilon_ba)
        assert blown.epsilon_ab == pytest.approx(plain.epsilon_ab)

    def test_union_hypervolumes_better_front_wins(self):
        hv_good, hv_worse = union_hypervolumes(GOOD, WORSE)
        assert hv_good > hv_worse > 0.0

    def test_union_hypervolumes_symmetric_for_twins(self):
        hv_a, hv_b = union_hypervolumes(GOOD, list(GOOD))
        assert hv_a == hv_b

    def test_knee_drift_zero_for_twins(self):
        assert knee_drift(GOOD, list(GOOD)) == 0.0

    def test_knee_drift_positive_for_shifted_knee(self):
        skewed = [fp(32, (1.0, 3.0)), fp(64, (2.9, 1.1)), fp(96, (3.0, 1.0))]
        assert knee_drift(GOOD, skewed) > 0.0


class TestCompareFronts:
    def test_twin_fronts(self):
        comparison = compare_fronts(GOOD, list(GOOD), "a", "b")
        assert comparison.hypervolume_delta == 0.0
        assert comparison.epsilon_ab == comparison.epsilon_ba == 0.0
        assert comparison.shared == 3
        assert comparison.added == comparison.removed == 0

    def test_degraded_front(self):
        comparison = compare_fronts(GOOD, WORSE, "good", "worse")
        assert comparison.hypervolume_delta < 0
        # Raw shift 0.5 over the union's span of 2.5 per objective:
        # comparison epsilons are union-normalised (scale-free).
        assert comparison.epsilon_ba == pytest.approx(0.2)
        assert comparison.coverage_ab == 1.0
        assert comparison.coverage_ba == 0.0
        assert comparison.shared == 0
        assert comparison.added == comparison.removed == 3

    def test_dict_round_trip(self):
        comparison = compare_fronts(GOOD, WORSE)
        from repro.store import FrontComparison

        assert FrontComparison.from_dict(comparison.to_dict()) == comparison

    def test_describe_mentions_the_metrics(self):
        text = compare_fronts(GOOD, WORSE).describe()
        assert "hypervolume" in text
        assert "epsilon-indicator" in text
        assert "knee drift" in text


@pytest.fixture
def store(tmp_path):
    with RunStore(tmp_path / "runs.sqlite") as s:
        yield s


def record(store, front, name=None):
    return store.record_response(
        CampaignResponse(frontier=tuple(front)), specs=["4096:INT8"], name=name
    )


class TestCompareRuns:
    def test_resolves_baselines_and_names(self, store):
        good = record(store, GOOD, name="good")
        record(store, WORSE, name="worse")
        store.set_baseline("main", good.run_id)
        comparison = compare_runs(store, "main", "worse")
        assert comparison.run_a == good.run_id
        assert comparison.hypervolume_delta < 0

    def test_rejects_empty_front(self, store):
        good = record(store, GOOD)
        empty = store.record_failure("failed", "boom")
        with pytest.raises(ValueError):
            compare_runs(store, good.run_id, empty.run_id)

    def test_unknown_run_raises(self, store):
        good = record(store, GOOD)
        with pytest.raises(KeyError):
            compare_runs(store, good.run_id, "run-nope")


class TestGate:
    def test_twin_run_passes(self, store):
        good = record(store, GOOD)
        twin = record(store, list(GOOD))
        store.set_baseline("main", good.run_id)
        report = check_regression(store, twin.run_id, "main")
        assert report.passed
        assert report.failures == ()
        assert report.baseline.run_id == good.run_id

    def test_degraded_run_fails_on_hv_and_epsilon(self, store):
        good = record(store, GOOD)
        bad = record(store, WORSE)
        store.set_baseline("main", good.run_id)
        report = check_regression(store, bad.run_id, "main")
        assert not report.passed
        text = " ".join(report.failures)
        assert "hypervolume" in text
        assert "epsilon" in text

    def test_shrunken_front_fails_ratio(self, store):
        good = record(store, GOOD)
        small = record(store, GOOD[:1])
        store.set_baseline("main", good.run_id)
        config = GateConfig(
            max_hypervolume_drop=1.0, max_epsilon=1e9, min_front_ratio=0.5
        )
        report = check_regression(store, small.run_id, "main", config)
        assert not report.passed
        assert any("shrank" in f for f in report.failures)

    def test_loose_tolerances_pass(self, store):
        good = record(store, GOOD)
        bad = record(store, WORSE)
        store.set_baseline("main", good.run_id)
        config = GateConfig(
            max_hypervolume_drop=1.0, max_epsilon=10.0, min_front_ratio=0.0
        )
        assert check_regression(store, bad.run_id, "main", config).passed

    def test_report_dict_is_json_able(self, store):
        import json

        good = record(store, GOOD)
        bad = record(store, WORSE)
        store.set_baseline("main", good.run_id)
        report = check_regression(store, bad.run_id, "main")
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["passed"] is False
        assert payload["comparison"]["hypervolume_delta"] < 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GateConfig(max_hypervolume_drop=-0.1)
        with pytest.raises(ValueError):
            GateConfig(min_front_ratio=1.5)
