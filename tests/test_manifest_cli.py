"""Tests for repro.core.manifest and the CLI."""

import json

import pytest

from repro import DcimSpec, DesignPoint, SegaDcim
from repro.cli import main
from repro.core.manifest import (
    design_from_dict,
    design_to_dict,
    load_manifest,
    spec_from_dict,
    spec_to_dict,
    write_artifacts,
)
from repro.tech import GENERIC28


@pytest.fixture(scope="module")
def result():
    return SegaDcim().compile(
        DcimSpec(wstore=4 * 1024, precision="INT8"), exhaustive=True
    )


class TestDesignSpecDicts:
    def test_design_roundtrip(self):
        d = DesignPoint(precision="BF16", n=32, h=128, l=16, k=8)
        assert design_from_dict(design_to_dict(d)) == d

    def test_spec_roundtrip(self):
        s = DcimSpec(wstore=8192, precision="INT8", max_n=4096)
        assert spec_from_dict(spec_to_dict(s)) == s

    def test_invalid_design_rejected_on_load(self):
        data = design_to_dict(DesignPoint(precision="INT8", n=32, h=128, l=16, k=8))
        data["k"] = 5  # does not divide Bx
        with pytest.raises(ValueError):
            design_from_dict(data)


class TestWriteArtifacts:
    def test_tree_layout(self, result, tmp_path):
        manifest_path = write_artifacts(result, tmp_path, GENERIC28)
        assert manifest_path.name == "manifest.json"
        assert (tmp_path / "layout.def").exists()
        assert (tmp_path / "cells.lib").exists()
        assert (tmp_path / "reports" / "macro.rpt").exists()
        rtl = list((tmp_path / "rtl").glob("*.v"))
        assert len(rtl) >= 8
        assert any(p.name.startswith("tb_") for p in rtl)

    def test_manifest_contents(self, result, tmp_path):
        path = write_artifacts(result, tmp_path, GENERIC28)
        data = json.loads(path.read_text())
        assert data["tool"] == "sega-dcim-repro"
        assert data["spec"]["wstore"] == 4 * 1024
        assert data["technology"] == "generic28"
        # Every listed file exists.
        for rel in data["files"]:
            assert (tmp_path / rel).exists(), rel

    def test_load_manifest_rehydrates(self, result, tmp_path):
        path = write_artifacts(result, tmp_path, GENERIC28)
        data = load_manifest(path)
        assert isinstance(data["design"], DesignPoint)
        assert data["design"] == result.selected
        assert data["spec"] == result.spec
        assert all(isinstance(p, DesignPoint) for p in data["frontier"])

    def test_load_rejects_bad_version(self, result, tmp_path):
        path = write_artifacts(result, tmp_path, GENERIC28)
        data = json.loads(path.read_text())
        data["version"] = 999
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="version"):
            load_manifest(path)


class TestCli:
    def test_precisions(self, capsys):
        assert main(["precisions"]) == 0
        out = capsys.readouterr().out
        assert "BF16" in out and "INT16" in out

    def test_pdks(self, capsys):
        assert main(["pdks"]) == 0
        out = capsys.readouterr().out
        assert "generic28" in out
        assert "corners:" in out

    def test_explore(self, capsys):
        assert main([
            "explore", "--wstore", "4096", "--precision", "INT8",
            "--limit", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        assert "TOPS/W" in out

    def test_compile_with_artifacts(self, capsys, tmp_path):
        assert main([
            "compile", "--wstore", "4096", "--precision", "INT8",
            "--out", str(tmp_path / "macro"),
        ]) == 0
        out = capsys.readouterr().out
        assert "artifacts written" in out
        assert (tmp_path / "macro" / "manifest.json").exists()

    def test_compile_infeasible_budget(self, capsys):
        assert main([
            "compile", "--wstore", "4096", "--precision", "INT8",
            "--max-area", "0.0000001",
        ]) == 1
        assert "error" in capsys.readouterr().err

    def test_report(self, capsys):
        assert main([
            "report", "--precision", "INT8",
            "--n", "64", "--h", "128", "--l", "16", "--k", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "Area report" in out

    def test_report_invalid_design(self, capsys):
        assert main([
            "report", "--precision", "INT8",
            "--n", "63", "--h", "128", "--l", "16", "--k", "8",
        ]) == 1

    def test_report_at_corner(self, capsys):
        assert main([
            "report", "--precision", "INT8", "--corner", "ss",
            "--n", "64", "--h", "128", "--l", "16", "--k", "8",
        ]) == 0


class TestTestbench:
    def test_testbench_structure(self, result, tmp_path):
        from repro.rtl.testbench import generate_int_testbench

        tb = generate_int_testbench(result.rtl, vectors=2, seed=1)
        assert f"module tb_{result.rtl.top};" in tb
        assert tb.count("check(") >= 3  # task definition + 2 calls
        assert "TESTBENCH PASS" in tb
        assert "$finish" in tb

    def test_testbench_rejects_fp(self):
        from repro.rtl.generator import generate_rtl
        from repro.rtl.testbench import generate_int_testbench

        bundle = generate_rtl(DesignPoint(precision="BF16", n=16, h=8, l=4, k=8))
        with pytest.raises(ValueError):
            generate_int_testbench(bundle)

    def test_testbench_deterministic(self, result):
        from repro.rtl.testbench import generate_int_testbench

        a = generate_int_testbench(result.rtl, vectors=2, seed=7)
        b = generate_int_testbench(result.rtl, vectors=2, seed=7)
        assert a == b
