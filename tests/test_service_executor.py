"""Tests for the batch evaluation backends and the cached evaluator."""

import pytest

from repro.core.spec import DcimSpec
from repro.dse.nsga2 import NSGA2Config, nsga2
from repro.dse.problem import DcimProblem
from repro.service.cache import EvaluationCache
from repro.service.executor import (
    ProblemEvaluator,
    ProcessPoolExecutor,
    SerialExecutor,
    ThreadPoolExecutor,
    chunked,
    make_executor,
)

SPEC = DcimSpec(wstore=4096, precision="INT8")
SMALL_GA = NSGA2Config(population_size=16, generations=6, seed=5)


@pytest.fixture(scope="module")
def problem():
    return DcimProblem(SPEC)


@pytest.fixture(scope="module")
def genomes(problem):
    return problem.codec.enumerate()


class TestChunking:
    def test_chunked_partitions(self):
        assert chunked([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]

    def test_chunked_rejects_zero(self):
        with pytest.raises(ValueError):
            chunked([1], 0)

    def test_make_executor_names(self):
        for name in ("serial", "thread", "process"):
            executor = make_executor(name)
            assert executor.name == name
            executor.close()

    def test_make_executor_unknown(self):
        with pytest.raises(ValueError):
            make_executor("gpu")


class TestBackendsAgree:
    def test_thread_matches_serial(self, problem, genomes):
        serial = SerialExecutor().evaluate_batch(problem, genomes)
        with ThreadPoolExecutor(workers=3, chunk_size=4) as pool:
            threaded = pool.evaluate_batch(problem, genomes)
        assert threaded == serial

    def test_process_matches_serial(self, problem, genomes):
        serial = SerialExecutor().evaluate_batch(problem, genomes)
        with ProcessPoolExecutor(workers=2, chunk_size=16) as pool:
            parallel = pool.evaluate_batch(problem, genomes)
        assert parallel == serial

    def test_empty_batch(self, problem):
        with ThreadPoolExecutor(workers=2) as pool:
            assert pool.evaluate_batch(problem, []) == []


class _CountingExecutor:
    """Serial executor that records how many genomes it evaluated."""

    name = "counting"

    def __init__(self):
        self.calls = 0
        self.genomes = 0

    def evaluate_batch(self, problem, genomes):
        self.calls += 1
        self.genomes += len(genomes)
        return [problem.evaluate(g) for g in genomes]

    def close(self):
        pass


class TestProblemEvaluator:
    def test_batch_dedup(self, problem, genomes):
        counting = _CountingExecutor()
        evaluator = ProblemEvaluator(problem, executor=counting)
        batch = [genomes[0], genomes[1], genomes[0], genomes[1], genomes[0]]
        results = evaluator.evaluate_batch(batch)
        assert counting.genomes == 2  # two unique genomes
        assert results[0] == results[2] == results[4]
        assert len(results) == len(batch)

    def test_cache_short_circuits_executor(self, problem, genomes):
        cache = EvaluationCache()
        counting = _CountingExecutor()
        evaluator = ProblemEvaluator(problem, cache=cache, executor=counting)
        first = evaluator.evaluate_batch(genomes[:8])
        again = evaluator.evaluate_batch(genomes[:8])
        assert again == first
        assert counting.genomes == 8  # second batch fully cache-served
        assert cache.stats.hits == 8

    def test_cache_disabled_without_fingerprint(self):
        class Opaque:
            def evaluate(self, genome):
                return (float(sum(genome)),)

        evaluator = ProblemEvaluator(Opaque(), cache=EvaluationCache())
        assert evaluator.cache is None  # no spec/library to key on
        assert evaluator.evaluate_batch([(1, 2)]) == [(3.0,)]

    def test_results_in_input_order(self, problem, genomes):
        evaluator = ProblemEvaluator(problem)
        expected = [problem.evaluate(g) for g in genomes[:10]]
        assert evaluator.evaluate_batch(genomes[:10]) == expected


class _SpyCache(EvaluationCache):
    """Counts batched cache calls without changing behavior."""

    def __init__(self):
        super().__init__()
        self.get_many_calls = 0
        self.put_many_calls = 0

    def get_many(self, keys):
        self.get_many_calls += 1
        return super().get_many(keys)

    def put_many(self, entries):
        self.put_many_calls += 1
        return super().put_many(entries)


class TestBatchedCacheTraffic:
    def test_one_get_many_and_one_put_many_per_batch(self, problem, genomes):
        cache = _SpyCache()
        evaluator = ProblemEvaluator(problem, cache=cache)
        evaluator.evaluate_batch(genomes[:12])
        assert cache.get_many_calls == 1
        assert cache.put_many_calls == 1

    def test_fully_warm_batch_skips_put_many(self, problem, genomes):
        cache = _SpyCache()
        evaluator = ProblemEvaluator(problem, cache=cache)
        evaluator.evaluate_batch(genomes[:12])
        evaluator.evaluate_batch(genomes[:12])
        assert cache.get_many_calls == 2
        assert cache.put_many_calls == 1  # nothing new to store


class TestNsga2AcrossBackends:
    """The acceptance bar: any backend reproduces the serial front."""

    @pytest.fixture(scope="class")
    def baseline(self):
        return nsga2(DcimProblem(SPEC), SMALL_GA)

    def _front(self, result):
        return [ind.genome for ind in result.front]

    def test_injected_serial_evaluator_identical(self, baseline):
        problem = DcimProblem(SPEC)
        evaluator = ProblemEvaluator(problem, cache=EvaluationCache())
        result = nsga2(problem, SMALL_GA, evaluator=evaluator)
        assert self._front(result) == self._front(baseline)
        assert result.evaluations == baseline.evaluations

    def test_thread_backend_identical(self, baseline):
        problem = DcimProblem(SPEC)
        with ThreadPoolExecutor(workers=3, chunk_size=4) as pool:
            evaluator = ProblemEvaluator(problem, executor=pool)
            result = nsga2(problem, SMALL_GA, evaluator=evaluator)
        assert self._front(result) == self._front(baseline)

    def test_process_backend_identical(self, baseline):
        problem = DcimProblem(SPEC)
        with ProcessPoolExecutor(workers=2) as pool:
            evaluator = ProblemEvaluator(problem, executor=pool)
            result = nsga2(problem, SMALL_GA, evaluator=evaluator)
        assert self._front(result) == self._front(baseline)

    def test_warm_cache_identical_and_fully_served(self, baseline):
        cache = EvaluationCache()
        problem = DcimProblem(SPEC)
        nsga2(problem, SMALL_GA, evaluator=ProblemEvaluator(problem, cache=cache))
        counting = _CountingExecutor()
        warm = nsga2(
            problem,
            SMALL_GA,
            evaluator=ProblemEvaluator(problem, cache=cache, executor=counting),
        )
        assert self._front(warm) == self._front(baseline)
        assert counting.genomes == 0  # every genome came from the cache


class _CrashOnceProblem:
    """Kills its worker process on the first evaluation, then behaves.

    The marker file is the cross-process "already crashed" flag — the
    rebuilt pool's fresh workers see it and evaluate normally.
    """

    def __init__(self, marker: str) -> None:
        self.marker = marker

    def evaluate(self, genome):
        import os

        if not os.path.exists(self.marker):
            open(self.marker, "w").close()
            os._exit(1)
        return (float(genome), 0.0)


class _AlwaysCrashProblem:
    def evaluate(self, genome):
        import os

        os._exit(1)


class TestPoolCrashRecovery:
    def test_worker_death_mid_chunk_is_retried_not_hung(self, tmp_path):
        marker = str(tmp_path / "crashed-once")
        with ProcessPoolExecutor(workers=2, chunk_size=2) as pool:
            before = pool._metrics.resolve(pool.name).pool_rebuilds.value
            out = pool.evaluate_batch(_CrashOnceProblem(marker), list(range(8)))
            rebuilds = pool._metrics.resolve(pool.name).pool_rebuilds.value
        assert out == [(float(g), 0.0) for g in range(8)]
        assert rebuilds == before + 1

    def test_persistent_worker_death_fails_structurally(self):
        with ProcessPoolExecutor(workers=2, chunk_size=2) as pool:
            with pytest.raises(RuntimeError) as excinfo:
                pool.evaluate_batch(_AlwaysCrashProblem(), list(range(8)))
        message = str(excinfo.value)
        assert "pool died" in message
        assert "again after rebuilding" in message
        assert "8 genomes" in message
