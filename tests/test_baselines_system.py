"""Tests for repro.dse.baselines and repro.workloads.system."""

import pytest

from repro.core.pareto import dominates
from repro.core.spec import DcimSpec, DesignPoint
from repro.dse import DesignSpaceExplorer, random_search, weighted_sum_search
from repro.dse.problem import objectives_of
from repro.tech import GENERIC28
from repro.workloads import (
    macros_for_residency,
    map_system,
    map_system_sweep,
    transformer_block,
)
from repro.workloads.layers import linear

SPEC = DcimSpec(wstore=16 * 1024, precision="INT8")


class TestRandomSearch:
    def test_front_is_nondominated(self):
        points = random_search(SPEC, budget=80, seed=1)
        objs = [objectives_of(p.macro_cost()) for p in points]
        for i, u in enumerate(objs):
            for j, v in enumerate(objs):
                if i != j:
                    assert not dominates(u, v)

    def test_points_meet_spec(self):
        for p in random_search(SPEC, budget=40, seed=2):
            assert p.wstore == SPEC.wstore

    def test_deterministic(self):
        a = random_search(SPEC, budget=50, seed=3)
        b = random_search(SPEC, budget=50, seed=3)
        assert [(p.n, p.h, p.l, p.k) for p in a] == [
            (p.n, p.h, p.l, p.k) for p in b
        ]


class TestWeightedSumBaseline:
    def test_recovers_fewer_points_than_moga(self):
        # The paper's argument: scalarisation collapses the frontier.
        ws = weighted_sum_search(
            SPEC, n_weight_vectors=8, samples_per_vector=150, seed=0
        )
        exact = DesignSpaceExplorer().explore_exhaustive(SPEC)
        assert len(ws) <= 8
        assert len(ws) < len(exact.points) / 3

    def test_winners_are_truly_pareto(self):
        ws = weighted_sum_search(SPEC, seed=1)
        exact = DesignSpaceExplorer().explore_exhaustive(SPEC)
        truth = {(p.n, p.h, p.l, p.k) for p in exact.points}
        # Weighted-sum minimisers over the full pool are Pareto-optimal
        # within the sampled pool; most should be globally optimal too.
        hits = sum((p.n, p.h, p.l, p.k) in truth for p in ws)
        assert hits >= len(ws) * 0.5


DESIGN = DesignPoint(precision="INT8", n=64, h=128, l=4, k=8)
LAYERS = transformer_block(d_model=256, seq_len=64)


class TestMapSystem:
    def test_sequential_speedup(self):
        one = map_system(LAYERS, DESIGN, GENERIC28, n_macros=1)
        four = map_system(LAYERS, DESIGN, GENERIC28, n_macros=4)
        assert four.latency_us < one.latency_us
        assert four.area_mm2 == pytest.approx(4 * one.area_mm2)
        # Energy is schedule- and count-independent (same work).
        assert four.energy_uj == pytest.approx(one.energy_uj)

    def test_pipelined_throughput_beats_latency_rate(self):
        pipe = map_system(LAYERS, DESIGN, GENERIC28, n_macros=3, schedule="pipelined")
        assert pipe.throughput_inferences_s > 1.0 / (pipe.latency_us * 1e-6)

    def test_pipelined_latency_is_sum_of_stages(self):
        seq1 = map_system(LAYERS, DESIGN, GENERIC28, n_macros=1)
        pipe = map_system(LAYERS, DESIGN, GENERIC28, n_macros=3, schedule="pipelined")
        assert pipe.latency_us == pytest.approx(seq1.latency_us)

    def test_speedup_saturates_at_passes(self):
        # A single-pass layer cannot be split across macros.
        layer = [linear("small", DESIGN.h, 8)]
        one = map_system(layer, DESIGN, GENERIC28, n_macros=1)
        many = map_system(layer, DESIGN, GENERIC28, n_macros=16)
        assert many.latency_us == pytest.approx(one.latency_us)

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="schedule"):
            map_system(LAYERS, DESIGN, GENERIC28, schedule="warp")

    def test_empty_layers_rejected(self):
        with pytest.raises(ValueError):
            map_system([], DESIGN, GENERIC28)

    def test_macro_count_validated(self):
        with pytest.raises(ValueError):
            map_system(LAYERS, DESIGN, GENERIC28, n_macros=0)


class TestMapSystemSweep:
    def test_sweep_identical_to_per_design_mapping(self):
        # The sweep routes macro costs through one shared batch engine;
        # results must match calling map_system design by design.
        designs = [
            DESIGN,
            DesignPoint(precision="INT8", n=32, h=256, l=8, k=4),
            DesignPoint(precision="BF16", n=64, h=64, l=16, k=8),
        ]
        swept = map_system_sweep(LAYERS, designs, GENERIC28, n_macros=2)
        solo = [map_system(LAYERS, d, GENERIC28, n_macros=2) for d in designs]
        assert swept == solo

    def test_empty_sweep(self):
        assert map_system_sweep(LAYERS, [], GENERIC28) == []


class TestResidency:
    def test_residency_count(self):
        n = macros_for_residency(LAYERS, DESIGN)
        assert n >= 1
        # Enough slots: total tiles <= n * L.
        groups = DESIGN.n // 8
        import math

        tiles = sum(
            math.ceil(l.rows / DESIGN.h) * math.ceil(l.cols / groups)
            for l in LAYERS
        )
        assert n * DESIGN.l >= tiles

    def test_single_small_layer(self):
        assert macros_for_residency([linear("t", 8, 8)], DESIGN) == 1
