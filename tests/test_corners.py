"""Tests for repro.tech.corners."""

import pytest

from repro.core.spec import DesignPoint
from repro.tech import GENERIC28, STANDARD_CORNERS, Corner, apply_corner


class TestCorner:
    def test_standard_set(self):
        assert {"tt", "ss", "ff", "tt_lv"} <= set(STANDARD_CORNERS)

    def test_positive_factors_required(self):
        with pytest.raises(ValueError):
            Corner("bad", delay_factor=0.0)

    def test_tt_is_identity(self):
        tt = apply_corner(GENERIC28, "tt")
        assert tt.gate_delay_ps == GENERIC28.gate_delay_ps
        assert tt.gate_energy_fj == GENERIC28.gate_energy_fj

    def test_ss_slower(self):
        ss = apply_corner(GENERIC28, "ss")
        assert ss.gate_delay_ps > GENERIC28.gate_delay_ps

    def test_ff_faster(self):
        ff = apply_corner(GENERIC28, "ff")
        assert ff.gate_delay_ps < GENERIC28.gate_delay_ps

    def test_low_voltage_corner(self):
        lv = apply_corner(GENERIC28, "tt_lv")
        assert lv.voltage_v == 0.72

    def test_unknown_corner(self):
        with pytest.raises(KeyError):
            apply_corner(GENERIC28, "zz")

    def test_custom_corner(self):
        custom = Corner("hot", delay_factor=1.5, energy_factor=1.2)
        hot = apply_corner(GENERIC28, custom)
        assert hot.name.endswith("@hot")

    def test_corner_name_recorded(self):
        assert apply_corner(GENERIC28, "ss").name == "generic28@ss"


class TestCornerImpactOnMetrics:
    def test_timing_derates_propagate(self):
        design = DesignPoint(precision="INT8", n=64, h=128, l=16, k=8)
        tt = design.metrics(apply_corner(GENERIC28, "tt"))
        ss = design.metrics(apply_corner(GENERIC28, "ss"))
        assert ss.delay_ns > tt.delay_ns
        assert ss.tops < tt.tops
        # Energy per op barely changes at ss -> TOPS/W roughly constant.
        assert ss.tops_per_watt == pytest.approx(
            tt.tops_per_watt / 0.95, rel=0.01
        )

    def test_low_voltage_improves_efficiency(self):
        design = DesignPoint(precision="INT8", n=64, h=128, l=16, k=8)
        tt = design.metrics(GENERIC28)
        lv = design.metrics(apply_corner(GENERIC28, "tt_lv"))
        assert lv.tops_per_watt > tt.tops_per_watt  # V^2 energy scaling
        assert lv.delay_ns > tt.delay_ns  # slower at low voltage
