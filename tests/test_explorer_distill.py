"""Tests for repro.dse.explorer and repro.dse.distill."""

import pytest

from repro.core.pareto import dominates
from repro.core.spec import DcimSpec
from repro.dse import (
    DesignSpaceExplorer,
    NSGA2Config,
    Requirements,
    distill,
    select,
)
from repro.tech import GENERIC28


@pytest.fixture(scope="module")
def explorer():
    return DesignSpaceExplorer(config=NSGA2Config(population_size=32, generations=25, seed=5))


@pytest.fixture(scope="module")
def int_result(explorer):
    return explorer.explore(DcimSpec(wstore=16 * 1024, precision="INT8"))


@pytest.fixture(scope="module")
def fp_result(explorer):
    return explorer.explore(DcimSpec(wstore=16 * 1024, precision="BF16"))


class TestExplorer:
    def test_front_sorted_by_area(self, int_result):
        areas = [o[0] for o in int_result.objectives]
        assert areas == sorted(areas)

    def test_points_meet_spec(self, int_result):
        for p in int_result.points:
            assert p.wstore == 16 * 1024
            assert p.l <= 64 and p.h <= 2048

    def test_hypervolume_positive(self, int_result):
        assert int_result.front_hypervolume() > 0

    def test_exhaustive_matches_ga_closely(self, explorer):
        spec = DcimSpec(wstore=16 * 1024, precision="INT8")
        exact = explorer.explore_exhaustive(spec)
        ga = explorer.explore(spec, seed=9)
        exact_set = {(p.n, p.h, p.l, p.k) for p in exact.points}
        ga_set = {(p.n, p.h, p.l, p.k) for p in ga.points}
        # The GA's archive front is the true front of the *visited*
        # subspace: high recall and high precision, not exact equality.
        recall = len(ga_set & exact_set) / len(exact_set)
        precision = len(ga_set & exact_set) / len(ga_set)
        assert recall > 0.8
        assert precision > 0.9

    def test_merge_fronts_cross_architecture(self, explorer, int_result, fp_result):
        merged = explorer.merge_fronts([int_result, fp_result])
        assert merged
        archs = {p.arch for p in merged}
        # Both architectures survive the merge: FP trades area for
        # capability, INT stays smaller, so neither dominates the other
        # everywhere.
        assert archs == {"int-mul", "fp-prealign"}

    def test_merged_mutually_nondominated(self, explorer, int_result, fp_result):
        merged = explorer.merge_fronts([int_result, fp_result])
        from repro.dse.problem import objectives_of

        objs = [objectives_of(p.macro_cost()) for p in merged]
        for i, u in enumerate(objs):
            for j, v in enumerate(objs):
                if i != j:
                    assert not dominates(u, v)

    def test_explore_many(self, explorer):
        specs = [
            DcimSpec(wstore=4 * 1024, precision="INT4"),
            DcimSpec(wstore=4 * 1024, precision="INT8"),
        ]
        results = explorer.explore_many(specs, seed=1)
        assert len(results) == 2
        assert results[0].spec.precision.name == "INT4"


class TestDistill:
    def test_unconstrained_keeps_everything(self, int_result):
        pairs = distill(int_result.points, GENERIC28)
        assert len(pairs) == len(int_result.points)

    def test_area_budget_filters(self, int_result):
        all_pairs = distill(int_result.points, GENERIC28)
        cutoff = sorted(m.layout_area_mm2 for _, m in all_pairs)[len(all_pairs) // 2]
        pairs = distill(
            int_result.points, GENERIC28, Requirements(max_area_mm2=cutoff)
        )
        assert 0 < len(pairs) < len(all_pairs)
        assert all(m.layout_area_mm2 <= cutoff for _, m in pairs)

    def test_min_tops_filters(self, int_result):
        all_pairs = distill(int_result.points, GENERIC28)
        median_tops = sorted(m.tops for _, m in all_pairs)[len(all_pairs) // 2]
        pairs = distill(
            int_result.points, GENERIC28, Requirements(min_tops=median_tops)
        )
        assert all(m.tops >= median_tops for _, m in pairs)

    def test_impossible_requirements_empty(self, int_result):
        pairs = distill(
            int_result.points, GENERIC28, Requirements(max_area_mm2=1e-9)
        )
        assert pairs == []


class TestSelect:
    def test_each_strategy_returns_member(self, int_result):
        pairs = distill(int_result.points, GENERIC28)
        from repro.dse.distill import SELECTION_STRATEGIES

        for strategy in SELECTION_STRATEGIES:
            point, metrics = select(pairs, strategy)
            assert (point, metrics) in pairs

    def test_min_area_is_minimal(self, int_result):
        pairs = distill(int_result.points, GENERIC28)
        _, m = select(pairs, "min_area")
        assert m.layout_area_mm2 == min(x.layout_area_mm2 for _, x in pairs)

    def test_max_tops_is_maximal(self, int_result):
        pairs = distill(int_result.points, GENERIC28)
        _, m = select(pairs, "max_tops")
        assert m.tops == max(x.tops for _, x in pairs)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no designs"):
            select([])

    def test_unknown_strategy_rejected(self, int_result):
        pairs = distill(int_result.points, GENERIC28)
        with pytest.raises(ValueError, match="unknown strategy"):
            select(pairs, "coolest")
