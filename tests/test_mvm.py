"""Tests for repro.func.mvm: the DCIM dataflow equals plain MVM."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.func.mvm import (
    bit_serial_mvm,
    golden_mvm,
    input_slices,
    signed_matvec,
    weight_bitplanes,
)


def weight_matrices(h=8, m=4, bw=8):
    return arrays(np.int64, (h, m), elements=st.integers(0, 2**bw - 1))


def input_vectors(h=8, bx=8):
    return arrays(np.int64, (h,), elements=st.integers(0, 2**bx - 1))


class TestGoldenMvm:
    def test_known_value(self):
        w = np.array([[1, 2], [3, 4]])
        x = np.array([10, 100])
        assert golden_mvm(w, x).tolist() == [310, 420]

    def test_rejects_signed(self):
        with pytest.raises(ValueError, match="unsigned"):
            golden_mvm(np.array([[-1]]), np.array([1]))

    def test_rejects_overflow(self):
        with pytest.raises(ValueError, match="exceed"):
            golden_mvm(np.array([[256]]), np.array([1]), bw=8)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            golden_mvm(np.ones((2, 2), dtype=int), np.ones(3, dtype=int))


class TestBitplanesAndSlices:
    def test_bitplanes_reassemble(self):
        w = np.array([[5, 170], [255, 0]])
        planes = weight_bitplanes(w, 8)
        back = sum(p << j for j, p in enumerate(planes))
        assert np.array_equal(back, w)

    def test_slices_msb_first(self):
        x = np.array([0b10110100])
        slices = input_slices(x, 8, 2)
        assert [s[0] for s in slices] == [0b10, 0b11, 0b01, 0b00]

    def test_slices_reassemble(self):
        x = np.array([173, 3, 255])
        slices = input_slices(x, 8, 4)
        back = np.zeros_like(x)
        for s in slices:
            back = (back << 4) + s
        assert np.array_equal(back, x)

    def test_k_must_divide(self):
        with pytest.raises(ValueError):
            input_slices(np.array([1]), 8, 3)


class TestBitSerialEqualsGolden:
    @pytest.mark.parametrize("k", [1, 2, 4, 8])
    def test_all_k(self, k):
        rng = np.random.default_rng(7)
        w = rng.integers(0, 256, size=(16, 4))
        x = rng.integers(0, 256, size=16)
        assert np.array_equal(
            bit_serial_mvm(w, x, bw=8, bx=8, k=k), golden_mvm(w, x)
        )

    @given(weight_matrices(), input_vectors(), st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=60, deadline=None)
    def test_property(self, w, x, k):
        assert np.array_equal(
            bit_serial_mvm(w, x, bw=8, bx=8, k=k), golden_mvm(w, x)
        )

    @given(
        arrays(np.int64, (6, 3), elements=st.integers(0, 3)),
        arrays(np.int64, (6,), elements=st.integers(0, 3)),
    )
    @settings(max_examples=40, deadline=None)
    def test_int2(self, w, x):
        assert np.array_equal(
            bit_serial_mvm(w, x, bw=2, bx=2, k=1), golden_mvm(w, x, bw=2, bx=2)
        )


class TestSignedMatvec:
    @given(
        arrays(np.int64, (8, 3), elements=st.integers(-255, 255)),
        arrays(np.int64, (8,), elements=st.integers(-255, 255)),
    )
    @settings(max_examples=50, deadline=None)
    def test_equals_numpy(self, w, x):
        def unsigned(wm, xv):
            return golden_mvm(wm, xv)

        assert np.array_equal(signed_matvec(w, x, unsigned), w.T @ x)
