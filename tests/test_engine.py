"""Batch cost engine: batch/scalar parity and front-end behaviour.

The load-bearing guarantee of :mod:`repro.model.engine` is that every
backend returns objective vectors *bit-identical* to the seed scalar
path (``GenomeCodec.decode`` → ``DesignPoint.macro_cost`` →
``objectives_of``): persisted cache entries and per-seed NSGA-II
trajectories must not move when the engine changes.  Every comparison
here is exact equality on floats, never ``approx``.
"""

import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spec import DcimSpec
from repro.dse.genome import GenomeCodec
from repro.dse.problem import DcimProblem, objectives_of
from repro.model.engine import (
    CostEngine,
    ENGINE_BACKENDS,
    HAS_NUMPY,
    resolve_backend,
)
from repro.tech.cells import CellLibrary

LIB = CellLibrary.default()

#: Backends available in this interpreter (numpy is baked in normally,
#: but the suite must also pass on a numpy-less install).
BACKENDS = ["python"] + (["numpy"] if HAS_NUMPY else [])

PRECISIONS = ["INT2", "INT4", "INT8", "INT16", "FP8", "BF16", "FP16", "FP32"]


def scalar_objectives(problem, genomes):
    """The seed evaluation path, kept verbatim as the parity reference."""
    codec, lib = problem.codec, problem.library
    return [objectives_of(codec.decode(g).macro_cost(lib)) for g in genomes]


def make_spec(wstore, precision):
    """A spec, or None when the codec rejects the combination."""
    spec = DcimSpec(wstore=wstore, precision=precision)
    try:
        GenomeCodec(spec)
    except ValueError:
        return None
    return spec


class TestResolveBackend:
    def test_known_names(self):
        assert set(ENGINE_BACKENDS) == {"auto", "numpy", "python"}
        assert resolve_backend("python") == "python"
        assert resolve_backend("auto") in ("numpy", "python")

    def test_auto_prefers_numpy_when_available(self):
        if HAS_NUMPY:
            assert resolve_backend("auto") == "numpy"
        else:
            assert resolve_backend("auto") == "python"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown engine backend"):
            resolve_backend("cuda")

    @pytest.mark.skipif(HAS_NUMPY, reason="needs a numpy-less interpreter")
    def test_forced_numpy_without_numpy_rejected(self):  # pragma: no cover
        with pytest.raises(ValueError, match="not importable"):
            resolve_backend("numpy")


class TestBatchScalarParity:
    """The acceptance-criterion tests: exact equality with the seed path."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("precision", ["INT4", "INT8", "BF16", "FP16"])
    def test_full_space_bit_identical(self, precision, backend):
        problem = DcimProblem(
            DcimSpec(wstore=4096, precision=precision), LIB, engine_backend=backend
        )
        genomes = problem.codec.enumerate()
        assert problem.evaluate_batch(genomes) == scalar_objectives(problem, genomes)

    @settings(max_examples=40, deadline=None)
    @given(
        wstore_exp=st.integers(min_value=9, max_value=18),
        precision=st.sampled_from(PRECISIONS),
        backend=st.sampled_from(BACKENDS),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_random_specs_bit_identical(self, wstore_exp, precision, backend, seed):
        spec = make_spec(2**wstore_exp, precision)
        if spec is None:  # combination the exponent encoding rejects
            return
        problem = DcimProblem(spec, LIB, engine_backend=backend)
        rng = random.Random(seed)
        genomes = [problem.sample(rng) for _ in range(12)]
        assert problem.evaluate_batch(genomes) == scalar_objectives(problem, genomes)

    @pytest.mark.skipif(not HAS_NUMPY, reason="numpy backend unavailable")
    @pytest.mark.parametrize("precision", ["INT8", "BF16"])
    def test_numpy_and_python_backends_agree(self, precision):
        spec = DcimSpec(wstore=8192, precision=precision)
        genomes = DcimProblem(spec, LIB).codec.enumerate()
        results = {
            backend: DcimProblem(
                spec, LIB, engine_backend=backend
            ).evaluate_batch(genomes)
            for backend in ("numpy", "python")
        }
        assert results["numpy"] == results["python"]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_scalar_evaluate_is_a_batch_of_one(self, backend):
        problem = DcimProblem(
            DcimSpec(wstore=4096, precision="INT8"), LIB, engine_backend=backend
        )
        for genome in problem.codec.enumerate()[:8]:
            assert problem.evaluate(genome) == problem.evaluate_batch([genome])[0]

    def test_duplicate_genomes_keep_input_order(self):
        problem = DcimProblem(DcimSpec(wstore=4096, precision="INT8"), LIB)
        a, b = problem.codec.enumerate()[:2]
        batch = problem.evaluate_batch([a, b, a, b, b])
        assert batch[0] == batch[2] == problem.evaluate(a)
        assert batch[1] == batch[3] == batch[4] == problem.evaluate(b)


class TestBatchCostColumns:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_columns_match_macro_cost(self, backend):
        problem = DcimProblem(
            DcimSpec(wstore=4096, precision="BF16"), LIB, engine_backend=backend
        )
        genomes = problem.codec.enumerate()[:16]
        points = problem.codec.decode_batch(genomes)
        batch = problem.engine.evaluate_points(points)
        assert batch.backend == backend
        assert batch.arch == "fp-prealign"
        assert len(batch) == len(points)
        costs = [p.macro_cost(LIB) for p in points]
        assert batch.area == tuple(c.area for c in costs)
        assert batch.delay == tuple(c.delay for c in costs)
        assert batch.energy_per_pass == tuple(c.energy_per_pass for c in costs)
        assert batch.cycles_per_pass == tuple(c.cycles_per_pass for c in costs)
        assert batch.ops_per_pass == tuple(c.ops_per_pass for c in costs)
        assert batch.sram_bits == tuple(c.sram_bits for c in costs)
        assert batch.throughput() == tuple(c.throughput for c in costs)

    def test_column_types_are_plain_python(self):
        problem = DcimProblem(DcimSpec(wstore=4096, precision="INT8"), LIB)
        genomes = problem.codec.enumerate()[:4]
        points = problem.codec.decode_batch(genomes)
        batch = problem.engine.evaluate_points(points)
        assert all(type(a) is float for a in batch.area)
        assert all(type(c) is int for c in batch.cycles_per_pass)
        for row in batch.objectives():
            assert all(type(v) is float for v in row)

    def test_mixed_precision_batch_groups_and_scatters(self):
        int_points = DcimProblem(
            DcimSpec(wstore=4096, precision="INT8"), LIB
        ).exhaustive_front()[:3]
        fp_points = DcimProblem(
            DcimSpec(wstore=4096, precision="BF16"), LIB
        ).exhaustive_front()[:3]
        mixed = [int_points[0], fp_points[0], int_points[1], fp_points[1],
                 fp_points[2], int_points[2]]
        engine = CostEngine(LIB)
        batch = engine.evaluate_points(mixed)
        assert batch.arch == "mixed"
        expected = [objectives_of(p.macro_cost(LIB)) for p in mixed]
        assert batch.objectives() == expected

    def test_empty_batches(self):
        problem = DcimProblem(DcimSpec(wstore=4096, precision="INT8"), LIB)
        assert problem.evaluate_batch([]) == []
        assert len(problem.engine.evaluate_points([])) == 0
        assert problem.engine.evaluate_points([]).objectives() == []


class TestMacroCostWrapper:
    @pytest.mark.parametrize("precision", ["INT8", "BF16"])
    def test_macro_costs_identical_to_design_point(self, precision):
        problem = DcimProblem(DcimSpec(wstore=4096, precision=precision), LIB)
        points = problem.codec.decode_batch(problem.codec.enumerate()[:12])
        assert problem.engine.macro_costs(points) == [
            p.macro_cost(LIB) for p in points
        ]

    def test_component_memo_is_shared_across_calls(self):
        problem = DcimProblem(DcimSpec(wstore=4096, precision="INT8"), LIB)
        points = problem.codec.decode_batch(problem.codec.enumerate())
        problem.engine.macro_costs(points)
        memo_size = len(problem.engine._memo)
        problem.engine.macro_costs(points)  # second pass: no new entries
        assert len(problem.engine._memo) == memo_size
        assert memo_size < 6 * len(points)  # far fewer uniques than genomes


class TestDecodeBatch:
    def test_decode_batch_matches_scalar_decode(self):
        codec = GenomeCodec(DcimSpec(wstore=8192, precision="INT8"))
        genomes = codec.enumerate()
        assert codec.decode_batch(genomes) == [codec.decode(g) for g in genomes]

    def test_decode_params_match_decoded_points(self):
        codec = GenomeCodec(DcimSpec(wstore=8192, precision="FP16"))
        genomes = codec.enumerate()
        n, h, l, k = codec.decode_params(genomes)
        points = codec.decode_batch(genomes)
        assert n == [p.n for p in points]
        assert h == [p.h for p in points]
        assert l == [p.l for p in points]
        assert k == [p.k for p in points]

    def test_infeasible_genome_raises_everywhere(self):
        problem = DcimProblem(DcimSpec(wstore=4096, precision="INT8"), LIB)
        bad = (0, 0, 0, 0)  # violates a + b + c == log2(Wstore)
        with pytest.raises(ValueError, match="infeasible"):
            problem.codec.decode_params([bad])
        with pytest.raises(ValueError, match="infeasible"):
            problem.evaluate_batch([bad])
        with pytest.raises(ValueError, match="infeasible"):
            problem.evaluate(bad)


class TestEngineLifecycle:
    def test_engine_survives_pickling(self):
        """Process-pool executors ship the problem (and its engine)."""
        problem = DcimProblem(DcimSpec(wstore=4096, precision="INT8"), LIB)
        genomes = problem.codec.enumerate()[:8]
        before = problem.evaluate_batch(genomes)
        clone = pickle.loads(pickle.dumps(problem))
        assert clone.evaluate_batch(genomes) == before

    def test_problem_defaults_keep_equality_semantics(self):
        spec = DcimSpec(wstore=4096, precision="INT8")
        assert DcimProblem(spec, LIB) == DcimProblem(spec, LIB)

    def test_invalid_backend_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown engine backend"):
            DcimProblem(
                DcimSpec(wstore=4096, precision="INT8"), LIB, engine_backend="gpu"
            )
