"""Tests for the shared JSON-lines structured logger."""

import io
import json
import threading

import pytest

from repro.obs.log import LEVELS, JsonLogger, configure, get_logger


@pytest.fixture(autouse=True)
def restore_global_config():
    yield
    configure(level="warning", stream=None)


def lines_of(stream: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestJsonLogger:
    def test_line_shape(self):
        stream = io.StringIO()
        JsonLogger("repro.test", level="info", stream=stream).info(
            "request", route="/api/campaigns", status=200, duration_ms=12.5
        )
        (record,) = lines_of(stream)
        assert record["level"] == "info"
        assert record["logger"] == "repro.test"
        assert record["event"] == "request"
        assert record["route"] == "/api/campaigns"
        assert record["status"] == 200
        assert isinstance(record["ts"], float)

    def test_level_filtering(self):
        stream = io.StringIO()
        logger = JsonLogger("repro.test", level="warning", stream=stream)
        logger.debug("hidden")
        logger.info("hidden")
        logger.warning("shown")
        logger.error("shown")
        assert [r["level"] for r in lines_of(stream)] == ["warning", "error"]

    def test_follows_global_configure(self):
        stream = io.StringIO()
        logger = JsonLogger("repro.test", stream=stream)
        logger.info("hidden")  # global default is warning
        configure(level="debug")
        logger.debug("shown")
        assert [r["event"] for r in lines_of(stream)] == ["shown"]

    def test_configure_sets_global_stream(self):
        stream = io.StringIO()
        configure(level="info", stream=stream)
        get_logger("repro.test").info("routed")
        assert lines_of(stream)[0]["event"] == "routed"

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError):
            configure(level="loud")
        with pytest.raises(ValueError):
            JsonLogger("x", level="silly")

    def test_non_json_fields_are_stringified(self):
        stream = io.StringIO()
        JsonLogger("x", level="info", stream=stream).info(
            "event", path=threading.Lock()
        )
        (record,) = lines_of(stream)
        assert isinstance(record["path"], str)

    def test_closed_stream_never_raises(self):
        stream = io.StringIO()
        logger = JsonLogger("x", level="info", stream=stream)
        stream.close()
        logger.info("dropped")  # must not raise

    def test_concurrent_writers_never_interleave(self):
        stream = io.StringIO()
        logger = JsonLogger("x", level="info", stream=stream)
        per_thread = 200

        def write(worker_id):
            for i in range(per_thread):
                logger.info("tick", worker=worker_id, i=i)

        threads = [
            threading.Thread(target=write, args=(w,)) for w in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        records = lines_of(stream)  # every line parses: no torn writes
        assert len(records) == 4 * per_thread

    def test_levels_table(self):
        assert list(LEVELS) == ["debug", "info", "warning", "error"]
        assert LEVELS["debug"] < LEVELS["info"] < LEVELS["warning"] < LEVELS["error"]
