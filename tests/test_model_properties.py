"""Property-based tests on the estimation models (Tables II-VI).

These pin down the *structure* of the cost models: monotonicity in each
architecture parameter, exact identities the paper states, and scaling
laws the DSE relies on (if a monotonicity breaks, the Pareto front
would silently change shape).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.components import accumulator_width, adder_tree
from repro.model.integer import int_macro_cost
from repro.model.floating import fp_macro_cost
from repro.tech.cells import CellLibrary

LIB = CellLibrary.default()

pow2 = st.sampled_from([1, 2, 4, 8, 16, 32, 64, 128])
k_choices = st.sampled_from([1, 2, 4, 8])


def int_cost(n=16, h=16, l=4, k=8, bx=8, bw=8):
    return int_macro_cost(LIB, n=n, h=h, l=l, k=k, bx=bx, bw=bw)


class TestIntMacroMonotonicity:
    @given(pow2.filter(lambda v: v >= 8))
    @settings(max_examples=20, deadline=None)
    def test_area_monotone_in_n(self, n):
        assert int_cost(n=2 * n).area > int_cost(n=n).area

    @given(pow2)
    @settings(max_examples=20, deadline=None)
    def test_area_monotone_in_h(self, h):
        assert int_cost(h=2 * h).area > int_cost(h=h).area

    @given(pow2)
    @settings(max_examples=20, deadline=None)
    def test_delay_monotone_in_h(self, h):
        # Taller columns -> deeper adder trees -> slower array stage.
        assert int_cost(h=2 * h).delay > int_cost(h=h).delay

    @given(pow2.filter(lambda v: v <= 32))
    @settings(max_examples=20, deadline=None)
    def test_sram_area_linear_in_l(self, l):
        small = int_cost(l=l).breakdown["sram"].area
        large = int_cost(l=2 * l).breakdown["sram"].area
        assert large == pytest.approx(2 * small)

    @given(st.sampled_from([1, 2, 4]))
    @settings(max_examples=10, deadline=None)
    def test_throughput_monotone_in_k(self, k):
        assert int_cost(k=2 * k).throughput > int_cost(k=k).throughput

    @given(pow2, k_choices)
    @settings(max_examples=30, deadline=None)
    def test_ops_identity(self, h, k):
        # T = 2 * H * (N/Bw) * (k/Bx) per cycle (Table V).
        cost = int_cost(h=h, k=k)
        assert cost.ops_per_cycle == pytest.approx(
            2 * h * (16 / 8) * (k / 8)
        )

    @given(pow2, k_choices)
    @settings(max_examples=30, deadline=None)
    def test_cycles_identity(self, h, k):
        assert int_cost(h=h, k=k).cycles_per_pass == 8 // k

    @given(pow2.filter(lambda v: v >= 2), k_choices)
    @settings(max_examples=30, deadline=None)
    def test_energy_per_pass_positive_and_bounded(self, h, k):
        cost = int_cost(h=h, k=k)
        assert cost.energy_per_pass > 0
        # A pass can never cost more than cycles * total switching of
        # every component at once.
        every_component = sum(c.energy for c in cost.breakdown.values())
        bound = cost.cycles_per_pass * every_component
        assert cost.energy_per_pass <= bound * (1 + 1e-9)


class TestFpIntRelations:
    @given(pow2.filter(lambda v: 4 <= v <= 64))
    @settings(max_examples=15, deadline=None)
    def test_fp_always_bigger_than_int_core(self, h):
        # The FP macro is the INT macro (Bx=Bw=BM) plus front/back ends.
        fp = fp_macro_cost(LIB, n=16, h=h, l=4, k=8, be=8, bm=8)
        int_ = int_macro_cost(LIB, n=16, h=h, l=4, k=8, bx=8, bw=8)
        assert fp.area > int_.area
        assert fp.energy_per_pass > int_.energy_per_pass

    @given(pow2.filter(lambda v: 4 <= v <= 64))
    @settings(max_examples=15, deadline=None)
    def test_fp_overhead_shrinks_with_array_size(self, h):
        def overhead(hh):
            fp = fp_macro_cost(LIB, n=16, h=hh, l=4, k=8, be=8, bm=8)
            i = int_macro_cost(LIB, n=16, h=hh, l=4, k=8, bx=8, bw=8)
            return fp.area / i.area

        # Pre-alignment is per-row but select/multiply/tree grow too;
        # overhead must stay bounded and not explode.
        assert 1.0 < overhead(h) < 1.6

    def test_same_mantissa_same_array_stage(self):
        # BF16 (BM=8) and INT8 share the mantissa datapath width, so the
        # array-stage delay is identical (the paper's parity argument).
        fp = fp_macro_cost(LIB, n=16, h=32, l=4, k=8, be=8, bm=8)
        i = int_macro_cost(LIB, n=16, h=32, l=4, k=8, bx=8, bw=8)
        assert fp.stage_delays["array"] == i.stage_delays["array"]


class TestAdderTreeProperties:
    @given(st.integers(min_value=1, max_value=300), st.integers(min_value=1, max_value=16))
    @settings(max_examples=60, deadline=None)
    def test_tree_cost_nonnegative_and_zero_only_for_h1(self, h, k):
        cost = adder_tree(LIB, h, k)
        if h == 1:
            assert cost.area == 0
        else:
            assert cost.area > 0

    @given(st.integers(min_value=2, max_value=256))
    @settings(max_examples=40, deadline=None)
    def test_tree_area_superlinear_in_h(self, h):
        # Doubling operands at least doubles adders (widths also grow).
        a1 = adder_tree(LIB, h, 8).area
        a2 = adder_tree(LIB, 2 * h, 8).area
        assert a2 >= 2 * a1


class TestAccumulatorWidth:
    @given(st.integers(min_value=1, max_value=32), st.integers(min_value=1, max_value=4096))
    @settings(max_examples=60, deadline=None)
    def test_width_bounds_worst_case_sum(self, bx, h):
        # Ba = Bx + clog2(H) bits must hold H * (2^Bx - 1).
        ba = accumulator_width(bx, h)
        assert h * (2**bx - 1) <= 2**ba - 1 or h == 1
