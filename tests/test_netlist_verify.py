"""Gate-level equivalence tests: netlists vs. golden models.

These are the integration tests substituting for RTL simulation against
a testbench in a commercial flow.
"""

import pytest

from repro.core.spec import DesignPoint
from repro.netlist.builders import build_int_macro
from repro.netlist.verify import (
    verify_adder_tree,
    verify_compute_unit,
    verify_int_macro,
    verify_prealign,
    verify_shift_accumulator,
)


class TestComputeUnit:
    @pytest.mark.parametrize("l,k", [(1, 1), (2, 4), (4, 4), (8, 2), (16, 8)])
    def test_equivalence(self, l, k):
        report = verify_compute_unit(l, k, trials=40, seed=1)
        assert report.passed, report.mismatches[:3]


class TestAdderTree:
    @pytest.mark.parametrize("h,k", [(2, 4), (4, 2), (8, 4), (16, 8), (5, 3)])
    def test_equivalence(self, h, k):
        report = verify_adder_tree(h, k, trials=40, seed=2)
        assert report.passed, report.mismatches[:3]


class TestShiftAccumulator:
    @pytest.mark.parametrize("bx,k,h", [(8, 1, 4), (8, 2, 8), (8, 4, 16), (4, 4, 4)])
    def test_equivalence(self, bx, k, h):
        report = verify_shift_accumulator(bx, k, h, trials=15, seed=3)
        assert report.passed, report.mismatches[:3]


class TestPrealign:
    @pytest.mark.parametrize("h,be,bm", [(2, 4, 4), (4, 5, 8), (8, 8, 8), (3, 4, 11)])
    def test_equivalence(self, h, be, bm):
        report = verify_prealign(h, be, bm, trials=25, seed=4)
        assert report.passed, report.mismatches[:3]


class TestIntMacro:
    @pytest.mark.parametrize(
        "precision,n,h,l,k",
        [
            ("INT2", 4, 4, 2, 1),
            ("INT4", 8, 4, 2, 2),
            ("INT4", 8, 8, 1, 4),
            ("INT8", 8, 8, 2, 4),
            ("INT8", 16, 4, 4, 8),
        ],
    )
    def test_full_macro_equivalence(self, precision, n, h, l, k):
        design = DesignPoint(precision=precision, n=n, h=h, l=l, k=k)
        report = verify_int_macro(design, trials=5, seed=5)
        assert report.passed, report.mismatches[:3]

    def test_gate_counts_scale_with_parameters(self):
        small = build_int_macro(4, 4, 2, 2, 4, 4).stats()
        large = build_int_macro(8, 8, 2, 2, 4, 4).stats()
        assert large["DFF"] > small["DFF"]
        assert large["NOR"] == 2 * 2 * small["NOR"]  # N and H both doubled

    def test_nor_count_matches_cost_model(self):
        # The cost model says the array holds N*H*k multiplier NORs.
        n, h, l, k = 8, 8, 2, 4
        netlist = build_int_macro(n, h, l, k, 8, 8)
        assert netlist.stats()["NOR"] == n * h * k

    def test_report_str(self):
        design = DesignPoint(precision="INT4", n=8, h=4, l=2, k=2)
        report = verify_int_macro(design, trials=2, seed=0)
        assert "PASS" in str(report)
