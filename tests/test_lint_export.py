"""Tests for repro.rtl.lint and repro.netlist.export."""

import numpy as np
import pytest

from repro.core.spec import DesignPoint
from repro.netlist import GateSimulator, build_adder_tree, build_shift_accumulator
from repro.netlist.export import PRIMITIVE_LIBRARY_VERILOG, netlist_to_verilog
from repro.rtl import generate_rtl, lint_bundle, lint_source
from repro.rtl.modules.memory import generate_sram_array


class TestLintOnGeneratedBundles:
    @pytest.mark.parametrize(
        "precision,n,h,l,k",
        [
            ("INT2", 4, 4, 2, 1),
            ("INT8", 16, 8, 4, 4),
            ("INT8", 64, 128, 16, 8),
            ("BF16", 16, 8, 4, 8),
            ("FP16", 22, 16, 2, 11),
            ("FP32", 24, 16, 2, 8),
        ],
    )
    def test_bundles_lint_clean(self, precision, n, h, l, k):
        bundle = generate_rtl(DesignPoint(precision=precision, n=n, h=h, l=l, k=k))
        report = lint_bundle(bundle)
        assert report.passed, report.errors[:5]
        assert len(report.modules) == len(bundle.modules)


class TestLintDetectsProblems:
    def test_unbalanced_module(self):
        report = lint_source("module a (x);\n  input x;\n")
        assert not report.passed
        assert any("module/endmodule" in e for e in report.errors)

    def test_undefined_instance(self):
        source = (
            "module top (x);\n  input x;\n"
            "  mystery u0 (\n    .p(x)\n  );\nendmodule\n"
        )
        report = lint_source(source)
        assert any("undefined module" in e for e in report.errors)

    def test_known_modules_whitelist(self):
        source = (
            "module top (x);\n  input x;\n"
            "  external u0 (\n    .p(x)\n  );\nendmodule\n"
        )
        report = lint_source(source, known_modules={"external"})
        assert report.passed

    def test_unknown_port_connection(self):
        source = (
            "module sub (a);\n  input a;\nendmodule\n"
            "module top (x);\n  input x;\n"
            "  sub u0 (\n    .zz(x)\n  );\nendmodule\n"
        )
        report = lint_source(source)
        assert any(".zz" in e for e in report.errors)

    def test_duplicate_module(self):
        source = (
            "module a (x);\n  input x;\nendmodule\n"
            "module a (y);\n  input y;\nendmodule\n"
        )
        report = lint_source(source)
        assert any("duplicate" in e for e in report.errors)

    def test_comments_ignored(self):
        report = lint_source(
            "// module fake (\nmodule a (x);\n  input x;\nendmodule\n"
        )
        assert report.passed


class TestNetlistExport:
    def test_primitive_library_lints(self):
        report = lint_source(PRIMITIVE_LIBRARY_VERILOG)
        assert report.passed
        assert "prim_nor" in report.modules

    def test_exported_adder_tree_lints(self):
        nl = build_adder_tree(4, 2)
        source = netlist_to_verilog(nl)
        report = lint_source(source, known_modules={
            "prim_not", "prim_and", "prim_or", "prim_nor", "prim_xor",
            "prim_mux2", "prim_dff",
        })
        assert report.passed, report.errors[:5]

    def test_export_declares_ports(self):
        nl = build_adder_tree(4, 2)
        source = netlist_to_verilog(nl)
        assert "input [7:0] terms;" in source
        assert "output [3:0] total;" in source
        assert "clk" not in source  # purely combinational

    def test_export_adds_clk_with_dffs(self):
        nl = build_shift_accumulator(4, 2, 4)
        source = netlist_to_verilog(nl)
        assert "input clk;" in source
        assert "prim_dff" in source

    def test_export_gate_count_matches_ir(self):
        nl = build_adder_tree(8, 4)
        source = netlist_to_verilog(nl)
        assert source.count("prim_xor") == nl.gate_count("XOR")
        assert source.count("prim_and") == nl.gate_count("AND")

    def test_export_semantics_documented_by_sim(self):
        # The IR that was simulated is the IR that is exported: spot-check
        # that the simulator agrees with the adder-tree spec the export
        # claims to implement.
        nl = build_adder_tree(4, 4)
        sim = GateSimulator(nl)
        rng = np.random.default_rng(0)
        terms = rng.integers(0, 16, size=4)
        packed = 0
        for i, t in enumerate(terms):
            packed |= int(t) << (4 * i)
        sim.set_bus("terms", packed)
        sim.eval()
        assert sim.get_bus("total") == int(terms.sum())


class TestSramArray:
    def test_render_and_lint(self):
        from repro.rtl.modules.datapath import generate_sram_cell
        from repro.rtl.verilog import render_modules

        source = render_modules(
            [generate_sram_cell(), generate_sram_array(8, 4)]
        )
        report = lint_source(source)
        assert report.passed, report.errors

    def test_ports(self):
        m = generate_sram_array(8, 4)
        text = m.render()
        assert "input [7:0] wl;" in text
        assert "input [3:0] d;" in text
        assert "output [31:0] q;" in text

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            generate_sram_array(0, 4)
