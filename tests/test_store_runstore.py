"""Tests for the persistent run registry (repro.store.runstore)."""

import pytest

from repro.service.api import (
    CampaignRequest,
    CampaignResponse,
    FrontierPoint,
    SpecRequest,
)
from repro.store import RunRecord, RunStore, point_hash


def fp(n=32, objectives=(1.0, 2.0), precision="INT8", extras=None):
    return FrontierPoint(
        precision=precision, n=n, h=128, l=4, k=8, objectives=objectives,
        extras=extras or {},
    )


def response(*points, **overrides):
    payload = dict(
        frontier=tuple(points) or (fp(),),
        evaluations=40,
        fresh_evaluations=10,
        wall_time_s=0.5,
        engine_backend="numpy",
        cache_stats={"hits": 30, "misses": 10},
    )
    payload.update(overrides)
    return CampaignResponse(**payload)


@pytest.fixture
def store(tmp_path):
    with RunStore(tmp_path / "runs.sqlite") as s:
        yield s


class TestRecording:
    def test_record_response_round_trip(self, store):
        record = store.record_response(
            response(fp(32), fp(64, (2.0, 1.0))),
            specs=["4096:INT8"],
            name="nightly",
        )
        assert record.run_id.startswith("run-")
        assert record.status == "done"
        assert record.front_size == 2
        assert record.cache_stats == {"hits": 30, "misses": 10}
        fetched = store.get_run(record.run_id)
        assert fetched == record
        front = store.front(record.run_id)
        assert front == [fp(32), fp(64, (2.0, 1.0))]

    def test_record_with_request_derives_specs_and_fingerprint(self, store):
        request = CampaignRequest(specs=(SpecRequest(4096, "INT8"),), seed=3)
        record = store.record_response(response(), request)
        assert record.specs == ("4096:INT8",)
        assert record.fingerprint == request.fingerprint()
        assert store.request_of(record.run_id) == request

    def test_request_of_none_for_programmatic_runs(self, store):
        record = store.record_response(response(), specs=["s"])
        assert store.request_of(record.run_id) is None

    def test_record_failure(self, store):
        record = store.record_failure(
            "cancelled", "stopped after 1/2 specs", specs=["4096:INT8"]
        )
        assert record.status == "cancelled"
        assert record.error == "stopped after 1/2 specs"
        assert store.front(record.run_id) == []

    def test_record_failure_rejects_done(self, store):
        with pytest.raises(ValueError):
            store.record_failure("done", "not a failure")

    def test_points_are_content_addressed(self, store):
        shared = (fp(32), fp(64, (2.0, 1.0)))
        store.record_response(response(*shared))
        store.record_response(response(*shared, fp(96, (1.5, 1.5))))
        assert len(store) == 2
        # The two identical points are stored once.
        assert store.point_count() == 3

    def test_run_record_dict_round_trip(self, store):
        record = store.record_response(response(), specs=["a", "b"])
        assert RunRecord.from_dict(record.to_dict()) == record

    def test_point_hash_tracks_objectives(self):
        assert point_hash(fp(32, (1.0, 2.0))) != point_hash(fp(32, (1.0, 2.1)))
        assert point_hash(fp(32)) == point_hash(fp(32))


class TestLookup:
    def test_list_runs_newest_first(self, store):
        first = store.record_response(response())
        second = store.record_response(response())
        assert [r.run_id for r in store.list_runs()] == [
            second.run_id, first.run_id,
        ]
        assert [r.run_id for r in store.list_runs(limit=1)] == [second.run_id]

    def test_list_runs_status_filter(self, store):
        done = store.record_response(response())
        store.record_failure("failed", "boom")
        failed_only = store.list_runs(status="failed")
        assert len(failed_only) == 1 and failed_only[0].status == "failed"
        assert [r.run_id for r in store.list_runs(status="done")] == [
            done.run_id
        ]

    def test_get_unknown_run_raises(self, store):
        with pytest.raises(KeyError):
            store.get_run("run-nope")
        with pytest.raises(KeyError):
            store.front("run-nope")

    def test_resolve_by_id_baseline_and_name(self, store):
        old = store.record_response(response(), name="nightly")
        new = store.record_response(response(), name="nightly")
        store.set_baseline("main", old.run_id)
        assert store.resolve(old.run_id) == old
        assert store.resolve("main") == old
        # Run names resolve to the newest run wearing them.
        assert store.resolve("nightly") == new
        with pytest.raises(KeyError):
            store.resolve("missing")


class TestBaselines:
    def test_set_get_overwrite(self, store):
        a = store.record_response(response())
        b = store.record_response(response())
        store.set_baseline("main", a.run_id)
        assert store.get_baseline("main") == a
        store.set_baseline("main", b.run_id)
        assert store.get_baseline("main") == b
        assert store.baselines() == {"main": b.run_id}

    def test_baseline_requires_existing_run(self, store):
        with pytest.raises(KeyError):
            store.set_baseline("main", "run-nope")

    def test_unknown_baseline_raises(self, store):
        with pytest.raises(KeyError):
            store.get_baseline("main")


class TestMaintenance:
    def test_delete_run_drops_front_and_baseline(self, store):
        record = store.record_response(response())
        store.set_baseline("main", record.run_id)
        store.delete_run(record.run_id)
        assert len(store) == 0
        assert store.point_count() == 0
        assert store.baselines() == {}

    def test_gc_keeps_pinned_and_newest(self, store):
        pinned = store.record_response(response(fp(1, (9.0, 9.0))))
        store.record_response(response(fp(2, (8.0, 8.0))))
        newest = store.record_response(response(fp(3, (7.0, 7.0))))
        store.set_baseline("main", pinned.run_id)
        assert store.gc(keep_last=1) == 1
        kept = {r.run_id for r in store.list_runs()}
        assert kept == {pinned.run_id, newest.run_id}
        # Orphaned design points went with the deleted run.
        assert store.point_count() == 2

    def test_gc_older_than_spares_young_runs(self, store):
        store.record_response(response())
        assert store.gc(keep_last=0, older_than_s=3600) == 0
        assert store.gc(keep_last=0) == 1

    def test_gc_requires_a_criterion(self, store):
        with pytest.raises(ValueError):
            store.gc()


class TestPersistence:
    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        with RunStore(path) as store:
            record = store.record_response(
                response(fp(32), fp(64, (2.0, 1.0))), specs=["4096:INT8"]
            )
            store.set_baseline("main", record.run_id)
        with RunStore(path) as store:
            assert len(store) == 1
            assert store.get_baseline("main").run_id == record.run_id
            assert store.front(record.run_id) == [fp(32), fp(64, (2.0, 1.0))]

    def test_memory_store(self):
        with RunStore(":memory:") as store:
            store.record_response(response())
            assert len(store) == 1

    def test_migrates_pre_v2_schema_in_place(self, tmp_path):
        """A database created before the problem/extras columns opens
        cleanly and records both old and new rows."""
        import sqlite3

        path = tmp_path / "old.sqlite"
        conn = sqlite3.connect(path)
        conn.executescript(
            """
            CREATE TABLE runs (
                run_id TEXT PRIMARY KEY, name TEXT,
                fingerprint TEXT NOT NULL, status TEXT NOT NULL,
                created_at REAL NOT NULL,
                wall_time_s REAL NOT NULL DEFAULT 0.0,
                evaluations INTEGER NOT NULL DEFAULT 0,
                fresh_evaluations INTEGER NOT NULL DEFAULT 0,
                engine_backend TEXT, specs TEXT NOT NULL, request TEXT,
                cache_stats TEXT, error TEXT
            );
            CREATE TABLE design_points (
                point_hash TEXT PRIMARY KEY, precision TEXT NOT NULL,
                n INTEGER NOT NULL, h INTEGER NOT NULL,
                l INTEGER NOT NULL, k INTEGER NOT NULL,
                objectives TEXT NOT NULL
            );
            CREATE TABLE fronts (
                run_id TEXT NOT NULL, position INTEGER NOT NULL,
                point_hash TEXT NOT NULL, PRIMARY KEY (run_id, position)
            );
            CREATE TABLE baselines (
                name TEXT PRIMARY KEY, run_id TEXT NOT NULL,
                updated_at REAL NOT NULL
            );
            INSERT INTO runs VALUES ('run-old', NULL, 'fp', 'done', 1.0,
                                     0.1, 5, 5, 'numpy', '["4096:INT8"]',
                                     NULL, NULL, NULL);
            """
        )
        conn.commit()
        conn.close()
        with RunStore(path) as store:
            old = store.get_run("run-old")
            assert old.problem == "dcim"
            record = store.record_response(
                response(fp(32, extras={"n_macros": 2})), problem="mapping"
            )
            assert store.get_run(record.run_id).problem == "mapping"
            assert store.front(record.run_id)[0].extras == {"n_macros": 2}


class TestPagination:
    def test_offset_paginates_newest_first(self, store):
        for i in range(5):
            store.record_response(response(), name=f"run{i}")
        everything = store.list_runs()
        assert store.list_runs(limit=2) == everything[:2]
        assert store.list_runs(limit=2, offset=2) == everything[2:4]
        assert store.list_runs(offset=4) == everything[4:]
        assert store.list_runs(limit=3, offset=10) == []

    def test_negative_offset_rejected(self, store):
        with pytest.raises(ValueError, match="offset"):
            store.list_runs(offset=-1)

    def test_negative_limit_rejected(self, store):
        # SQLite would read a negative LIMIT as "unbounded".
        with pytest.raises(ValueError, match="limit"):
            store.list_runs(limit=-5)

    def test_problem_filter(self, store):
        store.record_response(response(), name="a")
        store.record_response(
            response(fp(64, extras={"n_macros": 2})), name="b",
            problem="mapping",
        )
        assert [r.name for r in store.list_runs(problem="mapping")] == ["b"]
        assert [r.name for r in store.list_runs(problem="dcim")] == ["a"]
