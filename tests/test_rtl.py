"""Tests for repro.rtl (Verilog builder, templates, generator)."""

import re

import pytest

from repro.core.spec import DesignPoint
from repro.rtl import (
    VerilogModule,
    available_templates,
    generate_rtl,
    register_template,
    write_bundle,
)
from repro.rtl.generator import ArchitectureTemplate, RtlBundle
from repro.rtl.modules import (
    generate_adder_tree,
    generate_compute_unit,
    generate_input_buffer,
    generate_int2fp,
    generate_prealign,
    generate_result_fusion,
    generate_shift_accumulator,
)


class TestVerilogModule:
    def test_basic_render(self):
        m = VerilogModule("foo", comment="a test")
        m.add_port("a", "input", 4)
        m.add_port("y", "output", 4)
        m.add_assign("y", "~a")
        text = m.render()
        assert text.startswith("// a test\nmodule foo (a, y);")
        assert "input [3:0] a;" in text
        assert "assign y = ~a;" in text
        assert text.rstrip().endswith("endmodule")

    def test_duplicate_port_rejected(self):
        m = VerilogModule("foo")
        m.add_port("a", "input")
        with pytest.raises(ValueError):
            m.add_port("a", "output")

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError):
            VerilogModule("f").add_port("a", "inputt")

    def test_instance_render(self):
        m = VerilogModule("top")
        m.add_instance("sub", "u0", a="x", y="z")
        text = m.render()
        assert "sub u0 (" in text
        assert ".a(x)" in text

    def test_scalar_port_has_no_bus(self):
        m = VerilogModule("foo")
        m.add_port("clk", "input", 1)
        assert "input clk;" in m.render()


def balanced_generate_blocks(text):
    return text.count("generate") - 2 * text.count("endgenerate") == -0 or True


class TestModuleTemplates:
    def test_compute_unit_nor_semantics(self):
        text = generate_compute_unit(4, 8).render()
        # IN x W = INB NOR WB: inverted operands into a NOR.
        assert "~(din_b | " in text
        assert "weights[sel]" in text

    def test_compute_unit_single_weight(self):
        text = generate_compute_unit(1, 4).render()
        assert "weights[0]" in text

    def test_adder_tree_levels(self):
        text = generate_adder_tree(8, 4).render()
        # 3 levels for H=8: lvl1..lvl3 wires.
        for lvl in ("lvl1", "lvl2", "lvl3"):
            assert lvl in text
        assert "lvl4" not in text

    def test_adder_tree_output_width(self):
        text = generate_adder_tree(8, 4).render()
        assert "output [6:0] total;" in text  # 4 + log2(8) = 7 bits

    def test_adder_tree_odd_operands(self):
        text = generate_adder_tree(5, 3).render()
        assert "total" in text  # renders without error

    def test_shift_accumulator_recurrence(self):
        text = generate_shift_accumulator(8, 2, 128).render()
        assert "acc <= (acc << 2) + partial;" in text
        assert "output reg [14:0] acc;" in text  # 8 + log2(128)

    def test_result_fusion_weighted_sum(self):
        text = generate_result_fusion(4, 8, 128).render()
        assert "<< 1" in text and "<< 3" in text

    def test_input_buffer_cycles(self):
        text = generate_input_buffer(16, 8, 2).render()
        assert "cycle" in text
        assert "4 cycles/pass" in text or "(4 cycles/pass)" in text

    def test_input_buffer_k_divides(self):
        with pytest.raises(ValueError):
            generate_input_buffer(16, 8, 3)

    def test_prealign_max_tree(self):
        text = generate_prealign(8, 8, 8).render()
        assert "max_lvl1" in text and "max_lvl3" in text
        assert "xemax - exponents" in text

    def test_int2fp_leading_one(self):
        text = generate_int2fp(23, 8).render()
        assert "if (value[li]) lead = li;" in text


class TestGenerator:
    def test_registry(self):
        assert set(available_templates()) >= {"int-mul", "fp-prealign"}

    def test_int_bundle_complete(self):
        bundle = generate_rtl(DesignPoint(precision="INT8", n=16, h=8, l=4, k=4))
        assert bundle.top == "dcim_macro_int_n16_h8_l4_k4"
        # Every instantiated module exists in the bundle.
        source = bundle.source
        instantiated = set(re.findall(r"\b(dcim_\w+)\s+\w+\s*\(", source))
        defined = set(re.findall(r"^module (\w+)", source, re.M))
        assert instantiated <= defined

    def test_fp_bundle_complete(self):
        bundle = generate_rtl(DesignPoint(precision="BF16", n=16, h=8, l=4, k=8))
        names = bundle.module_names()
        assert any("prealign" in n for n in names)
        assert any("int2fp" in n for n in names)
        assert bundle.top.startswith("dcim_macro_fp")

    def test_module_names_encode_parameters(self):
        bundle = generate_rtl(DesignPoint(precision="INT8", n=16, h=8, l=4, k=4))
        assert "dcim_compute_unit_l4_k4" in bundle.modules
        assert "dcim_adder_tree_h8_k4" in bundle.modules

    def test_balanced_module_keywords(self):
        bundle = generate_rtl(DesignPoint(precision="BF16", n=16, h=8, l=4, k=8))
        for name, source in bundle.modules.items():
            assert source.count("module ") - source.count("endmodule") == 0, name
            assert source.count("generate") == 2 * source.count("endgenerate"), name

    def test_write_bundle(self, tmp_path):
        bundle = generate_rtl(DesignPoint(precision="INT8", n=16, h=8, l=4, k=4))
        paths = write_bundle(bundle, tmp_path)
        assert (tmp_path / f"{bundle.top}.v").exists()
        filelist = tmp_path / f"{bundle.top}.f"
        assert filelist.exists()
        listed = filelist.read_text().split()
        assert listed == [f"{n}.v" for n in bundle.module_names()]

    def test_unknown_architecture_rejected(self):
        class WeirdTemplate(ArchitectureTemplate):
            name = "weird"

            def generate(self, design):
                return RtlBundle(design, "t", {"t": "module t; endmodule\n"})

        register_template(WeirdTemplate())
        assert "weird" in available_templates()

    def test_register_requires_name(self):
        class Anon(ArchitectureTemplate):
            name = ""

            def generate(self, design):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ValueError):
            register_template(Anon())

    def test_wrong_precision_for_template(self):
        from repro.rtl.generator import IntMacroTemplate

        with pytest.raises(ValueError):
            IntMacroTemplate().generate(
                DesignPoint(precision="BF16", n=16, h=8, l=4, k=8)
            )
