"""Tests for variation analysis, CLA model, and mixed-precision compile."""

import numpy as np
import pytest

from repro import DcimSpec, Requirements, SegaDcim
from repro.core.spec import DesignPoint
from repro.model.components import adder_tree
from repro.model.logic import adder, adder_cla
from repro.model.variation import monte_carlo
from repro.tech import GENERIC28
from repro.tech.cells import CellLibrary

LIB = CellLibrary.default()
DESIGN = DesignPoint(precision="INT8", n=64, h=128, l=16, k=8)


class TestMonteCarlo:
    @pytest.fixture(scope="class")
    def result(self):
        return monte_carlo(DESIGN, GENERIC28, samples=400, seed=1)

    def test_median_near_nominal(self, result):
        nominal = DESIGN.metrics(GENERIC28)
        assert result.percentile("delay_ns", 50) == pytest.approx(
            nominal.delay_ns, rel=0.03
        )
        assert result.percentile("tops_per_watt", 50) == pytest.approx(
            nominal.tops_per_watt, rel=0.03
        )

    def test_spread_scales_with_sigma(self):
        tight = monte_carlo(DESIGN, GENERIC28, samples=400, sigma_delay=0.02, seed=2)
        wide = monte_carlo(DESIGN, GENERIC28, samples=400, sigma_delay=0.15, seed=2)
        assert np.std(wide.delay_ns) > np.std(tight.delay_ns)

    def test_yield_monotone_in_budget(self, result):
        nominal = DESIGN.metrics(GENERIC28).delay_ns
        assert result.yield_at(nominal * 2) >= result.yield_at(nominal)
        assert result.yield_at(nominal * 10) == 1.0

    def test_deterministic(self):
        a = monte_carlo(DESIGN, GENERIC28, samples=50, seed=9)
        b = monte_carlo(DESIGN, GENERIC28, samples=50, seed=9)
        assert np.array_equal(a.delay_ns, b.delay_ns)

    def test_summary_keys(self, result):
        summary = result.summary()
        assert set(summary) == {
            "delay_ns_p50", "delay_ns_p99", "tops_per_watt_p50",
            "tops_per_watt_p1", "tops_p50",
        }
        assert summary["delay_ns_p99"] >= summary["delay_ns_p50"]

    def test_rejects_zero_samples(self):
        with pytest.raises(ValueError):
            monte_carlo(DESIGN, GENERIC28, samples=0)


class TestCarryLookahead:
    def test_small_widths_equal_ripple(self):
        assert adder_cla(LIB, 4) == adder(LIB, 4)

    def test_faster_but_larger_at_width(self):
        for n in (8, 16, 32):
            cla = adder_cla(LIB, n)
            ripple = adder(LIB, n)
            assert cla.delay < ripple.delay
            assert cla.area > ripple.area

    def test_delay_logarithmic(self):
        # Doubling the width adds one lookahead level, not 2x delay.
        d16 = adder_cla(LIB, 16).delay
        d32 = adder_cla(LIB, 32).delay
        assert d32 - d16 <= LIB.full_adder.delay + 1e-9

    def test_tree_accepts_adder_fn(self):
        ripple_tree = adder_tree(LIB, 64, 8)
        cla_tree = adder_tree(LIB, 64, 8, adder_fn=adder_cla)
        assert cla_tree.delay < ripple_tree.delay
        assert cla_tree.area > ripple_tree.area


class TestCompileMixed:
    @pytest.fixture(scope="class")
    def compiler(self):
        return SegaDcim()

    @pytest.fixture(scope="class")
    def mixed(self, compiler):
        return compiler.compile_mixed(
            wstore=8 * 1024,
            precisions=["INT8", "BF16"],
            exhaustive=True,
        )

    def test_frontier_contains_both_architectures(self, mixed):
        archs = {p.arch for p, _ in mixed.extras["mixed_frontier"]}
        assert archs == {"int-mul", "fp-prealign"}

    def test_selected_on_merged_frontier(self, mixed):
        keys = {
            (p.precision.name, p.n, p.h, p.l, p.k)
            for p, _ in mixed.extras["mixed_frontier"]
        }
        s = mixed.selected
        assert (s.precision.name, s.n, s.h, s.l, s.k) in keys

    def test_rtl_matches_selected_arch(self, mixed):
        prefix = "dcim_macro_fp" if mixed.selected.precision.is_float else "dcim_macro_int"
        assert mixed.rtl.top.startswith(prefix)

    def test_int_dominates_equal_throughput_points(self, mixed):
        # For equal structure, the FP macro strictly adds hardware, so
        # the INT architecture must populate the min-area end.
        frontier = sorted(
            mixed.extras["mixed_frontier"], key=lambda pm: pm[1].layout_area_mm2
        )
        assert frontier[0][0].arch == "int-mul"

    def test_requirements_respected(self, compiler):
        result = compiler.compile_mixed(
            wstore=8 * 1024,
            precisions=["INT8", "BF16"],
            requirements=Requirements(max_area_mm2=0.3),
            exhaustive=True,
        )
        assert result.metrics.layout_area_mm2 <= 0.3

    def test_empty_precisions_rejected(self, compiler):
        with pytest.raises(ValueError):
            compiler.compile_mixed(wstore=8 * 1024, precisions=[])
