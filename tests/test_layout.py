"""Tests for repro.layout (geometry, floorplan, DEF, P&R)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spec import DesignPoint
from repro.layout import (
    Block,
    PnrFlow,
    Rect,
    dump_def,
    load_def,
    slicing_floorplan,
)
from repro.tech import GENERIC28


class TestRect:
    def test_positive_dimensions(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 0, 1)

    def test_properties(self):
        r = Rect(1, 2, 3, 4)
        assert r.area == 12
        assert r.x2 == 4 and r.y2 == 6
        assert r.center == (2.5, 4.0)
        assert r.aspect == 0.75

    def test_overlaps(self):
        a = Rect(0, 0, 2, 2)
        assert a.overlaps(Rect(1, 1, 2, 2))
        assert not a.overlaps(Rect(2, 0, 2, 2))  # edge contact
        assert not a.overlaps(Rect(5, 5, 1, 1))

    def test_contains(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains(Rect(1, 1, 5, 5))
        assert not outer.contains(Rect(8, 8, 5, 5))


block_lists = st.lists(
    st.floats(min_value=1.0, max_value=1e6),
    min_size=1,
    max_size=12,
).map(lambda areas: [Block(f"b{i}", a) for i, a in enumerate(areas)])


class TestSlicingFloorplan:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            slicing_floorplan([])

    def test_bad_utilization(self):
        with pytest.raises(ValueError):
            slicing_floorplan([Block("a", 1.0)], utilization=0.0)

    @given(block_lists, st.floats(min_value=0.4, max_value=1.0),
           st.floats(min_value=0.5, max_value=3.0))
    @settings(max_examples=60, deadline=None)
    def test_invariants(self, blocks, utilization, aspect):
        fp = slicing_floorplan(blocks, utilization=utilization, aspect=aspect)
        # Every block placed exactly once.
        assert {p.name for p in fp.placements} == {b.name for b in blocks}
        # All placements inside the die.
        for p in fp.placements:
            assert fp.die.contains(p.rect)
        # No overlaps.
        for i, a in enumerate(fp.placements):
            for b in fp.placements[i + 1 :]:
                assert not a.rect.overlaps(b.rect), (a, b)
        # Die sized by utilisation.
        total = sum(b.area for b in blocks)
        assert fp.die.area == pytest.approx(total / utilization, rel=1e-6)
        # Die aspect as requested.
        assert fp.die.aspect == pytest.approx(aspect, rel=1e-6)

    @given(block_lists)
    @settings(max_examples=40, deadline=None)
    def test_area_proportionality(self, blocks):
        # Leaf rectangles keep the blocks' area ratios (slicing is
        # area-proportional), so relative areas match requests.
        fp = slicing_floorplan(blocks, utilization=0.75)
        total_req = sum(b.area for b in blocks)
        placed = {p.name: p.rect.area for p in fp.placements}
        total_placed = sum(placed.values())
        for b in blocks:
            assert placed[b.name] / total_placed == pytest.approx(
                b.area / total_req, rel=1e-6
            )


class TestDef:
    def test_roundtrip(self):
        fp = slicing_floorplan(
            [Block("mem", 100.0), Block("compute", 50.0), Block("periph", 25.0)]
        )
        text = dump_def("testchip", fp)
        name, back = load_def(text)
        assert name == "testchip"
        assert back.die.w == pytest.approx(fp.die.w, abs=1e-2)
        assert {p.name for p in back.placements} == {"mem", "compute", "periph"}

    def test_load_rejects_garbage(self):
        with pytest.raises(ValueError):
            load_def("not a def file")

    def test_def_sections_present(self):
        fp = slicing_floorplan([Block("a", 10.0)])
        text = dump_def("x", fp)
        for keyword in ("VERSION", "DESIGN", "DIEAREA", "COMPONENTS", "END DESIGN"):
            assert keyword in text


class TestPnrFlow:
    @pytest.fixture(scope="class")
    def fig6a(self):
        return PnrFlow(GENERIC28).run(
            DesignPoint(precision="INT8", n=32, h=128, l=16, k=8)
        )

    @pytest.fixture(scope="class")
    def fig6b(self):
        return PnrFlow(GENERIC28).run(
            DesignPoint(precision="BF16", n=32, h=128, l=16, k=8)
        )

    def test_fig6a_die_dimensions(self, fig6a):
        # Paper Fig. 6(a): 343 um x 229 um, 0.079 mm^2.
        assert fig6a.width_um == pytest.approx(343, rel=0.1)
        assert fig6a.height_um == pytest.approx(229, rel=0.1)
        assert fig6a.area_mm2 == pytest.approx(0.079, rel=0.1)

    def test_fig6b_die_dimensions(self, fig6b):
        # Paper Fig. 6(b): 367 um x 231 um, 0.085 mm^2.
        assert fig6b.area_mm2 == pytest.approx(0.085, rel=0.1)

    def test_bf16_close_to_int8(self, fig6a, fig6b):
        assert 1.0 < fig6b.area_mm2 / fig6a.area_mm2 < 1.2

    def test_three_part_groups(self, fig6a):
        names = {p.name for p in fig6a.floorplan.placements}
        assert names == {"memory_array", "compute_components", "digital_peripherals"}

    def test_group_areas_sum_to_cell_area(self, fig6a):
        total = sum(
            fig6a.group_area_mm2(p.name) for p in fig6a.floorplan.placements
        )
        assert total == pytest.approx(fig6a.area_mm2, rel=1e-6)

    def test_area_tracks_estimation_model(self, fig6a):
        from repro.model.metrics import evaluate_macro

        metrics = evaluate_macro(fig6a.design.macro_cost(), GENERIC28)
        assert fig6a.area_mm2 == pytest.approx(metrics.layout_area_mm2, rel=1e-6)

    def test_def_text_parses(self, fig6a):
        from repro.layout import load_def

        name, fp = load_def(fig6a.def_text)
        assert len(fp.placements) == 3

    def test_wirelength_positive(self, fig6a):
        assert fig6a.wirelength_mm > 0
