"""Property-based tests on the FP datapath invariants.

These pin the algebraic contracts the pre-aligned architecture relies
on: alignment never increases a mantissa, the max element survives
alignment exactly, conversion round-trips magnitudes, and the full FP
macro is invariant to the bit-serial schedule.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.spec import DesignPoint
from repro.func.formats import FloatFormat
from repro.func.int2fp_model import int_to_fp, pack_to_format
from repro.func.macro_model import FpMacroModel
from repro.func.prealign_model import prealign

BF16 = FloatFormat.from_precision("BF16")
FP8 = FloatFormat.from_precision("FP8")

float_vectors = arrays(
    np.float64,
    (8,),
    elements=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
)


class TestPrealignProperties:
    @given(float_vectors)
    @settings(max_examples=80, deadline=None)
    def test_mantissas_never_grow(self, x):
        aligned = prealign(x, BF16)
        for v, m in zip(x, aligned.mantissas):
            encoded = BF16.encode(float(v))
            assert m <= encoded.significand

    @given(float_vectors)
    @settings(max_examples=80, deadline=None)
    def test_max_element_exact(self, x):
        # The element that sets XEmax is not shifted at all.
        aligned = prealign(x, BF16)
        mags = [abs(BF16.quantize(float(v))) for v in x]
        if max(mags) == 0:
            return
        argmax = int(np.argmax(mags))
        encoded = BF16.encode(float(x[argmax]))
        assert aligned.mantissas[argmax] == encoded.significand

    @given(float_vectors)
    @settings(max_examples=50, deadline=None)
    def test_values_bounded_by_original(self, x):
        # Decoded aligned values never exceed the quantised originals in
        # magnitude (truncation shrinks toward zero).
        aligned = prealign(x, BF16)
        for v, back in zip(x, aligned.values()):
            assert abs(back) <= abs(BF16.quantize(float(v))) + 1e-12

    @given(float_vectors, st.sampled_from([FP8, BF16]))
    @settings(max_examples=50, deadline=None)
    def test_signs_preserved(self, x, fmt):
        aligned = prealign(x, fmt)
        for v, s in zip(x, aligned.signs):
            if fmt.quantize(float(v)) != 0:
                assert s == (1 if v < 0 else 0)


class TestInt2FpProperties:
    @given(st.integers(min_value=0, max_value=2**23 - 1), st.integers(0, 300))
    @settings(max_examples=100, deadline=None)
    def test_conversion_preserves_value(self, value, base):
        # mantissa * 2^(lead - (br-1)) == value exactly.
        r = int_to_fp(value, base, 23)
        if r.is_zero:
            assert value == 0
            return
        assert r.mantissa * 2.0 ** (r.lead - 22) == pytest.approx(float(value))

    @given(st.integers(min_value=1, max_value=2**16 - 2))
    @settings(max_examples=80, deadline=None)
    def test_pack_monotone_in_value(self, value):
        # Packing larger magnitudes never yields a smaller float.
        fmt = BF16
        a = pack_to_format(int_to_fp(value, fmt.bias, 16), 0, fmt)
        b = pack_to_format(int_to_fp(value + 1, fmt.bias, 16), 0, fmt)
        assert b >= a


class TestFpMacroInvariance:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_schedule_invariance(self, seed):
        # BM=8 allows k in {1,2,4,8}; the result must be identical.
        rng = np.random.default_rng(seed)
        w = rng.normal(size=(8, 2))
        x = rng.normal(size=8)
        outputs = []
        for k in (1, 2, 4, 8):
            model = FpMacroModel(
                DesignPoint(precision="BF16", n=16, h=8, l=2, k=k)
            )
            model.load_weights(w)
            outputs.append(model.matvec(x))
        for out in outputs[1:]:
            assert np.array_equal(out, outputs[0])

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_linearity_in_scalar(self, seed):
        # Scaling x by a power of two scales the output exactly (exponent
        # arithmetic only, no mantissa change).
        rng = np.random.default_rng(seed)
        w = rng.normal(size=(8, 2))
        x = rng.normal(size=8)
        model = FpMacroModel(DesignPoint(precision="BF16", n=16, h=8, l=2, k=8))
        model.load_weights(w)
        base = model.matvec(x)
        scaled = model.matvec(x * 4.0)
        assert np.allclose(scaled, 4.0 * base, rtol=1e-12, atol=1e-30)
