"""Tests for multi-spec campaign runs: sharding, caching, front merges."""

import pytest

from repro.core.pareto import dominates
from repro.core.spec import DcimSpec
from repro.dse.explorer import DesignSpaceExplorer
from repro.dse.nsga2 import NSGA2Config
from repro.service.cache import EvaluationCache
from repro.service.campaign import CampaignConfig, run_campaign
from repro.service.executor import ThreadPoolExecutor

SPECS = [
    DcimSpec(wstore=4096, precision="INT4"),
    DcimSpec(wstore=4096, precision="INT8"),
]
SMALL_GA = NSGA2Config(population_size=16, generations=8)


def small_config(**overrides) -> CampaignConfig:
    # These tests exercise the GA path (events, sharding, cancellation
    # windows), so opt out of the exhaustive-enumeration default.
    overrides.setdefault("exhaustive_threshold", 0)
    return CampaignConfig(nsga2=SMALL_GA, seed=3, **overrides)


def front_keys(result):
    return [(p.precision.name, p.n, p.h, p.l, p.k) for p in result.merged_points]


class TestMergeCorrectness:
    @pytest.fixture(scope="class")
    def campaign(self):
        return run_campaign(SPECS, small_config())

    def test_matches_explorer_merge(self, campaign):
        explorer = DesignSpaceExplorer(config=SMALL_GA)
        results = [explorer.explore(s, seed=3 + i) for i, s in enumerate(SPECS)]
        merged = DesignSpaceExplorer.merge_fronts(results)
        assert set(front_keys(campaign)) == {
            (p.precision.name, p.n, p.h, p.l, p.k) for p in merged
        }

    def test_merged_front_mutually_nondominated(self, campaign):
        rows = [tuple(r) for r in campaign.merged_objectives]
        for i, u in enumerate(rows):
            for j, v in enumerate(rows):
                if i != j:
                    assert not dominates(u, v)

    def test_merged_front_spans_inputs(self, campaign):
        union = {
            (r.spec.precision.name, p.n, p.h, p.l, p.k)
            for r in campaign.results
            for p in r.points
        }
        assert set(front_keys(campaign)) <= union

    def test_objectives_sorted_by_area(self, campaign):
        areas = [row[0] for row in campaign.merged_objectives]
        assert areas == sorted(areas)

    def test_evaluations_accumulate(self, campaign):
        assert campaign.evaluations == sum(r.evaluations for r in campaign.results)
        assert campaign.wall_time_s > 0


class TestEngineSelection:
    def test_engine_backends_bit_identical(self):
        # The engine backend is a throughput knob only: per-seed runs
        # and merged objective rows must not move.
        results = {
            engine: run_campaign(SPECS, small_config(engine=engine))
            for engine in ("auto", "python")
        }
        auto, python = results["auto"], results["python"]
        assert front_keys(auto) == front_keys(python)
        assert auto.merged_objectives.tolist() == python.merged_objectives.tolist()
        assert python.engine_backend == "python"
        assert auto.engine_backend in ("numpy", "python")

    def test_chunked_executor_bit_identical(self):
        plain = run_campaign(SPECS, small_config())
        chunked = run_campaign(
            SPECS, small_config(backend="thread", chunk_size=7)
        )
        assert front_keys(plain) == front_keys(chunked)
        assert plain.merged_objectives.tolist() == chunked.merged_objectives.tolist()

    def test_config_validates_engine_and_chunk_size(self):
        with pytest.raises(ValueError, match="engine"):
            small_config(engine="gpu")
        with pytest.raises(ValueError, match="chunk_size"):
            small_config(chunk_size=0)

    def test_response_reports_engine_backend(self):
        result = run_campaign(SPECS, small_config(engine="python"))
        assert result.to_response().engine_backend == "python"


class TestSharding:
    def test_parallel_specs_match_sequential(self):
        sequential = run_campaign(SPECS, small_config(workers=1))
        sharded = run_campaign(SPECS, small_config(workers=2, backend="thread"))
        assert front_keys(sequential) == front_keys(sharded)

    def test_shared_executor_left_open(self):
        with ThreadPoolExecutor(workers=2) as pool:
            run_campaign(SPECS, small_config(), executor=pool)
            # The caller-owned pool must still be usable afterwards.
            from repro.dse.problem import DcimProblem

            problem = DcimProblem(SPECS[0])
            genome = problem.codec.enumerate()[0]
            assert pool.evaluate_batch(problem, [genome])

    def test_rejects_empty_campaign(self):
        with pytest.raises(ValueError):
            run_campaign([], small_config())

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            CampaignConfig(workers=0)


class TestWarmCache:
    def test_second_run_hits_over_90_percent(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        with EvaluationCache(path) as cache:
            cold = run_campaign(SPECS, small_config(), cache=cache)
        assert cold.cache_stats.misses > 0
        # Fresh process-equivalent: reopen the persisted cache.
        with EvaluationCache(path) as cache:
            warm = run_campaign(SPECS, small_config(), cache=cache)
        assert warm.cache_stats.hit_rate >= 0.9
        assert warm.cache_stats.misses == 0
        assert warm.fresh_evaluations == 0
        assert cold.fresh_evaluations == cold.evaluations
        assert front_keys(cold) == front_keys(warm)

    def test_cache_stats_are_per_campaign(self):
        cache = EvaluationCache()
        first = run_campaign(SPECS, small_config(), cache=cache)
        second = run_campaign(SPECS, small_config(), cache=cache)
        # The second campaign's snapshot counts only its own lookups.
        assert second.cache_stats.misses == 0
        assert second.cache_stats.hits == first.cache_stats.misses

    def test_uncached_campaign_reports_none(self):
        result = run_campaign(SPECS[:1], small_config())
        assert result.cache_stats is None


class TestWriteBehind:
    def test_flush_cadence_never_changes_results(self, tmp_path):
        plain = run_campaign(SPECS, small_config())
        with EvaluationCache(tmp_path / "wb.sqlite") as cache:
            buffered = run_campaign(
                SPECS, small_config(cache_flush_every=64), cache=cache
            )
            assert cache.pending_writes == 0  # flushed on campaign exit
        assert front_keys(plain) == front_keys(buffered)
        assert plain.merged_objectives.tolist() == buffered.merged_objectives.tolist()

    def test_flush_cadence_stays_out_of_fingerprint(self, tmp_path):
        from repro.service.campaign import _campaign_fingerprint

        assert _campaign_fingerprint(SPECS, small_config()) == _campaign_fingerprint(
            SPECS, small_config(cache_flush_every=64)
        )

    def test_rejects_negative_cadence(self):
        with pytest.raises(ValueError, match="cache_flush_every"):
            CampaignConfig(cache_flush_every=-1)

    def test_cancelled_campaign_flushes_completed_work(self, tmp_path):
        from repro.service.events import CampaignCancelled, EventKind

        path = tmp_path / "cancelled.sqlite"
        seen = {"generations": 0}

        def observer(event):
            if event.kind is EventKind.GENERATION_DONE:
                seen["generations"] += 1

        with EvaluationCache(path) as cache:
            with pytest.raises(CampaignCancelled):
                run_campaign(
                    SPECS,
                    small_config(cache_flush_every=10_000),  # never hits threshold
                    cache=cache,
                    observer=observer,
                    should_stop=lambda: seen["generations"] >= 2,
                )
            assert cache.pending_writes == 0
            stored = len(cache)
        assert stored > 0  # completed evaluations survived the cancel
        with EvaluationCache(path) as reopened:
            assert len(reopened) == stored  # ...and are really on disk


class TestObserverAndCancellation:
    def test_observer_never_changes_results(self):
        events = []
        plain = run_campaign(SPECS, small_config())
        observed = run_campaign(SPECS, small_config(), observer=events.append)
        assert front_keys(plain) == front_keys(observed)
        assert (
            plain.merged_objectives.tolist()
            == observed.merged_objectives.tolist()
        )
        assert plain.evaluations == observed.evaluations

    def test_event_stream_shape(self):
        from repro.service.events import EventKind

        events = []
        run_campaign(SPECS, small_config(), observer=events.append)
        kinds = [e.kind for e in events]
        assert kinds.count(EventKind.SPEC_STARTED) == len(SPECS)
        assert kinds.count(EventKind.SPEC_DONE) == len(SPECS)
        assert kinds.count(EventKind.GENERATION_DONE) == (
            len(SPECS) * SMALL_GA.generations
        )
        assert kinds[-1] is EventKind.CAMPAIGN_DONE
        done = events[-1]
        assert done.front_size > 0
        assert done.wall_time_s > 0
        labels = {e.spec for e in events if e.spec}
        assert labels == {"4096:INT4", "4096:INT8"}

    def test_threaded_workers_emit_full_stream(self):
        import threading
        from repro.service.events import EventKind

        events = []
        lock = threading.Lock()

        def observer(event):
            with lock:
                events.append(event)

        run_campaign(
            SPECS, small_config(workers=2, backend="thread"), observer=observer
        )
        kinds = [e.kind for e in events]
        assert kinds.count(EventKind.GENERATION_DONE) == (
            len(SPECS) * SMALL_GA.generations
        )
        assert kinds[-1] is EventKind.CAMPAIGN_DONE

    def test_should_stop_raises_campaign_cancelled(self):
        from repro.service.events import CampaignCancelled, EventKind

        events = []
        seen = {"generations": 0}

        def stop_after_two() -> bool:
            return seen["generations"] >= 2

        def observer(event):
            events.append(event)
            if event.kind is EventKind.GENERATION_DONE:
                seen["generations"] += 1

        with pytest.raises(CampaignCancelled):
            run_campaign(
                SPECS,
                small_config(),
                observer=observer,
                should_stop=stop_after_two,
            )
        kinds = [e.kind for e in events]
        assert EventKind.CAMPAIGN_DONE not in kinds
        assert kinds.count(EventKind.GENERATION_DONE) < (
            len(SPECS) * SMALL_GA.generations
        )

    def test_cached_campaign_reports_cache_hit_rate(self):
        from repro.service.events import EventKind

        cache = EvaluationCache()
        run_campaign(SPECS, small_config(), cache=cache)
        events = []
        run_campaign(SPECS, small_config(), cache=cache, observer=events.append)
        rates = [
            e.cache_hit_rate
            for e in events
            if e.kind is EventKind.GENERATION_DONE
        ]
        # Warm cache: by the end everything is served from it.
        assert rates[-1] > 0.9
