"""Tests for repro.func.macro_model and prealign_model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.spec import DesignPoint
from repro.func.formats import FloatFormat
from repro.func.macro_model import FpMacroModel, IntMacroModel
from repro.func.mvm import golden_mvm
from repro.func.prealign_model import aligned_dot, alignment_error, prealign

BF16 = FloatFormat.from_precision("BF16")


def int_design(k=2):
    return DesignPoint(precision="INT8", n=16, h=8, l=4, k=k)


class TestIntMacroModel:
    def test_rejects_fp_design(self):
        with pytest.raises(ValueError):
            IntMacroModel(DesignPoint(precision="BF16", n=16, h=8, l=4, k=8))

    def test_cycles_per_pass(self):
        assert IntMacroModel(int_design(k=2)).cycles_per_pass == 4
        assert IntMacroModel(int_design(k=8)).cycles_per_pass == 1

    def test_load_weights_shape_checked(self):
        model = IntMacroModel(int_design())
        with pytest.raises(ValueError, match="shape"):
            model.load_weights(np.zeros((4, 2), dtype=int))

    def test_load_weights_range_checked(self):
        model = IntMacroModel(int_design())
        with pytest.raises(ValueError, match="unsigned"):
            model.load_weights(np.full((8, 2), 256))

    def test_sel_range_checked(self):
        model = IntMacroModel(int_design())
        with pytest.raises(ValueError, match="sel"):
            model.load_weights(np.zeros((8, 2), dtype=int), sel=4)

    @given(
        arrays(np.int64, (8, 2), elements=st.integers(0, 255)),
        arrays(np.int64, (8,), elements=st.integers(0, 255)),
        st.sampled_from([1, 2, 4, 8]),
        st.integers(0, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_matvec_equals_golden(self, w, x, k, sel):
        model = IntMacroModel(int_design(k=k))
        model.load_weights(w, sel=sel)
        assert np.array_equal(model.matvec(x, sel=sel), golden_mvm(w, x))

    def test_weight_sets_independent(self):
        model = IntMacroModel(int_design())
        w0 = np.full((8, 2), 3)
        w1 = np.full((8, 2), 7)
        model.load_weights(w0, sel=0)
        model.load_weights(w1, sel=1)
        x = np.ones(8, dtype=int)
        assert model.matvec(x, sel=0)[0] == 24
        assert model.matvec(x, sel=1)[0] == 56

    def test_trace_shapes(self):
        model = IntMacroModel(int_design(k=2))
        model.load_weights(np.ones((8, 2), dtype=int))
        trace = model.matvec_trace(np.ones(8, dtype=int))
        assert trace["cycles"] == 4
        assert len(trace["partials"]) == 4
        assert trace["accumulators"][-1].shape == (8, 2)

    def test_trace_accumulator_recurrence(self):
        # acc_c == (acc_{c-1} << k) + partial_c, the RTL contract.
        model = IntMacroModel(int_design(k=2))
        rng = np.random.default_rng(3)
        model.load_weights(rng.integers(0, 256, (8, 2)))
        trace = model.matvec_trace(rng.integers(0, 256, 8))
        prev = np.zeros_like(trace["accumulators"][0])
        for partial, acc in zip(trace["partials"], trace["accumulators"]):
            assert np.array_equal(acc, (prev << 2) + partial)
            prev = acc

    @given(
        arrays(np.int64, (8, 2), elements=st.integers(-255, 255)),
        arrays(np.int64, (8,), elements=st.integers(-255, 255)),
    )
    @settings(max_examples=30, deadline=None)
    def test_signed_wrapper(self, w, x):
        model = IntMacroModel(int_design())
        assert np.array_equal(model.matvec_signed(w, x), w.T @ x)

    def test_signed_wrapper_restores_weights(self):
        model = IntMacroModel(int_design())
        w0 = np.full((8, 2), 9)
        model.load_weights(w0, sel=0)
        model.matvec_signed(np.ones((8, 2), dtype=int), np.ones(8, dtype=int))
        assert np.array_equal(model.weights[0], w0)


class TestPrealign:
    def test_max_exponent_found(self):
        a = prealign([1.0, 4.0, 0.25], BF16)
        assert a.max_exponent == BF16.encode(4.0).exponent

    def test_zero_vector(self):
        a = prealign([0.0, 0.0], BF16)
        assert a.max_exponent == 0
        assert a.mantissas.tolist() == [0, 0]

    def test_alignment_truncates_small_values(self):
        # An element 2^BM smaller than the max loses all its bits.
        big, tiny = 1.0, 2.0 ** (-BF16.mantissa_bits - 1)
        a = prealign([big, tiny], BF16)
        assert a.mantissas[1] == 0

    def test_values_roundtrip_at_max_scale(self):
        a = prealign([2.0, -3.0], BF16)
        assert a.values()[0] == pytest.approx(2.0)
        assert a.values()[1] == pytest.approx(-3.0)

    @given(
        arrays(
            np.float64,
            (8,),
            elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_aligned_dot_close_to_exact(self, x):
        # Principled truncation bound: each aligned mantissa loses at
        # most 1 ulp at its vector's max scale, so
        # |err| <= ulp_x * sum|w| + ulp_w * sum|x| + H * ulp_x * ulp_w.
        w = np.linspace(-1.0, 1.0, 8)
        err = alignment_error(x, w, BF16)
        xa = prealign(x, BF16)
        wa = prealign(w, BF16)
        ulp = 2.0 ** (-(BF16.mantissa_bits - 1) - BF16.bias)
        ulp_x = 2.0**xa.max_exponent * ulp
        ulp_w = 2.0**wa.max_exponent * ulp
        xq = np.array([BF16.quantize(float(v)) for v in x])
        wq = np.array([BF16.quantize(float(v)) for v in w])
        bound = (
            ulp_x * np.abs(wq).sum()
            + ulp_w * np.abs(xq).sum()
            + len(x) * ulp_x * ulp_w
        )
        assert err["abs_error"] <= bound + 1e-12

    def test_aligned_dot_exact_when_same_exponent(self):
        # All operands in one binade: no truncation at all.
        x = [1.0, 1.5, 1.25, 1.75]
        w = [1.0, 1.0, 1.0, 1.0]
        err = alignment_error(x, w, BF16)
        assert err["abs_error"] == 0.0


class TestFpMacroModel:
    def fp_design(self, k=8):
        return DesignPoint(precision="BF16", n=16, h=8, l=4, k=k)

    def test_rejects_int_design(self):
        with pytest.raises(ValueError):
            FpMacroModel(int_design())

    def test_requires_weights(self):
        with pytest.raises(RuntimeError):
            FpMacroModel(self.fp_design()).matvec(np.zeros(8))

    def test_matches_aligned_dot(self):
        rng = np.random.default_rng(11)
        w = rng.normal(size=(8, 2))
        x = rng.normal(size=8)
        model = FpMacroModel(self.fp_design())
        model.load_weights(w)
        out = model.matvec(x)
        # Column 0 of the macro equals the scalar pre-aligned dot product
        # computed with the weight alignment done over the whole matrix.
        # Build the expectation by hand with the same global WEmax.
        wa = prealign(w.ravel(), BF16)
        xa = prealign(x, BF16)
        wm = np.where(wa.signs == 1, -wa.mantissas, wa.mantissas).reshape(8, 2)
        xm = np.where(xa.signs == 1, -xa.mantissas, xa.mantissas)
        scale = 2.0 ** (
            (xa.max_exponent - BF16.bias - 7) + (wa.max_exponent - BF16.bias - 7)
        )
        expected = (wm.T @ xm).astype(float) * scale
        assert np.allclose(out, expected)

    @pytest.mark.parametrize("k", [1, 2, 4, 8])
    def test_k_invariant(self, k):
        # The bit-serial schedule must not change the result.
        rng = np.random.default_rng(5)
        w = rng.normal(size=(8, 2))
        x = rng.normal(size=8)
        ref = None
        model = FpMacroModel(self.fp_design(k=k))
        model.load_weights(w)
        out = model.matvec(x)
        base = FpMacroModel(self.fp_design(k=8))
        base.load_weights(w)
        ref = base.matvec(x)
        assert np.allclose(out, ref)

    def test_relative_accuracy_vs_float(self):
        # Error measured against the natural scale sum(|x_i * w_i|):
        # measuring against the (possibly cancelled) result would conflate
        # quantisation with cancellation.
        rng = np.random.default_rng(2)
        w = rng.normal(size=(8, 2))
        x = rng.normal(size=8)
        model = FpMacroModel(self.fp_design())
        model.load_weights(w)
        out = model.matvec(x)
        exact = w.T @ x
        scale = np.abs(w.T) @ np.abs(x)
        rel = np.abs(out - exact) / scale
        assert np.all(rel < 0.02)  # well under one BF16 ulp per term
