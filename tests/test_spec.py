"""Tests for repro.core.spec (DcimSpec and DesignPoint)."""

import pytest

from repro.core.spec import FP_ARCH, INT_ARCH, DcimSpec, DesignPoint
from repro.tech.pdk import GENERIC28


class TestDcimSpec:
    def test_precision_parsed_from_string(self):
        spec = DcimSpec(wstore=8192, precision="INT8")
        assert spec.precision.name == "INT8"
        assert spec.arch == INT_ARCH

    def test_float_selects_fp_arch(self):
        assert DcimSpec(wstore=8192, precision="BF16").arch == FP_ARCH

    def test_paper_bounds_defaults(self):
        # Section IV: N > 4*Bw, L <= 64, H <= 2048.
        spec = DcimSpec(wstore=8192, precision="INT8")
        assert spec.max_l == 64
        assert spec.max_h == 2048
        assert spec.min_n == 4 * 8 + 1

    def test_sram_bits(self):
        spec = DcimSpec(wstore=8192, precision="INT8")
        assert spec.sram_bits == 8192 * 8

    def test_rejects_bad_wstore(self):
        with pytest.raises(ValueError):
            DcimSpec(wstore=0, precision="INT8")


class TestDesignPoint:
    def test_fig6a_wstore(self):
        d = DesignPoint(precision="INT8", n=32, h=128, l=16, k=8)
        assert d.wstore == 8192
        assert d.sram_bits == 64 * 1024
        assert d.arch == INT_ARCH

    def test_fig6b_wstore(self):
        d = DesignPoint(precision="BF16", n=32, h=128, l=16, k=8)
        assert d.wstore == 8192
        assert d.arch == FP_ARCH

    def test_invalid_point_rejected_at_construction(self):
        with pytest.raises(ValueError):
            DesignPoint(precision="INT8", n=32, h=128, l=16, k=16)

    def test_satisfies_matching_spec(self):
        spec = DcimSpec(wstore=8192, precision="INT8", min_n_factor=0)
        d = DesignPoint(precision="INT8", n=32, h=128, l=16, k=8)
        assert d.satisfies(spec)

    def test_satisfies_rejects_wrong_wstore(self):
        spec = DcimSpec(wstore=4096, precision="INT8", min_n_factor=0)
        d = DesignPoint(precision="INT8", n=32, h=128, l=16, k=8)
        assert not d.satisfies(spec)

    def test_satisfies_enforces_paper_bounds(self):
        spec = DcimSpec(wstore=8192, precision="INT8")  # min_n = 33
        d = DesignPoint(precision="INT8", n=32, h=128, l=16, k=8)
        assert not d.satisfies(spec)

    def test_macro_cost_dispatches_by_precision(self):
        int_cost = DesignPoint(precision="INT8", n=32, h=128, l=16, k=8).macro_cost()
        fp_cost = DesignPoint(precision="BF16", n=32, h=128, l=16, k=8).macro_cost()
        assert int_cost.arch == INT_ARCH
        assert fp_cost.arch == FP_ARCH

    def test_metrics_binding(self):
        d = DesignPoint(precision="INT8", n=32, h=128, l=16, k=8)
        m = d.metrics(GENERIC28)
        assert m.area_mm2 > 0
        assert m.tops > 0

    def test_describe_mentions_parameters(self):
        text = DesignPoint(precision="INT8", n=32, h=128, l=16, k=8).describe()
        assert "N=32" in text and "INT8" in text


class TestForWeights:
    def test_rounds_up_to_power_of_two(self):
        spec = DcimSpec.for_weights(5000, "INT8")
        assert spec.wstore == 8192

    def test_exact_power_unchanged(self):
        assert DcimSpec.for_weights(8192, "INT8").wstore == 8192

    def test_one_weight(self):
        assert DcimSpec.for_weights(1, "INT8").wstore == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DcimSpec.for_weights(0, "INT8")

    def test_bounds_forwarded(self):
        spec = DcimSpec.for_weights(5000, "INT8", max_l=16)
        assert spec.max_l == 16
