"""CLI tests for the run registry (`repro runs ...`, `repro campaign
--store/--baseline`)."""

import json

import pytest

from repro.cli import main
from repro.service.api import CampaignResponse, FrontierPoint
from repro.store import RunStore


CAMPAIGN = [
    "campaign", "--spec", "4096:INT4",
    "--population", "16", "--generations", "4",
]

MAPPING_CAMPAIGN = [
    "campaign", "--problem", "mapping", "--spec", "tiny_cnn:INT8",
    "--population", "12", "--generations", "3",
]


def run_cli(*argv) -> int:
    return main(list(argv))


@pytest.fixture
def store_path(tmp_path):
    return str(tmp_path / "runs.sqlite")


def record_degraded(store_path, baseline="main"):
    """Record an artificially degraded copy of the baseline's front."""
    with RunStore(store_path) as store:
        front = store.front(store.get_baseline(baseline).run_id)
        degraded = tuple(
            FrontierPoint(
                precision=p.precision, n=p.n, h=p.h, l=p.l, k=p.k,
                objectives=tuple(o + abs(o) * 0.3 for o in p.objectives),
            )
            for p in front[::2]
        )
        return store.record_response(
            CampaignResponse(frontier=degraded),
            specs=["degraded"], name="degraded",
        ).run_id


class TestCampaignStoreFlags:
    def test_store_records_and_pins_baseline(self, store_path, capsys):
        rc = run_cli(*CAMPAIGN, "--store", store_path,
                     "--name", "good", "--set-baseline", "main")
        assert rc == 0
        err = capsys.readouterr().err
        assert "recorded run-" in err
        assert "baseline 'main'" in err
        with RunStore(store_path) as store:
            assert len(store) == 1
            record = store.get_baseline("main")
            assert record.name == "good"
            assert record.front_size > 0

    def test_registry_flags_require_store(self, capsys):
        assert run_cli(*CAMPAIGN, "--name", "x") == 1
        assert "--store" in capsys.readouterr().err

    def test_runs_rejects_missing_registry(self, tmp_path, capsys):
        missing = tmp_path / "typo.sqlite"
        assert run_cli("runs", "list", "--store", str(missing)) == 1
        assert "no run registry" in capsys.readouterr().err
        assert not missing.exists()  # nothing silently created

    def test_baseline_seeds_then_passes(self, store_path, capsys):
        assert run_cli(*CAMPAIGN, "--store", store_path,
                       "--baseline", "main") == 0
        assert "seeded" in capsys.readouterr().err
        # The identical rerun gates cleanly against the seeded baseline.
        assert run_cli(*CAMPAIGN, "--store", store_path,
                       "--baseline", "main") == 0
        assert "regression gate: PASS" in capsys.readouterr().err

    def test_gate_fails_on_degraded_front(self, store_path, capsys):
        assert run_cli(*CAMPAIGN, "--store", store_path,
                       "--baseline", "main") == 0
        record_degraded(store_path)
        capsys.readouterr()
        rc = run_cli("runs", "gate", "degraded", "--baseline", "main",
                     "--store", store_path)
        assert rc == 1
        out = capsys.readouterr().out
        assert "regression gate: FAIL" in out
        assert "hypervolume" in out


@pytest.fixture
def seeded_store(store_path):
    assert run_cli(*CAMPAIGN, "--store", store_path, "--name", "good",
                   "--set-baseline", "main") == 0
    assert run_cli(*CAMPAIGN, "--store", store_path,
                   "--name", "rerun") == 0
    return store_path


class TestRunsCommands:
    def test_list(self, seeded_store, capsys):
        assert run_cli("runs", "list", "--store", seeded_store) == 0
        out = capsys.readouterr().out
        assert "run-" in out
        assert "good" in out and "rerun" in out
        assert "2 runs shown (2 recorded)" in out

    def test_list_status_filter(self, seeded_store, capsys):
        assert run_cli("runs", "list", "--store", seeded_store,
                       "--status", "failed") == 0
        assert "0 runs shown" in capsys.readouterr().out

    def test_list_pagination(self, seeded_store, capsys):
        assert run_cli("runs", "list", "--store", seeded_store,
                       "--limit", "1") == 0
        first = capsys.readouterr().out
        assert "1 runs shown (2 recorded)" in first
        assert run_cli("runs", "list", "--store", seeded_store,
                       "--limit", "1", "--offset", "1") == 0
        second = capsys.readouterr().out
        assert "offset 1" in second
        first_id = [l for l in first.splitlines() if "run-" in l]
        second_id = [l for l in second.splitlines() if "run-" in l]
        assert first_id != second_id

    def test_list_problem_filter(self, seeded_store, capsys):
        assert run_cli("runs", "list", "--store", seeded_store,
                       "--problem", "mapping") == 0
        assert "0 runs shown" in capsys.readouterr().out
        assert run_cli("runs", "list", "--store", seeded_store,
                       "--problem", "dcim") == 0
        assert "2 runs shown" in capsys.readouterr().out

    def test_show_by_baseline_name(self, seeded_store, capsys):
        assert run_cli("runs", "show", "main",
                       "--store", seeded_store) == 0
        out = capsys.readouterr().out
        assert "(good)" in out
        assert "INT4" in out

    def test_compare_prints_hv_and_epsilon_deltas(self, seeded_store, capsys):
        assert run_cli("runs", "compare", "main", "rerun",
                       "--store", seeded_store) == 0
        out = capsys.readouterr().out
        assert "hypervolume:" in out and "delta" in out
        assert "epsilon-indicator:" in out
        assert "knee drift:" in out

    def test_compare_json(self, seeded_store, capsys):
        assert run_cli("runs", "compare", "main", "rerun", "--json",
                       "--store", seeded_store) == 0
        payload = json.loads(capsys.readouterr().out)
        # Twin seeds, twin fronts: no quality movement at all.
        assert payload["hypervolume_delta"] == 0.0
        assert payload["epsilon_ba"] == 0.0

    def test_compare_unknown_run_errors(self, seeded_store, capsys):
        assert run_cli("runs", "compare", "main", "run-nope",
                       "--store", seeded_store) == 1
        assert "error:" in capsys.readouterr().err

    def test_export_markdown_and_csv(self, seeded_store, capsys, tmp_path):
        assert run_cli("runs", "export", "main",
                       "--store", seeded_store) == 0
        assert "# Campaign run" in capsys.readouterr().out
        out_file = tmp_path / "report.csv"
        assert run_cli("runs", "export", "main", "--format", "csv",
                       "--out", str(out_file),
                       "--store", seeded_store) == 0
        assert out_file.read_text().startswith("run_id,precision")

    def test_gc(self, seeded_store, capsys):
        assert run_cli("runs", "gc", "--keep", "0",
                       "--store", seeded_store) == 0
        # The baseline-pinned run survives keep 0.
        assert "deleted 1 runs (1 kept)" in capsys.readouterr().out

    def test_gc_requires_criterion(self, seeded_store, capsys):
        assert run_cli("runs", "gc", "--store", seeded_store) == 1
        assert "--keep" in capsys.readouterr().err

    def test_baseline_set_and_show(self, seeded_store, capsys):
        assert run_cli("runs", "baseline", "release", "rerun",
                       "--store", seeded_store) == 0
        assert "baseline 'release'" in capsys.readouterr().out
        assert run_cli("runs", "baseline", "release",
                       "--store", seeded_store) == 0
        assert "rerun" in capsys.readouterr().out

    def test_unknown_baseline_errors(self, seeded_store, capsys):
        assert run_cli("runs", "baseline", "nope",
                       "--store", seeded_store) == 1
        assert "error:" in capsys.readouterr().err

    def test_gate_json_passes_for_twin(self, seeded_store, capsys):
        assert run_cli("runs", "gate", "rerun", "--baseline", "main",
                       "--json", "--store", seeded_store) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True
        assert payload["failures"] == []


class TestProblemsCLI:
    def test_problems_list(self, capsys):
        assert run_cli("problems", "list") == 0
        out = capsys.readouterr().out
        assert "dcim" in out and "mapping" in out
        assert "neg_throughput" in out

    def test_problems_list_json(self, capsys):
        assert run_cli("problems", "list", "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        names = [p["name"] for p in payload["problems"]]
        assert names == ["dcim", "mapping"]

    def test_unknown_problem_errors(self, capsys):
        assert run_cli("campaign", "--problem", "nope",
                       "--spec", "whatever") == 1
        assert "unknown problem" in capsys.readouterr().err

    def test_bad_mapping_spec_errors(self, capsys):
        assert run_cli("campaign", "--problem", "mapping",
                       "--spec", "not_a_network:INT8") == 1
        assert "unknown network" in capsys.readouterr().err


class TestMappingCampaignCLI:
    def test_mapping_campaign_records_problem(self, store_path, capsys):
        assert run_cli(*MAPPING_CAMPAIGN, "--store", store_path,
                       "--name", "deploy", "--limit", "3") == 0
        out = capsys.readouterr().out
        assert "Merged mapping frontier" in out
        assert "macros" in out
        with RunStore(store_path) as store:
            record = store.list_runs()[0]
            assert record.problem == "mapping"
            assert record.specs == ("tiny_cnn:INT8:sequential",)

    def test_mapping_campaign_json(self, capsys):
        assert run_cli(*MAPPING_CAMPAIGN, "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["problem"] == "mapping"
        assert payload["frontier"][0]["extras"]["n_macros"] >= 1

    def test_mapping_campaign_honours_corner_flag(self, capsys):
        """--pdk/--corner must reach the mapping spec: the physical
        objectives differ between PVT corners."""
        assert run_cli(*MAPPING_CAMPAIGN, "--json", "--corner", "tt") == 0
        tt = json.loads(capsys.readouterr().out)
        assert run_cli(*MAPPING_CAMPAIGN, "--json", "--corner", "ss") == 0
        ss = json.loads(capsys.readouterr().out)
        assert tt["frontier"][0]["objectives"] \
            != ss["frontier"][0]["objectives"]

    def test_mapping_gate_against_baseline(self, store_path, capsys):
        assert run_cli(*MAPPING_CAMPAIGN, "--store", store_path,
                       "--baseline", "deploy-main") == 0
        assert run_cli(*MAPPING_CAMPAIGN, "--store", store_path,
                       "--baseline", "deploy-main") == 0
        err = capsys.readouterr().err
        assert "gate" in err and "PASS" in err

    def test_cross_problem_baseline_is_clean_error(self, store_path, capsys):
        """Gating a mapping run against a dcim baseline must exit 1
        with an error message, not an unhandled traceback."""
        assert run_cli(*CAMPAIGN, "--store", store_path,
                       "--set-baseline", "main") == 0
        capsys.readouterr()
        assert run_cli(*MAPPING_CAMPAIGN, "--store", store_path,
                       "--baseline", "main") == 1
        err = capsys.readouterr().err
        assert "error:" in err and "different problems" in err
