"""Tests for the built-in ``"mapping"`` problem, end to end."""

import random

import pytest

from repro.dse.nsga2 import NSGA2Config, nsga2
from repro.problems import get_problem
from repro.problems.mapping import (
    MAPPING_OBJECTIVES,
    MappingProblem,
    MappingSpec,
    SystemPoint,
)
from repro.service import CampaignConfig, CampaignRequest, run_campaign
from repro.service.campaign import execute_request
from repro.store import RunStore

TINY = CampaignConfig(
    nsga2=NSGA2Config(population_size=12, generations=4),
    problem="mapping",
)


def tiny_mapping_request(**overrides) -> CampaignRequest:
    payload = dict(
        problem="mapping",
        specs=({"network": "tiny_cnn", "precision": "INT8"},),
        population_size=12,
        generations=3,
        seed=1,
    )
    payload.update(overrides)
    return CampaignRequest(**payload)


class TestMappingSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown network"):
            MappingSpec(network="nope")
        with pytest.raises(ValueError, match="unknown schedule"):
            MappingSpec(network="tiny_cnn", schedule="warp")
        with pytest.raises(ValueError, match="max_macros"):
            MappingSpec(network="tiny_cnn", max_macros=0)
        with pytest.raises(ValueError):
            MappingSpec(network="tiny_cnn", precision="NOPE")

    def test_dcim_spec_derived_from_network(self):
        spec = MappingSpec(network="tiny_cnn").dcim_spec()
        # Largest tiny_cnn layer has 64*128*9 = 73728 weights.
        assert spec.wstore == 131072
        explicit = MappingSpec(network="tiny_cnn", wstore=4096).dcim_spec()
        assert explicit.wstore == 4096


class TestMappingProblem:
    def test_genome_shape_and_repair(self):
        problem = MappingProblem(MappingSpec(network="tiny_cnn", wstore=4096))
        rng = random.Random(0)
        genome = problem.sample(rng)
        assert len(genome) == 5
        assert 0 <= genome[4] <= problem.max_em
        wild = (99, -5, 0, 99, 99)
        repaired = problem.repair(wild, rng)
        assert problem.codec.is_feasible(repaired[:4])
        assert 0 <= repaired[4] <= problem.max_em

    def test_decode_and_macro_count_power_of_two(self):
        problem = MappingProblem(
            MappingSpec(network="tiny_cnn", wstore=4096, max_macros=8)
        )
        rng = random.Random(1)
        for _ in range(20):
            point = problem.decode(problem.sample(rng))
            assert isinstance(point, SystemPoint)
            assert point.n_macros in (1, 2, 4, 8)
            assert point.schedule == "sequential"

    def test_scalar_equals_batch(self):
        problem = MappingProblem(MappingSpec(network="tiny_cnn", wstore=4096))
        rng = random.Random(2)
        genomes = [problem.sample(rng) for _ in range(8)]
        assert problem.evaluate_batch(genomes) == [
            problem.evaluate(g) for g in genomes
        ]

    def test_objectives_shape_and_sign(self):
        problem = MappingProblem(MappingSpec(network="tiny_cnn", wstore=4096))
        objectives = problem.evaluate(problem.sample(random.Random(3)))
        assert len(objectives) == len(MAPPING_OBJECTIVES)
        area, latency, energy, neg_throughput = objectives
        assert area > 0 and latency > 0 and energy > 0
        assert neg_throughput < 0

    def test_more_macros_trade_area_for_latency(self):
        problem = MappingProblem(
            MappingSpec(network="tiny_cnn", wstore=4096, max_macros=8)
        )
        base = problem.repair((3, 5, 4, 0, 0), random.Random(4))
        one = problem.evaluate((*base[:4], 0))
        eight = problem.evaluate((*base[:4], 3))
        assert eight[0] == pytest.approx(one[0] * 8)  # area scales
        assert eight[1] <= one[1]  # latency never worse

    def test_nsga2_runs_deterministically(self):
        problem = MappingProblem(MappingSpec(network="tiny_cnn", wstore=4096))
        config = NSGA2Config(population_size=12, generations=4, seed=5)
        a = nsga2(problem, config)
        b = nsga2(problem, config)
        assert [i.genome for i in a.front] == [i.genome for i in b.front]
        assert [i.objectives for i in a.front] == [
            i.objectives for i in b.front
        ]


class TestMappingCampaigns:
    def test_run_campaign_end_to_end(self):
        spec = MappingSpec(network="tiny_cnn", wstore=4096)
        result = run_campaign([spec], TINY)
        assert result.problem == "mapping"
        assert len(result.merged_points) > 0
        assert all(isinstance(p, SystemPoint) for p in result.merged_points)
        response = result.to_response()
        assert response.problem == "mapping"
        point = response.frontier[0]
        assert point.extras["n_macros"] >= 1
        assert point.extras["schedule"] == "sequential"

    def test_execute_request_deterministic(self):
        request = tiny_mapping_request()
        a = execute_request(request)
        b = execute_request(request)
        assert [p.to_dict() for p in a.frontier] == [
            p.to_dict() for p in b.frontier
        ]

    def test_response_json_round_trip_keeps_extras(self):
        from repro.service.api import CampaignResponse

        response = execute_request(tiny_mapping_request())
        clone = CampaignResponse.from_json(response.to_json())
        assert clone == response
        assert clone.frontier[0].extras == response.frontier[0].extras

    def test_store_records_problem_and_extras(self, tmp_path):
        spec = MappingSpec(network="tiny_cnn", wstore=4096)
        with RunStore(tmp_path / "runs.sqlite") as store:
            result = run_campaign([spec], TINY, store=store, run_name="map")
            record = store.get_run(result.run_id)
            assert record.problem == "mapping"
            assert record.specs == ("tiny_cnn:INT8:sequential",)
            front = store.front(result.run_id)
            assert front and front[0].extras["n_macros"] >= 1
            # problem filter in pagination
            assert store.list_runs(problem="mapping")[0].run_id \
                == result.run_id
            assert store.list_runs(problem="dcim") == []

    def test_compare_refuses_cross_problem_runs(self, tmp_path):
        from repro.core.spec import DcimSpec
        from repro.store import compare_runs

        with RunStore(tmp_path / "runs.sqlite") as store:
            dcim_result = run_campaign(
                [DcimSpec(wstore=4096, precision="INT8")],
                CampaignConfig(
                    nsga2=NSGA2Config(population_size=12, generations=3)
                ),
                store=store,
                run_name="dcim-run",
            )
            map_result = run_campaign(
                [MappingSpec(network="tiny_cnn", wstore=4096)],
                TINY,
                store=store,
                run_name="map-run",
            )
            with pytest.raises(ValueError, match="different problems"):
                compare_runs(store, dcim_result.run_id, map_result.run_id)

    def test_mapping_through_job_queue(self):
        from repro.service.jobs import JobQueue, JobStatus

        queue = JobQueue()
        job_id = queue.submit(tiny_mapping_request())
        job = queue.run_next()
        assert job.status is JobStatus.DONE
        response = queue.result(job_id)
        assert response.problem == "mapping"
        assert response.frontier[0].extras["n_macros"] >= 1

    def test_definition_point_row_matches_columns(self):
        definition = get_problem("mapping")
        problem = MappingProblem(MappingSpec(network="tiny_cnn", wstore=4096))
        genome = problem.sample(random.Random(6))
        point = problem.decode(genome)
        row = definition.point_row(point, problem.evaluate(genome))
        assert len(row) == len(definition.point_columns())


class TestMappingReports:
    def test_reports_show_extras_only_when_present(self, tmp_path):
        from repro.reporting.runs import run_report_csv

        with RunStore(tmp_path / "runs.sqlite") as store:
            map_run = run_campaign(
                [MappingSpec(network="tiny_cnn", wstore=4096)],
                TINY, store=store,
            )
            from repro.core.spec import DcimSpec

            dcim_run = run_campaign(
                [DcimSpec(wstore=4096, precision="INT8")],
                CampaignConfig(
                    nsga2=NSGA2Config(population_size=12, generations=3)
                ),
                store=store,
            )
            map_csv = run_report_csv(
                store.get_run(map_run.run_id), store.front(map_run.run_id)
            )
            dcim_csv = run_report_csv(
                store.get_run(dcim_run.run_id), store.front(dcim_run.run_id)
            )
        # mapping rows carry extras; dcim keeps the pre-v2 layout
        assert map_csv.splitlines()[0] \
            == "run_id,precision,n,h,l,k,extras,objectives"
        assert "n_macros=" in map_csv
        assert dcim_csv.splitlines()[0] \
            == "run_id,precision,n,h,l,k,objectives"
