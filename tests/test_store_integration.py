"""Store integration with the serving stack: campaign, queue, HTTP.

Covers the opt-in recording hooks (``run_campaign(store=...)``,
``JobQueue(store=...)``), the bit-neutrality guarantee, and the
``/api/runs`` + ``/api/compare`` endpoints end to end.
"""

import asyncio

import numpy as np
import pytest

from repro.core.spec import DcimSpec
from repro.dse.nsga2 import NSGA2Config
from repro.service import (
    CampaignConfig,
    EvaluationCache,
    JobQueue,
    JobStatus,
    run_campaign,
)
from repro.service.api import CampaignRequest, SpecRequest
from repro.service.events import EventKind
from repro.service.server import AsyncCampaignService, CampaignClient, serve
from repro.store import RunStore


def tiny_request(**overrides) -> CampaignRequest:
    payload = dict(
        specs=(SpecRequest(4096, "INT4"),),
        population_size=16,
        generations=4,
        seed=1,
        exhaustive_threshold=0,  # force the GA: cancellation needs generations
    )
    payload.update(overrides)
    return CampaignRequest(**payload)


@pytest.fixture
def store(tmp_path):
    with RunStore(tmp_path / "runs.sqlite") as s:
        yield s


TINY = CampaignConfig(
    nsga2=NSGA2Config(population_size=16, generations=4), exhaustive_threshold=0
)


class TestRunCampaignHook:
    def test_recording_is_bit_neutral(self, store):
        specs = [DcimSpec(wstore=4096, precision="INT4")]
        plain = run_campaign(specs, TINY)
        recorded = run_campaign(specs, TINY, store=store, run_name="twin")
        assert np.array_equal(
            plain.merged_objectives, recorded.merged_objectives
        )
        assert plain.merged_points == recorded.merged_points
        assert plain.run_id is None
        assert recorded.run_id is not None

    def test_recorded_run_matches_result(self, store):
        specs = [
            DcimSpec(wstore=4096, precision="INT4"),
            DcimSpec(wstore=4096, precision="INT8"),
        ]
        result = run_campaign(specs, TINY, store=store, run_name="nightly")
        record = store.get_run(result.run_id)
        assert record.name == "nightly"
        assert record.status == "done"
        assert record.specs == ("4096:INT4", "4096:INT8")
        assert record.evaluations == result.evaluations
        front = store.front(result.run_id)
        assert len(front) == len(result.merged_points)
        assert [tuple(row) for row in result.merged_objectives] == [
            p.objectives for p in front
        ]

    def test_identical_campaigns_share_fingerprint_and_points(self, store):
        specs = [DcimSpec(wstore=4096, precision="INT4")]
        a = run_campaign(specs, TINY, store=store)
        b = run_campaign(specs, TINY, store=store)
        record_a = store.get_run(a.run_id)
        record_b = store.get_run(b.run_id)
        assert record_a.fingerprint == record_b.fingerprint
        # Twin fronts reuse the content-addressed design-point rows.
        assert store.point_count() == record_a.front_size

    def test_store_failure_warns_and_keeps_result(self, tmp_path):
        broken = RunStore(tmp_path / "runs.sqlite")
        broken.close()  # every write now raises
        specs = [DcimSpec(wstore=4096, precision="INT4")]
        with pytest.warns(RuntimeWarning, match="recording it failed"):
            result = run_campaign(specs, TINY, store=broken)
        assert result.run_id is None
        assert len(result.merged_points) > 0

    def test_cancelled_campaign_recorded(self, store):
        specs = [DcimSpec(wstore=4096, precision="INT4")]
        from repro.service.events import CampaignCancelled

        with pytest.raises(CampaignCancelled):
            run_campaign(
                specs, TINY, store=store, should_stop=lambda: True
            )
        runs = store.list_runs()
        assert len(runs) == 1
        assert runs[0].status == "cancelled"
        assert runs[0].front_size == 0


class TestJobQueueRecording:
    def test_done_job_recorded_with_run_id(self, store):
        queue = JobQueue(cache=EvaluationCache(), store=store)
        job_id = queue.submit(tiny_request())
        job = queue.run_next()
        assert job.status is JobStatus.DONE
        assert job.run_id is not None
        record = store.get_run(job.run_id)
        assert record.status == "done"
        assert record.fingerprint == job.request.fingerprint()
        assert record.front_size == len(queue.result(job_id).frontier)
        assert queue.stats.recorded == 1
        assert queue.stats.record_errors == 0

    def test_failed_job_recorded(self, store):
        queue = JobQueue(cache=EvaluationCache(), store=store)
        queue.submit(tiny_request(specs=(SpecRequest(4096, "NOPE"),)))
        job = queue.run_next()
        assert job.status is JobStatus.FAILED
        record = store.get_run(job.run_id)
        assert record.status == "failed"
        assert record.error == job.error

    def test_cancelled_job_recorded(self, store):
        with JobQueue(
            cache=EvaluationCache(), workers=1, store=store
        ) as queue:
            job_id = queue.submit(tiny_request(generations=200))
            for event in iter_events(queue, job_id):
                if event.kind is EventKind.GENERATION_DONE:
                    queue.cancel(job_id)
            assert queue.wait(job_id, timeout=60.0) is JobStatus.CANCELLED
            record = store.get_run(queue.record(job_id).run_id)
            assert record.status == "cancelled"

    def test_record_errors_counted_not_raised(self, tmp_path):
        store = RunStore(tmp_path / "runs.sqlite")
        store.close()  # recording into a closed store must not kill jobs
        queue = JobQueue(cache=EvaluationCache(), store=store)
        job = queue.submit(tiny_request()) and queue.run_next()
        assert job.status is JobStatus.DONE
        assert job.run_id is None
        assert queue.stats.record_errors == 1


def iter_events(queue, job_id, cursor=0):
    while True:
        events, cursor, done = queue.wait_events(job_id, cursor, 1.0)
        yield from events
        if done:
            return


class TestTTLSweep:
    def test_jobs_read_sweeps_expired(self):
        queue = JobQueue(cache=EvaluationCache(), ttl_s=0.0)
        queue.submit(tiny_request())
        queue.run_all()
        # No submit happens; the jobs() read itself must sweep.
        assert queue.jobs() == []
        assert queue.stats.purged == 1

    def test_sweep_expired_without_ttl_is_noop(self):
        queue = JobQueue(cache=EvaluationCache())
        queue.submit(tiny_request())
        queue.run_all()
        assert queue.sweep_expired() == 0
        assert len(queue.jobs()) == 1

    def test_idle_worker_sweeps_expired(self):
        import time

        with JobQueue(
            cache=EvaluationCache(), workers=1, ttl_s=0.2
        ) as queue:
            job_id = queue.submit(tiny_request())
            assert queue.wait(job_id, timeout=60.0) is JobStatus.DONE
            # Touch nothing: the idle worker's tick must purge the
            # terminal record on its own.
            deadline = time.monotonic() + 5.0
            while queue.stats.purged == 0 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert queue.stats.purged == 1


class TestAsyncServiceRegistry:
    def test_runs_front_compare(self, store):
        async def scenario():
            async with AsyncCampaignService(
                workers=1, cache=EvaluationCache(), store=store
            ) as service:
                a = await service.submit(tiny_request(seed=1))
                await service.result(a, timeout=60.0)
                b = await service.submit(tiny_request(seed=2))
                await service.result(b, timeout=60.0)
                runs = await service.runs()
                front = await service.run_front(runs[0].run_id)
                record = await service.run(runs[0].run_id)
                comparison = await service.compare(
                    runs[1].run_id, runs[0].run_id
                )
                return runs, front, record, comparison

        runs, front, record, comparison = asyncio.run(scenario())
        assert len(runs) == 2
        assert record == runs[0]
        assert front and front[0].objectives
        assert comparison.size_a > 0 and comparison.size_b > 0

    def test_storeless_service_raises(self):
        async def scenario():
            async with AsyncCampaignService(
                workers=1, cache=EvaluationCache()
            ) as service:
                with pytest.raises(RuntimeError):
                    await service.runs()

        asyncio.run(scenario())


@pytest.fixture(scope="class")
def http_registry(tmp_path_factory):
    store = RunStore(tmp_path_factory.mktemp("registry") / "runs.sqlite")
    queue = JobQueue(cache=EvaluationCache(), workers=1, store=store)
    server = serve(port=0, queue=queue)
    server.serve_in_background()
    yield CampaignClient(server.url), store
    server.shutdown()
    queue.close()
    store.close()


class TestHTTPRegistry:
    def test_runs_endpoints_round_trip(self, http_registry):
        client, store = http_registry
        job_a = client.submit(tiny_request(seed=11))
        list(client.watch(job_a))
        job_b = client.submit(tiny_request(seed=12))
        list(client.watch(job_b))

        runs = client.runs()
        assert len(runs) == 2
        assert {r["status"] for r in runs} == {"done"}
        run_id = runs[0]["run_id"]
        assert client.run(run_id)["run_id"] == run_id
        # The job payload links to its recorded run.
        assert client.status(job_b)["run_id"] in {r["run_id"] for r in runs}

        front = client.run_front(run_id)
        assert front == store.front(run_id)

        comparison = client.compare(runs[1]["run_id"], runs[0]["run_id"])
        assert "hypervolume_a" in comparison
        assert "epsilon_ba" in comparison
        assert comparison["size_a"] == runs[1]["front_size"]

    def test_runs_filtering_and_errors(self, http_registry):
        client, _ = http_registry
        assert client.runs(limit=1) and len(client.runs(limit=1)) == 1
        assert client.runs(status="failed") == []
        with pytest.raises(RuntimeError, match="404"):
            client.run("run-nope")
        with pytest.raises(RuntimeError, match="400"):
            client.compare("", "")

    def test_runs_pagination_over_http(self, http_registry):
        client, store = http_registry
        everything = client.runs()
        assert len(everything) >= 2
        page_one = client.runs(limit=1)
        page_two = client.runs(limit=1, offset=1)
        assert page_one[0]["run_id"] == everything[0]["run_id"]
        assert page_two[0]["run_id"] == everything[1]["run_id"]
        # offset past the end is empty, not an error
        assert client.runs(limit=5, offset=len(everything)) == []
        # problem filter: this registry only holds dcim runs
        assert len(client.runs(problem="dcim")) == len(everything)
        assert client.runs(problem="mapping") == []
        with pytest.raises(RuntimeError, match="400"):
            client._call("GET", "/api/runs?offset=-1")
        with pytest.raises(RuntimeError, match="400"):
            client._call("GET", "/api/runs?limit=banana")

    def test_compare_unknown_run_404(self, http_registry):
        client, _ = http_registry
        with pytest.raises(RuntimeError, match="404"):
            client.compare("run-nope", "run-nope")


class TestHTTPWithoutStore:
    def test_runs_endpoint_404s(self):
        queue = JobQueue(cache=EvaluationCache(), workers=1)
        server = serve(port=0, queue=queue)
        server.serve_in_background()
        try:
            client = CampaignClient(server.url)
            with pytest.raises(RuntimeError, match="404"):
                client.runs()
        finally:
            server.shutdown()
            queue.close()
