"""Tests for repro.model.integer / floating / macro / metrics (Tables V-VI)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.floating import fp_macro_cost, fp_weights_stored, validate_fp_params
from repro.model.integer import int_macro_cost, int_weights_stored, validate_int_params
from repro.model.metrics import evaluate_macro
from repro.tech.cells import CellLibrary
from repro.tech.pdk import GENERIC28

LIB = CellLibrary.default()


def fig6_int8():
    """The Fig. 6(a) design: N=32, L=16, H=128, 8K weights, INT8."""
    return int_macro_cost(LIB, n=32, h=128, l=16, k=8, bx=8, bw=8)


def fig6_bf16():
    """The Fig. 6(b) design: N=32, L=16, H=128, 8K weights, BF16."""
    return fp_macro_cost(LIB, n=32, h=128, l=16, k=8, be=8, bm=8)


class TestIntValidation:
    def test_k_cannot_exceed_bx(self):
        with pytest.raises(ValueError, match="exceeds"):
            validate_int_params(32, 128, 16, k=16, bx=8, bw=8)

    def test_k_must_divide_bx(self):
        with pytest.raises(ValueError, match="divide"):
            validate_int_params(32, 128, 16, k=3, bx=8, bw=8)

    def test_columns_group_by_bw(self):
        with pytest.raises(ValueError, match="multiple of Bw"):
            validate_int_params(33, 128, 16, k=8, bx=8, bw=8)

    def test_positive_parameters(self):
        with pytest.raises(ValueError):
            validate_int_params(0, 128, 16, 8, 8, 8)

    def test_weights_stored(self):
        assert int_weights_stored(32, 128, 16, 8) == 8192


class TestIntMacro:
    def test_sram_capacity(self):
        cost = fig6_int8()
        assert cost.sram_bits == 32 * 128 * 16  # 64 Kbit (Fig. 6 caption)
        assert cost.sram_bits == 64 * 1024

    def test_cycles_per_pass(self):
        # Bx/k cycles per pass (Fig. 3, lower left).
        assert int_macro_cost(LIB, n=32, h=128, l=16, k=2, bx=8, bw=8).cycles_per_pass == 4
        assert fig6_int8().cycles_per_pass == 1

    def test_ops_per_pass(self):
        # 2 * H * (N / Bw) MACs per pass.
        assert fig6_int8().ops_per_pass == 2 * 128 * (32 / 8)

    def test_breakdown_sums_to_area(self):
        cost = fig6_int8()
        assert cost.area == pytest.approx(
            sum(c.area for c in cost.breakdown.values())
        )

    def test_smaller_k_smaller_area_more_cycles(self):
        # Fig. 3: "The smaller k is, the smaller the area ... However,
        # the number of computation cycles Bx/k increases."
        wide = int_macro_cost(LIB, n=32, h=128, l=16, k=8, bx=8, bw=8)
        narrow = int_macro_cost(LIB, n=32, h=128, l=16, k=1, bx=8, bw=8)
        assert narrow.area < wide.area
        assert narrow.cycles_per_pass > wide.cycles_per_pass
        assert narrow.throughput < wide.throughput

    def test_pipeline_delay_is_max_stage(self):
        cost = fig6_int8()
        assert cost.delay == max(cost.stage_delays.values())
        assert cost.critical_stage in cost.stage_delays

    def test_array_stage_dominates_for_tall_columns(self):
        # A 128-input adder tree outweighs the accumulator loop.
        cost = fig6_int8()
        assert cost.critical_stage == "array"

    @given(
        st.sampled_from([8, 16, 32, 64]),
        st.sampled_from([16, 64, 256]),
        st.sampled_from([1, 4, 16]),
        st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=25, deadline=None)
    def test_energy_positive_and_monotone_in_cycles(self, n, h, l, k):
        cost = int_macro_cost(LIB, n=n, h=h, l=l, k=k, bx=8, bw=8)
        assert cost.energy_per_pass > 0
        assert cost.energy_per_cycle <= cost.energy_per_pass


class TestFpMacro:
    def test_weights_stored(self):
        assert fp_weights_stored(32, 128, 16, 8) == 8192

    def test_fp_has_alignment_and_converter(self):
        cost = fig6_bf16()
        assert "prealign" in cost.breakdown
        assert "int_to_fp" in cost.breakdown
        assert cost.breakdown["prealign"].area > 0

    def test_bf16_close_to_int8(self):
        # Headline claim (Fig. 7 discussion): BF16 overhead is almost the
        # same as INT8 thanks to the pre-aligned architecture.
        int8 = fig6_int8()
        bf16 = fig6_bf16()
        ratio = bf16.area / int8.area
        assert 1.0 < ratio < 1.25

    def test_prealign_small_fraction(self):
        # Fig. 6(b): pre-aligned circuits are 0.006/0.085 ~ 7 % of area.
        cost = fig6_bf16()
        assert cost.area_fraction("prealign") < 0.15

    def test_area_fraction_absent_component_is_zero(self):
        # FP-only blocks queried on an integer macro take no area; the
        # report path must see 0.0, not a KeyError.
        cost = fig6_int8()
        assert "prealign" not in cost.breakdown
        assert cost.area_fraction("prealign") == 0.0
        assert cost.area_fraction("no-such-component") == 0.0
        assert cost.area_fraction("sram") > 0.0

    def test_validation_requires_positive_exponent(self):
        with pytest.raises(ValueError, match="BE"):
            validate_fp_params(32, 128, 16, 8, be=0, bm=8)

    def test_fp32_bigger_than_fp8(self):
        fp8 = fp_macro_cost(LIB, n=32, h=128, l=16, k=4, be=4, bm=4)
        fp32 = fp_macro_cost(LIB, n=48, h=128, l=16, k=8, be=8, bm=24)
        assert fp32.area > fp8.area
        assert fp32.delay > fp8.delay


class TestMetrics:
    def test_fig6a_area_anchor(self):
        # Paper: INT8 8K macro layout area 0.079 mm^2.  Calibration
        # tolerance: +/- 20 %.
        metrics = evaluate_macro(fig6_int8(), GENERIC28)
        assert metrics.layout_area_mm2 == pytest.approx(0.079, rel=0.20)

    def test_fig6b_area_anchor(self):
        # Paper: BF16 8K macro layout area 0.085 mm^2.
        metrics = evaluate_macro(fig6_bf16(), GENERIC28)
        assert metrics.layout_area_mm2 == pytest.approx(0.085, rel=0.20)

    def test_frequency_inverse_of_delay(self):
        m = evaluate_macro(fig6_int8(), GENERIC28)
        assert m.frequency_ghz == pytest.approx(1.0 / m.delay_ns)

    def test_tops_consistency(self):
        cost = fig6_int8()
        m = evaluate_macro(cost, GENERIC28)
        ops_per_s = cost.ops_per_pass / (cost.cycles_per_pass * m.delay_ns * 1e-9)
        assert m.tops == pytest.approx(ops_per_s * 1e-12)

    def test_tops_per_watt_independent_of_frequency(self):
        # TOPS/W = ops / energy; delay cancels.
        cost = fig6_int8()
        slow = GENERIC28.with_voltage(0.9)
        m = evaluate_macro(cost, slow)
        expected = cost.ops_per_pass / (
            GENERIC28.energy_fj(cost.energy_per_pass) * 1e-15
        ) * 1e-12
        assert m.tops_per_watt == pytest.approx(expected)

    def test_layout_area_larger_than_cell_area(self):
        m = evaluate_macro(fig6_int8(), GENERIC28)
        assert m.layout_area_mm2 > m.area_mm2
