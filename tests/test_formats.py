"""Tests for repro.func.formats."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.func.formats import FloatFormat, FpFields, max_unsigned, quantize_unsigned

BF16 = FloatFormat.from_precision("BF16")
FP16 = FloatFormat.from_precision("FP16")
FP8 = FloatFormat.from_precision("FP8")
FP32 = FloatFormat.from_precision("FP32")

reasonable_floats = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
)


class TestFormatParameters:
    def test_from_precision_matches_paper_fields(self):
        assert (BF16.exponent_bits, BF16.mantissa_bits) == (8, 8)
        assert (FP16.exponent_bits, FP16.mantissa_bits) == (5, 11)
        assert (FP8.exponent_bits, FP8.mantissa_bits) == (4, 4)
        assert (FP32.exponent_bits, FP32.mantissa_bits) == (8, 24)

    def test_bias(self):
        assert BF16.bias == 127
        assert FP16.bias == 15
        assert FP8.bias == 7

    def test_from_precision_rejects_int(self):
        with pytest.raises(ValueError):
            FloatFormat.from_precision("INT8")


class TestEncodeDecode:
    def test_zero(self):
        f = BF16.encode(0.0)
        assert f.significand == 0
        assert BF16.decode(f) == 0.0

    def test_one(self):
        f = BF16.encode(1.0)
        assert BF16.decode(f) == 1.0
        # Hidden bit present: significand MSB set.
        assert f.significand >> (BF16.mantissa_bits - 1) == 1

    def test_sign(self):
        assert BF16.encode(-2.5).sign == 1
        assert BF16.decode(BF16.encode(-2.5)) == -2.5

    def test_powers_of_two_exact(self):
        for e in range(-10, 11):
            v = 2.0**e
            assert BF16.decode(BF16.encode(v)) == v

    def test_saturation(self):
        assert BF16.decode(BF16.encode(1e40)) == BF16.max_value
        assert BF16.decode(BF16.encode(math.inf)) == BF16.max_value

    def test_subnormal_flush(self):
        tiny = BF16.min_normal / 4
        assert BF16.decode(BF16.encode(tiny)) == 0.0

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            BF16.encode(math.nan)

    @given(reasonable_floats)
    @settings(max_examples=200, deadline=None)
    def test_quantize_idempotent(self, v):
        q = FP16.quantize(v)
        assert FP16.quantize(q) == q

    @given(reasonable_floats)
    @settings(max_examples=200, deadline=None)
    def test_relative_error_bounded(self, v):
        if abs(v) < FP16.min_normal or abs(v) > FP16.max_value:
            return
        q = FP16.quantize(v)
        # Round-to-nearest: relative error <= 2^-(BM-1) / 2 ... use ulp bound.
        assert abs(q - v) <= abs(v) * 2.0 ** (-(FP16.mantissa_bits - 1)) / 2 * 1.01

    @given(reasonable_floats)
    @settings(max_examples=200, deadline=None)
    def test_fp32_matches_numpy_float32(self, v):
        # Our generic encoder vs. IEEE single precision (numpy), away
        # from the subnormal/overflow corners where conventions differ.
        if abs(v) < 2**-120 and v != 0.0:
            return
        ours = FP32.quantize(v)
        theirs = float(np.float32(v))
        assert ours == pytest.approx(theirs, rel=1e-7, abs=1e-35)

    @given(reasonable_floats)
    @settings(max_examples=100, deadline=None)
    def test_bf16_matches_numpy_truncation_window(self, v):
        # BF16 shares the FP32 exponent: quantised value within one BF16
        # ulp of the input.
        if v == 0.0 or abs(v) < BF16.min_normal:
            return
        q = BF16.quantize(v)
        assert abs(q - v) <= abs(v) * 2.0 ** (-(BF16.mantissa_bits - 1))

    def test_decode_raw(self):
        assert BF16.decode_raw(0, BF16.bias, 1 << 7) == 1.0


class TestUnsignedHelpers:
    def test_max_unsigned(self):
        assert max_unsigned(8) == 255
        assert max_unsigned(1) == 1
        with pytest.raises(ValueError):
            max_unsigned(0)

    def test_quantize_unsigned_clips(self):
        out = quantize_unsigned([-3.0, 0.4, 300.0], 8)
        assert out.tolist() == [0, 0, 255]

    def test_quantize_unsigned_rounds(self):
        assert quantize_unsigned([1.5, 2.49], 8).tolist() == [2, 2]
