"""Tests for repro.dse.genome."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spec import DcimSpec
from repro.dse.genome import GenomeCodec, divisors


class TestDivisors:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (1, [1]),
            (8, [1, 2, 4, 8]),
            (11, [1, 11]),          # FP16 mantissa datapath width
            (24, [1, 2, 3, 4, 6, 8, 12, 24]),  # FP32 mantissa width
        ],
    )
    def test_values(self, n, expected):
        assert divisors(n) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            divisors(0)

    @given(st.integers(min_value=1, max_value=5000))
    def test_all_divide(self, n):
        for d in divisors(n):
            assert n % d == 0


def codec(wstore=64 * 1024, precision="INT8", **kw):
    return GenomeCodec(DcimSpec(wstore=wstore, precision=precision, **kw))


class TestCodecBounds:
    def test_paper_n_bound(self):
        # N > 4*Bw means N = Bw * 2^a with 2^a > 4, i.e. a >= 3.
        assert codec().min_a == 3

    def test_exponent_budget(self):
        assert codec(wstore=64 * 1024).total_exponent == 16

    def test_l_and_h_bounds(self):
        c = codec()
        assert 2**c.max_c <= 64
        assert 2**c.max_h if False else 2**c.max_b <= 2048

    def test_rejects_non_power_of_two_wstore(self):
        with pytest.raises(ValueError, match="power of two"):
            codec(wstore=5000)

    def test_rejects_impossible_spec(self):
        # Wstore so large the bounded space cannot hold it.
        with pytest.raises(ValueError):
            codec(wstore=2**40, max_h=64, max_l=4, max_n=1024)

    def test_max_n_bound_respected(self):
        c = codec(max_n=1024)
        for g in c.enumerate():
            assert c.decode(g).n <= 1024

    def test_fp_k_choices_follow_mantissa(self):
        c = codec(precision="FP16")
        assert c.k_choices == [1, 11]
        c32 = codec(precision="FP32")
        assert 3 in c32.k_choices  # 24 has non-power-of-two divisors


class TestSampleRepairDecode:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_sample_always_feasible(self, seed):
        c = codec()
        g = c.sample(random.Random(seed))
        assert c.is_feasible(g)
        point = c.decode(g)
        assert point.wstore == 64 * 1024

    @given(
        st.tuples(
            st.integers(min_value=-5, max_value=30),
            st.integers(min_value=-5, max_value=30),
            st.integers(min_value=-5, max_value=30),
            st.integers(min_value=-5, max_value=30),
        ),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_repair_always_feasible(self, genome, seed):
        c = codec()
        repaired = c.repair(genome, random.Random(seed))
        assert c.is_feasible(repaired)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_repair_is_identity_on_feasible(self, seed):
        c = codec()
        g = c.sample(random.Random(seed))
        assert c.repair(g, random.Random(0)) == g

    def test_decode_satisfies_spec(self):
        spec = DcimSpec(wstore=64 * 1024, precision="INT8")
        c = GenomeCodec(spec)
        for g in c.enumerate():
            point = c.decode(g)
            assert point.satisfies(spec)

    def test_decode_rejects_infeasible(self):
        with pytest.raises(ValueError):
            codec().decode((0, 0, 0, 0))

    def test_encode_roundtrip(self):
        c = codec()
        for g in c.enumerate()[:20]:
            assert c.encode(c.decode(g)) == g

    def test_fp_decode_constraint(self):
        # Eq. (3): N * H * L / BM == Wstore.
        c = codec(precision="BF16")
        point = c.decode(c.enumerate()[0])
        assert point.n * point.h * point.l // 8 == 64 * 1024


class TestEnumerate:
    def test_all_unique_and_feasible(self):
        c = codec()
        genomes = c.enumerate()
        assert len(genomes) == len(set(genomes))
        assert all(c.is_feasible(g) for g in genomes)

    def test_space_covers_fig6_structure(self):
        # The Fig. 6 structure (N=32, H=128, L=16) exists at 8K weights
        # when the N bound is relaxed (Fig. 6 predates the DSE bound).
        c = codec(wstore=8 * 1024, precision="INT8", min_n_factor=0)
        shapes = {(p.n, p.h, p.l) for p in map(c.decode, c.enumerate())}
        assert (32, 128, 16) in shapes
