"""CLI tests for cache maintenance (`repro cache stats|compact|migrate`)."""

import json

import pytest

from repro.cli import main
from repro.service.cache import EvaluationCache


def run_cli(*argv) -> int:
    return main(list(argv))


@pytest.fixture
def jsonl_cache(tmp_path):
    path = tmp_path / "evals.jsonl"
    with EvaluationCache(path) as cache:
        cache.put_many({f"k{i}": (float(i), float(i) * 2) for i in range(8)})
        cache.put_many({f"k{i}": (9.0, 9.0) for i in range(3)})  # stale lines
    return path


class TestCacheStats:
    def test_table_output(self, jsonl_cache, capsys):
        assert run_cli("cache", "stats", str(jsonl_cache)) == 0
        out = capsys.readouterr().out
        assert "jsonl" in out
        assert "entries" in out
        assert "stale lines" in out

    def test_json_output(self, jsonl_cache, capsys):
        assert run_cli("cache", "stats", str(jsonl_cache), "--json") == 0
        info = json.loads(capsys.readouterr().out)
        assert info["backend"] == "jsonl"
        assert info["entries"] == 8
        assert info["log_lines"] == 11
        assert info["stale_lines"] == 3

    def test_missing_path_is_an_error(self, tmp_path, capsys):
        assert run_cli("cache", "stats", str(tmp_path / "nope.jsonl")) == 1
        assert "no evaluation cache" in capsys.readouterr().err
        assert not (tmp_path / "nope.jsonl").exists()  # not silently created


class TestCacheCompact:
    def test_jsonl_compact_drops_stale_lines(self, jsonl_cache, capsys):
        assert run_cli("cache", "compact", str(jsonl_cache)) == 0
        out = capsys.readouterr().out
        assert "11 -> 8 lines" in out
        with EvaluationCache(jsonl_cache) as cache:
            assert cache.info()["log_lines"] == 8
            assert cache.get("k0") == (9.0, 9.0)  # last write wins

    def test_sqlite_vacuum(self, tmp_path, capsys):
        path = tmp_path / "evals.sqlite"
        with EvaluationCache(path) as cache:
            cache.put_many({f"k{i}": (float(i),) for i in range(8)})
        assert run_cli("cache", "compact", str(path)) == 0
        assert "vacuumed" in capsys.readouterr().out


class TestCacheMigrate:
    def test_jsonl_to_sqlite_preserves_entries(self, jsonl_cache, tmp_path, capsys):
        dst = tmp_path / "evals.sqlite"
        assert run_cli("cache", "migrate", str(jsonl_cache), str(dst)) == 0
        assert "migrated 8 entries" in capsys.readouterr().out
        with EvaluationCache(jsonl_cache) as src, EvaluationCache(dst) as out:
            assert out.backend == "sqlite"
            assert sorted(out.items()) == sorted(src.items())

    def test_small_batches_cover_everything(self, jsonl_cache, tmp_path):
        dst = tmp_path / "evals.sqlite"
        assert run_cli(
            "cache", "migrate", str(jsonl_cache), str(dst), "--batch-size", "3"
        ) == 0
        with EvaluationCache(dst) as out:
            assert len(out) == 8

    def test_rejects_same_src_and_dst(self, jsonl_cache, capsys):
        assert run_cli(
            "cache", "migrate", str(jsonl_cache), str(jsonl_cache)
        ) == 1
        assert "distinct" in capsys.readouterr().err


class TestCampaignFlushFlag:
    def test_campaign_accepts_cache_flush_every(self, tmp_path, capsys):
        cache = tmp_path / "evals.sqlite"
        rc = run_cli(
            "campaign", "--spec", "4096:INT4",
            "--population", "16", "--generations", "4",
            "--cache", str(cache), "--cache-flush-every", "32",
        )
        assert rc == 0
        with EvaluationCache(cache) as reopened:
            assert len(reopened) > 0  # flushed by campaign end
