"""Tests for the INT-to-FP converter: model and gate level."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.func.formats import FloatFormat
from repro.func.int2fp_model import ConversionResult, int_to_fp, pack_to_format
from repro.netlist.verify import verify_fp_datapath, verify_int2fp

BF16 = FloatFormat.from_precision("BF16")


class TestIntToFpModel:
    def test_zero(self):
        r = int_to_fp(0, 5, 8)
        assert r.is_zero
        assert r.mantissa == 0 and r.exponent == 0

    def test_msb_already_normalised(self):
        r = int_to_fp(0b10000000, 10, 8)
        assert r.lead == 7
        assert r.mantissa == 0b10000000
        assert r.exponent == 17

    def test_small_value_shifts_up(self):
        r = int_to_fp(0b00000011, 10, 8)
        assert r.lead == 1
        assert r.mantissa == 0b11000000
        assert r.exponent == 11

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            int_to_fp(256, 0, 8)
        with pytest.raises(ValueError):
            int_to_fp(-1, 0, 8)

    @given(st.integers(min_value=1, max_value=2**19 - 1), st.integers(0, 255))
    @settings(max_examples=100, deadline=None)
    def test_normalisation_invariants(self, value, base):
        r = int_to_fp(value, base, 19)
        # MSB set after normalisation; exponent encodes the magnitude.
        assert r.mantissa >> 18 == 1
        assert r.exponent == base + value.bit_length() - 1
        # The mantissa is the value left-aligned: shifting back recovers it.
        assert r.mantissa >> (19 - value.bit_length()) == value

    def test_pack_roundtrip_exact_when_it_fits(self):
        # br == BM == 8: no truncation.  With base_exp = bias, the packed
        # value decodes to significand * 2^(exponent - bias - (BM-1)) =
        # 176 * 2^(7-7) = 176.
        r = int_to_fp(0b1011_0000, BF16.bias, 8)
        packed = pack_to_format(r, sign=0, fmt=BF16)
        assert packed == 176.0

    def test_pack_zero(self):
        r = int_to_fp(0, 3, 8)
        assert pack_to_format(r, 0, BF16) == 0.0
        assert pack_to_format(r, 1, BF16) == 0.0

    def test_pack_sign(self):
        r = int_to_fp(128, BF16.bias, 8)
        assert pack_to_format(r, 1, BF16) < 0

    def test_pack_saturates(self):
        r = ConversionResult(
            mantissa=0xFF, exponent=10_000, lead=7, is_zero=False, br=8
        )
        assert pack_to_format(r, 0, BF16) == BF16.max_value


class TestGateLevelInt2Fp:
    @pytest.mark.parametrize("br,be", [(7, 4), (12, 5), (19, 8), (23, 8)])
    def test_equivalence(self, br, be):
        report = verify_int2fp(br, be, trials=30, seed=1)
        assert report.passed, report.mismatches[:3]


class TestFpDatapath:
    @pytest.mark.parametrize(
        "h,be,bm",
        [(2, 4, 4), (4, 5, 4), (4, 8, 8), (8, 8, 8), (4, 5, 11)],
    )
    def test_end_to_end(self, h, be, bm):
        report = verify_fp_datapath(h, be, bm, trials=6, seed=2)
        assert report.passed, report.mismatches[:3]
