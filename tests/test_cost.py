"""Tests for repro.model.cost."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.cost import Cost, ZERO_COST, parallel, series

finite = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)


class TestCost:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Cost(-1.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            Cost(0.0, -1.0, 0.0)
        with pytest.raises(ValueError):
            Cost(0.0, 0.0, -1.0)

    def test_scaled(self):
        c = Cost(2.0, 3.0, 4.0).scaled(area=2.0, energy=0.5)
        assert c == Cost(4.0, 3.0, 2.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Cost(1, 1, 1).area = 2


class TestCombinators:
    @given(finite, finite, finite, st.integers(min_value=0, max_value=1000))
    def test_parallel_scales_area_energy_not_delay(self, a, d, e, n):
        c = parallel(Cost(a, d, e), n)
        assert c.area == pytest.approx(a * n)
        assert c.energy == pytest.approx(e * n)
        assert c.delay == d

    def test_parallel_rejects_negative_count(self):
        with pytest.raises(ValueError):
            parallel(Cost(1, 1, 1), -1)

    @given(st.lists(st.tuples(finite, finite, finite), max_size=5))
    def test_series_accumulates_everything(self, triples):
        costs = [Cost(*t) for t in triples]
        total = series(*costs)
        assert total.area == pytest.approx(sum(t[0] for t in triples))
        assert total.delay == pytest.approx(sum(t[1] for t in triples))
        assert total.energy == pytest.approx(sum(t[2] for t in triples))

    def test_zero_cost_identity(self):
        c = Cost(1.0, 2.0, 3.0)
        assert series(c, ZERO_COST) == c
