"""Tests for repro.core.pareto (Eq. 1 and front utilities)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pareto import (
    dominates,
    hypervolume,
    knee_point,
    normalize_objectives,
    pareto_front,
    pareto_mask,
)

vectors = st.lists(
    st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=3, max_size=3),
    min_size=1,
    max_size=40,
)


class TestDominates:
    def test_strict_domination(self):
        assert dominates([1, 1], [2, 2])

    def test_partial_improvement_dominates(self):
        assert dominates([1, 2], [2, 2])

    def test_equal_does_not_dominate(self):
        assert not dominates([1, 1], [1, 1])

    def test_tradeoff_does_not_dominate(self):
        assert not dominates([1, 3], [2, 2])
        assert not dominates([2, 2], [1, 3])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            dominates([1], [1, 2])

    @given(vectors)
    @settings(max_examples=50, deadline=None)
    def test_antisymmetric(self, points):
        for u in points:
            for v in points:
                assert not (dominates(u, v) and dominates(v, u))


class TestParetoMask:
    def test_simple_front(self):
        pts = np.array([[1, 4], [2, 2], [4, 1], [3, 3], [5, 5]])
        mask = pareto_mask(pts)
        assert mask.tolist() == [True, True, True, False, False]

    def test_duplicates_kept(self):
        pts = np.array([[1, 1], [1, 1], [2, 2]])
        assert pareto_mask(pts).tolist() == [True, True, False]

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            pareto_mask(np.array([1.0, 2.0]))

    @given(vectors)
    @settings(max_examples=50, deadline=None)
    def test_front_members_mutually_nondominated(self, points):
        pts = np.array(points, dtype=float)
        mask = pareto_mask(pts)
        front = pts[mask]
        for i in range(len(front)):
            for j in range(len(front)):
                if i != j:
                    assert not dominates(front[i], front[j])

    @given(vectors)
    @settings(max_examples=50, deadline=None)
    def test_dominated_points_have_dominator_on_front(self, points):
        pts = np.array(points, dtype=float)
        mask = pareto_mask(pts)
        front = pts[mask]
        for i, keep in enumerate(mask):
            if not keep:
                assert any(dominates(f, pts[i]) for f in front)


class TestParetoFront:
    def test_returns_items(self):
        items = ["a", "b", "c"]
        objs = [[1, 2], [2, 1], [3, 3]]
        assert pareto_front(items, objs) == ["a", "b"]

    def test_empty(self):
        assert pareto_front([], []) == []

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pareto_front(["a"], [])


class TestHypervolume:
    def test_single_point_2d(self):
        assert hypervolume(np.array([[1.0, 1.0]]), [2.0, 2.0]) == pytest.approx(1.0)

    def test_two_point_staircase(self):
        pts = np.array([[1.0, 2.0], [2.0, 1.0]])
        # Union of (1..3)x(2..3) and (2..3)x(1..3) = 1*1 + 1*2 = 3.
        assert hypervolume(pts, [3.0, 3.0]) == pytest.approx(3.0)

    def test_points_outside_reference_ignored(self):
        pts = np.array([[5.0, 5.0]])
        assert hypervolume(pts, [2.0, 2.0]) == 0.0

    def test_3d_cube(self):
        pts = np.array([[0.0, 0.0, 0.0]])
        assert hypervolume(pts, [1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_3d_staircase(self):
        pts = np.array([[0.0, 1.0, 0.0], [1.0, 0.0, 0.0]])
        # Two 1x1x2 boxes overlapping in 1x1x... carefully: ref (2,2,2).
        # Box A: x in (0,2), y in (1,2), z in (0,2) -> 2*1*2 = 4
        # Box B: x in (1,2), y in (0,2), z in (0,2) -> 1*2*2 = 4
        # Overlap: x in (1,2), y in (1,2), z in (0,2) -> 1*1*2 = 2
        assert hypervolume(pts, [2.0, 2.0, 2.0]) == pytest.approx(6.0)

    @given(vectors)
    @settings(max_examples=30, deadline=None)
    def test_monotone_under_point_addition(self, points):
        pts = np.array(points, dtype=float)
        ref = [101.0, 101.0, 101.0]
        hv_all = hypervolume(pts, ref)
        hv_one = hypervolume(pts[:1], ref)
        assert hv_all >= hv_one - 1e-9


class TestKneePoint:
    def test_picks_balanced_solution(self):
        pts = np.array([[0.0, 1.0], [1.0, 0.0], [0.2, 0.2]])
        assert knee_point(pts) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            knee_point(np.empty((0, 2)))


class TestNormalize:
    def test_unit_box(self):
        pts = np.array([[0.0, 10.0], [5.0, 20.0], [10.0, 30.0]])
        unit = normalize_objectives(pts)
        assert unit.min() == 0.0
        assert unit.max() == 1.0

    def test_constant_column(self):
        pts = np.array([[1.0, 5.0], [2.0, 5.0]])
        unit = normalize_objectives(pts)
        assert np.all(unit[:, 1] == 0.0)
