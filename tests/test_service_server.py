"""Tests for the asyncio front-end and the HTTP/JSON campaign server."""

import asyncio

import pytest

from repro.service.api import CampaignRequest, SpecRequest
from repro.service.cache import EvaluationCache
from repro.service.events import EventKind
from repro.service.jobs import JobQueue, JobStatus
from repro.service.server import AsyncCampaignService, CampaignClient, serve


def tiny_request(**overrides) -> CampaignRequest:
    payload = dict(
        specs=(SpecRequest(4096, "INT4"),),
        population_size=16,
        generations=4,
        seed=1,
        exhaustive_threshold=0,  # force the GA: these tests watch generations
    )
    payload.update(overrides)
    return CampaignRequest(**payload)


def long_request(**overrides) -> CampaignRequest:
    return tiny_request(generations=200, **overrides)


class TestAsyncCampaignService:
    def test_submit_stream_result(self):
        async def scenario():
            async with AsyncCampaignService(
                workers=1, cache=EvaluationCache()
            ) as service:
                job_id = await service.submit(tiny_request())
                kinds = []
                async for event in service.events(job_id):
                    kinds.append(event.kind)
                response = await service.result(job_id, timeout=60.0)
                status = await service.status(job_id)
                return job_id, kinds, response, status

        job_id, kinds, response, status = asyncio.run(scenario())
        assert job_id == "job-1"
        assert status is JobStatus.DONE
        assert kinds[0] is EventKind.SPEC_STARTED
        assert kinds.count(EventKind.GENERATION_DONE) == 4
        assert kinds[-1] is EventKind.CAMPAIGN_DONE
        assert response.frontier
        assert response.evaluations > 0

    def test_cancel_mid_campaign_stops_early(self):
        async def scenario():
            async with AsyncCampaignService(
                workers=1, cache=EvaluationCache()
            ) as service:
                job_id = await service.submit(long_request())
                generations_seen = 0
                async for event in service.events(job_id):
                    if event.kind is EventKind.GENERATION_DONE:
                        generations_seen += 1
                        await service.cancel(job_id)
                    if event.terminal:
                        final = event
                status = await service.status(job_id)
                with pytest.raises(RuntimeError):
                    await service.result(job_id, timeout=60.0)
                return generations_seen, final, status

        generations_seen, final, status = asyncio.run(scenario())
        assert status is JobStatus.CANCELLED
        assert final.kind is EventKind.CAMPAIGN_CANCELLED
        assert 1 <= generations_seen < 200

    def test_fronted_queue_left_open(self):
        queue = JobQueue(cache=EvaluationCache(), workers=1)

        async def scenario():
            async with AsyncCampaignService(queue) as service:
                job_id = await service.submit(tiny_request())
                await service.result(job_id, timeout=60.0)

        asyncio.run(scenario())
        # The service must not have closed the caller's queue.
        second = queue.submit(tiny_request(seed=2))
        assert queue.wait(second, timeout=60.0) is JobStatus.DONE
        queue.close()

    def test_owned_service_requires_workers(self):
        with pytest.raises(ValueError):
            AsyncCampaignService(workers=0)


@pytest.fixture(scope="class")
def http_setup():
    queue = JobQueue(cache=EvaluationCache(), workers=2)
    server = serve(port=0, queue=queue)
    server.serve_in_background()
    yield CampaignClient(server.url), queue
    server.shutdown()
    queue.close()


class TestHTTPServer:
    def test_health_and_stats(self, http_setup):
        client, _ = http_setup
        assert client.healthy()
        stats = client.stats()
        assert stats["workers"] == 2

    def test_submit_watch_result_round_trip(self, http_setup):
        client, _ = http_setup
        job_id = client.submit(tiny_request())
        events = list(client.watch(job_id))
        assert events[0].kind is EventKind.SPEC_STARTED
        assert events[-1].kind is EventKind.CAMPAIGN_DONE
        assert [e.seq for e in events] == list(range(len(events)))
        response = client.result(job_id)
        assert response.frontier
        record = client.status(job_id)
        assert record["status"] == "done"
        assert any(j["job_id"] == job_id
                   for j in client._call("GET", "/api/campaigns")["jobs"])

    def test_duplicate_submission_deduplicates(self, http_setup):
        client, _ = http_setup
        first = client.submit(tiny_request(seed=5))
        second = client.submit(tiny_request(seed=5))
        assert first == second

    def test_cancel_over_http_stops_early(self, http_setup):
        client, _ = http_setup
        job_id = client.submit(long_request(seed=6))
        generations = 0
        cancelled = False
        for event in client.watch(job_id, poll_s=5.0):
            if event.kind is EventKind.GENERATION_DONE and not cancelled:
                client.cancel(job_id)
                cancelled = True
            if event.kind is EventKind.GENERATION_DONE:
                generations += 1
        assert client.status(job_id)["status"] == "cancelled"
        assert 1 <= generations < 200
        # The result endpoint refuses a cancelled job with a structured
        # 409 envelope.
        with pytest.raises(RuntimeError, match="409.*campaign_cancelled"):
            client.result(job_id)

    def test_result_before_finish_conflicts(self, http_setup):
        client, queue = http_setup
        job_id = client.submit(long_request(seed=7))
        with pytest.raises(RuntimeError, match="409"):
            client.result(job_id)
        client.cancel(job_id)
        queue.wait(job_id, timeout=60.0)

    def test_unknown_job_is_404(self, http_setup):
        client, _ = http_setup
        with pytest.raises(RuntimeError, match="404"):
            client.status("job-404")
        with pytest.raises(RuntimeError, match="404"):
            client.events("job-404")

    def test_bad_request_is_400(self, http_setup):
        client, _ = http_setup
        with pytest.raises(RuntimeError, match="400"):
            client._call("POST", "/api/campaigns", {"specs": []})

    def test_unknown_path_is_404(self, http_setup):
        client, _ = http_setup
        with pytest.raises(RuntimeError, match="404"):
            client._call("GET", "/api/nonsense")

    def test_problem_discovery_endpoint(self, http_setup):
        client, _ = http_setup
        problems = client.problems()
        names = [p["name"] for p in problems]
        assert names == ["dcim", "mapping"]
        dcim = problems[0]
        assert dcim["objectives"] == ["area", "delay", "energy",
                                      "neg_throughput"]
        assert dcim["spec_schema"]["wstore"]["required"] is True

    def test_error_envelope_is_structured(self, http_setup):
        import json as _json
        from urllib.error import HTTPError
        from urllib.request import urlopen

        client, _ = http_setup
        try:
            urlopen(f"{client.base_url}/api/campaigns/job-404")
        except HTTPError as exc:
            assert exc.code == 404
            envelope = _json.loads(exc.read().decode("utf-8"))
            assert envelope["error"]["code"] == "not_found"
            assert "job-404" in envelope["error"]["message"]
        else:  # pragma: no cover - the request must fail
            pytest.fail("expected an HTTP 404")

    def test_invalid_spec_is_400_with_code(self, http_setup):
        client, _ = http_setup
        with pytest.raises(RuntimeError, match="400.*invalid"):
            client._call(
                "POST",
                "/api/campaigns",
                {"problem": "mapping", "specs": [{"network": "nope"}]},
            )

    def test_mapping_campaign_over_http(self, http_setup):
        client, _ = http_setup
        request = CampaignRequest(
            problem="mapping",
            specs=({"network": "tiny_cnn", "wstore": 4096},),
            population_size=12,
            generations=3,
            seed=2,
        )
        job_id = client.submit(request)
        events = list(client.watch(job_id))
        assert events[-1].kind is EventKind.CAMPAIGN_DONE
        assert events[0].spec == "tiny_cnn:INT8:sequential"
        response = client.result(job_id)
        assert response.problem == "mapping"
        assert response.frontier[0].extras["n_macros"] >= 1
