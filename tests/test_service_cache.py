"""Tests for the content-addressed evaluation cache."""

import hashlib
import json
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.core.spec import DcimSpec
from repro.service.cache import (
    CacheStats,
    EvaluationCache,
    GenomeKeyer,
    evaluation_key,
    problem_fingerprint,
    stable_hash,
)
from repro.tech.cells import CellLibrary
from repro.model.cost import Cost


SPEC = DcimSpec(wstore=4096, precision="INT8")
LIB = CellLibrary.default()


class TestKeys:
    def test_stable_across_constructions(self):
        key_a = evaluation_key((1, 2, 3, 0), SPEC, LIB)
        key_b = evaluation_key(
            (1, 2, 3, 0), DcimSpec(wstore=4096, precision="INT8"), CellLibrary.default()
        )
        assert key_a == key_b

    def test_sensitive_to_genome(self):
        assert evaluation_key((1, 2, 3, 0), SPEC, LIB) != evaluation_key(
            (1, 2, 3, 1), SPEC, LIB
        )

    def test_sensitive_to_spec(self):
        other = DcimSpec(wstore=8192, precision="INT8")
        assert evaluation_key((1, 2, 3, 0), SPEC, LIB) != evaluation_key(
            (1, 2, 3, 0), other, LIB
        )

    def test_sensitive_to_library(self):
        tweaked = LIB.with_cell("NOR", Cost(1.5, 1.0, 1.0))
        assert evaluation_key((1, 2, 3, 0), SPEC, LIB) != evaluation_key(
            (1, 2, 3, 0), SPEC, tweaked
        )

    def test_stable_hash_ignores_key_order(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_matches_problem_evaluator_default_keys(self):
        # The public key function and the evaluator's precomputed-context
        # derivation must address the same cache entries.
        from repro.dse.problem import DcimProblem
        from repro.service.executor import ProblemEvaluator

        problem = DcimProblem(SPEC, LIB)
        evaluator = ProblemEvaluator(problem, cache=EvaluationCache())
        genome = problem.codec.enumerate()[0]
        assert evaluator.key_fn(genome) == evaluation_key(genome, SPEC, LIB)


class TestMemoryTier:
    def test_hit_miss_statistics(self):
        cache = EvaluationCache()
        assert cache.get("k") is None
        cache.put("k", (1.0, 2.0))
        assert cache.get("k") == (1.0, 2.0)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.memory_hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction(self):
        cache = EvaluationCache(max_memory_entries=2)
        cache.put("a", (1.0,))
        cache.put("b", (2.0,))
        cache.get("a")  # refresh "a": "b" is now least recently used
        cache.put("c", (3.0,))
        assert cache.get("a") == (1.0,)
        assert cache.get("c") == (3.0,)
        assert cache.get("b") is None  # evicted, no disk tier
        assert cache.stats.evictions == 1

    def test_get_many_put_many(self):
        cache = EvaluationCache()
        cache.put_many({"a": (1.0,), "b": (2.0,)})
        assert cache.get_many(["a", "missing", "b"]) == [(1.0,), None, (2.0,)]

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            EvaluationCache(max_memory_entries=0)


@pytest.mark.parametrize("backend,suffix", [("jsonl", ".jsonl"), ("sqlite", ".sqlite")])
class TestDiskTier:
    def test_persistence_round_trip(self, tmp_path, backend, suffix):
        path = tmp_path / f"cache{suffix}"
        with EvaluationCache(path, backend=backend) as cache:
            cache.put("k1", (1.0, -2.0))
            cache.put("k2", (3.5,))
        with EvaluationCache(path, backend=backend) as reopened:
            assert reopened.get("k1") == (1.0, -2.0)
            assert reopened.get("k2") == (3.5,)
            assert len(reopened) == 2

    def test_backend_guessed_from_suffix(self, tmp_path, backend, suffix):
        with EvaluationCache(tmp_path / f"cache{suffix}") as cache:
            assert cache.backend == backend

    def test_eviction_falls_back_to_disk(self, tmp_path, backend, suffix):
        path = tmp_path / f"cache{suffix}"
        with EvaluationCache(path, backend=backend, max_memory_entries=1) as cache:
            cache.put("a", (1.0,))
            cache.put("b", (2.0,))  # evicts "a" from memory
            assert cache.stats.evictions == 1
            assert cache.get("a") == (1.0,)
            # jsonl indexes the log in-process; sqlite queries the table.
            assert cache.stats.hits == 1

    def test_thread_safety_smoke(self, tmp_path, backend, suffix):
        cache = EvaluationCache(tmp_path / f"cache{suffix}", backend=backend)

        def worker(base: int) -> None:
            for i in range(50):
                cache.put(f"k{base + i}", (float(i),))
                cache.get(f"k{base + i}")

        threads = [threading.Thread(target=worker, args=(n * 50,)) for n in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) == 200
        cache.close()


class TestGenomeKeyer:
    """The fast keyer must stay bit-identical to evaluation_key forever:
    every cache file in the wild is addressed by the old formula."""

    GOLDEN_CONTEXT = "c" * 64
    # sha256 of the literal pre-PR canonical JSON
    # {"context":"ccc...ccc","genome":[1,2,3,0]} — never regenerate this.
    GOLDEN_KEY = "d22c611dfdebcd6fd5f4eb1d7e7b29bb259aac2ee9505b1b3deff491a6d95409"

    def test_golden_digest_pinned(self):
        assert GenomeKeyer(self.GOLDEN_CONTEXT)((1, 2, 3, 0)) == self.GOLDEN_KEY

    def test_matches_literal_pre_pr_formula(self):
        keyer = GenomeKeyer(self.GOLDEN_CONTEXT)
        for genome in [(0,), (1, 2, 3, 0), (7, 0, 0, 4, 2), tuple(range(12))]:
            text = json.dumps(
                {"genome": list(genome), "context": self.GOLDEN_CONTEXT},
                sort_keys=True,
                separators=(",", ":"),
                default=str,
            )
            assert keyer(genome) == hashlib.sha256(text.encode("utf-8")).hexdigest()

    def test_matches_evaluation_key_for_problem(self):
        keyer = GenomeKeyer.for_problem(SPEC, LIB)
        assert keyer.context == stable_hash(problem_fingerprint(SPEC, LIB))
        for genome in [(1, 2, 3, 0), (2, 4, 1, 1), (0, 0, 0, 0)]:
            assert keyer(genome) == evaluation_key(genome, SPEC, LIB)

    def test_matches_on_non_int_elements(self):
        # Exotic genome element types fall through json's default=str in
        # both the old and the new path (e.g. numpy integers).
        np = pytest.importorskip("numpy")
        keyer = GenomeKeyer(self.GOLDEN_CONTEXT)
        genome = tuple(np.int64(v) for v in (1, 2, 3, 0))
        assert keyer(genome) == stable_hash(
            {"genome": list(genome), "context": self.GOLDEN_CONTEXT}
        )

    def test_exhaustive_parity_over_codec(self):
        from repro.dse.problem import DcimProblem

        problem = DcimProblem(SPEC, LIB)
        keyer = GenomeKeyer.for_problem(SPEC, LIB)
        for genome in problem.codec.enumerate():
            assert keyer(genome) == evaluation_key(genome, SPEC, LIB)


@pytest.mark.parametrize("backend,suffix", [("jsonl", ".jsonl"), ("sqlite", ".sqlite")])
class TestBatchedDiskTier:
    def test_get_many_crosses_sqlite_chunk_boundary(self, tmp_path, backend, suffix):
        # 1200 keys spans three SELECT ... IN chunks on the sqlite tier.
        entries = {f"k{i}": (float(i),) for i in range(1200)}
        with EvaluationCache(tmp_path / f"c{suffix}", backend=backend) as cache:
            cache.put_many(entries)
        with EvaluationCache(
            tmp_path / f"c{suffix}", backend=backend, max_memory_entries=1
        ) as cache:
            keys = [f"k{i}" for i in range(1200)] + ["absent"]
            results = cache.get_many(keys)
            assert results[:-1] == [(float(i),) for i in range(1200)]
            assert results[-1] is None
            assert cache.stats.disk_hits == 1200
            assert cache.stats.misses == 1

    def test_get_many_counts_each_slot(self, tmp_path, backend, suffix):
        with EvaluationCache(
            tmp_path / f"c{suffix}", backend=backend, max_memory_entries=1
        ) as cache:
            cache.put_many({"a": (1.0,)})
            results = cache.get_many(["a", "a", "nope", "nope"])
            assert results == [(1.0,), (1.0,), None, None]
            # duplicate keys count once per slot, like a get() loop would
            assert cache.stats.hits == 2
            assert cache.stats.misses == 2

    def test_get_many_promotes_disk_hits(self, tmp_path, backend, suffix):
        with EvaluationCache(tmp_path / f"c{suffix}", backend=backend) as cache:
            cache.put("a", (1.0,))
        with EvaluationCache(tmp_path / f"c{suffix}", backend=backend) as cache:
            assert cache.get_many(["a"]) == [(1.0,)]
            assert cache.stats.disk_hits == 1
            assert cache.get("a") == (1.0,)
            assert cache.stats.memory_hits == 1  # second read from memory

    def test_put_many_round_trips_after_reopen(self, tmp_path, backend, suffix):
        with EvaluationCache(tmp_path / f"c{suffix}", backend=backend) as cache:
            cache.put_many({"a": (1.0, 2.0), "b": (3.0,)})
        with EvaluationCache(tmp_path / f"c{suffix}", backend=backend) as cache:
            assert cache.get_many(["a", "b"]) == [(1.0, 2.0), (3.0,)]


@pytest.mark.parametrize("backend,suffix", [("jsonl", ".jsonl"), ("sqlite", ".sqlite")])
class TestWriteBehind:
    def test_buffers_until_threshold(self, tmp_path, backend, suffix):
        path = tmp_path / f"c{suffix}"
        with EvaluationCache(path, backend=backend, flush_every=3) as cache:
            cache.put("a", (1.0,))
            cache.put("b", (2.0,))
            assert cache.pending_writes == 2
            with EvaluationCache(path, backend=backend) as other:
                assert other.get("a") is None  # nothing on disk yet
            cache.put("c", (3.0,))  # hits the threshold
            assert cache.pending_writes == 0
            with EvaluationCache(path, backend=backend) as other:
                assert other.get_many(["a", "b", "c"]) == [(1.0,), (2.0,), (3.0,)]

    def test_pending_entries_are_readable_and_counted(self, tmp_path, backend, suffix):
        with EvaluationCache(
            tmp_path / f"c{suffix}",
            backend=backend,
            flush_every=100,
            max_memory_entries=1,
        ) as cache:
            cache.put("a", (1.0,))
            cache.put("b", (2.0,))  # evicts "a" from the memory tier
            # "a" only exists in the write-behind buffer now, yet it
            # must still resolve (and count as a disk-tier hit).
            assert cache.get("a") == (1.0,)
            assert cache.stats.disk_hits == 1
            assert cache.get_many(["a", "b"]) == [(1.0,), (2.0,)]
            assert "a" in cache
            assert len(cache) == 2

    def test_explicit_flush_and_flush_on_close(self, tmp_path, backend, suffix):
        path = tmp_path / f"c{suffix}"
        cache = EvaluationCache(path, backend=backend, flush_every=100)
        cache.put("a", (1.0,))
        cache.flush()
        assert cache.pending_writes == 0
        cache.put("b", (2.0,))
        cache.close()  # flush-on-close is the durability backstop
        with EvaluationCache(path, backend=backend) as reopened:
            assert reopened.get_many(["a", "b"]) == [(1.0,), (2.0,)]

    def test_write_behind_context_flushes_on_exception(self, tmp_path, backend, suffix):
        path = tmp_path / f"c{suffix}"
        cache = EvaluationCache(path, backend=backend)
        with pytest.raises(RuntimeError):
            with cache.write_behind(1000):
                cache.put("a", (1.0,))
                assert cache.pending_writes == 1
                raise RuntimeError("campaign died")
        assert cache.pending_writes == 0
        assert cache.flush_every is None  # previous cadence restored
        with EvaluationCache(path, backend=backend) as reopened:
            assert reopened.get("a") == (1.0,)  # durable despite the crash
        cache.close()

    def test_items_flushes_first(self, tmp_path, backend, suffix):
        with EvaluationCache(
            tmp_path / f"c{suffix}", backend=backend, flush_every=100
        ) as cache:
            cache.put_many({"a": (1.0,), "b": (2.0,)})
            assert sorted(cache.items()) == [("a", (1.0,)), ("b", (2.0,))]
            assert cache.pending_writes == 0

    def test_rejects_bad_cadence(self, tmp_path, backend, suffix):
        with pytest.raises(ValueError):
            EvaluationCache(tmp_path / f"c{suffix}", backend=backend, flush_every=0)
        with EvaluationCache(tmp_path / f"c{suffix}", backend=backend) as cache:
            with pytest.raises(ValueError):
                with cache.write_behind(0):
                    pass


class TestBatchMetrics:
    def test_batched_ops_feed_batch_histograms(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        cache = EvaluationCache(
            tmp_path / "c.sqlite", backend="sqlite", registry=registry
        )
        cache.put_many({f"k{i}": (float(i),) for i in range(4)})
        cache.get_many(["k0", "k1", "missing"])
        with cache.write_behind(100):
            cache.put("late", (9.0,))
        # flush happened on context exit -> one "flush" batch observed
        text = registry.render_prometheus()
        assert 'repro_cache_batch_size_count{cache="' in text
        for op in ("get", "put", "flush"):
            assert f'op="{op}"' in text
        cache.close()

    def test_per_key_ops_do_not_touch_batch_series(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        cache = EvaluationCache(
            tmp_path / "c.sqlite", backend="sqlite", registry=registry
        )
        cache.put("k", (1.0,))
        cache.get("k")
        counts = [
            line
            for line in registry.render_prometheus().splitlines()
            if line.startswith("repro_cache_batch_size_count")
        ]
        assert counts  # the series exist from construction...
        assert all(line.endswith(" 0") for line in counts)  # ...but idle
        cache.close()


class TestJsonlCompaction:
    def _stale_log(self, path, rewrites: int) -> None:
        with EvaluationCache(path, backend="jsonl") as cache:
            for round_ in range(rewrites):
                cache.put_many({f"k{i}": (float(round_), float(i)) for i in range(4)})

    def test_auto_compacts_mostly_stale_log_on_open(self, tmp_path):
        path = tmp_path / "c.jsonl"
        self._stale_log(path, rewrites=4)  # 16 lines, 4 live -> 75% stale
        assert sum(1 for _ in path.open()) == 16
        with EvaluationCache(path, backend="jsonl") as cache:
            assert cache.info()["log_lines"] == 4
            assert cache.info()["stale_lines"] == 0
            assert cache.get_many([f"k{i}" for i in range(4)]) == [
                (3.0, float(i)) for i in range(4)
            ]
        assert sum(1 for _ in path.open()) == 4

    def test_leaves_mostly_live_log_alone(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with EvaluationCache(path, backend="jsonl") as cache:
            cache.put_many({f"k{i}": (float(i),) for i in range(10)})
            cache.put("k0", (99.0,))  # 11 lines, 1 stale -> 9% stale
        with EvaluationCache(path, backend="jsonl") as cache:
            assert cache.info()["log_lines"] == 11
            assert cache.info()["stale_lines"] == 1

    def test_explicit_compact_reports_savings(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with EvaluationCache(path, backend="jsonl") as cache:
            cache.put_many({f"k{i}": (0.0,) for i in range(8)})
            cache.put_many({f"k{i}": (1.0,) for i in range(2)})
            report = cache.compact()
            assert report["backend"] == "jsonl"
            assert report["lines_before"] == 10
            assert report["lines_after"] == 8
            assert report["bytes_after"] < report["bytes_before"]
            # the reopened append handle still works after a rewrite
            cache.put("extra", (2.0,))
        with EvaluationCache(path, backend="jsonl") as cache:
            assert cache.get("extra") == (2.0,)
            assert cache.get("k0") == (1.0,)

    def test_sqlite_compact_vacuums(self, tmp_path):
        path = tmp_path / "c.sqlite"
        with EvaluationCache(path, backend="sqlite") as cache:
            cache.put_many({f"k{i}": (float(i),) for i in range(16)})
            report = cache.compact()
            assert report["backend"] == "sqlite"
            assert report["bytes_after"] > 0

    def test_memory_only_compact_rejected(self):
        with pytest.raises(ValueError):
            EvaluationCache().compact()


_WRITER_SCRIPT = """
import sys
from repro.service.cache import EvaluationCache

path, base = sys.argv[1], int(sys.argv[2])
cache = EvaluationCache(path, backend="sqlite")
for start in range(0, 400, 20):
    cache.put_many(
        {f"w{base}-{start + i}": (float(base), float(start + i)) for i in range(20)}
    )
cache.close()
"""


class TestConcurrentWriters:
    def test_two_processes_share_one_wal_cache(self, tmp_path):
        """Two writers batch into one sqlite file at once: WAL mode plus
        the busy timeout means no lost entries and no 'database is
        locked' failures."""
        path = tmp_path / "shared.sqlite"
        src = str(Path(__file__).resolve().parents[1] / "src")
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _WRITER_SCRIPT, str(path), str(base)],
                env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
                stderr=subprocess.PIPE,
                text=True,
            )
            for base in (1, 2)
        ]
        for proc in procs:
            _, stderr = proc.communicate(timeout=120)
            assert proc.returncode == 0, stderr
            assert "database is locked" not in stderr
        with EvaluationCache(path, backend="sqlite") as cache:
            assert len(cache) == 800
            keys = [f"w{base}-{i}" for base in (1, 2) for i in range(400)]
            results = cache.get_many(keys)
            assert all(r is not None for r in results)
            assert results[0] == (1.0, 0.0)
            assert results[-1] == (2.0, 399.0)


class TestStats:
    def test_hit_rate_idle(self):
        assert CacheStats().hit_rate == 0.0

    def test_as_dict_shape(self):
        stats = CacheStats(hits=3, misses=1)
        payload = stats.as_dict()
        assert payload["hits"] == 3
        assert payload["hit_rate"] == 0.75

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            EvaluationCache(tmp_path / "c.jsonl", backend="redis")
