"""Tests for the content-addressed evaluation cache."""

import threading

import pytest

from repro.core.spec import DcimSpec
from repro.service.cache import (
    CacheStats,
    EvaluationCache,
    evaluation_key,
    stable_hash,
)
from repro.tech.cells import CellLibrary
from repro.model.cost import Cost


SPEC = DcimSpec(wstore=4096, precision="INT8")
LIB = CellLibrary.default()


class TestKeys:
    def test_stable_across_constructions(self):
        key_a = evaluation_key((1, 2, 3, 0), SPEC, LIB)
        key_b = evaluation_key(
            (1, 2, 3, 0), DcimSpec(wstore=4096, precision="INT8"), CellLibrary.default()
        )
        assert key_a == key_b

    def test_sensitive_to_genome(self):
        assert evaluation_key((1, 2, 3, 0), SPEC, LIB) != evaluation_key(
            (1, 2, 3, 1), SPEC, LIB
        )

    def test_sensitive_to_spec(self):
        other = DcimSpec(wstore=8192, precision="INT8")
        assert evaluation_key((1, 2, 3, 0), SPEC, LIB) != evaluation_key(
            (1, 2, 3, 0), other, LIB
        )

    def test_sensitive_to_library(self):
        tweaked = LIB.with_cell("NOR", Cost(1.5, 1.0, 1.0))
        assert evaluation_key((1, 2, 3, 0), SPEC, LIB) != evaluation_key(
            (1, 2, 3, 0), SPEC, tweaked
        )

    def test_stable_hash_ignores_key_order(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_matches_problem_evaluator_default_keys(self):
        # The public key function and the evaluator's precomputed-context
        # derivation must address the same cache entries.
        from repro.dse.problem import DcimProblem
        from repro.service.executor import ProblemEvaluator

        problem = DcimProblem(SPEC, LIB)
        evaluator = ProblemEvaluator(problem, cache=EvaluationCache())
        genome = problem.codec.enumerate()[0]
        assert evaluator.key_fn(genome) == evaluation_key(genome, SPEC, LIB)


class TestMemoryTier:
    def test_hit_miss_statistics(self):
        cache = EvaluationCache()
        assert cache.get("k") is None
        cache.put("k", (1.0, 2.0))
        assert cache.get("k") == (1.0, 2.0)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.memory_hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction(self):
        cache = EvaluationCache(max_memory_entries=2)
        cache.put("a", (1.0,))
        cache.put("b", (2.0,))
        cache.get("a")  # refresh "a": "b" is now least recently used
        cache.put("c", (3.0,))
        assert cache.get("a") == (1.0,)
        assert cache.get("c") == (3.0,)
        assert cache.get("b") is None  # evicted, no disk tier
        assert cache.stats.evictions == 1

    def test_get_many_put_many(self):
        cache = EvaluationCache()
        cache.put_many({"a": (1.0,), "b": (2.0,)})
        assert cache.get_many(["a", "missing", "b"]) == [(1.0,), None, (2.0,)]

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            EvaluationCache(max_memory_entries=0)


@pytest.mark.parametrize("backend,suffix", [("jsonl", ".jsonl"), ("sqlite", ".sqlite")])
class TestDiskTier:
    def test_persistence_round_trip(self, tmp_path, backend, suffix):
        path = tmp_path / f"cache{suffix}"
        with EvaluationCache(path, backend=backend) as cache:
            cache.put("k1", (1.0, -2.0))
            cache.put("k2", (3.5,))
        with EvaluationCache(path, backend=backend) as reopened:
            assert reopened.get("k1") == (1.0, -2.0)
            assert reopened.get("k2") == (3.5,)
            assert len(reopened) == 2

    def test_backend_guessed_from_suffix(self, tmp_path, backend, suffix):
        with EvaluationCache(tmp_path / f"cache{suffix}") as cache:
            assert cache.backend == backend

    def test_eviction_falls_back_to_disk(self, tmp_path, backend, suffix):
        path = tmp_path / f"cache{suffix}"
        with EvaluationCache(path, backend=backend, max_memory_entries=1) as cache:
            cache.put("a", (1.0,))
            cache.put("b", (2.0,))  # evicts "a" from memory
            assert cache.stats.evictions == 1
            assert cache.get("a") == (1.0,)
            # jsonl indexes the log in-process; sqlite queries the table.
            assert cache.stats.hits == 1

    def test_thread_safety_smoke(self, tmp_path, backend, suffix):
        cache = EvaluationCache(tmp_path / f"cache{suffix}", backend=backend)

        def worker(base: int) -> None:
            for i in range(50):
                cache.put(f"k{base + i}", (float(i),))
                cache.get(f"k{base + i}")

        threads = [threading.Thread(target=worker, args=(n * 50,)) for n in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) == 200
        cache.close()


class TestStats:
    def test_hit_rate_idle(self):
        assert CacheStats().hit_rate == 0.0

    def test_as_dict_shape(self):
        stats = CacheStats(hits=3, misses=1)
        payload = stats.as_dict()
        assert payload["hits"] == 3
        assert payload["hit_rate"] == 0.75

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            EvaluationCache(tmp_path / "c.jsonl", backend="redis")
