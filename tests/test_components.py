"""Tests for repro.model.components (paper Table IV, reconstructed)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.components import (
    accumulator_width,
    adder_tree,
    converter_width,
    fusion_width,
    input_buffer,
    int_to_fp_converter,
    prealignment,
    result_fusion,
    shift_accumulator,
)
from repro.model.logic import adder, barrel_shifter, clog2, register_bank
from repro.tech.cells import CellLibrary

LIB = CellLibrary.default()


class TestAdderTree:
    def test_two_inputs_is_one_adder(self):
        assert adder_tree(LIB, 2, 8) == adder(LIB, 8)

    def test_single_input_is_wire(self):
        c = adder_tree(LIB, 1, 8)
        assert (c.area, c.delay, c.energy) == (0.0, 0.0, 0.0)

    def test_adder_count_and_growing_width(self):
        # H=4, k=2: level 1 has two 2-bit adders, level 2 one 3-bit adder.
        c = adder_tree(LIB, 4, 2)
        expected_area = 2 * adder(LIB, 2).area + adder(LIB, 3).area
        expected_delay = adder(LIB, 2).delay + adder(LIB, 3).delay
        assert c.area == pytest.approx(expected_area)
        assert c.delay == pytest.approx(expected_delay)

    @given(st.integers(min_value=1, max_value=512), st.integers(min_value=1, max_value=16))
    def test_total_adders_is_h_minus_one(self, h, k):
        # A binary reduction of H operands always uses H-1 adders; since
        # adder area grows with level, the area is bounded by (H-1) times
        # the widest adder and at least (H-1) times the narrowest.
        c = adder_tree(LIB, h, k)
        narrow = adder(LIB, k).area
        wide = adder(LIB, k + clog2(max(h, 1)) ).area if h > 1 else 0.0
        assert (h - 1) * narrow <= c.area + 1e-9
        if h > 1:
            assert c.area <= (h - 1) * wide + 1e-9

    @given(st.integers(min_value=2, max_value=512))
    def test_delay_has_log_levels(self, h):
        # Critical path crosses exactly clog2(h) adder levels.
        c = adder_tree(LIB, h, 4)
        levels = clog2(h)
        assert c.delay >= levels * adder(LIB, 4).delay - 1e-9
        assert c.delay <= levels * adder(LIB, 4 + levels).delay + 1e-9

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            adder_tree(LIB, 0, 4)
        with pytest.raises(ValueError):
            adder_tree(LIB, 4, 0)


class TestShiftAccumulator:
    def test_width_is_bx_plus_log2h(self):
        assert accumulator_width(8, 128) == 8 + 7

    def test_composition(self):
        ba = accumulator_width(8, 128)
        c = shift_accumulator(LIB, 8, 128)
        expected_area = (
            register_bank(LIB, ba).area
            + barrel_shifter(LIB, ba).area
            + adder(LIB, ba).area
        )
        assert c.area == pytest.approx(expected_area)
        # Combinational loop: shifter then adder.
        assert c.delay == pytest.approx(
            barrel_shifter(LIB, ba).delay + adder(LIB, ba).delay
        )


class TestResultFusion:
    def test_single_bit_weight_is_wire(self):
        c = result_fusion(LIB, 1, 8, 128)
        assert c.area == 0.0

    def test_width(self):
        assert fusion_width(4, 8, 128) == 4 + 8 + 7

    def test_adder_count(self):
        bw = 4
        width = fusion_width(bw, 8, 128)
        c = result_fusion(LIB, bw, 8, 128)
        assert c.area == pytest.approx((bw - 1) * adder(LIB, width).area)
        assert c.delay == pytest.approx(clog2(bw) * adder(LIB, width).delay)


class TestPrealignment:
    def test_structure_counts(self):
        h, be, bm = 4, 8, 8
        c = prealignment(LIB, h, be, bm)
        # 3 comparator+mux tree nodes, 4 subtractors, 4 shifters.
        from repro.model.logic import comparator, mux
        comp = comparator(LIB, be)
        sel = mux(LIB, 2)
        sub = adder(LIB, be)
        shift = barrel_shifter(LIB, bm)
        expected = 3 * (comp.area + be * sel.area) + 4 * (sub.area + shift.area)
        assert c.area == pytest.approx(expected)

    def test_delay_scales_with_log_h(self):
        d1 = prealignment(LIB, 16, 8, 8).delay
        d2 = prealignment(LIB, 256, 8, 8).delay
        assert d2 > d1
        # Tree portion grows by 4 levels between 16 and 256 inputs.
        from repro.model.logic import comparator, mux
        level = comparator(LIB, 8).delay + mux(LIB, 2).delay
        assert d2 - d1 == pytest.approx(4 * level)

    def test_bigger_mantissa_bigger_shifters(self):
        small = prealignment(LIB, 64, 8, 8)
        large = prealignment(LIB, 64, 8, 24)
        assert large.area > small.area


class TestIntToFpConverter:
    def test_result_width(self):
        # Br = Bw + BM + log2 H (prose, Section III-A).
        assert converter_width(8, 8, 128) == 8 + 8 + 7

    def test_contains_normalising_shifter(self):
        br = converter_width(8, 8, 128)
        c = int_to_fp_converter(LIB, 8, 8, 128, 8)
        assert c.area > barrel_shifter(LIB, br).area


class TestInputBuffer:
    def test_one_dff_per_buffered_bit(self):
        c = input_buffer(LIB, 128, 8)
        assert c.area == pytest.approx(128 * 8 * LIB.dff.area)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            input_buffer(LIB, 0, 8)
