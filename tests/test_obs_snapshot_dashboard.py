"""Tests for metrics history persistence, the snapshotter, and the dashboard."""

import threading
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.snapshot import MetricsSnapshotter
from repro.reporting import render_dashboard, write_dashboard
from repro.store import MetricsSnapshot, RunStore


@pytest.fixture
def store(tmp_path):
    with RunStore(tmp_path / "runs.sqlite") as store:
        yield store


class TestMetricsHistory:
    def test_append_and_read_oldest_first(self, store):
        store.append_metrics_snapshot({"a": 1.0}, snapshot_at=100.0)
        store.append_metrics_snapshot({"a": 2.0}, snapshot_at=200.0)
        store.append_metrics_snapshot({"a": 3.0}, snapshot_at=300.0)
        history = store.metrics_history()
        assert [row.metrics["a"] for row in history] == [1.0, 2.0, 3.0]
        assert all(isinstance(row, MetricsSnapshot) for row in history)

    def test_limit_keeps_most_recent(self, store):
        for i in range(5):
            store.append_metrics_snapshot({"a": float(i)}, snapshot_at=float(i))
        history = store.metrics_history(limit=2)
        assert [row.metrics["a"] for row in history] == [3.0, 4.0]

    def test_source_and_since_filters(self, store):
        store.append_metrics_snapshot({}, source="serve", snapshot_at=10.0)
        store.append_metrics_snapshot({}, source="bench", snapshot_at=20.0)
        store.append_metrics_snapshot({}, source="serve", snapshot_at=30.0)
        assert len(store.metrics_history(source="serve")) == 2
        assert len(store.metrics_history(since=20.0)) == 2
        assert len(store.metrics_history(source="serve", since=20.0)) == 1

    def test_limit_validated(self, store):
        with pytest.raises(ValueError):
            store.metrics_history(limit=-1)

    def test_prune(self, store):
        now = time.time()
        store.append_metrics_snapshot({}, snapshot_at=now - 1000.0)
        store.append_metrics_snapshot({}, snapshot_at=now)
        assert store.prune_metrics_history(older_than_s=500.0) == 1
        assert len(store.metrics_history()) == 1

    def test_round_trips_sample_shape(self, store):
        registry = MetricsRegistry()
        registry.counter("hits", labelnames=("tier",)).labels("ram").inc(3)
        store.append_metrics_snapshot(registry.sample_values())
        (row,) = store.metrics_history()
        assert row.metrics['hits{tier="ram"}'] == 3.0
        assert row.to_dict()["metrics"] == row.metrics


class TestMetricsSnapshotter:
    def test_snapshot_once(self, store):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        snapshotter = MetricsSnapshotter(store, registry, source="test")
        record = snapshotter.snapshot_once()
        assert record.source == "test"
        assert record.metrics["a"] == 1.0
        assert snapshotter.snapshots == 1

    def test_threaded_sampling_and_final_flush(self, store):
        registry = MetricsRegistry()
        snapshotter = MetricsSnapshotter(store, registry, interval_s=0.05)
        with snapshotter:
            deadline = time.time() + 5.0
            while snapshotter.snapshots < 2 and time.time() < deadline:
                time.sleep(0.01)
        # stop() flushed one final snapshot on top of the ticks.
        assert snapshotter.snapshots >= 3
        assert len(store.metrics_history()) == snapshotter.snapshots
        assert not any(
            thread.name == "metrics-snapshotter"
            for thread in threading.enumerate()
        )

    def test_store_errors_are_counted_not_raised(self):
        class BrokenStore:
            def append_metrics_snapshot(self, metrics, source=""):
                raise RuntimeError("disk full")

        snapshotter = MetricsSnapshotter(BrokenStore(), MetricsRegistry())
        snapshotter.start()
        snapshotter.stop(final_snapshot=True)
        assert snapshotter.errors >= 1
        assert snapshotter.snapshots == 0

    def test_validates_interval(self, store):
        with pytest.raises(ValueError):
            MetricsSnapshotter(store, interval_s=0.0)


class TestDashboard:
    def fed_store(self, store):
        registry = MetricsRegistry()
        requests = registry.counter("repro_http_requests_total")
        evals = registry.counter("repro_evaluations_total")
        hits = registry.counter("repro_cache_hits_total")
        misses = registry.counter("repro_cache_misses_total")
        depth = registry.gauge("repro_queue_depth")
        for tick in range(6):
            requests.inc(5)
            evals.inc(100)
            hits.inc(8)
            misses.inc(2)
            depth.set(tick % 3)
            store.append_metrics_snapshot(
                registry.sample_values(), snapshot_at=1000.0 + tick * 30.0
            )
        return store

    def test_renders_charts_from_history(self, store):
        html = render_dashboard(self.fed_store(store))
        assert html.startswith("<!DOCTYPE html>")
        for expected in (
            "<html",
            "repro operations",
            "Requests / s",
            "Evaluations / s",
            "Cache hit rate",
            "Queue depth",
            "<svg",
            "polyline",
            "prefers-color-scheme: dark",
        ):
            assert expected in html, f"dashboard is missing {expected!r}"
        # Self-contained: no external scripts, stylesheets, or images.
        assert "<script" not in html
        assert "http://" not in html and "https://" not in html
        assert 'rel="stylesheet"' not in html

    def test_empty_store_renders_placeholder(self, store):
        html = render_dashboard(store)
        assert "<html" in html
        assert "not enough samples yet" in html
        assert "<svg" not in html

    def test_snapshot_table_is_accessibility_fallback(self, store):
        html = render_dashboard(self.fed_store(store))
        assert "<table" in html

    def test_write_dashboard(self, store, tmp_path):
        out = write_dashboard(
            self.fed_store(store), tmp_path / "dash" / "index.html",
            title="smoke board",
        )
        text = out.read_text(encoding="utf-8")
        assert "smoke board" in text
