"""Tests for repro.tech (cells, technology, pdk, liberty)."""

import pytest

from repro.model.cost import Cost
from repro.tech import (
    GENERIC22,
    GENERIC28,
    CellLibrary,
    TABLE3_CELLS,
    Technology,
    available_pdks,
    dump_library,
    load_library,
    load_pdk,
)


class TestCellLibrary:
    def test_default_matches_table3(self):
        lib = CellLibrary.default()
        assert lib.nor == Cost(1.0, 1.0, 1.0)
        assert lib.or_gate == Cost(1.3, 1.0, 2.3)
        assert lib.mux2 == Cost(2.2, 2.2, 3.0)
        assert lib.half_adder == Cost(4.3, 2.5, 6.9)
        assert lib.full_adder == Cost(5.7, 3.3, 8.4)
        assert lib.dff == Cost(6.6, 0.0, 9.6)
        assert lib.sram == Cost(2.2, 0.0, 0.0)

    def test_sram_free_delay_and_power(self):
        # Weights are hard-wired to the compute unit: no precharge, and
        # leakage is neglected (Section III-B-1).
        lib = CellLibrary.default()
        assert lib.sram.delay == 0.0
        assert lib.sram.energy == 0.0

    def test_missing_required_cell_rejected(self):
        cells = dict(TABLE3_CELLS)
        del cells["FA"]
        with pytest.raises(ValueError, match="FA"):
            CellLibrary(name="broken", cells=cells)

    def test_with_cell_override(self):
        lib = CellLibrary.default().with_cell("NOR", Cost(2.0, 1.0, 1.0))
        assert lib.nor.area == 2.0
        # Original default untouched.
        assert CellLibrary.default().nor.area == 1.0

    def test_getitem_unknown(self):
        with pytest.raises(KeyError):
            CellLibrary.default()["NAND3"]

    def test_contains(self):
        lib = CellLibrary.default()
        assert "NOR" in lib
        assert "NAND3" not in lib


class TestTechnology:
    def test_area_conversion(self):
        t = Technology("t", 28, gate_area_um2=0.1, gate_delay_ps=10, gate_energy_fj=0.5)
        assert t.area_um2(100) == pytest.approx(10.0)
        assert t.area_mm2(1e7) == pytest.approx(1.0)

    def test_delay_conversion(self):
        t = Technology("t", 28, gate_area_um2=0.1, gate_delay_ps=10, gate_energy_fj=0.5)
        assert t.delay_ns(100) == pytest.approx(1.0)

    def test_energy_uses_activity(self):
        t = Technology(
            "t", 28, gate_area_um2=0.1, gate_delay_ps=10, gate_energy_fj=1.0,
            activity=0.1,
        )
        assert t.energy_fj(100) == pytest.approx(10.0)
        assert t.energy_fj(100, activity=1.0) == pytest.approx(100.0)

    def test_voltage_scaling(self):
        t = Technology("t", 28, gate_area_um2=0.1, gate_delay_ps=10, gate_energy_fj=1.0)
        low = t.with_voltage(0.45)  # half nominal
        assert low.energy_fj(1, activity=1.0) == pytest.approx(0.25)
        assert low.delay_ns(1) == pytest.approx(2 * t.delay_ns(1))

    def test_node_scaling(self):
        half = GENERIC28.scaled_to_node(14.0)
        assert half.gate_area_um2 == pytest.approx(GENERIC28.gate_area_um2 / 4)
        assert half.gate_delay_ps == pytest.approx(GENERIC28.gate_delay_ps / 2)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Technology("t", 28, gate_area_um2=0, gate_delay_ps=1, gate_energy_fj=1)
        with pytest.raises(ValueError):
            Technology("t", 28, 0.1, 10, 0.5, activity=0.0)
        with pytest.raises(ValueError):
            Technology("t", 28, 0.1, 10, 0.5, utilization=1.5)


class TestPdk:
    def test_generic28_registered(self):
        assert "generic28" in available_pdks()
        assert load_pdk("generic28") is GENERIC28

    def test_generic22_scaled_from_28(self):
        assert GENERIC22.node_nm == 22.0
        ratio = 22.0 / 28.0
        assert GENERIC22.gate_area_um2 == pytest.approx(
            GENERIC28.gate_area_um2 * ratio**2
        )

    def test_unknown_pdk(self):
        with pytest.raises(KeyError):
            load_pdk("tsmc28-real")

    def test_paper_operating_point(self):
        # Fig. 8 quotes efficiencies at 0.9 V and 10 % sparsity.
        assert GENERIC28.voltage_v == 0.9
        assert GENERIC28.activity == 0.1


class TestLiberty:
    def test_roundtrip(self):
        lib = CellLibrary.default()
        text = dump_library(lib)
        back = load_library(text)
        assert back.name == lib.name
        assert back.cells == lib.cells

    def test_load_rejects_garbage(self):
        with pytest.raises(ValueError):
            load_library("not liberty at all")

    def test_load_rejects_incomplete_cell(self):
        text = "library (x) { cell (NOR) { area: 1.0; } }"
        with pytest.raises(ValueError, match="NOR"):
            load_library(text)

    def test_dump_is_parseable_liberty_shape(self):
        text = dump_library(CellLibrary.default())
        assert text.startswith("library (table3) {")
        assert "cell (NOR)" in text
