"""Regression pins: generated artifacts must stay stable.

The template generator, the cost models and the calibration constants
are pinned by content hashes and exact values so accidental changes to
any of them fail loudly.  When a change is *intentional*, update the
pins here (and the corresponding EXPERIMENTS.md rows).
"""

import hashlib

import pytest

from repro.core.spec import DesignPoint
from repro.rtl import generate_rtl
from repro.tech import GENERIC28


def bundle_hash(design: DesignPoint) -> str:
    bundle = generate_rtl(design)
    return hashlib.sha256(bundle.source.encode()).hexdigest()[:16]


class TestRtlStability:
    def test_generation_is_deterministic(self):
        design = DesignPoint(precision="INT8", n=16, h=8, l=4, k=4)
        assert bundle_hash(design) == bundle_hash(design)

    def test_distinct_designs_distinct_rtl(self):
        a = bundle_hash(DesignPoint(precision="INT8", n=16, h=8, l=4, k=4))
        b = bundle_hash(DesignPoint(precision="INT8", n=16, h=8, l=4, k=8))
        assert a != b

    def test_module_count_pinned(self):
        int_bundle = generate_rtl(DesignPoint(precision="INT8", n=16, h=8, l=4, k=4))
        fp_bundle = generate_rtl(DesignPoint(precision="BF16", n=16, h=8, l=4, k=8))
        assert len(int_bundle.modules) == 8
        assert len(fp_bundle.modules) == 10


class TestCalibrationPins:
    """The generic28 calibration backs every EXPERIMENTS.md number."""

    def test_gate_constants(self):
        assert GENERIC28.gate_area_um2 == 0.104
        assert GENERIC28.gate_delay_ps == 9.5
        assert GENERIC28.gate_energy_fj == 0.40
        assert GENERIC28.utilization == 0.72

    def test_fig6a_anchor(self):
        m = DesignPoint(precision="INT8", n=32, h=128, l=16, k=8).metrics(GENERIC28)
        assert m.layout_area_mm2 == pytest.approx(0.0787, abs=0.0005)

    def test_fig8_design_a_anchor(self):
        m = DesignPoint(precision="INT8", n=64, h=128, l=64, k=8).metrics(GENERIC28)
        assert m.tops_per_watt == pytest.approx(22.4, abs=0.2)
        assert m.tops_per_mm2 == pytest.approx(2.02, abs=0.05)

    def test_fig8_design_b_anchor(self):
        m = DesignPoint(precision="BF16", n=64, h=128, l=64, k=8).metrics(GENERIC28)
        assert m.tops_per_watt == pytest.approx(21.7, abs=0.2)

    def test_cost_model_normalised_pins(self):
        # Library-level pins, independent of the PDK calibration.
        cost = DesignPoint(precision="INT8", n=32, h=128, l=16, k=8).macro_cost()
        assert cost.sram_bits == 65536
        assert cost.ops_per_pass == 1024.0
        assert cost.area == pytest.approx(544543.0, rel=1e-3)
        assert cost.delay == pytest.approx(258.3, rel=1e-3)
