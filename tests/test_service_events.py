"""Tests for campaign progress events and the bounded event buffer."""

import threading
import time

import pytest

from repro.service.events import CampaignEvent, EventBuffer, EventKind


def event(kind=EventKind.GENERATION_DONE, **overrides) -> CampaignEvent:
    payload = dict(
        kind=kind,
        spec_index=0,
        spec="4096:INT8",
        generation=3,
        generations=10,
        evaluations=120,
        front_size=17,
        cache_hit_rate=0.25,
    )
    payload.update(overrides)
    return CampaignEvent(**payload)


class TestCampaignEvent:
    @pytest.mark.parametrize("kind", list(EventKind))
    def test_json_round_trip(self, kind):
        original = event(kind=kind, message="detail")
        assert CampaignEvent.from_json(original.to_json()) == original

    def test_kind_accepts_raw_string(self):
        assert CampaignEvent(kind="spec_done").kind is EventKind.SPEC_DONE

    def test_terminal_kinds(self):
        terminal = {k for k in EventKind if k.terminal}
        assert terminal == {
            EventKind.CAMPAIGN_DONE,
            EventKind.CAMPAIGN_FAILED,
            EventKind.CAMPAIGN_CANCELLED,
        }

    @pytest.mark.parametrize("kind", list(EventKind))
    def test_describe_is_single_line(self, kind):
        rendered = event(
            kind=kind, message="boom", wall_time_s=1.5
        ).describe()
        assert rendered
        assert "\n" not in rendered


class TestEventBuffer:
    def test_append_stamps_increasing_seq(self):
        buffer = EventBuffer()
        assert [buffer.append(event()) for _ in range(3)] == [0, 1, 2]
        events, cursor, done = buffer.since(0)
        assert [e.seq for e in events] == [0, 1, 2]
        assert cursor == 3
        assert not done

    def test_cursor_reads_are_incremental(self):
        buffer = EventBuffer()
        buffer.append(event())
        events, cursor, _ = buffer.since(0)
        assert len(events) == 1
        buffer.append(event())
        buffer.append(event())
        events, cursor, _ = buffer.since(cursor)
        assert [e.seq for e in events] == [1, 2]
        assert buffer.since(cursor)[0] == []

    def test_overflow_drops_oldest(self):
        buffer = EventBuffer(maxlen=4)
        for _ in range(10):
            buffer.append(event())
        events, cursor, _ = buffer.since(0)
        assert [e.seq for e in events] == [6, 7, 8, 9]
        assert buffer.dropped == 6
        assert cursor == 10

    def test_terminal_event_closes(self):
        buffer = EventBuffer()
        buffer.append(event())
        buffer.append(event(kind=EventKind.CAMPAIGN_DONE))
        assert buffer.closed
        # Late appends are discarded: the terminal event stays last.
        assert buffer.append(event()) == -1
        events, _, done = buffer.since(0)
        assert done
        assert events[-1].kind is EventKind.CAMPAIGN_DONE

    def test_wait_since_times_out_empty(self):
        buffer = EventBuffer()
        events, cursor, done = buffer.wait_since(0, timeout=0.05)
        assert events == [] and cursor == 0 and not done

    def test_wait_since_wakes_on_append(self):
        buffer = EventBuffer()
        results = {}

        def consume():
            results["got"] = buffer.wait_since(0, timeout=5.0)

        thread = threading.Thread(target=consume)
        thread.start()
        time.sleep(0.05)
        buffer.append(event())
        thread.join(timeout=5.0)
        events, cursor, _ = results["got"]
        assert [e.seq for e in events] == [0]
        assert cursor == 1

    def test_rejects_silly_maxlen(self):
        with pytest.raises(ValueError):
            EventBuffer(maxlen=0)

    def test_overflow_under_concurrent_writers(self):
        # Many producers hammer a small buffer at once: every append is
        # either retained or counted as dropped (no lost events), and
        # the retained window is contiguous, in-order, and full.
        buffer = EventBuffer(maxlen=8)
        threads, per_thread = 8, 250

        def produce(worker_id):
            for i in range(per_thread):
                buffer.append(event(spec_index=worker_id, generation=i))

        workers = [
            threading.Thread(target=produce, args=(w,))
            for w in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=30.0)
        total = threads * per_thread
        retained = buffer.replay()
        assert len(retained) + buffer.dropped == total
        seqs = [e.seq for e in retained]
        # The window is the contiguous tail of the global sequence.
        assert seqs == list(range(total - len(retained), total))
        assert len(retained) == buffer.maxlen
        assert not buffer.closed

    def test_cursor_reads_race_the_producer(self):
        # A producer streams 200 events (terminal last) while a consumer
        # drains by cursor: the consumer must see every event exactly
        # once, in order, and stop at the terminal one.
        buffer = EventBuffer(maxlen=1024)
        total = 200

        def produce():
            for i in range(total - 1):
                buffer.append(event(generation=i))
                if i % 17 == 0:
                    time.sleep(0.001)
            buffer.append(event(kind=EventKind.CAMPAIGN_DONE))

        producer = threading.Thread(target=produce)
        producer.start()
        seen = []
        cursor = 0
        while True:
            events, cursor, done = buffer.wait_since(cursor, timeout=5.0)
            seen.extend(events)
            if done:
                break
        producer.join(timeout=5.0)
        assert [e.seq for e in seen] == list(range(total))
        assert seen[-1].terminal
