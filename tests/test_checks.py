"""Tests for repro.layout.checks (DRC / LVS substitutes)."""

import dataclasses

import pytest

from repro.core.spec import DesignPoint
from repro.layout import Placement, PnrFlow, Rect
from repro.layout.checks import CheckReport, DrcRules, run_drc, run_lvs
from repro.tech import GENERIC28


@pytest.fixture(scope="module")
def layout():
    return PnrFlow(GENERIC28).run(
        DesignPoint(precision="BF16", n=32, h=128, l=16, k=8)
    )


class TestDrc:
    def test_clean_on_generated_layout(self, layout):
        report = run_drc(layout)
        assert report.passed, report.violations

    def test_all_precisions_clean(self):
        flow = PnrFlow(GENERIC28)
        for precision, k in (("INT2", 1), ("INT16", 16), ("FP32", 8)):
            design = DesignPoint(precision=precision, n=96 if precision == "FP32" else 64,
                                 h=64, l=4, k=k)
            report = run_drc(flow.run(design))
            assert report.passed, (precision, report.violations)

    def test_detects_overlap(self, layout):
        broken = dataclasses.replace(
            layout,
            floorplan=dataclasses.replace(
                layout.floorplan,
                placements=[
                    Placement("a", Rect(0, 0, 10, 10)),
                    Placement("b", Rect(5, 5, 10, 10)),
                ],
            ),
        )
        report = run_drc(broken)
        assert any("overlaps" in v for v in report.violations)

    def test_detects_outside_die(self, layout):
        die = layout.floorplan.die
        broken = dataclasses.replace(
            layout,
            floorplan=dataclasses.replace(
                layout.floorplan,
                placements=[Placement("a", Rect(die.x2 - 1, die.y2 - 1, 10, 10))],
            ),
        )
        report = run_drc(broken)
        assert any("outside die" in v for v in report.violations)

    def test_min_dimension_rule(self, layout):
        report = run_drc(layout, DrcRules(min_dimension_um=1e9))
        assert any("below minimum" in v for v in report.violations)

    def test_utilization_window(self, layout):
        report = run_drc(layout, DrcRules(min_utilization=0.9))
        assert any("utilization" in v for v in report.violations)


class TestLvs:
    def test_clean_on_generated_layout(self, layout):
        report = run_lvs(layout)
        assert report.passed, report.violations

    def test_detects_missing_group(self, layout):
        broken = dataclasses.replace(
            layout,
            floorplan=dataclasses.replace(
                layout.floorplan,
                placements=layout.floorplan.placements[:-1],
            ),
        )
        report = run_lvs(broken)
        assert any("not placed" in v for v in report.violations)

    def test_detects_extra_block(self, layout):
        extra = layout.floorplan.placements + [
            Placement("mystery", Rect(0, 0, 1, 1))
        ]
        broken = dataclasses.replace(
            layout,
            floorplan=dataclasses.replace(layout.floorplan, placements=extra),
        )
        report = run_lvs(broken)
        assert any("not in schematic" in v for v in report.violations)

    def test_detects_area_mismatch(self, layout):
        grown = [
            Placement(p.name, Rect(p.rect.x, p.rect.y, p.rect.w * 2, p.rect.h))
            for p in layout.floorplan.placements
        ]
        broken = dataclasses.replace(
            layout,
            floorplan=dataclasses.replace(layout.floorplan, placements=grown),
        )
        report = run_lvs(broken)
        assert any("placed area" in v for v in report.violations)

    def test_report_str(self, layout):
        assert "CLEAN" in str(run_lvs(layout))
