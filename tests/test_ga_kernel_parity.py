"""Bit-parity and behaviour tests for the array-native GA kernels.

Three layers of evidence that vectorising the NSGA-II bookkeeping
changed nothing:

* a Hypothesis suite feeding adversarial objective matrices (ties,
  duplicate rows, infinities, zero-range columns) through both kernel
  backends and asserting bitwise-identical ranks, front orders and
  crowding values;
* golden result fingerprints of full ``nsga2()`` runs, captured from
  the pre-kernel implementation and pinned for both backends;
* strategy/bookkeeping coverage: exhaustive-vs-GA routing, response
  surfacing, and the run-registry schema migration.
"""

import hashlib
import math
import random
import sqlite3
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spec import DcimSpec
from repro.dse.kernels import (
    HAS_NUMPY,
    KERNEL_BACKENDS,
    GAKernels,
    novel_genomes,
    resolve_kernel_backend,
    tournament_index,
)
from repro.dse.kernels import python as py_kernels
from repro.dse.nsga2 import NSGA2Config, nsga2
from repro.dse.problem import DcimProblem

pytestmark = pytest.mark.skipif(
    not HAS_NUMPY, reason="parity needs both backends importable"
)


def bits(values):
    """Bitwise float identity — nan-safe, unlike ``==``."""
    return [struct.pack("<d", float(v)) for v in values]


# Objective values that provoke every tie-break: exact ties, signed
# zeros, infinities (inf - inf => nan inside crowding) and plain floats.
OBJECTIVE_VALUES = st.one_of(
    st.sampled_from([0.0, -0.0, 1.0, 2.0, math.inf, -math.inf]),
    st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, width=64
    ),
)


@st.composite
def objective_matrices(draw):
    n = draw(st.integers(min_value=0, max_value=24))
    m = draw(st.integers(min_value=1, max_value=4))
    rows = draw(
        st.lists(
            st.tuples(*[OBJECTIVE_VALUES] * m), min_size=n, max_size=n
        )
    )
    # Duplicate some rows outright: identical objective vectors exercise
    # the mutual-non-domination and crowding-tie paths hardest.
    if rows and draw(st.booleans()):
        idx = draw(st.integers(min_value=0, max_value=len(rows) - 1))
        rows.append(rows[idx])
    return rows


class TestKernelParity:
    """numpy and python kernels agree bit-for-bit on adversarial input."""

    @settings(max_examples=200, deadline=None)
    @given(objectives=objective_matrices())
    def test_nondominated_sort_identical(self, objectives):
        np_k = GAKernels("numpy")
        py_k = GAKernels("python")
        np_ranks, np_fronts = np_k.nondominated_sort(
            np_k.as_matrix(objectives)
        )
        py_ranks, py_fronts = py_k.nondominated_sort(
            py_k.as_matrix(objectives)
        )
        assert np_ranks == py_ranks
        assert np_fronts == py_fronts

    @settings(max_examples=200, deadline=None)
    @given(objectives=objective_matrices())
    def test_crowding_identical(self, objectives):
        np_k = GAKernels("numpy")
        py_k = GAKernels("python")
        _, fronts = py_k.nondominated_sort(objectives)
        for front in fronts:
            np_perm, np_dist = np_k.crowding(
                np_k.as_matrix(objectives), front
            )
            py_perm, py_dist = py_k.crowding(objectives, front)
            assert np_perm == py_perm
            assert bits(np_dist) == bits(py_dist)

    @settings(max_examples=200, deadline=None)
    @given(objectives=objective_matrices())
    def test_pareto_filter_identical(self, objectives):
        np_k = GAKernels("numpy")
        py_k = GAKernels("python")
        assert np_k.pareto_filter(
            np_k.as_matrix(objectives)
        ) == py_k.pareto_filter(objectives)

    @settings(max_examples=100, deadline=None)
    @given(objectives=objective_matrices(), seed=st.integers(0, 2**32 - 1))
    def test_tournament_selects_identical_indices(self, objectives, seed):
        if len(objectives) < 2:
            return
        np_k = GAKernels("numpy")
        py_k = GAKernels("python")
        results = []
        for kernels in (np_k, py_k):
            matrix = kernels.as_matrix(objectives)
            ranks, fronts = kernels.nondominated_sort(matrix)
            crowding = [0.0] * len(objectives)
            for front in fronts:
                perm, dist = kernels.crowding(matrix, front)
                for i, value in zip(perm, dist):
                    crowding[i] = value
            rng = random.Random(seed)
            results.append(
                [tournament_index(rng, ranks, crowding) for _ in range(32)]
            )
        assert results[0] == results[1]

    def test_zero_range_column_is_not_divided_by(self):
        # A constant objective column has span 0; both backends must
        # skip it instead of dividing (the reference skips before any
        # division, so no inf/nan leaks in).
        objectives = [(1.0, 5.0), (2.0, 5.0), (3.0, 5.0)]
        for backend in ("numpy", "python"):
            k = GAKernels(backend)
            perm, dist = k.crowding(
                k.as_matrix(objectives), range(len(objectives))
            )
            assert dist[perm.index(1)] == 1.0  # only objective 0 counts
            assert math.isinf(dist[perm.index(0)])
            assert math.isinf(dist[perm.index(2)])


class TestBackendSelection:
    def test_auto_resolves_to_numpy_here(self):
        assert resolve_kernel_backend("auto") == "numpy"
        assert resolve_kernel_backend() == "numpy"

    def test_explicit_backends_round_trip(self):
        for backend in ("numpy", "python"):
            assert resolve_kernel_backend(backend) == backend
            assert GAKernels(backend).backend == backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown GA kernel backend"):
            resolve_kernel_backend("fortran")
        assert "fortran" not in KERNEL_BACKENDS

    def test_kernels_time_into_registry(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        k = GAKernels("python", registry=registry)
        k.nondominated_sort([(1.0, 2.0), (2.0, 1.0)])
        k.crowding([(1.0, 2.0), (2.0, 1.0)], [0, 1])
        sample = registry.sample_values()
        assert (
            sample['repro_ga_sort_seconds_count{backend="python"}'] == 1.0
        )
        assert (
            sample['repro_ga_crowding_seconds_count{backend="python"}']
            == 1.0
        )


class TestNovelGenomes:
    def test_dedups_against_archive_and_itself(self):
        archive = {(1, 1): None}
        batch = [(1, 1), (2, 2), (3, 3), (2, 2), (4, 4)]
        assert novel_genomes(batch, archive) == [(2, 2), (3, 3), (4, 4)]

    def test_empty(self):
        assert novel_genomes([], {}) == []


class GoldenGridProblem:
    """Synthetic bi-objective problem used to capture the golden runs."""

    def __init__(self, size=12):
        self.size = size

    def sample(self, rng: random.Random):
        return (rng.randrange(self.size), rng.randrange(self.size))

    def repair(self, genome, rng: random.Random):
        return tuple(min(max(g, 0), self.size - 1) for g in genome)

    def evaluate(self, genome):
        x, y = genome
        top = self.size - 1
        return (float(x + y), float((top - x) + (top - y)))

    def mutation_steps(self):
        return (2, 2)


def result_fingerprint(result) -> str:
    """sha256 over every genome/objective/rank/crowding of a run."""
    h = hashlib.sha256()
    for ind in result.front:
        h.update(
            repr(
                (ind.genome, ind.objectives, ind.rank, ind.crowding)
            ).encode()
        )
    h.update(b"|pop|")
    for ind in result.population:
        h.update(
            repr(
                (ind.genome, ind.objectives, ind.rank, ind.crowding)
            ).encode()
        )
    h.update(b"|hist|")
    h.update(repr(result.history).encode())
    h.update(
        repr(
            (result.evaluations, result.generations_run, result.stopped_early)
        ).encode()
    )
    return h.hexdigest()


# Captured by running the pre-kernel nsga2() implementation (the list
# based one this PR replaced) on these exact problems and seeds.  Any
# drift here means per-seed results changed — a parity break, whichever
# backend produced it.
GOLDEN_GRID = {
    0: "554e2b806bf6c1a570e014bad71b4eec6951725b82d234191346410ee6d6b9f0",
    1: "a9be61e57b71bdbe05950a9d21f9b5db99b59e000661d54288b13fdac8f2b4b8",
    7: "90ee8822953769feccca9ecddd70af382e95bb49b688d6886675bbd47c15c2b4",
}
GOLDEN_DCIM_4096_INT8 = {
    0: "5a5e86a0b2e28e8ce293165223d02a00eb233e40dd54b756df20786420fc7f68",
    3: "a39f8af8c3c722411276126aca8641122083d82a25cddd68fd668cf7144f8bf9",
}
GOLDEN_DCIM_64K_BF16_SEED5 = (
    "997109a04d8b8f88833e05004dfa93148cd08eba9dd04dc78e0de48b338bf62b"
)


@pytest.mark.parametrize("backend", ["numpy", "python"])
class TestGoldenFingerprints:
    """Full nsga2() runs are bit-identical to the pre-kernel code."""

    def test_grid_runs(self, backend):
        for seed, golden in GOLDEN_GRID.items():
            result = nsga2(
                GoldenGridProblem(),
                NSGA2Config(
                    population_size=16,
                    generations=10,
                    seed=seed,
                    backend=backend,
                ),
            )
            assert result_fingerprint(result) == golden, f"seed {seed}"

    def test_dcim_int8_runs(self, backend):
        problem = DcimProblem(DcimSpec(wstore=4096, precision="INT8"))
        for seed, golden in GOLDEN_DCIM_4096_INT8.items():
            result = nsga2(
                problem,
                NSGA2Config(
                    population_size=16,
                    generations=8,
                    seed=seed,
                    backend=backend,
                ),
            )
            assert result_fingerprint(result) == golden, f"seed {seed}"

    def test_dcim_bf16_run(self, backend):
        problem = DcimProblem(DcimSpec(wstore=65536, precision="BF16"))
        result = nsga2(
            problem,
            NSGA2Config(
                population_size=24, generations=12, seed=5, backend=backend
            ),
        )
        assert result_fingerprint(result) == GOLDEN_DCIM_64K_BF16_SEED5


class TestExhaustiveStrategy:
    """Auto-routing between exhaustive enumeration and the GA."""

    SPEC = DcimSpec(wstore=4096, precision="INT8")

    def test_auto_picks_exhaustive_for_small_spaces(self):
        from repro.dse.explorer import (
            DesignSpaceExplorer,
            design_space_size,
        )

        explorer = DesignSpaceExplorer()
        size = design_space_size(DcimProblem(self.SPEC))
        assert size is not None and size <= explorer.exhaustive_threshold
        assert explorer.select_strategy(self.SPEC) == "exhaustive"
        result = explorer.explore_auto(self.SPEC)
        assert result.strategy == "exhaustive"
        assert result.evaluations == size

    def test_threshold_zero_forces_ga(self):
        from repro.dse.explorer import DesignSpaceExplorer

        explorer = DesignSpaceExplorer(
            config=NSGA2Config(population_size=8, generations=2),
            exhaustive_threshold=0,
        )
        assert explorer.select_strategy(self.SPEC) == "ga"
        assert explorer.explore_auto(self.SPEC, seed=1).strategy == "ga"

    def test_exhaustive_front_matches_problem_baseline(self):
        from repro.dse.explorer import DesignSpaceExplorer

        problem = DcimProblem(self.SPEC)
        result = DesignSpaceExplorer().explore_exhaustive(self.SPEC)
        baseline = {
            (p.n, p.h, p.l, p.k) for p in problem.exhaustive_front()
        }
        assert {(p.n, p.h, p.l, p.k) for p in result.points} == baseline

    def test_non_enumerable_problem_raises(self):
        from repro.dse.explorer import DesignSpaceExplorer

        class Opaque:
            pass

        explorer = DesignSpaceExplorer(problem_factory=lambda spec: Opaque())
        with pytest.raises(ValueError, match="cannot enumerate"):
            explorer.explore_exhaustive(self.SPEC)

    def test_campaign_response_surfaces_strategy_and_backend(self):
        from repro.service import CampaignConfig, run_campaign

        result = run_campaign([self.SPEC], CampaignConfig())
        assert result.strategies == ("exhaustive",)
        assert result.ga_backend == resolve_kernel_backend("auto")
        response = result.to_response()
        assert response.strategies == ("exhaustive",)
        assert response.to_dict()["ga_backend"] == result.ga_backend

    def test_exhaustive_never_beaten_by_ga(self):
        # The enumerated front is exact: no GA point may dominate it.
        from repro.core.pareto import dominates
        from repro.dse.explorer import DesignSpaceExplorer

        exact = DesignSpaceExplorer().explore_exhaustive(self.SPEC)
        ga = DesignSpaceExplorer(
            config=NSGA2Config(population_size=16, generations=8),
            exhaustive_threshold=0,
        ).explore_auto(self.SPEC, seed=0)
        exact_rows = [tuple(row) for row in exact.objectives]
        for row in ga.objectives:
            assert not any(
                dominates(tuple(row), kept) for kept in exact_rows
            )


class TestRunStoreStrategyColumns:
    def test_strategy_recorded(self, tmp_path):
        from repro.service import CampaignConfig, run_campaign
        from repro.store import RunStore

        with RunStore(tmp_path / "runs.sqlite") as store:
            result = run_campaign(
                [DcimSpec(wstore=4096, precision="INT8")],
                CampaignConfig(),
                store=store,
            )
            record = store.get_run(result.run_id)
        assert record.strategy == "exhaustive"
        assert record.ga_backend == resolve_kernel_backend("auto")
        assert "via exhaustive" in record.describe()
        assert record.to_dict()["strategy"] == "exhaustive"

    def test_migration_adds_columns_to_pre_kernel_db(self, tmp_path):
        from repro.service import CampaignConfig, run_campaign
        from repro.store import RunStore

        path = tmp_path / "runs.sqlite"
        with RunStore(path) as store:
            result = run_campaign(
                [DcimSpec(wstore=4096, precision="INT8")],
                CampaignConfig(),
                store=store,
            )
            run_id = result.run_id
        # Rebuild the pre-kernel schema: drop the new columns outright.
        with sqlite3.connect(path) as conn:
            conn.execute("ALTER TABLE runs DROP COLUMN strategy")
            conn.execute("ALTER TABLE runs DROP COLUMN ga_backend")
        # Re-opening migrates additively; old rows read back as unknown.
        with RunStore(path) as store:
            record = store.get_run(run_id)
            assert record.strategy is None
            assert record.ga_backend is None
            assert "via" not in record.describe()
