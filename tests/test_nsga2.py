"""Tests for repro.dse.nsga2 on synthetic and DCIM problems."""

import random

import pytest

from repro.core.pareto import dominates
from repro.core.spec import DcimSpec
from repro.dse.nsga2 import (
    Individual,
    NSGA2Config,
    crowding_distance,
    fast_non_dominated_sort,
    nsga2,
)
from repro.dse.problem import DcimProblem


class GridProblem:
    """Synthetic bi-objective problem on an integer grid.

    Minimise (x, 10 - x) for x in [0, 10]: every point is on the true
    Pareto front, which exercises front bookkeeping; a second gene adds a
    strictly-dominated direction.
    """

    def sample(self, rng):
        return (rng.randint(0, 10), rng.randint(0, 5))

    def repair(self, genome, rng):
        x, y = genome
        return (min(max(x, 0), 10), min(max(y, 0), 5))

    def evaluate(self, genome):
        x, y = genome
        return (float(x + y), float(10 - x + y))

    def mutation_steps(self):
        return (2, 2)


class TestSortAndCrowding:
    def test_fast_sort_ranks(self):
        pop = [
            Individual((0,), (1.0, 1.0)),
            Individual((1,), (2.0, 2.0)),
            Individual((2,), (0.5, 3.0)),
            Individual((3,), (3.0, 3.0)),
        ]
        fronts = fast_non_dominated_sort(pop)
        assert {ind.genome for ind in fronts[0]} == {(0,), (2,)}
        assert pop[0].rank == 0
        assert pop[3].rank == 2  # dominated by both (1,1) and (2,2)

    def test_crowding_boundaries_infinite(self):
        front = [
            Individual((0,), (0.0, 3.0)),
            Individual((1,), (1.0, 2.0)),
            Individual((2,), (2.0, 1.0)),
            Individual((3,), (3.0, 0.0)),
        ]
        crowding_distance(front)
        by_genome = {ind.genome: ind.crowding for ind in front}
        assert by_genome[(0,)] == float("inf")
        assert by_genome[(3,)] == float("inf")
        assert 0 < by_genome[(1,)] < float("inf")

    def test_crowding_small_front_all_infinite(self):
        front = [Individual((0,), (1.0, 2.0)), Individual((1,), (2.0, 1.0))]
        crowding_distance(front)
        assert all(ind.crowding == float("inf") for ind in front)


class TestConfig:
    def test_rejects_odd_population(self):
        with pytest.raises(ValueError):
            NSGA2Config(population_size=7)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            NSGA2Config(crossover_prob=1.5)


class TestNsga2Synthetic:
    def test_finds_zero_y_front(self):
        result = nsga2(GridProblem(), NSGA2Config(population_size=16, generations=30, seed=7))
        # True front: y == 0 for any x; all 11 x-values non-dominated.
        assert all(g[1] == 0 for g in (ind.genome for ind in result.front))
        xs = {g[0] for g, in zip((ind.genome for ind in result.front))}
        assert len(xs) >= 8  # nearly complete coverage of the 11 points

    def test_front_mutually_nondominated(self):
        result = nsga2(GridProblem(), NSGA2Config(seed=3))
        objs = [ind.objectives for ind in result.front]
        for i, u in enumerate(objs):
            for j, v in enumerate(objs):
                if i != j:
                    assert not dominates(u, v)

    def test_deterministic_given_seed(self):
        r1 = nsga2(GridProblem(), NSGA2Config(seed=42, generations=10))
        r2 = nsga2(GridProblem(), NSGA2Config(seed=42, generations=10))
        assert [i.genome for i in r1.front] == [i.genome for i in r2.front]

    def test_history_length(self):
        result = nsga2(GridProblem(), NSGA2Config(generations=12, seed=0))
        assert len(result.history) == 12


class TestNsga2OnDcim:
    @pytest.fixture(scope="class")
    def problem(self):
        return DcimProblem(DcimSpec(wstore=16 * 1024, precision="INT8"))

    @pytest.fixture(scope="class")
    def result(self, problem):
        return nsga2(problem, NSGA2Config(population_size=32, generations=30, seed=11))

    def test_front_is_subset_of_true_front(self, problem, result):
        truth = {
            (p.n, p.h, p.l, p.k) for p in problem.exhaustive_front()
        }
        for ind in result.front:
            p = problem.decode(ind.genome)
            assert (p.n, p.h, p.l, p.k) in truth

    def test_recall_of_true_front(self, problem, result):
        truth = {(p.n, p.h, p.l, p.k) for p in problem.exhaustive_front()}
        found = {
            (p.n, p.h, p.l, p.k)
            for p in (problem.decode(i.genome) for i in result.front)
        }
        recall = len(found & truth) / len(truth)
        assert recall > 0.8

    def test_all_front_designs_meet_storage(self, problem, result):
        for ind in result.front:
            assert problem.decode(ind.genome).wstore == 16 * 1024

    def test_memoisation_bounds_evaluations(self, problem, result):
        # 30 generations x 32 offspring without caching would be ~1000
        # evaluations; the discrete space is far smaller.
        space = len(problem.codec.enumerate())
        assert result.evaluations <= space


class TestObserverAndCancellation:
    CONFIG = NSGA2Config(population_size=16, generations=10, seed=7)

    def test_observer_called_per_generation(self):
        seen = []
        nsga2(GridProblem(), self.CONFIG, observer=seen.append)
        assert [p.generation for p in seen] == list(range(1, 11))
        for progress in seen:
            assert progress.generations == 10
            assert progress.front_size > 0
            assert progress.requested >= progress.evaluations
            assert 0.0 <= progress.cache_hit_rate <= 1.0
        evals = [p.evaluations for p in seen]
        assert evals == sorted(evals)
        assert seen[-1].archive_size == seen[-1].evaluations

    def test_observer_keeps_run_bit_identical(self):
        plain = nsga2(GridProblem(), self.CONFIG)
        observed = nsga2(GridProblem(), self.CONFIG, observer=lambda p: None)
        assert [(i.genome, i.objectives) for i in observed.front] == [
            (i.genome, i.objectives) for i in plain.front
        ]
        assert observed.history == plain.history
        assert observed.evaluations == plain.evaluations
        assert observed.generations_run == plain.generations_run == 10
        assert not plain.stopped_early

    def test_should_stop_ends_run_at_generation_boundary(self):
        done = []

        def stop_after_three() -> bool:
            return len(done) >= 3

        result = nsga2(
            GridProblem(),
            self.CONFIG,
            observer=done.append,
            should_stop=stop_after_three,
        )
        assert result.stopped_early
        assert result.generations_run == 3
        assert len(result.history) == 3
        assert result.front  # the prefix's archive front is still returned

    def test_stopped_prefix_matches_shorter_run(self):
        # Cancelling after k generations must equal a run configured
        # with k generations: same seed, same rng consumption order.
        done = []
        stopped = nsga2(
            GridProblem(),
            self.CONFIG,
            observer=done.append,
            should_stop=lambda: len(done) >= 4,
        )
        short = nsga2(
            GridProblem(),
            NSGA2Config(population_size=16, generations=4, seed=7),
        )
        assert [(i.genome, i.objectives) for i in stopped.front] == [
            (i.genome, i.objectives) for i in short.front
        ]
        assert stopped.history == short.history

    def test_should_stop_immediately(self):
        result = nsga2(GridProblem(), self.CONFIG, should_stop=lambda: True)
        assert result.stopped_early
        assert result.generations_run == 0
        assert result.history == []
        assert result.front  # initial population is still evaluated
