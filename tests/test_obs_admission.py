"""Tests for admission control: units plus the HTTP-level rejections."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.admission import (
    AdmissionController,
    AdmissionError,
    AdmissionPolicy,
    RateLimiter,
    TokenBucket,
    request_budget,
)
from repro.obs.metrics import MetricsRegistry
from repro.service.api import CampaignRequest, SpecRequest
from repro.service.cache import EvaluationCache
from repro.service.jobs import JobQueue
from repro.service.server import serve


def request_of(specs=1, generations=4, population=16) -> CampaignRequest:
    return CampaignRequest(
        specs=tuple(SpecRequest(4096, "INT4") for _ in range(specs)),
        population_size=population,
        generations=generations,
        seed=1,
    )


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=1.0, burst=2)
        assert bucket.try_acquire(now=0.0) == 0.0
        assert bucket.try_acquire(now=0.0) == 0.0
        wait = bucket.try_acquire(now=0.0)
        assert wait == pytest.approx(1.0)
        # One second later a token has refilled.
        assert bucket.try_acquire(now=1.0) == 0.0

    def test_tokens_cap_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=1)
        assert bucket.try_acquire(now=0.0) == 0.0
        # A long idle stretch must not bank more than `burst` tokens.
        assert bucket.try_acquire(now=1000.0) == 0.0
        assert bucket.try_acquire(now=1000.0) > 0.0

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)


class TestRateLimiter:
    def test_clients_are_independent(self):
        limiter = RateLimiter(rate=0.001, burst=1)
        assert limiter.try_acquire("a") == 0.0
        assert limiter.try_acquire("a") > 0.0
        assert limiter.try_acquire("b") == 0.0

    def test_client_table_is_bounded(self):
        limiter = RateLimiter(rate=0.001, burst=1, max_clients=2)
        assert limiter.try_acquire("a") == 0.0
        assert limiter.try_acquire("b") == 0.0
        assert limiter.try_acquire("c") == 0.0  # evicts "a"
        # "a" was forgotten, so it starts over with a full bucket.
        assert limiter.try_acquire("a") == 0.0


class TestAdmissionPolicy:
    def test_enabled_only_with_a_guard(self):
        assert not AdmissionPolicy().enabled
        assert AdmissionPolicy(rate_limit=1.0).enabled
        assert AdmissionPolicy(max_pending=4).enabled
        assert AdmissionPolicy(max_budget=100).enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate_limit": 0.0},
            {"burst": 0},
            {"max_pending": -1},
            {"max_budget": 0},
        ],
    )
    def test_validates(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionPolicy(**kwargs)


class TestAdmissionController:
    def test_request_budget(self):
        assert request_budget(request_of(2, 10, 32)) == 640

    def test_budget_cap_rejects_413(self):
        controller = AdmissionController(
            AdmissionPolicy(max_budget=100), registry=MetricsRegistry()
        )
        with pytest.raises(AdmissionError) as excinfo:
            controller.admit(request_of(2, 10, 32), "client", pending=0)
        assert excinfo.value.status == 413
        assert excinfo.value.code == "budget_exceeded"
        assert excinfo.value.headers == {}

    def test_rate_limit_rejects_429_with_retry_after(self):
        registry = MetricsRegistry()
        controller = AdmissionController(
            AdmissionPolicy(rate_limit=0.001, burst=1), registry=registry
        )
        controller.admit(request_of(), "client", pending=0)
        with pytest.raises(AdmissionError) as excinfo:
            controller.admit(request_of(), "client", pending=0)
        assert excinfo.value.status == 429
        assert excinfo.value.code == "rate_limited"
        assert int(excinfo.value.headers["Retry-After"]) >= 1
        sample = registry.sample_values()
        assert sample['repro_admission_rejected_total{reason="rate"}'] == 1.0

    def test_queue_bound_rejects_429(self):
        controller = AdmissionController(
            AdmissionPolicy(max_pending=4), registry=MetricsRegistry()
        )
        controller.admit(request_of(), "client", pending=3)
        with pytest.raises(AdmissionError) as excinfo:
            controller.admit(request_of(), "client", pending=4)
        assert excinfo.value.status == 429
        assert excinfo.value.code == "queue_full"
        assert excinfo.value.headers["Retry-After"] == "1"

    def test_budget_named_before_queue(self):
        # An oversized request is called out as such even when the
        # queue is simultaneously full (check order is documented).
        controller = AdmissionController(
            AdmissionPolicy(max_budget=10, max_pending=1),
            registry=MetricsRegistry(),
        )
        with pytest.raises(AdmissionError) as excinfo:
            controller.admit(request_of(2, 10, 32), "client", pending=99)
        assert excinfo.value.code == "budget_exceeded"


@pytest.fixture(scope="class")
def guarded_server():
    registry = MetricsRegistry()
    queue = JobQueue(cache=EvaluationCache(), workers=1, registry=registry)
    admission = AdmissionController(
        AdmissionPolicy(rate_limit=0.001, burst=1, max_budget=500),
        registry=registry,
    )
    server = serve(
        port=0, queue=queue, registry=registry, admission=admission
    )
    server.serve_in_background()
    yield server.url
    server.shutdown()
    queue.close()


def post_submit(url: str, request: CampaignRequest, client_id: str):
    http_request = urllib.request.Request(
        f"{url}/api/campaigns",
        data=json.dumps(request.to_dict()).encode("utf-8"),
        headers={"Content-Type": "application/json", "X-Client-Id": client_id},
        method="POST",
    )
    with urllib.request.urlopen(http_request, timeout=30.0) as answer:
        return json.loads(answer.read())


class TestAdmissionOverHTTP:
    def test_rate_limited_submit_is_429(self, guarded_server):
        first = post_submit(guarded_server, request_of(), "rate-client")
        assert first["job_id"]
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_submit(guarded_server, request_of(), "rate-client")
        error = excinfo.value
        assert error.code == 429
        assert int(error.headers["Retry-After"]) >= 1
        envelope = json.loads(error.read())
        assert envelope["error"]["code"] == "rate_limited"

    def test_clients_rate_limited_independently(self, guarded_server):
        assert post_submit(guarded_server, request_of(), "other-client")

    def test_over_budget_submit_is_413(self, guarded_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_submit(
                guarded_server, request_of(2, 50, 32), "budget-client"
            )
        error = excinfo.value
        assert error.code == 413
        envelope = json.loads(error.read())
        assert envelope["error"]["code"] == "budget_exceeded"
        assert "3200" in envelope["error"]["message"]

    def test_malformed_request_still_400(self, guarded_server):
        # Admission runs after parsing: bad JSON keeps its own error.
        http_request = urllib.request.Request(
            f"{guarded_server}/api/campaigns",
            data=b"not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(http_request, timeout=30.0)
        assert excinfo.value.code == 400


def test_queue_full_over_http():
    registry = MetricsRegistry()
    queue = JobQueue(cache=EvaluationCache(), workers=1, registry=registry)
    admission = AdmissionController(
        AdmissionPolicy(max_pending=0), registry=registry
    )
    server = serve(
        port=0, queue=queue, registry=registry, admission=admission
    )
    server.serve_in_background()
    try:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_submit(server.url, request_of(), "anyone")
        assert excinfo.value.code == 429
        envelope = json.loads(excinfo.value.read())
        assert envelope["error"]["code"] == "queue_full"
    finally:
        server.shutdown()
        queue.close()
