"""Tests for repro.workloads (layers, networks, mapping)."""

import pytest

from repro.core.spec import DesignPoint
from repro.tech import GENERIC28
from repro.workloads import (
    AVAILABLE_NETWORKS,
    Layer,
    attention_projection,
    conv2d,
    gcn_layer,
    linear,
    map_layer,
    map_network,
    mlp_mixer_block,
    recommend_spec,
    resnet_block,
    tiny_cnn,
    transformer_block,
)


class TestLayers:
    def test_linear(self):
        l = linear("fc", 256, 128, vectors=4)
        assert l.weight_count == 256 * 128
        assert l.macs == 256 * 128 * 4

    def test_conv2d_im2col(self):
        l = conv2d("c", in_channels=3, out_channels=32, kernel=3, out_hw=16)
        assert l.rows == 27
        assert l.cols == 32
        assert l.vectors == 256

    def test_attention_projection(self):
        l = attention_projection("q", d_model=256, seq_len=64)
        assert l.rows == l.cols == 256
        assert l.vectors == 64

    def test_gcn(self):
        l = gcn_layer("g", 128, 64, nodes=1000)
        assert l.vectors == 1000

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            Layer("bad", rows=0, cols=1)


class TestNetworks:
    def test_registry(self):
        assert set(AVAILABLE_NETWORKS) == {
            "tiny_cnn", "transformer_block", "gcn_network",
            "resnet_block", "mlp_mixer_block",
        }
        for factory in AVAILABLE_NETWORKS.values():
            layers = factory()
            assert layers and all(isinstance(l, Layer) for l in layers)

    def test_transformer_block_shapes(self):
        layers = transformer_block(d_model=256, seq_len=128)
        assert len(layers) == 6
        mlp_up = next(l for l in layers if l.name == "mlp_up")
        assert mlp_up.cols == 1024

    def test_resnet_block_shapes(self):
        layers = resnet_block(in_channels=64, out_channels=128, out_hw=28)
        assert [l.name for l in layers] == [
            "res_conv1", "res_conv2", "res_proj",
        ]
        conv1, conv2, proj = layers
        assert conv1.rows == 64 * 9 and conv1.cols == 128
        assert conv2.rows == 128 * 9
        assert proj.rows == 64  # 1x1 shortcut
        assert all(l.vectors == 28 * 28 for l in layers)

    def test_mlp_mixer_block_shapes(self):
        layers = mlp_mixer_block(
            tokens=196, channels=256, token_mlp_dim=128, channel_mlp_dim=1024
        )
        assert len(layers) == 4
        token_up, token_down, channel_up, channel_down = layers
        # Token mixing transposes: vectors = channels.
        assert token_up.rows == 196 and token_up.cols == 128
        assert token_up.vectors == token_down.vectors == 256
        assert token_down.cols == 196
        # Channel mixing: vectors = tokens.
        assert channel_up.rows == 256 and channel_up.cols == 1024
        assert channel_up.vectors == channel_down.vectors == 196
        assert channel_down.cols == 256

    def test_new_networks_map_and_recommend(self):
        for factory in (resnet_block, mlp_mixer_block):
            layers = factory()
            spec = recommend_spec(layers, "INT8")
            assert spec.wstore >= max(l.weight_count for l in layers)
            nm = map_network(layers, DESIGN, GENERIC28)
            assert nm.latency_us > 0 and nm.energy_uj > 0


DESIGN = DesignPoint(precision="INT8", n=64, h=128, l=4, k=8)  # groups=8


class TestMapLayer:
    def test_exact_fit_single_tile(self):
        layer = linear("fit", DESIGN.h, 8)  # exactly H x groups
        m = map_layer(layer, DESIGN, GENERIC28)
        assert (m.row_tiles, m.col_tiles) == (1, 1)
        assert m.reloads == 0
        assert m.utilization == pytest.approx(1.0)

    def test_tiling_grid(self):
        layer = linear("big", 4 * DESIGN.h, 3 * 8)
        m = map_layer(layer, DESIGN, GENERIC28)
        assert (m.row_tiles, m.col_tiles) == (4, 3)
        assert m.passes == 12  # one vector
        assert m.reloads == 12 - DESIGN.l

    def test_vectors_multiply_passes(self):
        layer = linear("seq", DESIGN.h, 8, vectors=10)
        m = map_layer(layer, DESIGN, GENERIC28)
        assert m.passes == 10

    def test_padding_hurts_utilization(self):
        layer = linear("odd", DESIGN.h + 1, 8)  # spills into 2 row tiles
        m = map_layer(layer, DESIGN, GENERIC28)
        assert m.utilization < 0.6

    def test_latency_energy_positive(self):
        m = map_layer(linear("x", 64, 8), DESIGN, GENERIC28)
        assert m.latency_us > 0
        assert m.energy_uj > 0


class TestMapNetwork:
    def test_totals_are_sums(self):
        layers = tiny_cnn()
        nm = map_network(layers, DESIGN, GENERIC28)
        assert nm.latency_us == pytest.approx(sum(m.latency_us for m in nm.layers))
        assert nm.energy_uj == pytest.approx(sum(m.energy_uj for m in nm.layers))
        assert nm.total_macs == sum(l.macs for l in layers)

    def test_effective_tops_below_peak(self):
        nm = map_network(tiny_cnn(), DESIGN, GENERIC28)
        peak = DESIGN.metrics(GENERIC28).tops
        assert 0 < nm.tops_effective <= peak * 1.001


class TestRecommendSpec:
    def test_covers_largest_layer(self):
        layers = transformer_block(d_model=256, seq_len=64)
        spec = recommend_spec(layers, "INT8")
        largest = max(l.weight_count for l in layers)
        assert spec.wstore >= largest
        assert spec.wstore & (spec.wstore - 1) == 0  # power of two

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            recommend_spec([], "INT8")

    def test_precision_parsed(self):
        spec = recommend_spec([linear("x", 64, 64)], "bf16")
        assert spec.precision.name == "BF16"


class TestOverlapReload:
    def test_overlap_reduces_cycles_when_reloading(self):
        # A layer needing more tiles than L pays reloads; double
        # buffering hides them behind compute.
        layer = linear("big", 4 * DESIGN.h, 6 * 8, vectors=1)
        plain = map_layer(layer, DESIGN, GENERIC28)
        hidden = map_layer(layer, DESIGN, GENERIC28, overlap_reload=True)
        assert plain.reloads > 0
        assert hidden.cycles <= plain.cycles
        assert hidden.latency_us < plain.latency_us

    def test_overlap_noop_without_reloads(self):
        layer = linear("fit", DESIGN.h, 8)
        plain = map_layer(layer, DESIGN, GENERIC28)
        hidden = map_layer(layer, DESIGN, GENERIC28, overlap_reload=True)
        assert plain.cycles == hidden.cycles

    def test_energy_unchanged_by_overlap(self):
        layer = linear("big", 4 * DESIGN.h, 6 * 8, vectors=1)
        plain = map_layer(layer, DESIGN, GENERIC28)
        hidden = map_layer(layer, DESIGN, GENERIC28, overlap_reload=True)
        assert plain.energy_uj == hidden.energy_uj
