"""Process/voltage/temperature corners for the mock PDK.

Real technology files ship libraries at multiple corners; the
estimation flow only needs first-order derates on the three gate
constants.  Standard corners are provided (TT/SS/FF at nominal and low
voltage) and custom corners can be constructed directly.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.tech.technology import Technology

__all__ = ["Corner", "STANDARD_CORNERS", "apply_corner"]


@dataclass(frozen=True)
class Corner:
    """A PVT corner as multiplicative derates on the gate constants.

    Attributes:
        name: corner label, e.g. ``"ss_0p81v"``.
        delay_factor: multiplier on gate delay (>1 = slower).
        energy_factor: multiplier on gate switching energy.
        voltage_v: operating voltage the corner implies (``None`` keeps
            the technology's voltage).
    """

    name: str
    delay_factor: float = 1.0
    energy_factor: float = 1.0
    voltage_v: float | None = None

    def __post_init__(self) -> None:
        if self.delay_factor <= 0 or self.energy_factor <= 0:
            raise ValueError("corner factors must be positive")


#: Typical sign-off corners: typical, slow (worst timing), fast (worst
#: power), plus a low-voltage typical point.
STANDARD_CORNERS: dict[str, Corner] = {
    "tt": Corner("tt"),
    "ss": Corner("ss", delay_factor=1.35, energy_factor=0.95),
    "ff": Corner("ff", delay_factor=0.75, energy_factor=1.15),
    "tt_lv": Corner("tt_lv", delay_factor=1.0, energy_factor=1.0, voltage_v=0.72),
}


def apply_corner(tech: Technology, corner: Corner | str) -> Technology:
    """Return ``tech`` derated to a corner.

    Args:
        tech: base technology (calibrated TT point).
        corner: a :class:`Corner` or the name of a standard corner.

    Raises:
        KeyError: for an unknown standard-corner name.
    """
    if isinstance(corner, str):
        try:
            corner = STANDARD_CORNERS[corner]
        except KeyError:
            raise KeyError(
                f"unknown corner {corner!r}; available: "
                f"{sorted(STANDARD_CORNERS)}"
            ) from None
    derated = dataclasses.replace(
        tech,
        name=f"{tech.name}@{corner.name}",
        gate_delay_ps=tech.gate_delay_ps * corner.delay_factor,
        gate_energy_fj=tech.gate_energy_fj * corner.energy_factor,
    )
    if corner.voltage_v is not None:
        derated = derated.with_voltage(corner.voltage_v)
    return derated
