"""Mock PDKs standing in for the foundry technology files.

The paper implements SEGA-DCIM on the TSMC28 PDK.  That PDK is
proprietary, so this reproduction ships ``generic28``, a mock 28 nm node
whose three absolute constants were *calibrated once* against the
published anchors (see DESIGN.md, "Calibration"):

* ``gate_area_um2`` — fitted so the Fig. 6 INT8 macro (``N=32, L=16,
  H=128``, 8K weights) lands near the published 0.079 mm^2 after P&R.
* ``gate_delay_ps`` — fitted so the Fig. 7 average Pareto delays land in
  the published 1.2 ns (INT2) .. 10.9 ns (FP32) band.
* ``gate_energy_fj`` — fitted so the 64K-weight INT8 Pareto knee lands
  near the published 22 TOPS/W at 0.9 V and 10 % sparsity.

Only these three scalars are foundry-specific; every *relative* trade-off
derives from the published Table III ratios in :mod:`repro.tech.cells`.
"""

from __future__ import annotations

from repro.tech.technology import Technology

__all__ = ["GENERIC28", "GENERIC22", "available_pdks", "load_pdk"]

#: Mock TSMC28-like node (see module docstring for the calibration).
GENERIC28 = Technology(
    name="generic28",
    node_nm=28.0,
    gate_area_um2=0.104,
    gate_delay_ps=9.5,
    gate_energy_fj=0.40,
    voltage_v=0.9,
    nominal_voltage_v=0.9,
    activity=0.1,
    utilization=0.72,
)

#: A 22 nm point derived by constant-field scaling, used only to put the
#: fabricated 22 nm references of Fig. 8 in context.
GENERIC22 = GENERIC28.scaled_to_node(22.0, name="generic22")

_PDKS = {t.name: t for t in (GENERIC28, GENERIC22)}


def available_pdks() -> list[str]:
    """Names of the PDKs bundled with the reproduction."""
    return sorted(_PDKS)


def load_pdk(name: str) -> Technology:
    """Look up a bundled PDK by name.

    Raises:
        KeyError: if the PDK is not bundled.
    """
    try:
        return _PDKS[name]
    except KeyError:
        raise KeyError(
            f"unknown PDK {name!r}; available: {available_pdks()}"
        ) from None
