"""Standard-cell library (paper Table III).

The paper normalises every standard cell to a NOR2 gate measured on the
TSMC28 digital PDK.  The published ratios are reproduced verbatim here as
the default library; users may build their own :class:`CellLibrary` (the
"customized cell library" input of the SEGA-DCIM framework, Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.cost import Cost

__all__ = ["CellLibrary", "TABLE3_CELLS"]

#: Table III of the paper, normalised to the NOR gate.  The DFF delay is
#: listed as "N/A" because registers bound pipeline stages rather than
#: sitting on a combinational path; we model it as zero.  SRAM delay and
#: power are zero because weights are hard-wired to the compute units
#: (no precharged read) and leakage is neglected.
TABLE3_CELLS: dict[str, Cost] = {
    "NOR": Cost(1.0, 1.0, 1.0),
    "OR": Cost(1.3, 1.0, 2.3),
    "MUX2": Cost(2.2, 2.2, 3.0),
    "HA": Cost(4.3, 2.5, 6.9),
    "FA": Cost(5.7, 3.3, 8.4),
    "DFF": Cost(6.6, 0.0, 9.6),
    "SRAM": Cost(2.2, 0.0, 0.0),
}

_REQUIRED_CELLS = frozenset(TABLE3_CELLS)


@dataclass(frozen=True)
class CellLibrary:
    """A set of normalised standard-cell costs.

    Attributes:
        name: identifier of the library (used in reports and liberty
            dumps).
        cells: mapping from cell name to its normalised :class:`Cost`.
            Must provide at least the seven cells of Table III.
    """

    name: str = "table3"
    cells: dict[str, Cost] = field(default_factory=lambda: dict(TABLE3_CELLS))

    def __post_init__(self) -> None:
        missing = _REQUIRED_CELLS - set(self.cells)
        if missing:
            raise ValueError(
                f"cell library {self.name!r} is missing required cells: "
                f"{sorted(missing)}"
            )

    def __getitem__(self, cell: str) -> Cost:
        try:
            return self.cells[cell]
        except KeyError:
            raise KeyError(f"cell {cell!r} not in library {self.name!r}") from None

    def __contains__(self, cell: str) -> bool:
        return cell in self.cells

    def with_cell(self, cell: str, cost: Cost) -> "CellLibrary":
        """Return a copy of the library with one cell overridden/added."""
        cells = dict(self.cells)
        cells[cell] = cost
        return CellLibrary(name=self.name, cells=cells)

    # Convenience accessors for the Table III cells ---------------------
    @property
    def nor(self) -> Cost:
        """1-bit NOR2 (the normalisation basis)."""
        return self.cells["NOR"]

    @property
    def or_gate(self) -> Cost:
        """1-bit OR2."""
        return self.cells["OR"]

    @property
    def mux2(self) -> Cost:
        """2:1 multiplexer."""
        return self.cells["MUX2"]

    @property
    def half_adder(self) -> Cost:
        """1-bit half adder."""
        return self.cells["HA"]

    @property
    def full_adder(self) -> Cost:
        """1-bit full adder."""
        return self.cells["FA"]

    @property
    def dff(self) -> Cost:
        """Positive-edge D flip-flop."""
        return self.cells["DFF"]

    @property
    def sram(self) -> Cost:
        """6T SRAM bit-cell."""
        return self.cells["SRAM"]

    @classmethod
    def default(cls) -> "CellLibrary":
        """The paper's Table III library."""
        return cls()
