"""Technology substrate: cells, nodes, PDKs and liberty I/O."""

from repro.tech.cells import CellLibrary, TABLE3_CELLS
from repro.tech.corners import Corner, STANDARD_CORNERS, apply_corner
from repro.tech.liberty import dump_library, load_library
from repro.tech.techfile import dump_technology, load_technology
from repro.tech.pdk import GENERIC22, GENERIC28, available_pdks, load_pdk
from repro.tech.technology import Technology

__all__ = [
    "CellLibrary",
    "TABLE3_CELLS",
    "Technology",
    "GENERIC28",
    "GENERIC22",
    "available_pdks",
    "load_pdk",
    "dump_library",
    "load_library",
    "dump_technology",
    "load_technology",
    "Corner",
    "STANDARD_CORNERS",
    "apply_corner",
]
