"""Technology binding: normalised NOR-gate units to physical units.

The estimation models (``repro.model``) work entirely in NOR-normalised
units; a :class:`Technology` carries the three absolute constants of the
process node (NOR2 area, delay, switching energy) plus operating
conditions (supply voltage, input activity/sparsity) and the layout
utilisation used by the mock P&R flow.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

__all__ = ["Technology"]


@dataclass(frozen=True)
class Technology:
    """A process/operating point for converting normalised costs.

    Attributes:
        name: node identifier, e.g. ``"generic28"``.
        node_nm: feature size in nanometres (used for node scaling).
        gate_area_um2: area of one NOR2 in um^2.
        gate_delay_ps: propagation delay of one NOR2 in ps at
            ``nominal_voltage_v``.
        gate_energy_fj: switching energy of one NOR2 in fJ at
            ``nominal_voltage_v`` and 100 % activity.
        voltage_v: operating supply voltage.
        nominal_voltage_v: voltage at which the gate constants hold.
        activity: effective switching-activity factor applied to dynamic
            energy.  The paper reports energy efficiency "at 10 %
            sparsity", which we model as a global activity factor.
        utilization: placement utilisation assumed by the layout flow
            (layout area = cell area / utilization).
    """

    name: str
    node_nm: float
    gate_area_um2: float
    gate_delay_ps: float
    gate_energy_fj: float
    voltage_v: float = 0.9
    nominal_voltage_v: float = 0.9
    activity: float = 0.1
    utilization: float = 0.75

    def __post_init__(self) -> None:
        for attr in ("node_nm", "gate_area_um2", "gate_delay_ps", "gate_energy_fj",
                     "voltage_v", "nominal_voltage_v"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")
        if not 0.0 < self.activity <= 1.0:
            raise ValueError(f"activity must be in (0, 1], got {self.activity}")
        if not 0.0 < self.utilization <= 1.0:
            raise ValueError(f"utilization must be in (0, 1], got {self.utilization}")

    # Voltage scaling: first-order alpha-power model.  Dynamic energy
    # scales with V^2; delay scales roughly inversely with V near nominal.
    @property
    def _voltage_ratio(self) -> float:
        return self.voltage_v / self.nominal_voltage_v

    # Conversions --------------------------------------------------------
    def area_um2(self, norm_area: float) -> float:
        """Convert a normalised area to um^2."""
        return norm_area * self.gate_area_um2

    def area_mm2(self, norm_area: float) -> float:
        """Convert a normalised area to mm^2."""
        return self.area_um2(norm_area) * 1e-6

    def delay_ns(self, norm_delay: float) -> float:
        """Convert a normalised delay to ns at the operating voltage."""
        return norm_delay * self.gate_delay_ps * 1e-3 / self._voltage_ratio

    def energy_fj(self, norm_energy: float, activity: float | None = None) -> float:
        """Convert a normalised energy to fJ.

        Args:
            norm_energy: energy in NOR units at 100 % activity.
            activity: optional override of the technology activity factor.
        """
        act = self.activity if activity is None else activity
        return norm_energy * self.gate_energy_fj * act * self._voltage_ratio**2

    def energy_nj(self, norm_energy: float, activity: float | None = None) -> float:
        """Convert a normalised energy to nJ."""
        return self.energy_fj(norm_energy, activity) * 1e-6

    # Derived operating points -------------------------------------------
    def with_voltage(self, voltage_v: float) -> "Technology":
        """Return the same node at a different supply voltage."""
        return dataclasses.replace(self, voltage_v=voltage_v)

    def with_activity(self, activity: float) -> "Technology":
        """Return the same node with a different activity factor."""
        return dataclasses.replace(self, activity=activity)

    def scaled_to_node(self, node_nm: float, name: str | None = None) -> "Technology":
        """First-order constant-field scaling to another feature size.

        Area scales with the square of the feature-size ratio; delay and
        energy scale linearly.  This is only used to sanity-compare
        against references fabricated in other nodes (e.g. the 22 nm
        macros of Fig. 8).
        """
        s = node_nm / self.node_nm
        return dataclasses.replace(
            self,
            name=name or f"{self.name}@{node_nm:g}nm",
            node_nm=node_nm,
            gate_area_um2=self.gate_area_um2 * s * s,
            gate_delay_ps=self.gate_delay_ps * s,
            gate_energy_fj=self.gate_energy_fj * s,
        )
