"""Technology-file I/O (the "Technology Files" input of Fig. 4).

Serialises a :class:`~repro.tech.technology.Technology` to a small
text format shaped like the liberty dialect, so a node can be shipped
beside a custom cell library:

.. code-block:: text

    technology (generic28) {
      node_nm: 28; gate_area_um2: 0.104; gate_delay_ps: 9.5;
      gate_energy_fj: 0.4; voltage_v: 0.9; nominal_voltage_v: 0.9;
      activity: 0.1; utilization: 0.72;
    }
"""

from __future__ import annotations

import re

from repro.tech.technology import Technology

__all__ = ["dump_technology", "load_technology"]

_TECH_RE = re.compile(r"technology\s*\(\s*([\w.@-]+)\s*\)\s*\{([^}]*)\}", re.S)
_ATTR_RE = re.compile(r"(\w+)\s*:\s*([-+0-9.eE]+)\s*;")

_FIELDS = (
    "node_nm",
    "gate_area_um2",
    "gate_delay_ps",
    "gate_energy_fj",
    "voltage_v",
    "nominal_voltage_v",
    "activity",
    "utilization",
)


def dump_technology(tech: Technology) -> str:
    """Serialise a technology to the text format."""
    attrs = "\n".join(
        f"  {field}: {getattr(tech, field):g};" for field in _FIELDS
    )
    return f"technology ({tech.name}) {{\n{attrs}\n}}\n"


def load_technology(text: str) -> Technology:
    """Parse the text format back into a :class:`Technology`.

    Raises:
        ValueError: on missing group or attributes.
    """
    match = _TECH_RE.search(text)
    if match is None:
        raise ValueError("no 'technology (<name>) {' group found")
    name, body = match.groups()
    attrs = {key: float(value) for key, value in _ATTR_RE.findall(body)}
    missing = set(_FIELDS) - set(attrs)
    if missing:
        raise ValueError(f"technology file missing fields: {sorted(missing)}")
    return Technology(name=name, **attrs)
