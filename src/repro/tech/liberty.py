"""A miniature liberty-like text format for cell libraries.

Real flows exchange standard-cell data as ``.lib`` (Liberty) files.  This
reproduction uses a drastically simplified dialect that keeps the shape
of Liberty (``library``/``cell`` groups with attributes) so users can
provide "customized cell libraries" (Fig. 4 of the paper) as text:

.. code-block:: text

    library (mylib) {
      cell (NOR) { area: 1.0; delay: 1.0; energy: 1.0; }
      cell (FA)  { area: 5.7; delay: 3.3; energy: 8.4; }
      ...
    }
"""

from __future__ import annotations

import re

from repro.model.cost import Cost
from repro.tech.cells import CellLibrary

__all__ = ["dump_library", "load_library"]

_LIBRARY_RE = re.compile(r"library\s*\(\s*([\w.-]+)\s*\)\s*\{", re.S)
_CELL_RE = re.compile(
    r"cell\s*\(\s*([\w.-]+)\s*\)\s*\{([^{}]*)\}", re.S
)
_ATTR_RE = re.compile(r"(\w+)\s*:\s*([-+0-9.eE]+)\s*;")


def dump_library(library: CellLibrary) -> str:
    """Serialise a :class:`CellLibrary` to the mini-liberty dialect."""
    lines = [f"library ({library.name}) {{"]
    for name in sorted(library.cells):
        cost = library.cells[name]
        lines.append(
            f"  cell ({name}) {{ area: {cost.area:g}; "
            f"delay: {cost.delay:g}; energy: {cost.energy:g}; }}"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def load_library(text: str) -> CellLibrary:
    """Parse the mini-liberty dialect back into a :class:`CellLibrary`.

    Raises:
        ValueError: on malformed input or missing required cells.
    """
    lib_match = _LIBRARY_RE.search(text)
    if lib_match is None:
        raise ValueError("no 'library (<name>) {' group found")
    name = lib_match.group(1)
    cells: dict[str, Cost] = {}
    for cell_match in _CELL_RE.finditer(text):
        cell_name, body = cell_match.groups()
        attrs = {key: float(value) for key, value in _ATTR_RE.findall(body)}
        missing = {"area", "delay", "energy"} - set(attrs)
        if missing:
            raise ValueError(
                f"cell {cell_name!r} is missing attributes: {sorted(missing)}"
            )
        cells[cell_name] = Cost(attrs["area"], attrs["delay"], attrs["energy"])
    if not cells:
        raise ValueError("library contains no cells")
    return CellLibrary(name=name, cells=cells)
