"""Golden matrix-vector multiplication references.

These are the specifications the hardware models are verified against:

* :func:`golden_mvm` — plain integer MVM (`y = W @ x`).
* :func:`bit_serial_mvm` — the DCIM dataflow spelled out: weight
  bit-planes map to columns, inputs stream MSB-first in ``k``-bit
  slices, partial sums shift-accumulate, column results fuse by bit
  position.  Bit-for-bit identical to :func:`golden_mvm` by
  construction, which the property tests assert.
"""

from __future__ import annotations

import numpy as np

from repro.func.formats import max_unsigned

__all__ = ["golden_mvm", "bit_serial_mvm", "weight_bitplanes", "input_slices"]


def _check_operands(weights: np.ndarray, x: np.ndarray, bw: int, bx: int) -> None:
    if weights.ndim != 2:
        raise ValueError(f"weights must be 2-D (H, M), got shape {weights.shape}")
    if x.ndim != 1 or x.shape[0] != weights.shape[0]:
        raise ValueError(
            f"x must be 1-D with length {weights.shape[0]}, got shape {x.shape}"
        )
    if weights.min(initial=0) < 0 or x.min(initial=0) < 0:
        raise ValueError("operands must be unsigned (see signed wrapper)")
    if weights.max(initial=0) > max_unsigned(bw):
        raise ValueError(f"weights exceed {bw} bits")
    if x.max(initial=0) > max_unsigned(bx):
        raise ValueError(f"inputs exceed {bx} bits")


def golden_mvm(weights, x, bw: int = 8, bx: int = 8) -> np.ndarray:
    """Reference ``y = W.T @ x`` for unsigned operands.

    Args:
        weights: ``(H, M)`` array of ``bw``-bit weights (H inputs fan in
            to each of M outputs, matching Fig. 2).
        x: length-``H`` input vector of ``bx``-bit values.
    """
    w = np.asarray(weights, dtype=np.int64)
    xv = np.asarray(x, dtype=np.int64)
    _check_operands(w, xv, bw, bx)
    return w.T @ xv


def weight_bitplanes(weights, bw: int) -> list[np.ndarray]:
    """Split weights into ``bw`` bit-planes; plane ``j`` is bit ``j`` (LSB first).

    Plane ``j`` is what column ``j`` of a fusion group stores.
    """
    w = np.asarray(weights, dtype=np.int64)
    return [(w >> j) & 1 for j in range(bw)]


def input_slices(x, bx: int, k: int) -> list[np.ndarray]:
    """Split inputs into MSB-first ``k``-bit slices (``bx / k`` of them)."""
    if bx % k:
        raise ValueError(f"k={k} must divide bx={bx}")
    xv = np.asarray(x, dtype=np.int64)
    slices = []
    for c in range(bx // k):
        shift = bx - (c + 1) * k
        slices.append((xv >> shift) & max_unsigned(k))
    return slices


def bit_serial_mvm(weights, x, bw: int = 8, bx: int = 8, k: int = 1) -> np.ndarray:
    """DCIM-dataflow MVM: bit-planes x MSB-first slices x shift-accumulate.

    Mirrors the hardware exactly:

    1. weight bit-plane ``j`` lives in column ``j`` of each group;
    2. each cycle, every column computes ``plane_j . slice_c`` with the
       adder tree;
    3. the shift accumulator folds cycles: ``acc = (acc << k) + partial``;
    4. the result fusion weights column ``j`` by ``2^j`` and sums.
    """
    w = np.asarray(weights, dtype=np.int64)
    xv = np.asarray(x, dtype=np.int64)
    _check_operands(w, xv, bw, bx)
    planes = weight_bitplanes(w, bw)
    slices = input_slices(xv, bx, k)
    outputs = np.zeros(w.shape[1], dtype=np.int64)
    for j, plane in enumerate(planes):
        acc = np.zeros(w.shape[1], dtype=np.int64)
        for slice_c in slices:
            partial = plane.T @ slice_c  # the adder tree, one per column
            acc = (acc << k) + partial  # the shift accumulator
        outputs += acc << j  # the result fusion
    return outputs


def signed_matvec(weights, x, matvec) -> np.ndarray:
    """Run a signed MVM on an unsigned engine via sign-magnitude split.

    ``matvec(W, x)`` must compute the unsigned product.  The engine runs
    four passes: ``(W+ - W-) @ (x+ - x-)`` expanded.

    Args:
        weights: signed ``(H, M)`` integer array.
        x: signed length-``H`` integer vector.
        matvec: callable implementing the unsigned MVM.
    """
    w = np.asarray(weights, dtype=np.int64)
    xv = np.asarray(x, dtype=np.int64)
    w_pos, w_neg = np.maximum(w, 0), np.maximum(-w, 0)
    x_pos, x_neg = np.maximum(xv, 0), np.maximum(-xv, 0)
    return (
        matvec(w_pos, x_pos)
        - matvec(w_pos, x_neg)
        - matvec(w_neg, x_pos)
        + matvec(w_neg, x_neg)
    )
