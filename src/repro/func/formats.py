"""Bit-exact number formats for the functional models.

Implements encode/decode for the paper's floating-point precisions (FP8
E4M3, FP16, BF16, FP32) plus unsigned-integer quantisation helpers.  The
encoder rounds to nearest-even, flushes subnormals to zero (the
pre-aligned datapath has no subnormal support) and saturates overflow to
the largest finite value; these choices are documented here because the
macro model's bit-exactness claims are relative to them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.precision import Precision, parse_precision

__all__ = ["FpFields", "FloatFormat", "quantize_unsigned", "max_unsigned"]


@dataclass(frozen=True)
class FpFields:
    """Decomposed floating-point value.

    Attributes:
        sign: 0 or 1.
        exponent: biased exponent field.
        significand: mantissa *with* the hidden bit prepended
            (``mantissa_bits`` wide), zero for the value zero.
    """

    sign: int
    exponent: int
    significand: int


@dataclass(frozen=True)
class FloatFormat:
    """A binary floating-point format parameterised like the paper.

    Attributes:
        name: format name.
        exponent_bits: width of the exponent field ``BE``.
        mantissa_bits: significand width ``BM`` *including* the hidden
            bit (so the stored field is ``mantissa_bits - 1`` wide).
    """

    name: str
    exponent_bits: int
    mantissa_bits: int

    def __post_init__(self) -> None:
        if self.exponent_bits < 1 or self.mantissa_bits < 1:
            raise ValueError("format needs positive exponent and mantissa widths")

    @classmethod
    def from_precision(cls, precision: Precision | str) -> "FloatFormat":
        """Build the format matching a floating-point :class:`Precision`."""
        p = parse_precision(precision)
        if not p.is_float:
            raise ValueError(f"{p.name} is not a floating-point precision")
        return cls(p.name, p.exponent_bits, p.mantissa_bits)

    # Derived constants ----------------------------------------------------
    @property
    def bias(self) -> int:
        """IEEE-style exponent bias."""
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def max_exponent_field(self) -> int:
        """Largest biased exponent used for finite values.

        We use the full field range for normal numbers (no inf/NaN
        encodings — the hardware datapath has none either).
        """
        return (1 << self.exponent_bits) - 1

    @property
    def max_value(self) -> float:
        """Largest representable finite magnitude."""
        frac = (1 << self.mantissa_bits) - 1
        return frac * 2.0 ** (
            self.max_exponent_field - self.bias - (self.mantissa_bits - 1)
        )

    @property
    def min_normal(self) -> float:
        """Smallest positive normal magnitude."""
        return 2.0 ** (1 - self.bias)

    # Encode/decode ----------------------------------------------------------
    def encode(self, value: float) -> FpFields:
        """Encode a Python float (round-to-nearest-even, saturating).

        Subnormal magnitudes flush to zero; NaN raises.
        """
        if math.isnan(value):
            raise ValueError("cannot encode NaN")
        sign = 1 if math.copysign(1.0, value) < 0 else 0
        mag = abs(value)
        if math.isinf(mag) or mag >= self.max_value:
            return FpFields(
                sign, self.max_exponent_field, (1 << self.mantissa_bits) - 1
            )
        if mag == 0.0:
            return FpFields(sign, 0, 0)
        exp = math.floor(math.log2(mag))
        # Guard against log2 rounding at binade edges.
        if mag < 2.0**exp:
            exp -= 1
        elif mag >= 2.0 ** (exp + 1):
            exp += 1
        biased = exp + self.bias
        if biased < 1:
            return FpFields(sign, 0, 0)  # flush subnormals to zero
        scale = self.mantissa_bits - 1 - exp
        significand = round(mag * 2.0**scale)  # ties-to-even via round()
        if significand >= (1 << self.mantissa_bits):  # rounding overflowed
            significand >>= 1
            biased += 1
            if biased > self.max_exponent_field:
                return FpFields(
                    sign, self.max_exponent_field, (1 << self.mantissa_bits) - 1
                )
        return FpFields(sign, biased, significand)

    def decode(self, fields: FpFields) -> float:
        """Decode fields back to a Python float."""
        if fields.significand == 0:
            return -0.0 if fields.sign else 0.0
        value = fields.significand * 2.0 ** (
            fields.exponent - self.bias - (self.mantissa_bits - 1)
        )
        return -value if fields.sign else value

    def quantize(self, value: float) -> float:
        """Round a float to the nearest representable value."""
        return self.decode(self.encode(value))

    def decode_raw(self, sign: int, exponent: int, significand: int) -> float:
        """Decode from loose integer fields (used by the macro model)."""
        return self.decode(FpFields(sign, exponent, significand))


def max_unsigned(bits: int) -> int:
    """Largest value of an unsigned ``bits``-wide integer."""
    if bits < 1:
        raise ValueError("bits must be >= 1")
    return (1 << bits) - 1


def quantize_unsigned(values, bits: int):
    """Clip-and-round an array-like to unsigned ``bits``-wide integers."""
    import numpy as np

    arr = np.asarray(values)
    return np.clip(np.rint(arr), 0, max_unsigned(bits)).astype(np.int64)
