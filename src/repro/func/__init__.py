"""Functional golden models: formats, MVM references, macro behaviour."""

from repro.func.formats import FloatFormat, FpFields, max_unsigned, quantize_unsigned
from repro.func.int2fp_model import ConversionResult, int_to_fp, pack_to_format
from repro.func.macro_model import FpMacroModel, IntMacroModel
from repro.func.mvm import (
    bit_serial_mvm,
    golden_mvm,
    input_slices,
    signed_matvec,
    weight_bitplanes,
)
from repro.func.prealign_model import (
    AlignedVector,
    aligned_dot,
    alignment_error,
    prealign,
)

__all__ = [
    "FloatFormat",
    "FpFields",
    "max_unsigned",
    "quantize_unsigned",
    "golden_mvm",
    "bit_serial_mvm",
    "weight_bitplanes",
    "input_slices",
    "signed_matvec",
    "AlignedVector",
    "prealign",
    "aligned_dot",
    "alignment_error",
    "IntMacroModel",
    "FpMacroModel",
    "ConversionResult",
    "int_to_fp",
    "pack_to_format",
]
