"""Cycle-level behavioural models of the generated DCIM macros.

These models execute the *same dataflow* as the generated RTL (weight
bit-planes per column, MSB-first ``k``-bit input slices, shift
accumulation, bit-position fusion) and are the functional reference the
gate-level netlists are verified against.

Hardware computes on unsigned magnitudes; signed operation uses the
sign-magnitude decomposition of :func:`repro.func.mvm.signed_matvec`
(four unsigned passes), and the FP model applies it to mantissas.
"""

from __future__ import annotations

import numpy as np

from repro.core.spec import DesignPoint
from repro.func.formats import FloatFormat, max_unsigned
from repro.func.mvm import input_slices, signed_matvec, weight_bitplanes
from repro.func.prealign_model import prealign

__all__ = ["IntMacroModel", "FpMacroModel"]


class IntMacroModel:
    """Behavioural multiplier-based integer macro.

    The array stores ``L`` selectable weight sets; each set is an
    ``(H, N/Bw)`` matrix of ``Bw``-bit weights.  One pass computes
    ``weights[sel].T @ x`` in ``Bx/k`` cycles.

    Args:
        design: an integer-precision design point.
    """

    def __init__(self, design: DesignPoint) -> None:
        if design.precision.is_float:
            raise ValueError("IntMacroModel needs an integer design point")
        self.design = design
        self.bx = design.precision.input_bits
        self.bw = design.precision.weight_bits
        self.groups = design.n // self.bw
        self.weights = np.zeros((design.l, design.h, self.groups), dtype=np.int64)

    @property
    def cycles_per_pass(self) -> int:
        """Cycles per matrix-vector pass (``Bx / k``)."""
        return self.bx // self.design.k

    def load_weights(self, weights, sel: int = 0) -> None:
        """Store one ``(H, N/Bw)`` unsigned weight set at index ``sel``.

        Raises:
            ValueError: on shape mismatch or out-of-range values.
        """
        w = np.asarray(weights, dtype=np.int64)
        expected = (self.design.h, self.groups)
        if w.shape != expected:
            raise ValueError(f"weights must have shape {expected}, got {w.shape}")
        if w.min(initial=0) < 0 or w.max(initial=0) > max_unsigned(self.bw):
            raise ValueError(f"weights must be unsigned {self.bw}-bit values")
        if not 0 <= sel < self.design.l:
            raise ValueError(f"sel must be in [0, {self.design.l}), got {sel}")
        self.weights[sel] = w

    def matvec(self, x, sel: int = 0) -> np.ndarray:
        """One pass: ``weights[sel].T @ x`` through the DCIM dataflow."""
        trace = self.matvec_trace(x, sel)
        return trace["outputs"]

    def matvec_trace(self, x, sel: int = 0) -> dict:
        """Like :meth:`matvec` but returns per-cycle internals.

        The trace exposes each cycle's adder-tree partials and
        accumulator states, which the gate-level verification compares
        flop-for-flop.
        """
        xv = np.asarray(x, dtype=np.int64)
        if xv.shape != (self.design.h,):
            raise ValueError(f"x must have shape ({self.design.h},), got {xv.shape}")
        if xv.min(initial=0) < 0 or xv.max(initial=0) > max_unsigned(self.bx):
            raise ValueError(f"inputs must be unsigned {self.bx}-bit values")
        if not 0 <= sel < self.design.l:
            raise ValueError(f"sel must be in [0, {self.design.l})")
        w = self.weights[sel]
        planes = weight_bitplanes(w, self.bw)  # LSB-first bit planes
        slices = input_slices(xv, self.bx, self.design.k)
        acc = np.zeros((self.bw, self.groups), dtype=np.int64)
        partials_log, acc_log = [], []
        for slice_c in slices:
            partial = np.stack([p.T @ slice_c for p in planes])  # adder trees
            acc = (acc << self.design.k) + partial  # shift accumulators
            partials_log.append(partial)
            acc_log.append(acc.copy())
        fused = np.zeros(self.groups, dtype=np.int64)
        for j in range(self.bw):
            fused += acc[j] << j  # result fusion
        return {
            "outputs": fused,
            "partials": partials_log,
            "accumulators": acc_log,
            "cycles": len(slices),
        }

    def matvec_signed(self, weights, x) -> np.ndarray:
        """Signed MVM via four unsigned passes (sign-magnitude split).

        Temporarily uses weight sets 0 (positive part) and, when ``L >
        1``, set 1 (negative part); with ``L == 1`` the negative pass
        reloads set 0.  Weight state is restored afterwards.
        """
        saved = self.weights.copy()
        try:

            def unsigned(wm, xv):
                self.load_weights(wm, sel=0)
                return self.matvec(xv, sel=0)

            return signed_matvec(weights, x, unsigned)
        finally:
            self.weights = saved


class FpMacroModel:
    """Behavioural pre-aligned floating-point macro.

    Weights are aligned offline against their global maximum exponent
    and stored as sign-magnitude mantissas; inputs are aligned at run
    time by the pre-alignment front end.  The mantissa MAC reuses the
    integer dataflow with ``Bx = Bw = BM``.
    """

    def __init__(self, design: DesignPoint) -> None:
        if not design.precision.is_float:
            raise ValueError("FpMacroModel needs a floating-point design point")
        self.design = design
        self.fmt = FloatFormat.from_precision(design.precision)
        self.bm = design.precision.mantissa_bits
        self.groups = design.n // self.bm
        self._mantissas: np.ndarray | None = None
        self._signs: np.ndarray | None = None
        self._wemax: int = 0

    @property
    def cycles_per_pass(self) -> int:
        """Cycles per pass (``BM / k``)."""
        return self.bm // self.design.k

    def load_weights(self, weights) -> None:
        """Offline-align and store an ``(H, N/BM)`` float weight matrix."""
        w = np.asarray(weights, dtype=float)
        expected = (self.design.h, self.groups)
        if w.shape != expected:
            raise ValueError(f"weights must have shape {expected}, got {w.shape}")
        aligned = prealign(w.ravel(), self.fmt)
        self._mantissas = aligned.mantissas.reshape(expected)
        self._signs = aligned.signs.reshape(expected)
        self._wemax = aligned.max_exponent

    def matvec(self, x) -> np.ndarray:
        """One pass over float inputs; returns float outputs.

        Bit-exact with respect to the pre-aligned datapath semantics
        (truncating alignment, exact integer MAC, exact rescale).
        """
        if self._mantissas is None:
            raise RuntimeError("load_weights must be called first")
        xv = np.asarray(x, dtype=float)
        if xv.shape != (self.design.h,):
            raise ValueError(f"x must have shape ({self.design.h},), got {xv.shape}")
        xa = prealign(xv, self.fmt)  # the pre-alignment front end
        x_signed = np.where(xa.signs == 1, -xa.mantissas, xa.mantissas)
        w_signed = np.where(self._signs == 1, -self._mantissas, self._mantissas)

        def unsigned(wm, xvec):
            planes = weight_bitplanes(wm, self.bm)
            slices = input_slices(xvec, self.bm, self.design.k)
            acc = np.zeros((self.bm, wm.shape[1]), dtype=np.int64)
            for slice_c in slices:
                partial = np.stack([p.T @ slice_c for p in planes])
                acc = (acc << self.design.k) + partial
            fused = np.zeros(wm.shape[1], dtype=np.int64)
            for j in range(self.bm):
                fused += acc[j] << j
            return fused

        acc = signed_matvec(w_signed, x_signed, unsigned)
        # INT-to-FP conversion: rescale by the two shared exponents.
        scale = 2.0 ** (
            (xa.max_exponent - self.fmt.bias - (self.bm - 1))
            + (self._wemax - self.fmt.bias - (self.bm - 1))
        )
        return acc.astype(float) * scale
