"""Bit-exact model of the FP pre-alignment path and its accuracy.

The pre-aligned architecture trades a little mantissa precision for a
purely-integer array: every input mantissa is right-shifted by
``XEmax - XE`` (bits shifted out are truncated), and weight mantissas
are aligned offline the same way against the weight-group maximum
exponent.  :func:`alignment_error` quantifies the truncation loss
against the exact dot product — the accuracy story behind the paper's
"full-precision" digital claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.func.formats import FloatFormat

__all__ = ["AlignedVector", "prealign", "aligned_dot", "alignment_error"]


@dataclass(frozen=True)
class AlignedVector:
    """Result of pre-aligning a float vector.

    Attributes:
        mantissas: aligned integer significands (``BM``-bit, truncated).
        max_exponent: the shared biased exponent ``XEmax``.
        signs: per-element sign bits.
        fmt: the format used.
    """

    mantissas: np.ndarray
    max_exponent: int
    signs: np.ndarray
    fmt: FloatFormat

    def values(self) -> np.ndarray:
        """Decode back to floats at the shared scale (truncation included)."""
        scale = 2.0 ** (
            self.max_exponent - self.fmt.bias - (self.fmt.mantissa_bits - 1)
        )
        signs = np.where(self.signs == 1, -1.0, 1.0)
        return signs * self.mantissas.astype(float) * scale


def prealign(values, fmt: FloatFormat) -> AlignedVector:
    """Align a float vector to its maximum exponent (Fig. 3 front end).

    Zero elements keep significand 0 and do not affect ``XEmax``; an
    all-zero vector aligns at exponent 0.
    """
    vals = np.asarray(values, dtype=float)
    if vals.ndim != 1:
        raise ValueError(f"need a 1-D vector, got shape {vals.shape}")
    fields = [fmt.encode(float(v)) for v in vals]
    nonzero = [f.exponent for f in fields if f.significand]
    xemax = max(nonzero) if nonzero else 0
    mantissas = np.array(
        [
            (f.significand >> (xemax - f.exponent)) if f.significand else 0
            for f in fields
        ],
        dtype=np.int64,
    )
    signs = np.array([f.sign for f in fields], dtype=np.int64)
    return AlignedVector(mantissas, xemax, signs, fmt)


def aligned_dot(x_values, w_values, fmt: FloatFormat) -> float:
    """Dot product through the pre-aligned integer datapath.

    Inputs are aligned at runtime; weights are aligned "offline".  The
    integer MAC multiplies signed mantissas (sign-magnitude in hardware,
    see :func:`repro.func.mvm.signed_matvec`), and the result is scaled
    by the two shared exponents — exactly what the INT-to-FP converter
    reconstructs.
    """
    xa = prealign(x_values, fmt)
    wa = prealign(w_values, fmt)
    x_signed = np.where(xa.signs == 1, -xa.mantissas, xa.mantissas)
    w_signed = np.where(wa.signs == 1, -wa.mantissas, wa.mantissas)
    acc = int(np.dot(x_signed, w_signed))
    scale = 2.0 ** (
        (xa.max_exponent - fmt.bias - (fmt.mantissa_bits - 1))
        + (wa.max_exponent - fmt.bias - (fmt.mantissa_bits - 1))
    )
    return acc * scale


def alignment_error(x_values, w_values, fmt: FloatFormat) -> dict[str, float]:
    """Truncation error of the pre-aligned path vs. the exact dot product.

    Returns a dict with the exact result, the pre-aligned result, the
    absolute and the relative error (relative to the exact magnitude,
    0 when the exact result is 0).
    """
    x = np.asarray(x_values, dtype=float)
    w = np.asarray(w_values, dtype=float)
    # Exact reference uses the *quantised* operands: the error measured
    # is alignment truncation, not input quantisation.
    xq = np.array([fmt.quantize(float(v)) for v in x])
    wq = np.array([fmt.quantize(float(v)) for v in w])
    exact = float(np.dot(xq, wq))
    approx = aligned_dot(x, w, fmt)
    abs_err = abs(exact - approx)
    rel_err = abs_err / abs(exact) if exact else 0.0
    return {
        "exact": exact,
        "prealigned": approx,
        "abs_error": abs_err,
        "rel_error": rel_err,
    }
