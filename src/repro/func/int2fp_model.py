"""Functional model of the INT-to-FP converter (Fig. 3 back end).

Mirrors the RTL template semantics exactly: a leading-one detector over
the ``Br``-bit fused magnitude, a normalising left shift, and the
exponent ``base_exp + lead``.  Sign handling is sign-magnitude (the
fused result's sign is tracked beside the magnitude), and packing into
a target :class:`~repro.func.formats.FloatFormat` truncates the
normalised mantissa to the field width (round-to-zero, like the
hardware's wire slice).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.func.formats import FloatFormat

__all__ = ["ConversionResult", "int_to_fp", "pack_to_format"]


@dataclass(frozen=True)
class ConversionResult:
    """Raw converter outputs (matching the RTL ports).

    Attributes:
        mantissa: ``br``-bit normalised mantissa (MSB = the leading one),
            0 for a zero input.
        exponent: ``base_exp + lead`` (0 for a zero input).
        lead: index of the leading one (0 for a zero input).
        is_zero: zero-input flag.
        br: converter width.
    """

    mantissa: int
    exponent: int
    lead: int
    is_zero: bool
    br: int


def int_to_fp(value: int, base_exp: int, br: int) -> ConversionResult:
    """Normalise a ``br``-bit unsigned magnitude (RTL-exact).

    Args:
        value: the fused integer result (``0 <= value < 2**br``).
        base_exp: shared exponent base (``XEmax + WEmax`` in the macro).
        br: converter width ``Br = Bw + BM + log2 H``.

    Raises:
        ValueError: when the value does not fit ``br`` bits.
    """
    if br < 1:
        raise ValueError(f"br must be >= 1, got {br}")
    if not 0 <= value < (1 << br):
        raise ValueError(f"value {value} does not fit {br} bits")
    if value == 0:
        return ConversionResult(0, 0, 0, True, br)
    lead = value.bit_length() - 1
    mantissa = (value << (br - 1 - lead)) & ((1 << br) - 1)
    return ConversionResult(mantissa, base_exp + lead, lead, False, br)


def pack_to_format(
    result: ConversionResult, sign: int, fmt: FloatFormat
) -> float:
    """Pack raw converter outputs into a float of ``fmt``.

    The normalised ``br``-bit mantissa is truncated to the format's
    significand width (the hardware slices the top ``BM`` bits); the
    exponent is used as the biased exponent field, saturating at the
    format's range.
    """
    if result.is_zero:
        return -0.0 if sign else 0.0
    shift = result.br - fmt.mantissa_bits
    if shift >= 0:
        significand = result.mantissa >> shift
    else:
        significand = result.mantissa << -shift
    exponent = min(max(result.exponent, 0), fmt.max_exponent_field)
    if exponent != result.exponent:  # saturated: clamp the magnitude too
        significand = (1 << fmt.mantissa_bits) - 1 if result.exponent > 0 else 0
    return fmt.decode_raw(sign, exponent, significand)
