"""The problem registry every campaign front-end dispatches through.

The module-level :data:`REGISTRY` holds one
:class:`~repro.problems.base.ProblemDefinition` per name.  Built-in
problems (``"dcim"``, ``"mapping"``) register themselves when their
modules are imported; :func:`get_problem`/:func:`problem_names` import
them lazily first, so ``import repro.problems`` stays cheap and
user-registered problems can import the service layer without cycles.
"""

from __future__ import annotations

import importlib
import threading

from repro.problems.base import ProblemDefinition

__all__ = [
    "ProblemRegistry",
    "REGISTRY",
    "register_problem",
    "load_builtin_problems",
    "get_problem",
    "problem_names",
    "problem_catalog",
]

#: Modules that register the built-in problems on import.
_BUILTIN_MODULES = ("repro.problems.dcim", "repro.problems.mapping")


class ProblemRegistry:
    """Name -> :class:`ProblemDefinition` map with collision checks."""

    def __init__(self) -> None:
        self._definitions: dict[str, ProblemDefinition] = {}
        self._lock = threading.Lock()

    def register(
        self, definition: ProblemDefinition, replace: bool = False
    ) -> ProblemDefinition:
        """Add one definition; returns it (decorator-friendly).

        Raises:
            ValueError: on a missing/ill-formed name, or when the name
                is already taken and ``replace`` is False.
        """
        name = getattr(definition, "name", None)
        if not isinstance(name, str) or not name or not name.replace("_", "a").isalnum():
            raise ValueError(
                f"problem name must be a non-empty alphanumeric/underscore "
                f"string, got {name!r}"
            )
        with self._lock:
            if name in self._definitions and not replace:
                raise ValueError(
                    f"problem {name!r} is already registered; pass "
                    f"replace=True to override it"
                )
            self._definitions[name] = definition
        return definition

    def get(self, name: str) -> ProblemDefinition:
        """The definition for ``name``; raises :class:`KeyError`."""
        with self._lock:
            try:
                return self._definitions[name]
            except KeyError:
                known = ", ".join(sorted(self._definitions)) or "none"
                raise KeyError(
                    f"unknown problem {name!r} (registered: {known})"
                ) from None

    def names(self) -> list[str]:
        """Registered problem names, sorted."""
        with self._lock:
            return sorted(self._definitions)

    def describe_all(self) -> list[dict]:
        """Discovery payloads of every registered problem, name-sorted."""
        with self._lock:
            definitions = [self._definitions[n] for n in sorted(self._definitions)]
        return [definition.describe() for definition in definitions]

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._definitions

    def __len__(self) -> int:
        with self._lock:
            return len(self._definitions)


#: The default registry the serving stack dispatches through.
REGISTRY = ProblemRegistry()


def register_problem(
    definition: ProblemDefinition, replace: bool = False
) -> ProblemDefinition:
    """Register a definition with the default registry; returns it."""
    return REGISTRY.register(definition, replace=replace)


def load_builtin_problems() -> None:
    """Import (and thereby register) the built-in problem modules."""
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def get_problem(name: str) -> ProblemDefinition:
    """Look ``name`` up in the default registry (built-ins loaded first)."""
    load_builtin_problems()
    return REGISTRY.get(name)


def problem_names() -> list[str]:
    """Every registered problem name (built-ins loaded first)."""
    load_builtin_problems()
    return REGISTRY.names()


def problem_catalog() -> list[dict]:
    """Discovery payloads for ``GET /api/problems`` and the CLI."""
    load_builtin_problems()
    return REGISTRY.describe_all()
