"""The built-in ``"dcim"`` problem: macro architecture search.

This wraps the original (and still default) workload of the stack —
NSGA-II over the ``(N, H, L, k)`` macro design space of one
:class:`~repro.core.spec.DcimSpec` — as a registry entry, so the
generic campaign machinery reaches it the same way it reaches any
user-registered problem.  The wire spec is the existing
:class:`~repro.service.api.SpecRequest`, which keeps every v1-era
payload valid byte for byte.
"""

from __future__ import annotations

from repro.dse.problem import OBJECTIVE_NAMES, DcimProblem
from repro.problems.base import GASizing, ProblemDefinition, SpecValidationError
from repro.problems.registry import register_problem
from repro.service.api import SpecRequest

__all__ = ["DcimProblemDefinition"]


class DcimProblemDefinition(ProblemDefinition):
    """Registry entry for the DCIM macro design-space exploration."""

    name = "dcim"
    title = "DCIM macro architecture search"
    description = (
        "NSGA-II over the (N, H, L, k) digital CIM macro design space of "
        "one (Wstore, precision) specification; objectives are the "
        "paper's normalised [area, delay, energy, -throughput]."
    )
    objectives = OBJECTIVE_NAMES
    spec_type = SpecRequest
    sizing = GASizing(population_size=64, generations=60)

    def to_spec(self, spec_request: SpecRequest):
        return spec_request.to_spec()

    def validate_spec(self, spec_request: SpecRequest) -> None:
        # Fail wire payloads fast (HTTP submits answer 400 invalid_spec
        # instead of queueing a campaign doomed to fail): materialising
        # the DcimSpec checks the precision grammar and bounds.
        try:
            spec_request.to_spec()
        except ValueError as exc:
            raise SpecValidationError(self.name, str(exc)) from None

    def from_spec(self, spec) -> SpecRequest:
        return SpecRequest.from_spec(spec)

    def spec_label(self, spec) -> str:
        return f"{spec.wstore}:{spec.precision.name}"

    def request_label(self, spec_request: SpecRequest) -> str:
        # No materialisation: labels must work for unrunnable requests
        # too (a failed campaign still records its spec provenance).
        return f"{spec_request.wstore}:{spec_request.precision}"

    def parse_cli_spec(self, text: str) -> SpecRequest:
        wstore_text, _, precision = text.partition(":")
        if not precision:
            raise SpecValidationError(
                self.name,
                f"spec {text!r} must look like WSTORE:PRECISION "
                f"(e.g. 8192:INT8)",
            )
        try:
            request = SpecRequest(wstore=int(wstore_text), precision=precision)
            request.to_spec()  # fail fast on bad bounds/precision
        except ValueError as exc:
            raise SpecValidationError(self.name, str(exc)) from None
        return request

    def make_problem(self, spec, library=None, engine: str = "auto"):
        if library is None:
            return DcimProblem(spec, engine_backend=engine)
        return DcimProblem(spec, library, engine_backend=engine)

    def point_columns(self) -> tuple[str, ...]:
        return ("prec", "N", "H", "L", "k", *self.objectives)

    def point_row(self, point, objectives) -> tuple:
        return (
            point.precision.name,
            point.n,
            point.h,
            point.l,
            point.k,
            *(f"{value:.4g}" for value in objectives),
        )


register_problem(DcimProblemDefinition())
