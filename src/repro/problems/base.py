"""The problem abstraction behind the campaign API.

A *problem definition* makes one optimisation problem self-describing:
it owns the wire codec for its specification payloads (validate a JSON
dict, emit one back), a factory for the GA-facing problem object
(:class:`repro.dse.nsga2.Problem` protocol), objective metadata, and
default GA sizing.  The serving stack — ``CampaignRequest`` v2, the job
queue, the HTTP server, the CLI — never names a concrete problem class;
everything dispatches through a :class:`~repro.problems.registry.
ProblemRegistry` entry, so a new workload plugs into every front-end by
registering one definition (see ``examples/custom_problem.py``).
"""

from __future__ import annotations

import dataclasses
import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass

__all__ = [
    "DEFAULT_PROBLEM",
    "GASizing",
    "ProblemDefinition",
    "SpecValidationError",
    "filter_unknown_keys",
]

#: The problem every v1-era payload (and every omitted ``problem`` key)
#: resolves to.
DEFAULT_PROBLEM = "dcim"


def filter_unknown_keys(payload: dict, cls: type, label: str) -> dict:
    """Drop keys the dataclass ``cls`` does not know, with a warning.

    Forward compatibility (shared by every wire loader): an older CLI
    reading a file written by a newer schema should degrade gracefully,
    not crash with ``TypeError``.
    """
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - known)
    if not unknown:
        return payload
    warnings.warn(
        f"ignoring unknown {label} key(s) {', '.join(map(repr, unknown))} "
        f"(written by a newer schema version?)",
        RuntimeWarning,
        stacklevel=3,
    )
    return {k: v for k, v in payload.items() if k in known}


class SpecValidationError(ValueError):
    """A spec payload failed one problem's validation.

    Carries the problem name and the bare message so front-ends can
    build structured error envelopes without parsing the string.
    """

    def __init__(self, problem: str, message: str) -> None:
        super().__init__(f"[{problem}] {message}")
        self.problem = problem
        self.message = message


@dataclass(frozen=True)
class GASizing:
    """Default NSGA-II sizing a problem suggests for itself."""

    population_size: int = 64
    generations: int = 60


class ProblemDefinition(ABC):
    """One registry entry: a self-describing optimisation problem.

    Subclasses set the class attributes and implement the abstract
    methods; everything else (schema introspection, tolerant payload
    parsing, the ``/api/problems`` description) has working defaults
    derived from ``spec_type``, which must be a dataclass whose fields
    are JSON-able (plain ints/floats/strs/None).

    Two spec representations flow through the stack:

    * the *spec request* — an instance of ``spec_type``, the JSON-able
      wire form stored inside a ``CampaignRequest``, and
    * the *concrete spec* — whatever :meth:`make_problem` consumes
      (:meth:`to_spec` converts; for problems whose wire form is
      already concrete it is the identity).
    """

    #: Registry key (``"dcim"``, ``"mapping"``, ...).
    name: str
    #: One-line human title.
    title: str = ""
    #: Longer description for discovery endpoints.
    description: str = ""
    #: Ordered objective labels (all minimised).
    objectives: tuple[str, ...] = ()
    #: Dataclass type of the JSON-able spec request.
    spec_type: type
    #: Default GA sizing applied when a caller does not override it.
    sizing: GASizing = GASizing()

    # Wire codec -----------------------------------------------------------
    def parse_spec(self, payload):
        """Coerce one spec payload into a validated ``spec_type`` instance.

        Accepts an existing instance unchanged; dict payloads are
        filtered against the dataclass fields first — unknown keys are
        dropped with a :class:`RuntimeWarning` instead of raising, so
        files written by a newer schema stay readable.

        Raises:
            SpecValidationError: when the payload is not a mapping, is
                missing required fields, or fails the spec's own
                validation.
        """
        if isinstance(payload, self.spec_type):
            return payload
        if not isinstance(payload, dict):
            raise SpecValidationError(
                self.name,
                f"spec must be a mapping or {self.spec_type.__name__}, "
                f"got {type(payload).__name__}",
            )
        payload = filter_unknown_keys(
            dict(payload), self.spec_type, f"{self.name} spec"
        )
        try:
            spec_request = self.spec_type(**payload)
        except (TypeError, ValueError) as exc:
            raise SpecValidationError(self.name, str(exc)) from None
        self.validate_spec(spec_request)
        return spec_request

    def validate_spec(self, spec_request) -> None:
        """Extra semantic validation of a freshly parsed wire payload.

        Called by :meth:`parse_spec` after dataclass construction, for
        problems whose spec validity goes beyond field types (e.g. the
        dcim precision grammar).  Raise :class:`SpecValidationError`
        to reject; the default accepts everything.  Only *parsed*
        payloads pass through here — spec objects handed in directly
        by programmatic callers are trusted.
        """

    def spec_dict(self, spec_request) -> dict:
        """The JSON-able dict form of one spec request."""
        return dataclasses.asdict(spec_request)

    @abstractmethod
    def to_spec(self, spec_request):
        """Wire spec request -> concrete spec for :meth:`make_problem`."""

    def from_spec(self, spec):
        """Concrete spec -> wire spec request (identity by default)."""
        return spec

    @abstractmethod
    def spec_label(self, spec) -> str:
        """Short human label progress events identify a spec by."""

    def request_label(self, spec_request) -> str:
        """Label a *wire* spec without running the problem.

        Defaults to materialising the concrete spec; problems whose
        validation can fail at materialisation time (e.g. a bad
        precision name) should override this so failed campaigns are
        still recordable with meaningful labels.
        """
        return self.spec_label(self.to_spec(spec_request))

    @abstractmethod
    def parse_cli_spec(self, text: str):
        """One ``--spec`` CLI string -> validated spec request."""

    # Problem construction -------------------------------------------------
    @abstractmethod
    def make_problem(self, spec, library=None, engine: str = "auto"):
        """Build the GA-facing problem object for one concrete spec.

        The returned object must implement the
        :class:`repro.dse.nsga2.Problem` protocol plus ``decode``.
        """

    # Frontier rendering ---------------------------------------------------
    def frontier_point(self, point, objectives):
        """Map one decoded point onto the wire-level frontier record.

        :class:`~repro.core.spec.DesignPoint`\\ s fill the macro columns
        directly; any other decoded point lands in the record's
        ``extras`` (a dict point verbatim, anything else as its one-line
        description).  Problems with richer point state should override
        this to populate both (the ``"mapping"`` problem does).
        """
        from repro.core.spec import DesignPoint
        from repro.service.api import FrontierPoint

        if isinstance(point, DesignPoint):
            return FrontierPoint.from_design(point, tuple(objectives))
        extras = (
            dict(point)
            if isinstance(point, dict)
            else {"point": self.describe_point(point)}
        )
        return FrontierPoint(
            precision="-",
            n=0,
            h=0,
            l=0,
            k=0,
            objectives=tuple(objectives),
            extras=extras,
        )

    def describe_point(self, point) -> str:
        """One-line rendering of a decoded point."""
        describe = getattr(point, "describe", None)
        return describe() if callable(describe) else repr(point)

    def point_columns(self) -> tuple[str, ...]:
        """Column headers for the CLI frontier table."""
        return ("design", *self.objectives)

    def point_row(self, point, objectives) -> tuple:
        """One CLI frontier-table row matching :meth:`point_columns`."""
        return (
            self.describe_point(point),
            *(f"{value:.4g}" for value in objectives),
        )

    # Discovery ------------------------------------------------------------
    def spec_schema(self) -> dict:
        """Field-by-field schema of the spec request (for discovery).

        Derived from the ``spec_type`` dataclass, so registering a
        problem automatically documents its wire format.
        """
        schema: dict[str, dict] = {}
        for spec_field in dataclasses.fields(self.spec_type):
            required = (
                spec_field.default is dataclasses.MISSING
                and spec_field.default_factory is dataclasses.MISSING
            )
            entry: dict = {
                "type": str(spec_field.type),
                "required": required,
            }
            if not required and spec_field.default is not dataclasses.MISSING:
                entry["default"] = spec_field.default
            schema[spec_field.name] = entry
        return schema

    def describe(self) -> dict:
        """The ``GET /api/problems`` entry for this definition."""
        return {
            "name": self.name,
            "title": self.title,
            "description": self.description,
            "objectives": list(self.objectives),
            "defaults": {
                "population_size": self.sizing.population_size,
                "generations": self.sizing.generations,
            },
            "spec_schema": self.spec_schema(),
        }
