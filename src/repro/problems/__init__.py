"""Pluggable optimisation problems behind the campaign API.

The serving stack is problem-agnostic: every front-end (the v2
``CampaignRequest`` schema, :func:`repro.service.campaign.run_campaign`,
the job queue, the HTTP server, the CLI) dispatches through the
:class:`~repro.problems.registry.ProblemRegistry`, where each entry
(:class:`~repro.problems.base.ProblemDefinition`) bundles a name, a
spec codec, a problem factory, objective metadata and default GA
sizing.

Built-ins:

* ``"dcim"`` (:mod:`repro.problems.dcim`) — the original macro
  architecture search over :class:`~repro.core.spec.DcimSpec`,
* ``"mapping"`` (:mod:`repro.problems.mapping`) — network-to-system
  mapping search over :mod:`repro.workloads.mapping`/``system``.

They are imported (and registered) lazily on the first
:func:`get_problem`/:func:`problem_names` call.  Register your own with
:func:`register_problem` — see ``examples/custom_problem.py``.
"""

from repro.problems.base import (
    DEFAULT_PROBLEM,
    GASizing,
    ProblemDefinition,
    SpecValidationError,
)
from repro.problems.registry import (
    REGISTRY,
    ProblemRegistry,
    get_problem,
    load_builtin_problems,
    problem_catalog,
    problem_names,
    register_problem,
)

__all__ = [
    "DEFAULT_PROBLEM",
    "GASizing",
    "ProblemDefinition",
    "SpecValidationError",
    "ProblemRegistry",
    "REGISTRY",
    "register_problem",
    "get_problem",
    "problem_names",
    "problem_catalog",
    "load_builtin_problems",
]
