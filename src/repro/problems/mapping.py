"""The built-in ``"mapping"`` problem: network-to-system mapping search.

Where the ``"dcim"`` problem optimises one macro in normalised units,
this problem optimises a *deployment*: which macro design, replicated
how many times, serves a named workload network best.  The genome
extends the DCIM exponent encoding with a macro-count gene, and each
candidate is scored by actually mapping the network onto the system
(:func:`repro.workloads.system.map_system`), so tiling, weight reloads
and schedule effects shape the front — objectives are physical
``[system area mm2, latency us, energy uJ, -inferences/s]``.

It exists both as a genuinely useful second workload and as the proof
that the registry abstraction holds: nothing in the serving stack knows
this module beyond its registry entry.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.precision import parse_precision
from repro.core.spec import DcimSpec, DesignPoint
from repro.dse.genome import GenomeCodec
from repro.model.engine import CostEngine
from repro.problems.base import GASizing, ProblemDefinition, SpecValidationError
from repro.problems.registry import register_problem
from repro.tech.cells import CellLibrary
from repro.tech.corners import STANDARD_CORNERS, apply_corner
from repro.tech.pdk import load_pdk
from repro.workloads.mapping import recommend_spec
from repro.workloads.networks import AVAILABLE_NETWORKS
from repro.workloads.system import map_system

__all__ = [
    "MappingSpec",
    "SystemPoint",
    "MappingProblem",
    "MappingProblemDefinition",
    "MAPPING_OBJECTIVES",
]

#: Minimised objective order of the mapping problem.
MAPPING_OBJECTIVES = ("area_mm2", "latency_us", "energy_uj", "neg_inferences_s")

#: Schedules :func:`repro.workloads.system.map_system` understands.
SCHEDULES = ("sequential", "pipelined")


@dataclass(frozen=True)
class MappingSpec:
    """JSON-able specification of one deployment search.

    Attributes:
        network: workload name from
            :data:`repro.workloads.networks.AVAILABLE_NETWORKS`.
        precision: computing precision name (e.g. ``INT8``).
        schedule: system schedule (``sequential``/``pipelined``).
        max_macros: upper bound on the macro count; the genome explores
            powers of two up to this bound.
        wstore: per-macro weight storage; ``None`` derives it from the
            network's largest layer (:func:`~repro.workloads.mapping.
            recommend_spec`).
        pdk / corner: technology node and PVT corner for the physical
            numbers.
        max_l / max_h: macro design-space bounds (as in
            :class:`~repro.core.spec.DcimSpec`).
    """

    network: str
    precision: str = "INT8"
    schedule: str = "sequential"
    max_macros: int = 8
    wstore: int | None = None
    pdk: str = "generic28"
    corner: str = "tt"
    max_l: int = 64
    max_h: int = 2048

    def __post_init__(self) -> None:
        if self.network not in AVAILABLE_NETWORKS:
            raise ValueError(
                f"unknown network {self.network!r}; available: "
                f"{', '.join(sorted(AVAILABLE_NETWORKS))}"
            )
        if self.schedule not in SCHEDULES:
            raise ValueError(
                f"unknown schedule {self.schedule!r}; choose from {SCHEDULES}"
            )
        if self.max_macros < 1:
            raise ValueError(f"max_macros must be >= 1, got {self.max_macros}")
        if self.corner not in STANDARD_CORNERS:
            raise ValueError(
                f"unknown corner {self.corner!r}; choose from "
                f"{sorted(STANDARD_CORNERS)}"
            )
        parse_precision(self.precision)  # fail fast on bad names

    def dcim_spec(self) -> DcimSpec:
        """The per-macro design space this deployment searches."""
        precision = parse_precision(self.precision)
        if self.wstore is not None:
            return DcimSpec(
                wstore=self.wstore,
                precision=precision,
                max_l=self.max_l,
                max_h=self.max_h,
            )
        return recommend_spec(
            AVAILABLE_NETWORKS[self.network](),
            precision,
            max_l=self.max_l,
            max_h=self.max_h,
        )


@dataclass(frozen=True)
class SystemPoint:
    """One decoded candidate: a macro design replicated ``n_macros`` times."""

    design: DesignPoint
    n_macros: int
    schedule: str = "sequential"

    def describe(self) -> str:
        return (
            f"{self.design.describe()} x{self.n_macros} ({self.schedule})"
        )


@dataclass
class MappingProblem:
    """GA-facing problem object for one :class:`MappingSpec`.

    Implements the :class:`repro.dse.nsga2.Problem` protocol.  The
    genome is ``(a, b, c, k_idx, em)``: the DCIM exponent genes plus a
    macro-count exponent (``n_macros = 2**em``).  Batch evaluation
    computes every candidate's macro cost through one shared
    :class:`~repro.model.engine.CostEngine` call, then maps the network
    onto each system — evaluation is a pure function of the genome, so
    runs are bit-identical per seed and cacheable across backends.
    """

    spec: MappingSpec
    library: CellLibrary = field(default_factory=CellLibrary.default)
    engine_backend: str = "auto"

    def __post_init__(self) -> None:
        self.codec = GenomeCodec(self.spec.dcim_spec())
        self.layers = AVAILABLE_NETWORKS[self.spec.network]()
        self.tech = apply_corner(load_pdk(self.spec.pdk), self.spec.corner)
        self.engine = CostEngine(self.library, backend=self.engine_backend)
        #: Largest macro-count exponent with ``2**em <= max_macros``.
        self.max_em = int(math.log2(self.spec.max_macros))

    # Problem protocol -----------------------------------------------------
    def sample(self, rng: random.Random) -> tuple[int, ...]:
        return (*self.codec.sample(rng), rng.randint(0, self.max_em))

    def repair(
        self, genome: tuple[int, ...], rng: random.Random
    ) -> tuple[int, ...]:
        base = self.codec.repair(tuple(genome[:4]), rng)
        em = min(max(genome[4], 0), self.max_em)
        return (*base, em)

    def mutation_steps(self) -> tuple[int, int, int, int, int]:
        k_span = max(len(self.codec.k_choices) - 1, 1)
        return (2, 2, 2, k_span, 1)

    def evaluate(self, genome: tuple[int, ...]) -> tuple[float, ...]:
        return self.evaluate_batch([genome])[0]

    def evaluate_batch(
        self, genomes: Sequence[tuple[int, ...]]
    ) -> list[tuple[float, ...]]:
        if not genomes:
            return []
        designs = self.codec.decode_batch([g[:4] for g in genomes])
        costs = self.engine.macro_costs(designs)
        results: list[tuple[float, ...]] = []
        for genome, design, cost in zip(genomes, designs, costs):
            em = genome[4]
            if not 0 <= em <= self.max_em:
                raise ValueError(f"infeasible genome {tuple(genome)}")
            mapped = map_system(
                self.layers,
                design,
                self.tech,
                n_macros=1 << em,
                schedule=self.spec.schedule,
                library=self.library,
                cost=cost,
            )
            results.append(
                (
                    mapped.area_mm2,
                    mapped.latency_us,
                    mapped.energy_uj,
                    -mapped.throughput_inferences_s,
                )
            )
        return results

    # Conveniences ---------------------------------------------------------
    def decode(self, genome: tuple[int, ...]) -> SystemPoint:
        em = genome[4]
        if not 0 <= em <= self.max_em:
            raise ValueError(f"infeasible genome {tuple(genome)}")
        return SystemPoint(
            design=self.codec.decode(tuple(genome[:4])),
            n_macros=1 << em,
            schedule=self.spec.schedule,
        )


class MappingProblemDefinition(ProblemDefinition):
    """Registry entry for the network-to-system mapping search."""

    name = "mapping"
    title = "Network-to-system mapping search"
    description = (
        "NSGA-II over macro design x macro count for a named workload "
        "network: each candidate system is scored by mapping the network "
        "onto it (tiling, reloads, schedule), yielding physical "
        "[area mm2, latency us, energy uJ, -inferences/s] objectives."
    )
    objectives = MAPPING_OBJECTIVES
    spec_type = MappingSpec
    sizing = GASizing(population_size=32, generations=24)

    def to_spec(self, spec_request: MappingSpec) -> MappingSpec:
        return spec_request

    def spec_label(self, spec: MappingSpec) -> str:
        return f"{spec.network}:{spec.precision}:{spec.schedule}"

    def request_label(self, spec_request: MappingSpec) -> str:
        return self.spec_label(spec_request)

    def parse_cli_spec(self, text: str) -> MappingSpec:
        parts = text.split(":")
        if not parts[0] or len(parts) > 3:
            raise SpecValidationError(
                self.name,
                f"spec {text!r} must look like NETWORK[:PRECISION[:SCHEDULE]] "
                f"(e.g. tiny_cnn:INT8)",
            )
        payload: dict = {"network": parts[0]}
        if len(parts) > 1 and parts[1]:
            payload["precision"] = parts[1]
        if len(parts) > 2 and parts[2]:
            payload["schedule"] = parts[2]
        try:
            return MappingSpec(**payload)
        except ValueError as exc:
            raise SpecValidationError(self.name, str(exc)) from None

    def make_problem(self, spec, library=None, engine: str = "auto"):
        if library is None:
            return MappingProblem(spec, engine_backend=engine)
        return MappingProblem(spec, library, engine_backend=engine)

    def frontier_point(self, point: SystemPoint, objectives):
        from repro.service.api import FrontierPoint

        design = point.design
        return FrontierPoint(
            precision=design.precision.name,
            n=design.n,
            h=design.h,
            l=design.l,
            k=design.k,
            objectives=tuple(objectives),
            extras={"n_macros": point.n_macros, "schedule": point.schedule},
        )

    def point_columns(self) -> tuple[str, ...]:
        return ("prec", "N", "H", "L", "k", "macros", "area mm2",
                "lat us", "E uJ", "inf/s")

    def point_row(self, point: SystemPoint, objectives) -> tuple:
        design = point.design
        area, latency, energy, neg_throughput = objectives
        return (
            design.precision.name,
            design.n,
            design.h,
            design.l,
            design.k,
            point.n_macros,
            f"{area:.3f}",
            f"{latency:.2f}",
            f"{energy:.3f}",
            f"{-neg_throughput:.0f}",
        )


register_problem(MappingProblemDefinition())
