"""Observability layer: metrics, structured logging, admission control.

Dependency-free operational plumbing for the serving stack:

* :mod:`repro.obs.metrics` — thread-safe ``Counter``/``Gauge``/
  ``Histogram`` instruments, labelled families, and a
  ``MetricsRegistry`` rendering Prometheus text, JSON, and flat
  samples,
* :mod:`repro.obs.log` — a JSON-lines structured logger shared by the
  HTTP server and job-queue workers,
* :mod:`repro.obs.admission` — token-bucket rate limiting, bounded
  queues, and per-request budget caps for ``repro serve``,
* :mod:`repro.obs.snapshot` — a periodic sampler appending metrics
  history into the :class:`~repro.store.runstore.RunStore` for the
  ``repro dashboard`` renderer,
* :mod:`repro.obs.trace` — a span tracer with contextvar-based ambient
  spans, W3C ``traceparent`` propagation, head sampling, and
  ascii-tree / Chrome-trace exports for ``repro trace``.
"""

from repro.obs.admission import (
    AdmissionController,
    AdmissionError,
    AdmissionPolicy,
    RateLimiter,
    TokenBucket,
    request_budget,
)
from repro.obs.log import LEVELS, JsonLogger, configure, get_logger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.snapshot import MetricsSnapshotter
from repro.obs.trace import (
    KNOWN_SOURCES,
    NULL_SPAN,
    NULL_TRACER,
    Span,
    SpanContext,
    TraceRecord,
    Tracer,
    chrome_trace,
    current_span,
    format_traceparent,
    get_tracer,
    normalize_source,
    parse_traceparent,
    set_tracer,
    spans_to_dicts,
    trace_tree,
    use_span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "JsonLogger",
    "LEVELS",
    "configure",
    "get_logger",
    "AdmissionController",
    "AdmissionError",
    "AdmissionPolicy",
    "RateLimiter",
    "TokenBucket",
    "request_budget",
    "MetricsSnapshotter",
    "KNOWN_SOURCES",
    "NULL_SPAN",
    "NULL_TRACER",
    "Span",
    "SpanContext",
    "TraceRecord",
    "Tracer",
    "chrome_trace",
    "current_span",
    "format_traceparent",
    "get_tracer",
    "normalize_source",
    "parse_traceparent",
    "set_tracer",
    "spans_to_dicts",
    "trace_tree",
    "use_span",
]
