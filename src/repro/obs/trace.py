"""Dependency-free span tracing with W3C context propagation.

One campaign submit fans out through the HTTP server, the
:class:`~repro.service.jobs.JobQueue`, :func:`~repro.service.campaign.
run_campaign`, per-spec GA loops, executor chunks, and batched cache
I/O.  This module gives all those layers one request identity:

* :class:`Span` — one timed operation (``trace_id``/``span_id``/
  ``parent_id``, monotonic-clock duration, status + structured
  attributes),
* :class:`Tracer` — starts spans, tracks every live trace, and lands
  finished traces in a bounded in-memory ring plus any registered
  sinks (the server wires a sink persisting into the
  :class:`~repro.store.runstore.RunStore`'s ``trace_spans`` table),
* a **contextvar-based ambient current span** so deep layers (the
  cache, the executors) attach child spans without plumbing arguments
  through every call — with explicit helpers (:func:`use_span`,
  :func:`set_current_span`) for the places where a context does *not*
  flow automatically: new threads and GA observer callbacks,
* **W3C trace context**: :func:`format_traceparent` /
  :func:`parse_traceparent` implement the ``traceparent`` header, so
  :class:`~repro.service.server.CampaignClient` joins the server's
  trace today and remote workers can join a coordinator's tomorrow.

Sampling and retention
----------------------

The keep/drop decision is **head sampling**: it is taken once, when a
trace's root span starts, from a *private* seeded ``random.Random``
(never the global RNG — starting a trace can never perturb a seeded GA
run).  Spans of a sampled-out trace are still assembled so two
always-keep policies can override the head decision when the trace
completes: a trace containing any ``status="error"`` span is kept, and
— with ``slow_threshold_s`` set — so is any trace whose longest span
reached the threshold.  Everything else sampled out is discarded at
completion and never reaches the ring or the sinks.

Tracing is bit-neutral by construction: spans only *observe* wall
time, no instrument draws from the global RNG, and no tracing knob
enters a campaign or request fingerprint.  ``NULL_TRACER`` (installed
via :func:`set_tracer`) disables tracing entirely — the overhead
benchmark uses it as the untraced baseline.

A trace is *complete* when its number of open spans returns to zero.
Layers whose spans hand off asynchronously (the job queue starting a
job long after the submitting request returned) keep the chain alive
by overlapping spans: the queue-wait span starts while the request
span is still open, and the run span starts before the queue-wait span
ends.
"""

from __future__ import annotations

import operator
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from random import Random
from typing import Callable, Sequence

__all__ = [
    "KNOWN_SOURCES",
    "NULL_SPAN",
    "NULL_TRACER",
    "Span",
    "SpanContext",
    "TraceRecord",
    "Tracer",
    "chrome_trace",
    "current_span",
    "format_traceparent",
    "get_tracer",
    "normalize_source",
    "parse_traceparent",
    "set_current_span",
    "set_tracer",
    "spans_to_dicts",
    "trace_tree",
    "use_span",
]

#: One ``source`` vocabulary shared by everything that tags persisted
#: observability rows — metrics snapshots and trace spans alike — so
#: history from several processes stays queryable with one filter set.
KNOWN_SOURCES = ("serve", "cli", "worker", "bench", "test")


def normalize_source(source: str) -> str:
    """Fold a free-form source tag onto the shared vocabulary.

    Known tags pass through; anything else is lower-cased and stripped
    so ``"Serve"`` and ``"serve"`` land in the same bucket rather than
    splitting the history.
    """
    folded = str(source).strip().lower()
    return folded if folded else "cli"


@dataclass(frozen=True)
class SpanContext:
    """The propagatable identity of a span (what ``traceparent`` carries)."""

    trace_id: str
    span_id: str
    sampled: bool = True


class Span:
    """One timed operation inside a trace.

    Spans are created through a :class:`Tracer` (never directly),
    mutated while open (:meth:`set_attribute`, :meth:`set_status`) and
    sealed exactly once by :meth:`end` — double ends are ignored, so a
    ``finally`` can close defensively.  Durations come from the
    monotonic clock; ``start_time`` is epoch wall time for display and
    export only.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_time",
        "duration_s",
        "status",
        "error",
        "attributes",
        "category",
        "thread",
        "sampled",
        "_tracer",
        "_start_mono",
        "_ended",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        sampled: bool,
        attributes: dict | None,
        category: str,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.sampled = sampled
        self.attributes = dict(attributes) if attributes else {}
        self.category = category
        self.thread = threading.current_thread().name
        self.status = "ok"
        self.error: str | None = None
        self._ended = False
        self.start_time = time.time()
        self._start_mono = time.perf_counter()
        self.duration_s = 0.0

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id, self.sampled)

    @property
    def recording(self) -> bool:
        return not self._ended

    def set_attribute(self, key: str, value) -> "Span":
        self.attributes[key] = value
        return self

    def set_attributes(self, **attrs) -> "Span":
        self.attributes.update(attrs)
        return self

    def set_status(self, status: str, error: str | None = None) -> "Span":
        self.status = status
        if error is not None:
            self.error = error
        return self

    def end(self, status: str | None = None, error: str | None = None) -> None:
        """Seal the span and hand it to the tracer (idempotent)."""
        if self._ended:
            return
        self._ended = True
        self.duration_s = time.perf_counter() - self._start_mono
        if status is not None:
            self.status = status
        if error is not None:
            self.error = error
        self._tracer._on_span_end(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None and self.status == "ok":
            self.end(status="error", error=f"{exc_type.__name__}: {exc}")
        else:
            self.end()

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_time": self.start_time,
            "duration_s": self.duration_s,
            "status": self.status,
            "error": self.error,
            "attributes": self.attributes,
            "category": self.category,
            "thread": self.thread,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, trace={self.trace_id[:8]}, "
            f"span={self.span_id}, status={self.status})"
        )


class _NullSpan:
    """Absorbs the full span API while recording nothing (singleton).

    Returned whenever tracing is off (:data:`NULL_TRACER`) or a child
    span has no trace to join; its :attr:`context` is ``None`` so
    propagation code knows there is nothing to inject.
    """

    name = "null"
    trace_id = ""
    span_id = ""
    parent_id = None
    status = "ok"
    error = None
    sampled = False
    duration_s = 0.0
    start_time = 0.0
    attributes: dict = {}
    category = "null"
    thread = ""

    @property
    def context(self) -> None:
        return None

    @property
    def recording(self) -> bool:
        return False

    def set_attribute(self, key, value) -> "_NullSpan":
        return self

    def set_attributes(self, **attrs) -> "_NullSpan":
        return self

    def set_status(self, status, error=None) -> "_NullSpan":
        return self

    def end(self, status=None, error=None) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    def to_dict(self) -> dict:
        return {}


NULL_SPAN = _NullSpan()


@dataclass
class TraceRecord:
    """One completed trace as the ring buffer retains it."""

    trace_id: str
    name: str
    start_time: float
    duration_s: float
    status: str
    sampled: bool
    spans: list

    def to_dict(self, include_spans: bool = True) -> dict:
        record = {
            "trace_id": self.trace_id,
            "name": self.name,
            "start_time": self.start_time,
            "duration_s": self.duration_s,
            "status": self.status,
            "sampled": self.sampled,
            "span_count": len(self.spans),
        }
        if include_spans:
            record["spans"] = spans_to_dicts(self.spans)
        return record


class _TraceState:
    """Book-keeping for one live trace (guarded by the tracer lock).

    ``spans`` holds finished :class:`Span` objects interleaved with
    :class:`_SpanBatch` placeholders (bulk recordings whose ``Span``
    objects are only materialised when the trace is read); ``n_spans``
    counts actual spans, batches expanded.  ``record`` caches the
    assembled :class:`TraceRecord` after the first read.
    """

    __slots__ = (
        "spans", "open", "sampled", "error", "dropped", "n_spans", "record"
    )

    def __init__(self, sampled: bool) -> None:
        self.spans: list = []
        self.open = 0
        self.sampled = sampled
        self.error = False
        self.dropped = 0
        self.n_spans = 0
        self.record: TraceRecord | None = None


class _SpanBatch:
    """A bulk span recording, expanded to :class:`Span` objects lazily.

    :meth:`Tracer.record_spans` appends one of these per call instead
    of building a ``Span`` per item — most traces are evicted from the
    ring unread, so the per-span object construction (and id minting)
    is deferred to assembly time.
    """

    __slots__ = ("parent_id", "category", "thread", "items")

    def __init__(
        self, parent_id: str, category: str, thread: str, items: list
    ) -> None:
        self.parent_id = parent_id
        self.category = category
        self.thread = thread
        self.items = items  # (name, duration_s, end_time, attributes)

    def __len__(self) -> int:
        return len(self.items)

    def truncate(self, n: int) -> None:
        self.items = self.items[:n]

    def durations(self):
        return (item[1] for item in self.items)

    def expand(self, spans: list, make_span) -> None:
        for name, duration_s, end_time, attributes in self.items:
            spans.append(make_span(
                self, name, duration_s, end_time,
                attributes if attributes is not None else {},
            ))


class _SpanSeries:
    """Columnar bulk recording: one span per (duration, end time) pair.

    The cheapest hot-path shape — the caller's loop appends plain
    floats and everything else (names, attribute dicts, span objects,
    ids) is built at assembly time.  ``attributes`` is shared by every
    span; ``per_key``/``per_values`` add one per-span attribute (e.g.
    chunk sizes).
    """

    __slots__ = (
        "parent_id", "category", "thread", "name", "durs",
        "end_times", "attributes", "per_key", "per_values",
    )

    def __init__(
        self, parent_id, category, thread, name, durs, end_times,
        attributes, per_key, per_values,
    ) -> None:
        self.parent_id = parent_id
        self.category = category
        self.thread = thread
        self.name = name
        self.durs = durs
        self.end_times = end_times
        self.attributes = attributes
        self.per_key = per_key
        self.per_values = per_values

    def __len__(self) -> int:
        return len(self.durs)

    def truncate(self, n: int) -> None:
        self.durs = self.durs[:n]
        self.end_times = self.end_times[:n]
        if self.per_values is not None:
            self.per_values = self.per_values[:n]

    def durations(self):
        return self.durs

    def expand(self, spans: list, make_span) -> None:
        base = self.attributes
        for i, duration_s in enumerate(self.durs):
            attrs = dict(base) if base else {}
            if self.per_key is not None:
                attrs[self.per_key] = self.per_values[i]
            spans.append(make_span(
                self, self.name, duration_s, self.end_times[i], attrs
            ))


_AMBIENT = object()  # sentinel: "parent = whatever span is ambient"

#: Stable presentation order: start time, span id as the tiebreak.
_SPAN_ORDER = operator.attrgetter("start_time", "span_id")

#: The ambient current span.  ``contextvars`` follow the *context*, not
#: the thread — a freshly spawned ``threading.Thread`` starts from an
#: empty context, so thread hand-offs must re-activate explicitly (see
#: :func:`use_span`).
_current: ContextVar[object | None] = ContextVar(
    "repro_current_span", default=None
)


class _SpanScope:
    """``with`` helper: activate a span as ambient, end it on exit."""

    __slots__ = ("_span", "_token")

    def __init__(self, span) -> None:
        self._span = span

    def __enter__(self):
        self._token = _current.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        _current.reset(self._token)
        if exc is not None:
            self._span.end(
                status="error", error=f"{exc_type.__name__}: {exc}"
            )
        else:
            self._span.end()


class _NullScope:
    """Scope for the null tracer: yields the null span, records nothing."""

    __slots__ = ()

    def __enter__(self):
        return NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SCOPE = _NullScope()


def current_span():
    """The ambient span, or ``None`` when no span is active here."""
    span = _current.get()
    if span is None or span is NULL_SPAN:
        return None
    return span


def set_current_span(span) -> object:
    """Make ``span`` ambient; returns a token for ``reset_current_span``.

    Raw escape hatch for callback-driven layers (the GA generation
    observer) that cannot wrap execution in a ``with`` block; prefer
    :func:`use_span` everywhere a block exists.
    """
    return _current.set(span)


def reset_current_span(token) -> None:
    _current.reset(token)


@contextmanager
def use_span(span):
    """Activate an existing span for the duration of the block.

    Does **not** end the span — this is the re-entry point for crossing
    thread boundaries, where the span was started elsewhere and merely
    needs to become ambient in the new thread's context.
    """
    token = _current.set(span)
    try:
        yield span
    finally:
        _current.reset(token)


# W3C trace context ----------------------------------------------------------

_TRACEPARENT_VERSION = "00"


def format_traceparent(context: SpanContext | None) -> str | None:
    """Render a span context as a W3C ``traceparent`` header value."""
    if context is None:
        return None
    flags = "01" if context.sampled else "00"
    return (
        f"{_TRACEPARENT_VERSION}-{context.trace_id}-{context.span_id}-{flags}"
    )


def _is_hex(value: str) -> bool:
    try:
        int(value, 16)
    except ValueError:
        return False
    return True


def parse_traceparent(header: str | None) -> SpanContext | None:
    """Parse a ``traceparent`` header; ``None`` for anything malformed.

    Malformed headers are *dropped*, never raised on: an unparseable
    context simply starts a fresh trace, per the W3C spec's
    restart-the-trace guidance.
    """
    if not header:
        return None
    parts = header.strip().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, span_id, flags = parts[0], parts[1], parts[2], parts[3]
    if len(version) != 2 or not _is_hex(version) or version == "ff":
        return None
    if len(trace_id) != 32 or not _is_hex(trace_id):
        return None
    if len(span_id) != 16 or not _is_hex(span_id):
        return None
    if int(trace_id, 16) == 0 or int(span_id, 16) == 0:
        return None
    if len(flags) != 2 or not _is_hex(flags):
        return None
    sampled = bool(int(flags, 16) & 0x01)
    return SpanContext(trace_id.lower(), span_id.lower(), sampled)


# Tracer ---------------------------------------------------------------------


class Tracer:
    """Starts spans, tracks live traces, retains completed ones.

    Args:
        sample_ratio: head-sampling probability in ``[0, 1]``; the
            keep/drop decision is taken once per trace at root-span
            start, from a private RNG.
        slow_threshold_s: always keep a trace whose longest span
            reached this duration, even when head-sampled out
            (``None`` disables the policy).
        max_traces: completed traces retained in the in-memory ring.
        max_spans_per_trace: per-trace span cap; spans beyond it are
            counted (``dropped_spans`` attribute on the root) instead
            of stored, so one runaway loop cannot eat the heap.
        max_active: live-trace cap; when exceeded the oldest live trace
            is force-completed (marked ``incomplete``) so abandoned
            traces cannot accumulate forever.
        seed: RNG seed for the sampling decision (``None`` = OS
            entropy).  Tests pin it for determinism.
    """

    def __init__(
        self,
        sample_ratio: float = 1.0,
        slow_threshold_s: float | None = None,
        max_traces: int = 128,
        max_spans_per_trace: int = 4096,
        max_active: int = 512,
        seed: int | None = None,
    ) -> None:
        if not 0.0 <= sample_ratio <= 1.0:
            raise ValueError(
                f"sample_ratio must be within [0, 1], got {sample_ratio}"
            )
        if slow_threshold_s is not None and slow_threshold_s < 0:
            raise ValueError("slow_threshold_s must be >= 0 when given")
        self.sample_ratio = float(sample_ratio)
        self.slow_threshold_s = slow_threshold_s
        self.max_spans_per_trace = max_spans_per_trace
        self.max_active = max_active
        self._lock = threading.Lock()
        # Private seeded stream: the head-sampling draw must never
        # perturb a seeded GA run sharing the global random module.
        self._rng = Random(seed)
        self._active: dict[str, _TraceState] = {}
        self._finished: deque[TraceRecord] = deque(maxlen=max_traces)
        self._sinks: list[Callable[[TraceRecord], None]] = []
        #: Traces completed / kept / dropped-by-sampling since construction.
        self.completed = 0
        self.kept = 0
        self.dropped = 0

    # Span creation ---------------------------------------------------------
    def start_root(
        self,
        name: str,
        attributes: dict | None = None,
        parent_context: SpanContext | None = None,
        category: str = "app",
    ) -> Span:
        """Start a trace root — or join a remote parent's trace.

        With ``parent_context`` (a parsed ``traceparent``), the new
        span continues the remote trace and inherits its sampling
        decision; otherwise a fresh ``trace_id`` is minted and the head
        sampling decision is drawn here.
        """
        if parent_context is not None:
            return self._make_span(
                name,
                parent_context.trace_id,
                parent_context.span_id,
                parent_context.sampled,
                attributes,
                category,
            )
        # Fresh root: mint both ids, draw the sampling decision and
        # register the trace state under one lock round-trip (this is
        # once per trace, but local roots start every standalone
        # campaign and benchmark batch).
        span = Span(self, name, "", "", None, True, attributes, category)
        evicted = None
        with self._lock:
            rng = self._rng
            span.trace_id = f"{rng.getrandbits(128) or 1:032x}"
            span.span_id = f"{rng.getrandbits(64) or 1:016x}"
            if self.sample_ratio >= 1.0:
                sampled = True
            elif self.sample_ratio <= 0.0:
                sampled = False
            else:
                sampled = rng.random() < self.sample_ratio
            span.sampled = sampled
            if len(self._active) >= self.max_active:
                oldest = next(iter(self._active))
                evicted = (oldest, self._active.pop(oldest))
            state = _TraceState(sampled)
            state.open = 1
            self._active[span.trace_id] = state
        if evicted is not None:
            self._complete(evicted[0], evicted[1], incomplete=True)
        return span

    def start_span(
        self,
        name: str,
        attributes: dict | None = None,
        parent=_AMBIENT,
        root_if_orphan: bool = False,
        category: str = "app",
    ) -> Span:
        """Start a child of ``parent`` (default: the ambient span).

        Orphan children — no ambient span, no explicit parent — return
        :data:`NULL_SPAN` unless ``root_if_orphan`` is set: leaf layers
        like the cache only narrate traces someone above them started,
        while campaign entry points start their own when run
        standalone.
        """
        if parent is _AMBIENT:
            parent = current_span()
        context = None
        if isinstance(parent, SpanContext):
            context = parent
        elif parent is not None:
            context = parent.context  # Span (or NullSpan -> None)
        if context is None:
            if root_if_orphan:
                return self.start_root(
                    name, attributes=attributes, category=category
                )
            return NULL_SPAN
        return self._make_span(
            name,
            context.trace_id,
            context.span_id,
            context.sampled,
            attributes,
            category,
        )

    def span(
        self,
        name: str,
        attributes: dict | None = None,
        parent=_AMBIENT,
        root_if_orphan: bool = False,
        category: str = "app",
    ) -> "_SpanScope":
        """``start_span`` + ambient activation + guaranteed end.

        The span becomes the ambient current span for the block, an
        escaping exception marks it ``status="error"``, and it is ended
        exactly once on the way out.  (A slotted scope object, not a
        generator contextmanager: this wraps every traced block, so
        the entry/exit cost matters.)
        """
        return _SpanScope(
            self.start_span(
                name,
                attributes=attributes,
                parent=parent,
                root_if_orphan=root_if_orphan,
                category=category,
            )
        )

    def record_span(
        self,
        name: str,
        duration_s: float,
        attributes: dict | None = None,
        parent=_AMBIENT,
        category: str = "app",
        status: str = "ok",
        error: str | None = None,
    ) -> Span:
        """Record an already-measured operation as a completed span.

        The parent-side pattern for work that ran where this process
        cannot observe it live — a process-pool worker measures its
        chunk and returns the elapsed time; the parent records the span
        here (mirroring how the executors feed their chunk histograms).
        The span is back-dated so its wall-clock placement matches when
        the work actually ran.

        This is the hot-path recording primitive (executors call it per
        chunk), so it skips the open-span bookkeeping entirely: a span
        born already ended never changes its trace's open count, which
        collapses start + end into one lock acquisition.
        """
        if parent is _AMBIENT:
            parent = current_span()
        if parent is None:
            return NULL_SPAN
        # Span, SpanContext and the null span all expose these three
        # fields; a null parent's empty trace_id means tracing is off
        # upstream, so there is nothing to join.
        trace_id = parent.trace_id
        if not trace_id:
            return NULL_SPAN
        duration_s = float(duration_s)
        if duration_s < 0.0:
            duration_s = 0.0
        # Bypass Span.__init__: it reads both clocks and defaults every
        # field this path immediately overwrites.
        span = Span.__new__(Span)
        span._tracer = self
        span.name = name
        span.trace_id = trace_id
        span.span_id = ""
        span.parent_id = parent.span_id
        span.sampled = parent.sampled
        span.attributes = dict(attributes) if attributes else {}
        span.category = category
        span.thread = threading.current_thread().name
        span.status = status
        span.error = error
        span._ended = True
        span.duration_s = duration_s
        span.start_time = time.time() - duration_s
        span._start_mono = 0.0
        orphaned = None
        with self._lock:
            span.span_id = f"{self._rng.getrandbits(64) or 1:016x}"
            state = self._active.get(trace_id)
            if state is not None:
                if status == "error":
                    state.error = True
                if state.n_spans < self.max_spans_per_trace:
                    state.spans.append(span)
                    state.n_spans += 1
                else:
                    state.dropped += 1
            else:
                # Parent trace already completed/evicted: record the
                # span alone, like a span ending after force-completion.
                orphaned = _TraceState(span.sampled)
                orphaned.spans.append(span)
                orphaned.n_spans = 1
                if status == "error":
                    orphaned.error = True
        if orphaned is not None:
            self._complete(trace_id, orphaned)
        return span

    def record_spans(
        self,
        items: Sequence,
        parent=_AMBIENT,
        category: str = "app",
    ) -> int:
        """Batch form of :meth:`record_span` — one lock round for all.

        ``items`` holds ``(name, duration_s, end_time, attributes)``
        tuples (``end_time`` epoch seconds, or ``None`` for "now"; the
        attributes dict is taken by reference, so pass a fresh one).
        Executors use this to publish a whole batch of chunk timings:
        the call appends one deferred batch under a single lock round
        — ``Span`` objects and ids are only materialised if the trace
        is actually read or sunk.  Returns the number of spans
        recorded (0 when there is no trace to join).
        """
        if parent is _AMBIENT:
            parent = current_span()
        if parent is None:
            return 0
        trace_id = parent.trace_id
        if not trace_id:
            return 0
        items = list(items)
        if any(item[2] is None for item in items):
            now = time.time()
            items = [
                (name, dur, now if end is None else end, attrs)
                for name, dur, end, attrs in items
            ]
        if not items:
            return 0
        batch = _SpanBatch(
            parent.span_id,
            category,
            threading.current_thread().name,
            items,
        )
        return self._record_bulk(trace_id, parent.sampled, batch)

    def record_span_series(
        self,
        name: str,
        durations: Sequence[float],
        end_times: Sequence[float],
        parent=_AMBIENT,
        category: str = "app",
        attributes: dict | None = None,
        per_span: tuple | None = None,
    ) -> int:
        """Record one completed span per ``(duration, end_time)`` pair.

        The cheapest bulk shape: a hot loop only appends plain floats
        to two lists and makes this one call per batch — names,
        attribute dicts and span objects are all built lazily at read
        time.  ``attributes`` is shared by every span of the series;
        ``per_span=(key, values)`` attaches one per-span attribute
        (``values`` aligned with ``durations``).  All sequences are
        taken by reference — do not mutate them afterwards.  Returns
        the number of spans recorded.
        """
        if parent is _AMBIENT:
            parent = current_span()
        if parent is None:
            return 0
        trace_id = parent.trace_id
        if not trace_id:
            return 0
        n = min(len(durations), len(end_times))
        if n == 0:
            return 0
        per_key = per_values = None
        if per_span is not None:
            per_key, per_values = per_span
        series = _SpanSeries(
            parent.span_id,
            category,
            threading.current_thread().name,
            name,
            durations,
            end_times,
            attributes,
            per_key,
            per_values,
        )
        if n < len(durations):
            series.truncate(n)
        return self._record_bulk(trace_id, parent.sampled, series)

    def _record_bulk(self, trace_id: str, sampled: bool, bulk) -> int:
        """Append a deferred bulk recording to its trace's state."""
        n = len(bulk)
        orphaned = None
        with self._lock:
            state = self._active.get(trace_id)
            if state is not None:
                room = self.max_spans_per_trace - state.n_spans
                if room < n:
                    state.dropped += n - max(room, 0)
                    if room <= 0:
                        return 0
                    bulk.truncate(room)
                    n = room
                state.spans.append(bulk)
                state.n_spans += n
            else:
                orphaned = _TraceState(sampled)
                orphaned.spans.append(bulk)
                orphaned.n_spans = n
        if orphaned is not None:
            self._complete(trace_id, orphaned)
        return n

    def _make_span(
        self,
        name: str,
        trace_id: str,
        parent_id: str | None,
        sampled: bool,
        attributes: dict | None,
        category: str,
    ) -> Span:
        span = Span(
            self,
            name,
            trace_id,
            "",
            parent_id,
            sampled,
            attributes,
            category,
        )
        evicted = None
        with self._lock:
            span.span_id = f"{self._rng.getrandbits(64) or 1:016x}"
            state = self._active.get(trace_id)
            if state is None:
                if len(self._active) >= self.max_active:
                    oldest = next(iter(self._active))
                    evicted = (oldest, self._active.pop(oldest))
                state = _TraceState(sampled)
                self._active[trace_id] = state
            state.open += 1
        if evicted is not None:
            self._complete(evicted[0], evicted[1], incomplete=True)
        return span

    # Completion ------------------------------------------------------------
    def _on_span_end(self, span: Span) -> None:
        with self._lock:
            state = self._active.get(span.trace_id)
            if state is None:
                # A span ending after its trace was force-completed
                # (eviction) re-opens nothing: record it alone.
                state = _TraceState(span.sampled)
                state.open = 1
            if span.status == "error":
                state.error = True
            if state.n_spans < self.max_spans_per_trace:
                state.spans.append(span)
                state.n_spans += 1
            else:
                state.dropped += 1
            state.open -= 1
            finished = state.open <= 0
            if finished:
                self._active.pop(span.trace_id, None)
        if finished:
            self._complete(span.trace_id, state)

    def _complete(
        self, trace_id: str, state: _TraceState, incomplete: bool = False
    ) -> None:
        spans = state.spans
        if not spans:
            return
        keep = state.sampled or state.error
        if not keep and self.slow_threshold_s is not None:
            threshold = self.slow_threshold_s
            for entry in spans:
                if isinstance(entry, Span):
                    if entry.duration_s >= threshold:
                        keep = True
                        break
                elif any(d >= threshold for d in entry.durations()):
                    keep = True
                    break
        with self._lock:
            self.completed += 1
            if keep:
                self.kept += 1
            else:
                self.dropped += 1
            sinks = list(self._sinks) if self._sinks else None
            if keep and sinks is None:
                # No sinks: defer assembly (sort, root find, record
                # construction) to read time — most ring entries are
                # evicted unread, so the hot path pays one lock round.
                self._finished.append((trace_id, state, incomplete))
        if not keep or sinks is None:
            return
        record = self._assemble(trace_id, state, incomplete)
        with self._lock:
            self._finished.append(record)
        for sink in sinks:
            try:
                sink(record)
            except Exception:
                # A broken sink must never take the traced layer down.
                pass

    def _assemble(
        self, trace_id: str, state: _TraceState, incomplete: bool = False
    ) -> TraceRecord:
        """Build (and cache) the presentable record for a kept trace.

        Runs under the tracer lock: deferred batches are expanded into
        ``Span`` objects exactly once, so repeated reads see the same
        span ids and the sort/root work is paid only on first read.
        """
        with self._lock:
            if state.record is not None:
                return state.record
            spans: list[Span] = []
            rng = self._rng

            def make_span(entry, name, duration_s, end_time, attrs):
                duration_s = float(duration_s)
                if duration_s < 0.0:
                    duration_s = 0.0
                span = Span.__new__(Span)
                span._tracer = self
                span.name = name
                span.trace_id = trace_id
                span.span_id = f"{rng.getrandbits(64) or 1:016x}"
                span.parent_id = entry.parent_id
                span.sampled = state.sampled
                span.attributes = attrs
                span.category = entry.category
                span.thread = entry.thread
                span.status = "ok"
                span.error = None
                span._ended = True
                span.duration_s = duration_s
                span.start_time = end_time - duration_s
                span._start_mono = 0.0
                return span

            for entry in state.spans:
                if isinstance(entry, Span):
                    spans.append(entry)
                else:
                    entry.expand(spans, make_span)
            spans.sort(key=_SPAN_ORDER)
            root = None
            for span in spans:
                if span.parent_id is None:
                    root = span
                    break
            if root is None:
                # No local root: earliest span whose parent is remote.
                span_ids = {span.span_id for span in spans}
                for span in spans:
                    if span.parent_id not in span_ids:
                        root = span
                        break
                if root is None:
                    root = spans[0]
            if state.dropped:
                root.attributes["dropped_spans"] = state.dropped
            if incomplete:
                root.attributes["incomplete"] = True
            start = spans[0].start_time  # sorted: the earliest start
            end = start
            for span in spans:
                finish = span.start_time + span.duration_s
                if finish > end:
                    end = finish
            state.record = TraceRecord(
                trace_id=trace_id,
                name=root.name,
                start_time=start,
                duration_s=end - start,
                status="error" if state.error else "ok",
                sampled=state.sampled,
                spans=spans,
            )
            return state.record

    # Retention / inspection ------------------------------------------------
    def add_sink(self, sink: Callable[[TraceRecord], None]) -> None:
        """Call ``sink(record)`` for every *kept* completed trace.

        Sinks run on whatever thread completed the trace, outside the
        tracer lock; exceptions are swallowed.
        """
        with self._lock:
            self._sinks.append(sink)

    def finished(self, limit: int | None = None) -> list[TraceRecord]:
        """Completed-and-kept traces, newest first."""
        with self._lock:
            entries = list(self._finished)
        entries.reverse()
        if limit is not None:
            entries = entries[: max(0, limit)]
        return [
            entry if isinstance(entry, TraceRecord) else self._assemble(*entry)
            for entry in entries
        ]

    def get(self, trace_id: str) -> TraceRecord | None:
        """The completed trace with this id (``None`` when unknown)."""
        with self._lock:
            entries = list(self._finished)
        for entry in reversed(entries):
            if isinstance(entry, TraceRecord):
                if entry.trace_id == trace_id:
                    return entry
            elif entry[0] == trace_id:
                return self._assemble(*entry)
        return None

    def active_count(self) -> int:
        with self._lock:
            return len(self._active)

    def stats(self) -> dict:
        with self._lock:
            return {
                "completed": self.completed,
                "kept": self.kept,
                "dropped": self.dropped,
                "active": len(self._active),
                "retained": len(self._finished),
                "sample_ratio": self.sample_ratio,
                "slow_threshold_s": self.slow_threshold_s,
            }


class _NullTracer(Tracer):
    """Tracing fully off: every span is the null span, nothing retained."""

    def __init__(self) -> None:
        super().__init__(sample_ratio=0.0, max_traces=1)

    def start_root(self, name, attributes=None, parent_context=None, category="app"):
        return NULL_SPAN

    def start_span(
        self, name, attributes=None, parent=_AMBIENT, root_if_orphan=False,
        category="app",
    ):
        return NULL_SPAN

    def span(
        self, name, attributes=None, parent=_AMBIENT, root_if_orphan=False,
        category="app",
    ):
        return _NULL_SCOPE

    def record_span(
        self, name, duration_s, attributes=None, parent=_AMBIENT,
        category="app", status="ok", error=None,
    ):
        return NULL_SPAN

    def record_spans(self, items, parent=_AMBIENT, category="app"):
        return 0

    def record_span_series(
        self, name, durations, end_times, parent=_AMBIENT,
        category="app", attributes=None, per_span=None,
    ):
        return 0

    def add_sink(self, sink) -> None:
        pass


NULL_TRACER = _NullTracer()

_global_tracer: Tracer = Tracer()
_global_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-global tracer instrumented layers default to."""
    return _global_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-global tracer; returns the previous one."""
    global _global_tracer
    with _global_lock:
        previous = _global_tracer
        _global_tracer = tracer
    return previous


# Export helpers -------------------------------------------------------------


def spans_to_dicts(spans: Sequence) -> list[dict]:
    """Plain-dict rows for a span list (JSON/store shape)."""
    return [
        span if isinstance(span, dict) else span.to_dict() for span in spans
    ]


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1000.0:.1f}ms"


def trace_tree(spans: Sequence) -> str:
    """Render one trace's spans as an ascii tree (``repro trace show``).

    Children sort by start time under their parent; spans whose parent
    is not part of the trace render as additional roots, so a pruned
    or partially persisted trace still displays.
    """
    rows = spans_to_dicts(spans)
    if not rows:
        return "(empty trace)"
    by_id = {row["span_id"]: row for row in rows}
    children: dict[str | None, list[dict]] = {}
    roots: list[dict] = []
    for row in rows:
        parent = row.get("parent_id")
        if parent in by_id:
            children.setdefault(parent, []).append(row)
        else:
            roots.append(row)
    for sibling in children.values():
        sibling.sort(key=lambda r: (r["start_time"], r["span_id"]))
    roots.sort(key=lambda r: (r["start_time"], r["span_id"]))
    lines = [f"trace {rows[0]['trace_id']}"]

    def render(row: dict, prefix: str, tail: bool) -> None:
        connector = "└─ " if tail else "├─ "
        status = "" if row.get("status") == "ok" else f" [{row.get('status')}]"
        error = f" — {row['error']}" if row.get("error") else ""
        attrs = row.get("attributes") or {}
        extras = ""
        if attrs:
            parts = [f"{k}={attrs[k]}" for k in sorted(attrs)]
            extras = " {" + ", ".join(parts) + "}"
        lines.append(
            f"{prefix}{connector}{row['name']} "
            f"{_format_duration(row.get('duration_s', 0.0))}"
            f"{status}{error}{extras}"
        )
        child_prefix = prefix + ("   " if tail else "│  ")
        kids = children.get(row["span_id"], [])
        for i, kid in enumerate(kids):
            render(kid, child_prefix, i == len(kids) - 1)

    for i, root in enumerate(roots):
        render(root, "", i == len(roots) - 1)
    return "\n".join(lines)


def chrome_trace(spans: Sequence) -> dict:
    """Chrome trace-event / Perfetto JSON for one (or more) trace(s).

    Open the exported file in ``ui.perfetto.dev`` or
    ``chrome://tracing``: complete (``"ph": "X"``) events, one track
    per originating thread, microsecond timestamps on the wall clock.
    """
    rows = spans_to_dicts(spans)
    events = []
    threads = {}
    for row in rows:
        thread = row.get("thread") or "main"
        tid = threads.setdefault(thread, len(threads) + 1)
        args = {
            "trace_id": row.get("trace_id"),
            "span_id": row.get("span_id"),
            "parent_id": row.get("parent_id"),
            "status": row.get("status"),
        }
        if row.get("error"):
            args["error"] = row["error"]
        args.update(row.get("attributes") or {})
        events.append(
            {
                "ph": "X",
                "name": row.get("name", "span"),
                "cat": row.get("category") or "trace",
                "ts": row.get("start_time", 0.0) * 1e6,
                "dur": max(row.get("duration_s", 0.0), 0.0) * 1e6,
                "pid": 1,
                "tid": tid,
                "args": args,
            }
        )
    events.extend(
        {
            "ph": "M",
            "name": "thread_name",
            "pid": 1,
            "tid": tid,
            "args": {"name": thread},
        }
        for thread, tid in threads.items()
    )
    return {"traceEvents": events, "displayTimeUnit": "ms"}
