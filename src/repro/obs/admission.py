"""Server-side admission control for the campaign service.

Three independent guards, all optional, all configured through one
frozen :class:`AdmissionPolicy` (``repro serve`` flags map onto it):

* **budget caps** — a request's total work estimate
  (``specs x generations x population``) above ``max_budget`` is
  rejected up front with a ``413``-style structured envelope, before
  any GA state is allocated;
* **per-client rate limiting** — a token bucket per client id
  (``X-Client-Id`` header, else the remote address) refilled at
  ``rate_limit`` requests/second with ``burst`` capacity; over-rate
  clients get ``429`` with a ``Retry-After`` hint;
* **bounded queue** — more than ``max_pending`` not-yet-running jobs
  answers ``429`` + ``Retry-After`` instead of queueing unboundedly.

Rejections raise :class:`AdmissionError`, which the HTTP layer maps
onto the structured error envelope; every rejection is counted in
``repro_admission_rejected_total{reason=...}``.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "AdmissionPolicy",
    "RateLimiter",
    "TokenBucket",
    "request_budget",
]


class AdmissionError(Exception):
    """A rejected request: HTTP status, machine code, retry hint."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after_s: float | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.retry_after_s = retry_after_s

    @property
    def headers(self) -> dict[str, str]:
        if self.retry_after_s is None:
            return {}
        # Retry-After is delta-seconds; round up so clients never retry
        # a fraction of a second early and bounce straight off again.
        return {"Retry-After": str(max(1, math.ceil(self.retry_after_s)))}


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s refill, ``burst`` cap."""

    def __init__(self, rate: float, burst: int) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._updated = time.monotonic()
        self._lock = threading.Lock()

    def try_acquire(self, now: float | None = None) -> float:
        """Take one token; returns 0.0 on success, else seconds to wait."""
        now = time.monotonic() if now is None else now
        with self._lock:
            elapsed = max(0.0, now - self._updated)
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._updated = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return 0.0
            return (1.0 - self._tokens) / self.rate


class RateLimiter:
    """Per-client token buckets behind one lock.

    The client table is bounded: past ``max_clients`` the least
    recently *seen* client's bucket is dropped (a dropped client simply
    starts over with a full bucket — safe, it only ever forgives).
    """

    def __init__(self, rate: float, burst: int, max_clients: int = 4096) -> None:
        if max_clients < 1:
            raise ValueError("max_clients must be >= 1")
        self.rate = rate
        self.burst = burst
        self.max_clients = max_clients
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}

    def try_acquire(self, client_id: str) -> float:
        """0.0 when the client may proceed, else seconds to wait."""
        with self._lock:
            bucket = self._buckets.pop(client_id, None)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst)
            # Re-insert at the end: plain dicts iterate in insertion
            # order, so the front is always the least recently seen.
            self._buckets[client_id] = bucket
            while len(self._buckets) > self.max_clients:
                self._buckets.pop(next(iter(self._buckets)))
        return bucket.try_acquire()


def request_budget(request) -> int:
    """Total work estimate of one campaign request.

    ``specs x generations x population`` — an upper bound on genome
    evaluations before cache hits, the quantity a budget cap bounds.
    """
    return len(request.specs) * request.generations * request.population_size


@dataclass(frozen=True)
class AdmissionPolicy:
    """Which guards are active (``None`` disables a guard).

    Attributes:
        rate_limit: sustained submissions/second allowed per client.
        burst: bucket capacity on top of ``rate_limit`` (defaults to
            ``ceil(rate_limit)``, at least 1, when left ``None``).
        max_pending: most not-yet-running jobs the queue may hold.
        max_budget: largest ``specs x generations x population`` a
            single request may ask for.
    """

    rate_limit: float | None = None
    burst: int | None = None
    max_pending: int | None = None
    max_budget: int | None = None

    def __post_init__(self) -> None:
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ValueError("rate_limit must be > 0 when given")
        if self.burst is not None and self.burst < 1:
            raise ValueError("burst must be >= 1 when given")
        if self.max_pending is not None and self.max_pending < 0:
            raise ValueError("max_pending must be >= 0 when given")
        if self.max_budget is not None and self.max_budget < 1:
            raise ValueError("max_budget must be >= 1 when given")

    @property
    def enabled(self) -> bool:
        return any(
            value is not None
            for value in (self.rate_limit, self.max_pending, self.max_budget)
        )


class AdmissionController:
    """Applies one :class:`AdmissionPolicy` to incoming submissions.

    Check order is cheapest-and-most-specific first: the budget cap
    (pure arithmetic, per-request), then the client's rate, then the
    queue bound — so an oversized request is named as such even when
    the queue also happens to be full.
    """

    def __init__(
        self,
        policy: AdmissionPolicy,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.policy = policy
        self._limiter = None
        if policy.rate_limit is not None:
            burst = policy.burst
            if burst is None:
                burst = max(1, math.ceil(policy.rate_limit))
            self._limiter = RateLimiter(policy.rate_limit, burst)
        registry = registry if registry is not None else get_registry()
        self._rejected = registry.counter(
            "repro_admission_rejected_total",
            "Submissions rejected by admission control",
            ("reason",),
        )

    def admit(self, request, client_id: str, pending: int) -> None:
        """Raise :class:`AdmissionError` unless the submission may run.

        Args:
            request: the parsed campaign request.
            client_id: who is asking (header or remote address).
            pending: the queue's current not-yet-running job count.
        """
        policy = self.policy
        if policy.max_budget is not None:
            budget = request_budget(request)
            if budget > policy.max_budget:
                self._rejected.labels("budget").inc()
                raise AdmissionError(
                    413,
                    "budget_exceeded",
                    f"request budget {budget} "
                    f"(specs x generations x population) exceeds the "
                    f"server cap {policy.max_budget}; shrink the request "
                    f"or split it into smaller campaigns",
                )
        if self._limiter is not None:
            retry_after = self._limiter.try_acquire(client_id)
            if retry_after > 0.0:
                self._rejected.labels("rate").inc()
                raise AdmissionError(
                    429,
                    "rate_limited",
                    f"client {client_id!r} exceeded "
                    f"{policy.rate_limit:g} submissions/s",
                    retry_after_s=retry_after,
                )
        if policy.max_pending is not None and pending >= policy.max_pending:
            self._rejected.labels("queue_full").inc()
            # The queue drains at campaign speed; one second is the
            # floor Retry-After can express anyway.
            raise AdmissionError(
                429,
                "queue_full",
                f"{pending} campaigns already pending "
                f"(server cap {policy.max_pending})",
                retry_after_s=1.0,
            )
