"""Dependency-free, thread-safe metrics core.

Three instrument kinds behind one registry:

* :class:`Counter` — monotonically increasing totals,
* :class:`Gauge` — point-in-time values that go both ways,
* :class:`Histogram` — bucketed latency/size distributions with a
  reservoir-sampled p50/p95/p99 readout.

Instruments live inside a :class:`MetricFamily` (one family per metric
name, children keyed by label values, Prometheus-style) and families
live inside a :class:`MetricsRegistry`, which renders everything as
Prometheus text exposition (:meth:`~MetricsRegistry.render_prometheus`),
a JSON document (:meth:`~MetricsRegistry.to_dict`), or a flat
``{series: value}`` sample (:meth:`~MetricsRegistry.sample_values`, the
shape the :class:`~repro.obs.snapshot.MetricsSnapshotter` persists).

Hot paths stay cheap two ways:

* *collectors* — a layer that already keeps its own counters (the
  evaluation cache's :class:`~repro.service.cache.CacheStats`, the job
  queue's ``_QueueStats``) registers a callback that mirrors them into
  the registry **at scrape time**, adding zero work per operation, and
* the :data:`NULL_REGISTRY` — a no-op registry instrumented code can be
  pointed at (via :func:`set_registry`) to measure or remove
  instrumentation cost entirely.

Determinism: the histogram reservoir draws from a **private** seeded
``random.Random`` — never the global RNG — so observing a value can
never perturb a seeded GA run.  All operations are thread-safe.
"""

from __future__ import annotations

import bisect
import math
import threading
import time
import weakref
from contextlib import contextmanager
from random import Random
from typing import Callable, Sequence

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
]

#: Default latency buckets (seconds): micro-campaigns to long campaigns.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Quantiles every histogram reports.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


def _format_number(value: float) -> str:
    """Prometheus-friendly number rendering (integers without ``.0``)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_suffix(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + pairs + "}"


class Counter:
    """Monotonically increasing total (one labelled series)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    def set_total(self, value: float) -> None:
        """Mirror an externally maintained total (collector pattern).

        Unlike :meth:`inc`, this *replaces* the value: the source of
        truth is the instrumented layer's own counter and this series
        merely publishes it at scrape time.
        """
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Point-in-time value (one labelled series)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Bucketed distribution with a reservoir-backed quantile readout.

    Buckets use Prometheus ``le`` (less-or-equal) semantics with an
    implicit ``+Inf`` bucket; ``percentile`` answers come from a
    uniform reservoir (Vitter's algorithm R) so long-running processes
    keep an unbiased sample at O(reservoir_size) memory.
    """

    def __init__(
        self,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        reservoir_size: int = 1024,
    ) -> None:
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be >= 1")
        bounds = tuple(sorted(float(b) for b in buckets))
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"duplicate bucket bounds in {buckets!r}")
        self._lock = threading.Lock()
        self._bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # +Inf last
        self._count = 0
        self._sum = 0.0
        self._reservoir: list[float] = []
        self._reservoir_size = reservoir_size
        # Private seeded stream: observing a latency must never perturb
        # a seeded GA run sharing the process-global random module.
        self._rng = Random(0)

    def observe(self, value: float) -> None:
        with self._lock:
            self._observe_locked(float(value))

    def observe_many(self, values: Sequence[float]) -> None:
        """Record a batch of observations under one lock transaction.

        Hot paths that produce several samples per operation (the
        executors' per-chunk timings) use this to pay the lock and call
        overhead once per batch instead of once per sample.
        """
        with self._lock:
            for value in values:
                self._observe_locked(float(value))

    def _observe_locked(self, value: float) -> None:
        self._bucket_counts[bisect.bisect_left(self._bounds, value)] += 1
        self._count += 1
        self._sum += value
        if len(self._reservoir) < self._reservoir_size:
            self._reservoir.append(value)
        else:
            # random() is ~2x cheaper than randrange() and the float
            # truncation bias is immaterial at these sizes.
            slot = int(self._rng.random() * self._count)
            if slot < self._reservoir_size:
                self._reservoir[slot] = value

    @contextmanager
    def time(self):
        """Observe the wall-clock duration of the ``with`` block."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - started)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, q: float) -> float:
        """Nearest-rank quantile of the reservoir (``q`` in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be within [0, 1], got {q}")
        with self._lock:
            sample = sorted(self._reservoir)
        if not sample:
            return 0.0
        rank = max(0, min(len(sample) - 1, math.ceil(q * len(sample)) - 1))
        return sample[rank]

    def quantiles(self) -> dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` of the reservoir."""
        return {
            f"p{int(q * 100)}": self.percentile(q) for q in SUMMARY_QUANTILES
        }

    def snapshot(self) -> dict:
        """Atomic readout of buckets/count/sum (for rendering)."""
        with self._lock:
            cumulative = []
            running = 0
            for bucket in self._bucket_counts:
                running += bucket
                cumulative.append(running)
            return {
                "bounds": self._bounds,
                "cumulative": cumulative,
                "count": self._count,
                "sum": self._sum,
            }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One metric name with labelled children (Prometheus data model).

    A family without label names has exactly one (unlabelled) child and
    proxies the instrument API (``inc``/``set``/``observe``/...)
    straight through, so ``registry.counter("x").inc()`` works without
    an explicit ``labels()`` step.
    """

    def __init__(
        self,
        kind: str,
        name: str,
        help: str = "",  # noqa: A002 - mirrors the exposition keyword
        labelnames: Sequence[str] = (),
        **instrument_kwargs,
    ) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.kind = kind
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._instrument_kwargs = instrument_kwargs
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}
        if not self.labelnames:
            self._children[()] = _KINDS[kind](**instrument_kwargs)

    def labels(self, *labelvalues, **labelkwargs):
        """The child series for one label-value combination."""
        if labelkwargs:
            if labelvalues:
                raise ValueError("pass label values positionally or by name")
            try:
                labelvalues = tuple(
                    labelkwargs[name] for name in self.labelnames
                )
            except KeyError as exc:
                raise ValueError(
                    f"missing label {exc.args[0]!r} for {self.name}"
                ) from None
        key = tuple(str(v) for v in labelvalues)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, got {key}"
            )
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = _KINDS[self.kind](**self._instrument_kwargs)
                self._children[key] = child
            return child

    def series(self) -> list[tuple[tuple[str, ...], object]]:
        """Stable (label values, instrument) listing for rendering."""
        with self._lock:
            return sorted(self._children.items())

    # Unlabelled passthrough ----------------------------------------------
    def _solo(self):
        if self.labelnames:
            raise ValueError(
                f"{self.name} is labelled by {self.labelnames}; "
                f"call .labels(...) first"
            )
        return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def set_total(self, value: float) -> None:
        self._solo().set_total(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def observe_many(self, values: Sequence[float]) -> None:
        self._solo().observe_many(values)

    def time(self):
        return self._solo().time()

    @property
    def value(self) -> float:
        return self._solo().value


class MetricsRegistry:
    """Process-wide (or scoped) collection of metric families.

    ``counter``/``gauge``/``histogram`` are idempotent get-or-create
    calls, so instrumented layers can resolve their families on every
    use without coordinating; re-registering a name with a different
    kind or label set raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}
        self._collectors: list[object] = []

    # Family management ----------------------------------------------------
    def _family(
        self,
        kind: str,
        name: str,
        help: str,  # noqa: A002
        labelnames: Sequence[str],
        **instrument_kwargs,
    ) -> MetricFamily:
        labelnames = tuple(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(
                    kind, name, help, labelnames, **instrument_kwargs
                )
                self._families[name] = family
                return family
        if family.kind != kind:
            raise ValueError(
                f"{name} is already registered as a {family.kind}, "
                f"not a {kind}"
            )
        if family.labelnames != labelnames:
            raise ValueError(
                f"{name} is already registered with labels "
                f"{family.labelnames}, not {labelnames}"
            )
        return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()  # noqa: A002
    ) -> MetricFamily:
        return self._family("counter", name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()  # noqa: A002
    ) -> MetricFamily:
        return self._family("gauge", name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",  # noqa: A002
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        return self._family(
            "histogram", name, help, labelnames, buckets=buckets
        )

    def families(self) -> list[MetricFamily]:
        self._run_collectors()
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    # Collectors -----------------------------------------------------------
    def register_collector(self, collector: Callable[[], None]) -> None:
        """Run ``collector`` before every scrape/render.

        Bound methods are held through a weak reference, so registering
        a cache's or queue's collector never extends its lifetime —
        dead collectors are dropped silently on the next scrape.
        """
        if hasattr(collector, "__self__"):
            ref: object = weakref.WeakMethod(collector)
        else:
            def ref(fn=collector):  # plain functions are held strongly
                return fn
        with self._lock:
            self._collectors.append(ref)

    def _run_collectors(self) -> None:
        with self._lock:
            refs = list(self._collectors)
        alive = []
        for ref in refs:
            collector = ref()
            if collector is None:
                continue
            alive.append(ref)
            try:
                collector()
            except Exception:
                # A broken collector must never take the scrape down.
                pass
        with self._lock:
            self._collectors = [r for r in self._collectors if r in alive]

    # Rendering ------------------------------------------------------------
    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        lines: list[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labelvalues, instrument in family.series():
                suffix = _label_suffix(family.labelnames, labelvalues)
                if family.kind == "histogram":
                    snap = instrument.snapshot()
                    for bound, cumulative in zip(
                        snap["bounds"], snap["cumulative"]
                    ):
                        bucket_suffix = _label_suffix(
                            family.labelnames + ("le",),
                            labelvalues + (_format_number(bound),),
                        )
                        lines.append(
                            f"{family.name}_bucket{bucket_suffix} "
                            f"{cumulative}"
                        )
                    inf_suffix = _label_suffix(
                        family.labelnames + ("le",), labelvalues + ("+Inf",)
                    )
                    lines.append(
                        f"{family.name}_bucket{inf_suffix} {snap['count']}"
                    )
                    lines.append(
                        f"{family.name}_sum{suffix} "
                        f"{_format_number(snap['sum'])}"
                    )
                    lines.append(
                        f"{family.name}_count{suffix} {snap['count']}"
                    )
                else:
                    lines.append(
                        f"{family.name}{suffix} "
                        f"{_format_number(instrument.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> dict:
        """JSON document: one entry per family, one row per series."""
        families = []
        for family in self.families():
            series = []
            for labelvalues, instrument in family.series():
                labels = dict(zip(family.labelnames, labelvalues))
                if family.kind == "histogram":
                    series.append(
                        {
                            "labels": labels,
                            "count": instrument.count,
                            "sum": instrument.sum,
                            **instrument.quantiles(),
                        }
                    )
                else:
                    series.append(
                        {"labels": labels, "value": instrument.value}
                    )
            families.append(
                {
                    "name": family.name,
                    "kind": family.kind,
                    "help": family.help,
                    "series": series,
                }
            )
        return {"metrics": families}

    def sample_values(self) -> dict[str, float]:
        """Flat ``{'name{a="b"}': value}`` snapshot of every series.

        Histograms flatten into ``_count``/``_sum`` plus their summary
        quantiles.  This is the row shape
        :meth:`~repro.store.runstore.RunStore.append_metrics_snapshot`
        persists and the dashboard charts.
        """
        sample: dict[str, float] = {}
        for family in self.families():
            for labelvalues, instrument in family.series():
                suffix = _label_suffix(family.labelnames, labelvalues)
                if family.kind == "histogram":
                    sample[f"{family.name}_count{suffix}"] = float(
                        instrument.count
                    )
                    sample[f"{family.name}_sum{suffix}"] = instrument.sum
                    for key, value in instrument.quantiles().items():
                        sample[f"{family.name}_{key}{suffix}"] = value
                else:
                    sample[f"{family.name}{suffix}"] = instrument.value
        return sample


# Null registry --------------------------------------------------------------


class _NullInstrument:
    """Absorbs every instrument/family call (shared singleton)."""

    def labels(self, *args, **kwargs) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_total(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values) -> None:
        pass

    @contextmanager
    def time(self):
        yield

    @property
    def value(self) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class _NullRegistry(MetricsRegistry):
    """No-op registry: instrumented code runs, nothing is recorded.

    Point :func:`set_registry` at :data:`NULL_REGISTRY` to disable
    metrics entirely — the overhead benchmark uses it as the baseline.
    """

    def _family(self, kind, name, help, labelnames, **kwargs):  # noqa: A002
        return _NULL_INSTRUMENT

    def register_collector(self, collector) -> None:
        pass

    def families(self) -> list:
        return []

    def render_prometheus(self) -> str:
        return ""

    def to_dict(self) -> dict:
        return {"metrics": []}

    def sample_values(self) -> dict[str, float]:
        return {}


NULL_REGISTRY = _NullRegistry()

_global_registry: MetricsRegistry = MetricsRegistry()
_global_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-global registry instrumented layers default to."""
    return _global_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry; returns the previous one."""
    global _global_registry
    with _global_lock:
        previous = _global_registry
        _global_registry = registry
    return previous
