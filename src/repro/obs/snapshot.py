"""Periodic metrics snapshots into the run registry.

:class:`MetricsSnapshotter` samples a
:class:`~repro.obs.metrics.MetricsRegistry` every ``interval_s``
seconds and appends the flat ``{series: value}`` sample as one row of
the :class:`~repro.store.runstore.RunStore`'s ``metrics_history``
table.  The dashboard (``repro dashboard``) charts those rows, so the
server's traffic/cache/queue history survives restarts alongside the
runs themselves.

Snapshotting is strictly best-effort: a failed store write is counted
(:attr:`MetricsSnapshotter.errors`) and retried on the next tick, and
the daemon thread never takes the server down.
"""

from __future__ import annotations

import threading

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import normalize_source

__all__ = ["MetricsSnapshotter"]


class MetricsSnapshotter:
    """Background sampler appending registry snapshots to a store.

    Args:
        store: a :class:`~repro.store.runstore.RunStore` (anything with
            ``append_metrics_snapshot``).
        registry: the registry to sample; defaults to the process
            global.
        interval_s: seconds between snapshots.
        source: tag recorded with every row (lets one registry hold
            history from several processes/servers).  Normalised
            through :func:`repro.obs.trace.normalize_source`, so
            snapshot rows and persisted trace spans share one
            ``source`` vocabulary.

    Use as a context manager, or ``start()``/``stop()`` explicitly::

        with MetricsSnapshotter(store, interval_s=15.0):
            server.serve_forever()
    """

    def __init__(
        self,
        store,
        registry: MetricsRegistry | None = None,
        interval_s: float = 30.0,
        source: str = "serve",
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.store = store
        self.registry = registry if registry is not None else get_registry()
        self.interval_s = interval_s
        self.source = normalize_source(source)
        #: Snapshots appended / store writes failed since construction.
        self.snapshots = 0
        self.errors = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def snapshot_once(self):
        """Sample the registry and append one history row (returns it)."""
        record = self.store.append_metrics_snapshot(
            self.registry.sample_values(), source=self.source
        )
        self.snapshots += 1
        return record

    def start(self) -> None:
        """Launch the daemon sampling thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="metrics-snapshotter", daemon=True
        )
        self._thread.start()

    def stop(self, final_snapshot: bool = True) -> None:
        """Stop the thread; by default flush one last snapshot.

        The final snapshot captures whatever happened since the last
        tick, so short-lived servers still leave history behind.
        """
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=max(1.0, self.interval_s))
            self._thread = None
        if final_snapshot:
            try:
                self.snapshot_once()
            except Exception:
                self.errors += 1

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.snapshot_once()
            except Exception:
                # Best-effort: a locked database or closed store must
                # not kill the sampler; retry on the next tick.
                self.errors += 1

    def __enter__(self) -> "MetricsSnapshotter":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
