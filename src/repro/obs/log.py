"""Shared JSON-lines structured logger.

One line per event, machine-parseable, stdlib-only::

    {"ts": 1754650000.123, "level": "info", "logger": "repro.http",
     "event": "request", "route": "/api/campaigns", "status": 200,
     "duration_ms": 12.5}

Lines emitted while a :mod:`repro.obs.trace` span is active also
carry ``trace_id``/``span_id``, so logs and traces join on one id.

The module keeps one process-global configuration (level + stream),
set by :func:`configure` (``repro serve --log-level`` calls it); every
:class:`JsonLogger` falls back to it unless constructed with explicit
overrides.  Writes are serialised under one lock so concurrent worker
threads never interleave partial lines.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import IO

from repro.obs.trace import current_span

__all__ = ["LEVELS", "JsonLogger", "configure", "get_logger"]

#: Accepted level names, in increasing severity.
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

_config_lock = threading.Lock()
_write_lock = threading.Lock()
#: Process-global defaults: quiet (warnings only) on stderr.
_config: dict = {"level": LEVELS["warning"], "stream": None}


def _level_number(level: str | int) -> int:
    if isinstance(level, int):
        return level
    try:
        return LEVELS[level.lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; choose from {sorted(LEVELS)}"
        ) from None


def configure(
    level: str | int = "warning", stream: IO[str] | None = None
) -> None:
    """Set the process-global log level (and optionally the stream).

    ``stream=None`` keeps logging on whatever ``sys.stderr`` is at
    write time (so pytest's capture and shell redirection both work).
    """
    number = _level_number(level)
    with _config_lock:
        _config["level"] = number
        _config["stream"] = stream


class JsonLogger:
    """Named logger writing one JSON object per line.

    Args:
        name: dotted logger name carried on every line.
        level: explicit threshold; ``None`` follows the global
            configuration (including later :func:`configure` calls).
        stream: explicit output; ``None`` follows the global
            configuration, which itself defaults to ``sys.stderr``.
    """

    def __init__(
        self,
        name: str,
        level: str | int | None = None,
        stream: IO[str] | None = None,
    ) -> None:
        self.name = name
        self._level = None if level is None else _level_number(level)
        self._stream = stream

    def enabled_for(self, level: str | int) -> bool:
        threshold = self._level
        if threshold is None:
            with _config_lock:
                threshold = _config["level"]
        return _level_number(level) >= threshold

    def _resolve_stream(self) -> IO[str]:
        if self._stream is not None:
            return self._stream
        with _config_lock:
            stream = _config["stream"]
        return stream if stream is not None else sys.stderr

    def log(self, level: str, event: str, **fields) -> None:
        """Emit one structured line (no-op below the threshold)."""
        if not self.enabled_for(level):
            return
        record = {
            "ts": round(time.time(), 3),
            "level": level,
            "logger": self.name,
            "event": event,
        }
        # Correlate with the ambient trace: any log line emitted under
        # an active span carries its ids (explicit fields still win).
        span = current_span()
        if span is not None and span.trace_id:
            record["trace_id"] = span.trace_id
            record["span_id"] = span.span_id
        record.update(fields)
        line = json.dumps(record, default=str)
        stream = self._resolve_stream()
        with _write_lock:
            try:
                stream.write(line + "\n")
                stream.flush()
            except (ValueError, OSError):
                # A closed/broken stream must never take a worker down.
                pass

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)


def get_logger(name: str) -> JsonLogger:
    """A logger following the process-global configuration."""
    return JsonLogger(name)
