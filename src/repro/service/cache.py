"""Content-addressed persistent evaluation cache.

The MOGA flow spends nearly all of its runtime in objective
evaluations, and the discrete design space means many runs — across
specs, seeds, CLI invocations, and concurrent campaigns — revisit the
same genomes.  This module provides a two-tier cache keyed on a stable
content hash of *everything an evaluation depends on*: the genome, the
:class:`~repro.core.spec.DcimSpec`, and the
:class:`~repro.tech.cells.CellLibrary`.

Tiers:

* an in-memory LRU tier (bounded, always present), and
* an optional persistent disk tier — an append-only JSONL log or a
  SQLite table — that survives process restarts and is shared between
  campaigns.

The cache is **batch-first**: :meth:`EvaluationCache.get_many` and
:meth:`EvaluationCache.put_many` push whole generations through the
disk tier in one round trip (a chunked ``SELECT ... WHERE key IN``
plus an ``executemany`` transaction for SQLite, one buffered
multi-line append for JSONL) instead of N per-genome queries and N
commits.  The SQLite tier runs in WAL journal mode with a busy
timeout, so concurrent worker processes can share one cache file.  An
optional write-behind buffer (``flush_every``) coalesces misses into
one disk transaction per flush window; it is off by default and
flushed on :meth:`~EvaluationCache.flush`, on close, and whenever the
:meth:`~EvaluationCache.write_behind` context exits — including on
campaign failure or cancellation.

All public operations are thread-safe; campaign workers share one
cache instance.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
import sqlite3
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Protocol, Sequence, runtime_checkable

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import NULL_SPAN, get_tracer

__all__ = [
    "CacheBackend",
    "CacheStats",
    "EvaluationCache",
    "GenomeKeyer",
    "JsonlCacheBackend",
    "MemoryCacheBackend",
    "SqliteCacheBackend",
    "evaluation_key",
    "problem_fingerprint",
    "stable_hash",
]

Objectives = tuple[float, ...]

#: Disk-tier backends understood by :class:`EvaluationCache`.
DISK_BACKENDS = ("jsonl", "sqlite")

#: Keys per SQLite ``IN (...)`` clause — stays well under the default
#: SQLITE_MAX_VARIABLE_NUMBER (999) of older builds.
_SQLITE_SELECT_CHUNK = 500

#: Stale-line fraction above which a JSONL log is rewritten on open.
_JSONL_COMPACT_THRESHOLD = 0.5

#: Buckets for the ``repro_cache_batch_size`` histogram (keys/batch).
_BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


def stable_hash(payload: object) -> str:
    """SHA-256 of the canonical JSON encoding of ``payload``.

    Canonical means sorted keys and no insignificant whitespace, so two
    structurally equal payloads always hash identically regardless of
    construction order.
    """
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def problem_fingerprint(spec, library) -> dict:
    """JSON-able fingerprint of one evaluation context (spec + library).

    Uses ``dataclasses.asdict`` on the spec so newly added spec fields
    automatically invalidate old cache entries instead of aliasing them.
    """
    cells = {name: (c.area, c.delay, c.energy) for name, c in library.cells.items()}
    return {
        "spec": dataclasses.asdict(spec),
        "library": {"name": library.name, "cells": cells},
    }


def evaluation_key(genome: Sequence[int], spec, library) -> str:
    """Content-addressed cache key for one (genome, spec, library) triple.

    The (spec, library) context is hashed separately and embedded as a
    digest, so per-genome keys can be derived from a precomputed context
    hash (see ``ProblemEvaluator``) and still match this function.
    """
    return stable_hash(
        {
            "genome": list(genome),
            "context": stable_hash(problem_fingerprint(spec, library)),
        }
    )


class GenomeKeyer:
    """Fast per-genome key derivation for one evaluation context.

    Produces keys **bit-identical** to :func:`evaluation_key` (the
    golden parity tests pin this), but hashes the canonical-JSON
    context prefix exactly once: each per-genome key is one
    ``hashlib`` state copy plus one update over the genome bytes,
    instead of re-canonicalising the whole ``{context, genome}``
    payload.  This is the keying hot path of
    :class:`~repro.service.executor.ProblemEvaluator`.
    """

    __slots__ = ("context", "_prefix")

    def __init__(self, context: str) -> None:
        #: The context digest embedded in every key (for introspection).
        self.context = context
        # Canonical JSON sorts "context" before "genome", so the whole
        # serialisation up to the genome list is a constant prefix:
        #   {"context":"<digest>","genome":<list>}
        # json.dumps produces the prefix (with exact escaping), and the
        # pre-hashed state is copied per genome.
        prefix_text = (
            json.dumps({"context": context}, sort_keys=True, separators=(",", ":"))[:-1]
            + ',"genome":'
        )
        self._prefix = hashlib.sha256(prefix_text.encode("utf-8"))

    def __call__(self, genome: Sequence[int]) -> str:
        digest = self._prefix.copy()
        digest.update(
            json.dumps(
                list(genome), separators=(",", ":"), default=str
            ).encode("utf-8")
        )
        digest.update(b"}")
        return digest.hexdigest()

    @classmethod
    def for_problem(cls, spec, library) -> "GenomeKeyer":
        """Keyer addressing the same entries as :func:`evaluation_key`."""
        return cls(stable_hash(problem_fingerprint(spec, library)))


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance.

    ``hits`` counts both tiers; ``memory_hits``/``disk_hits`` break the
    total down.  ``evictions`` counts LRU entries dropped from the
    memory tier (they stay retrievable from disk when a disk tier is
    configured).
    """

    hits: int = 0
    misses: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from either tier (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "puts": self.puts,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


@runtime_checkable
class CacheBackend(Protocol):
    """Pluggable persistent tier behind :class:`EvaluationCache`.

    Implementations store ``key -> objectives`` pairs durably (or
    remotely) and are **batch-first**: :meth:`get_many`/:meth:`put_many`
    move a whole generation in one round trip.  The built-ins are
    :class:`JsonlCacheBackend`, :class:`SqliteCacheBackend`,
    :class:`MemoryCacheBackend`, and the HTTP-speaking
    :class:`~repro.service.cache_backends.RemoteCacheBackend` that lets
    N worker processes share one dedup layer.  Pass an instance as
    ``EvaluationCache(backend=...)`` to front it with the memory LRU.
    """

    #: Short backend label used in metrics and ``info()`` payloads.
    name: str

    def get(self, key: str) -> Objectives | None: ...

    def get_many(self, keys: Sequence[str]) -> dict[str, Objectives]: ...

    def put(self, key: str, objectives: Objectives) -> None: ...

    def put_many(self, entries: Mapping[str, Objectives]) -> None: ...

    def compact(self) -> dict: ...

    def __len__(self) -> int: ...

    def items(self) -> Iterator[tuple[str, Objectives]]: ...

    def close(self) -> None: ...


class MemoryCacheBackend:
    """Dict-backed :class:`CacheBackend` (no persistence).

    Useful for tests and for processes that want the backend interface
    without a file — e.g. a coordinator serving ``/api/cache`` from
    RAM.  Unlike the memory *tier* of :class:`EvaluationCache`, this
    store is unbounded and never evicts.
    """

    name = "memory"

    def __init__(self) -> None:
        self._entries: dict[str, Objectives] = {}

    def get(self, key: str) -> Objectives | None:
        return self._entries.get(key)

    def get_many(self, keys: Sequence[str]) -> dict[str, Objectives]:
        entries = self._entries
        return {key: entries[key] for key in keys if key in entries}

    def put(self, key: str, objectives: Objectives) -> None:
        self._entries[key] = tuple(objectives)

    def put_many(self, entries: Mapping[str, Objectives]) -> None:
        for key, objectives in entries.items():
            self._entries[key] = tuple(objectives)

    def compact(self) -> dict:
        return {"backend": self.name, "entries": len(self._entries)}

    def __len__(self) -> int:
        return len(self._entries)

    def items(self) -> Iterator[tuple[str, Objectives]]:
        return iter(list(self._entries.items()))

    def close(self) -> None:
        pass


class _JsonlStore:
    """Append-only JSONL disk tier.

    The whole log is indexed into a dict at open (objective vectors are
    tiny), so lookups never touch the filesystem; puts append lines —
    a whole batch becomes one buffered write plus one flush.
    Duplicate keys are legal — last line wins — which keeps concurrent
    appends from separate processes safe without file locking.  When
    more than half the lines on open are stale duplicates, the log is
    compacted in place (the index is rewritten atomically) before the
    append handle opens.
    """

    name = "jsonl"

    def __init__(self, path: Path) -> None:
        self.path = path
        self._index: dict[str, Objectives] = {}
        #: Lines currently in the log file (>= len(index); the excess
        #: are stale duplicates superseded by a later line).
        self.lines = 0
        #: True when this open rewrote a mostly-stale log.
        self.compacted_on_open = False
        if path.exists():
            with path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    record = json.loads(line)
                    self._index[record["key"]] = tuple(record["objectives"])
                    self.lines += 1
        path.parent.mkdir(parents=True, exist_ok=True)
        stale = self.lines - len(self._index)
        if self.lines and stale / self.lines > _JSONL_COMPACT_THRESHOLD:
            self._rewrite()
            self.compacted_on_open = True
        self._handle = path.open("a", encoding="utf-8")

    def _rewrite(self) -> None:
        """Atomically replace the log with one line per live entry."""
        swap = self.path.with_name(self.path.name + ".compact")
        with swap.open("w", encoding="utf-8") as out:
            out.write(
                "".join(
                    json.dumps({"key": key, "objectives": list(objectives)})
                    + "\n"
                    for key, objectives in self._index.items()
                )
            )
        os.replace(swap, self.path)
        self.lines = len(self._index)

    def get(self, key: str) -> Objectives | None:
        return self._index.get(key)

    def get_many(self, keys: Sequence[str]) -> dict[str, Objectives]:
        index = self._index
        return {key: index[key] for key in keys if key in index}

    def put(self, key: str, objectives: Objectives) -> None:
        self.put_many({key: objectives})

    def put_many(self, entries: Mapping[str, Objectives]) -> None:
        lines: list[str] = []
        for key, objectives in entries.items():
            if self._index.get(key) == objectives:
                continue
            self._index[key] = objectives
            lines.append(
                json.dumps({"key": key, "objectives": list(objectives)}) + "\n"
            )
        if lines:
            self._handle.write("".join(lines))
            self._handle.flush()
            self.lines += len(lines)

    def compact(self) -> dict:
        """Force a rewrite; returns before/after line and byte counts."""
        self._handle.close()
        before_lines = self.lines
        before_bytes = self.path.stat().st_size if self.path.exists() else 0
        self._rewrite()
        self._handle = self.path.open("a", encoding="utf-8")
        return {
            "backend": "jsonl",
            "lines_before": before_lines,
            "lines_after": self.lines,
            "bytes_before": before_bytes,
            "bytes_after": self.path.stat().st_size,
        }

    def __len__(self) -> int:
        return len(self._index)

    def items(self) -> Iterator[tuple[str, Objectives]]:
        return iter(self._index.items())

    def close(self) -> None:
        self._handle.close()


class _SqliteStore:
    """SQLite disk tier: one ``evaluations(key, objectives)`` table.

    Runs in WAL journal mode with a generous busy timeout so several
    worker processes can ``put_many`` into one cache file concurrently:
    readers never block the writer, and a second writer waits for the
    lock instead of failing with ``database is locked``.  A whole
    batch is one ``executemany`` inside a single transaction — one
    commit (and at most one fsync) per generation rather than per
    genome.
    """

    name = "sqlite"

    def __init__(self, path: Path) -> None:
        self.path = path
        path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(path), check_same_thread=False)
        self._conn.execute("PRAGMA busy_timeout = 30000")
        try:
            self._conn.execute("PRAGMA journal_mode = WAL")
            # NORMAL loses at most the last transaction on power loss —
            # the right trade for a rebuildable evaluation cache.
            self._conn.execute("PRAGMA synchronous = NORMAL")
        except sqlite3.OperationalError:
            pass  # e.g. WAL-incapable filesystems; plain journal is fine
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS evaluations ("
            "key TEXT PRIMARY KEY, objectives TEXT NOT NULL)"
        )
        self._conn.commit()

    def get(self, key: str) -> Objectives | None:
        row = self._conn.execute(
            "SELECT objectives FROM evaluations WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        return tuple(json.loads(row[0]))

    def get_many(self, keys: Sequence[str]) -> dict[str, Objectives]:
        found: dict[str, Objectives] = {}
        for start in range(0, len(keys), _SQLITE_SELECT_CHUNK):
            chunk = list(keys[start : start + _SQLITE_SELECT_CHUNK])
            marks = ",".join("?" * len(chunk))
            rows = self._conn.execute(
                f"SELECT key, objectives FROM evaluations "
                f"WHERE key IN ({marks})",
                chunk,
            )
            for key, text in rows:
                found[key] = tuple(json.loads(text))
        return found

    def put(self, key: str, objectives: Objectives) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO evaluations (key, objectives) VALUES (?, ?)",
            (key, json.dumps(list(objectives))),
        )
        self._conn.commit()

    def put_many(self, entries: Mapping[str, Objectives]) -> None:
        if not entries:
            return
        self._conn.executemany(
            "INSERT OR REPLACE INTO evaluations (key, objectives) VALUES (?, ?)",
            [
                (key, json.dumps(list(objectives)))
                for key, objectives in entries.items()
            ],
        )
        self._conn.commit()

    def compact(self) -> dict:
        """VACUUM the database; returns before/after byte counts."""
        before = self.path.stat().st_size if self.path.exists() else 0
        self._conn.commit()
        self._conn.execute("VACUUM")
        return {
            "backend": "sqlite",
            "bytes_before": before,
            "bytes_after": self.path.stat().st_size,
        }

    def __len__(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM evaluations").fetchone()[0]

    def items(self) -> Iterator[tuple[str, Objectives]]:
        for key, text in self._conn.execute(
            "SELECT key, objectives FROM evaluations"
        ):
            yield key, tuple(json.loads(text))

    def close(self) -> None:
        self._conn.close()


class EvaluationCache:
    """Two-tier (memory LRU + optional disk) evaluation cache.

    Args:
        path: disk-tier location.  ``None`` keeps the cache memory-only
            (unless a backend *instance* is passed).
        backend: ``"jsonl"`` (append log) or ``"sqlite"``, or a
            :class:`CacheBackend` *instance* to plug in directly (e.g.
            a :class:`~repro.service.cache_backends.RemoteCacheBackend`
            sharing a server-side dedup layer; ``path`` must be omitted
            then).  A string backend is ignored for memory-only caches
            and defaults to guessing from the path suffix
            (``.sqlite``/``.db`` -> sqlite, else jsonl).
        max_memory_entries: LRU capacity of the memory tier.
        flush_every: write-behind cadence.  ``None``/``0`` (default)
            writes every put straight through to disk; ``N`` buffers
            disk writes and flushes them as one batched transaction
            once ``N`` entries are pending (also on :meth:`flush` and
            on :meth:`close`).  Reads always see buffered entries.
        registry: :class:`~repro.obs.metrics.MetricsRegistry` the cache
            publishes into (defaults to the process global).  Counters
            are mirrored at scrape time through a collector — zero work
            per lookup — the disk tier's per-key get/put latencies feed
            ``repro_cache_disk_seconds`` (cold path only), and batched
            operations feed ``repro_cache_batch_seconds`` /
            ``repro_cache_batch_size``.

    The cache is agnostic to what produced the key — callers address it
    with :func:`evaluation_key`, a :class:`GenomeKeyer`, or any other
    stable string.
    """

    #: Distinguishes cache instances in the metrics ``cache=`` label.
    _instance_ids = itertools.count(1)

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        backend: str | CacheBackend | None = None,
        max_memory_entries: int = 262_144,
        flush_every: int | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if max_memory_entries < 1:
            raise ValueError("max_memory_entries must be >= 1")
        if flush_every is not None and flush_every < 1:
            raise ValueError("flush_every must be >= 1 when given")
        self.max_memory_entries = max_memory_entries
        self.flush_every = flush_every
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._memory: OrderedDict[str, Objectives] = OrderedDict()
        self._pending: dict[str, Objectives] = {}
        self._disk: CacheBackend | None = None
        if backend is not None and not isinstance(backend, str):
            # A caller-built CacheBackend instance plugs in directly;
            # the memory LRU fronts it exactly like the disk tiers.
            if path is not None:
                raise ValueError(
                    "pass either a path or a CacheBackend instance, not both"
                )
            self._disk = backend
            self.backend = getattr(backend, "name", type(backend).__name__)
            backend_path = getattr(backend, "path", None)
            self.path = (
                Path(backend_path)
                if isinstance(backend_path, (str, Path))
                else None
            )
        else:
            if path is not None:
                path = Path(path)
                if backend is None:
                    backend = (
                        "sqlite" if path.suffix in {".sqlite", ".db"} else "jsonl"
                    )
                if backend not in DISK_BACKENDS:
                    raise ValueError(
                        f"unknown cache backend {backend!r}; "
                        f"choose from {DISK_BACKENDS}"
                    )
                self._disk = (
                    _SqliteStore(path) if backend == "sqlite" else _JsonlStore(path)
                )
            self.backend = backend if path is not None else "memory"
            self.path = Path(path) if path is not None else None
        self._init_metrics(registry)

    def _init_metrics(self, registry: MetricsRegistry | None) -> None:
        registry = registry if registry is not None else get_registry()
        label = f"cache-{next(self._instance_ids)}"
        self.metrics_label = label
        labelnames = ("cache", "backend")

        def series(family):
            return family.labels(label, self.backend)

        self._m_hits = series(registry.counter(
            "repro_cache_hits_total", "Cache lookups served (both tiers)",
            labelnames,
        ))
        self._m_misses = series(registry.counter(
            "repro_cache_misses_total", "Cache lookups missed", labelnames,
        ))
        self._m_disk_hits = series(registry.counter(
            "repro_cache_disk_hits_total",
            "Cache lookups served by the disk tier", labelnames,
        ))
        self._m_puts = series(registry.counter(
            "repro_cache_puts_total", "Evaluations stored", labelnames,
        ))
        self._m_evictions = series(registry.counter(
            "repro_cache_evictions_total",
            "Memory-tier LRU evictions", labelnames,
        ))
        self._m_hit_rate = series(registry.gauge(
            "repro_cache_hit_rate",
            "Fraction of lookups served from either tier", labelnames,
        ))
        self._m_entries = series(registry.gauge(
            "repro_cache_entries", "Distinct cached evaluations", labelnames,
        ))
        self._m_disk_seconds = registry.histogram(
            "repro_cache_disk_seconds",
            "Disk-tier operation latency", ("cache", "op"),
        )
        self._m_disk_get = self._m_disk_seconds.labels(label, "get")
        self._m_disk_put = self._m_disk_seconds.labels(label, "put")
        batch_seconds = registry.histogram(
            "repro_cache_batch_seconds",
            "Latency of one batched disk-tier operation", ("cache", "op"),
        )
        batch_size = registry.histogram(
            "repro_cache_batch_size",
            "Keys per batched disk-tier operation", ("cache", "op"),
            buckets=_BATCH_SIZE_BUCKETS,
        )
        self._m_batch = {
            op: (batch_seconds.labels(label, op), batch_size.labels(label, op))
            for op in ("get", "put", "flush")
        }
        # Collector pattern: CacheStats stays the source of truth and is
        # mirrored only when something scrapes (weakly referenced, so
        # registration never keeps a finished cache alive).
        registry.register_collector(self._collect_metrics)

    def _collect_metrics(self) -> None:
        with self._lock:
            stats = dataclasses.replace(self.stats)
            entries = len(self)
        self._m_hits.set_total(stats.hits)
        self._m_misses.set_total(stats.misses)
        self._m_disk_hits.set_total(stats.disk_hits)
        self._m_puts.set_total(stats.puts)
        self._m_evictions.set_total(stats.evictions)
        self._m_hit_rate.set(stats.hit_rate)
        self._m_entries.set(entries)

    # Core operations ------------------------------------------------------
    def get(self, key: str) -> Objectives | None:
        """Look up one key; promotes disk hits into the memory tier."""
        with self._lock:
            value = self._memory.get(key)
            if value is not None:
                self._memory.move_to_end(key)
                self.stats.hits += 1
                self.stats.memory_hits += 1
                return value
            # Write-behind entries not yet on disk still belong to the
            # disk tier logically (they survive an LRU eviction).
            value = self._pending.get(key)
            if value is not None:
                self.stats.hits += 1
                self.stats.disk_hits += 1
                self._insert_memory(key, value)
                return value
            if self._disk is not None:
                started = time.perf_counter()
                value = self._disk.get(key)
                self._m_disk_get.observe(time.perf_counter() - started)
                if value is not None:
                    self.stats.hits += 1
                    self.stats.disk_hits += 1
                    self._insert_memory(key, value)
                    return value
            self.stats.misses += 1
            return None

    def put(self, key: str, objectives: Iterable[float]) -> None:
        """Store one evaluation in both tiers."""
        value = tuple(float(v) for v in objectives)
        with self._lock:
            self.stats.puts += 1
            self._insert_memory(key, value)
            if self._disk is None:
                return
            if self.flush_every:
                self._pending[key] = value
                if len(self._pending) >= self.flush_every:
                    self._flush_locked()
                return
            started = time.perf_counter()
            self._disk.put(key, value)
            self._m_disk_put.observe(time.perf_counter() - started)

    def get_many(self, keys: Sequence[str]) -> list[Objectives | None]:
        """Vector lookup, one slot per key (``None`` on miss).

        Memory (and write-behind) hits are served in place; everything
        else goes to the disk tier as **one** batched query instead of
        one round trip per key.  Disk hits are promoted into the memory
        tier exactly as :meth:`get` would.
        """
        # Child span only when a trace is already ambient (a campaign
        # above us); a bare cache call never starts a trace of its own.
        span = get_tracer().start_span("cache.get_many", category="cache")
        try:
            results = self._get_many(keys)
        except BaseException as exc:
            span.end(status="error", error=f"{type(exc).__name__}: {exc}")
            raise
        if span is not NULL_SPAN:
            span.set_attributes(
                keys=len(keys),
                misses=sum(1 for value in results if value is None),
            )
        span.end()
        return results

    def _get_many(self, keys: Sequence[str]) -> list[Objectives | None]:
        results: list[Objectives | None] = [None] * len(keys)
        with self._lock:
            missing: dict[str, list[int]] = {}
            for i, key in enumerate(keys):
                value = self._memory.get(key)
                if value is None and self._pending:
                    value = self._pending.get(key)
                    if value is not None:
                        self.stats.hits += 1
                        self.stats.disk_hits += 1
                        self._insert_memory(key, value)
                        results[i] = value
                        continue
                if value is not None:
                    self._memory.move_to_end(key)
                    self.stats.hits += 1
                    self.stats.memory_hits += 1
                    results[i] = value
                else:
                    missing.setdefault(key, []).append(i)
            if not missing:
                return results
            found: dict[str, Objectives] = {}
            if self._disk is not None:
                started = time.perf_counter()
                found = self._disk.get_many(list(missing))
                seconds, size = self._m_batch["get"]
                seconds.observe(time.perf_counter() - started)
                size.observe(len(missing))
            for key, slots in missing.items():
                value = found.get(key)
                if value is None:
                    self.stats.misses += len(slots)
                    continue
                self.stats.hits += len(slots)
                self.stats.disk_hits += len(slots)
                self._insert_memory(key, value)
                for i in slots:
                    results[i] = value
            return results

    def put_many(self, entries: Mapping[str, Iterable[float]]) -> None:
        """Store a whole batch: one disk transaction (or one buffer fill)."""
        values = {
            key: tuple(float(v) for v in objectives)
            for key, objectives in entries.items()
        }
        if not values:
            return
        with get_tracer().start_span(
            "cache.put_many", attributes={"entries": len(values)},
            category="cache",
        ):
            self._put_many(values)

    def _put_many(self, values: Mapping[str, Objectives]) -> None:
        with self._lock:
            self.stats.puts += len(values)
            for key, value in values.items():
                self._insert_memory(key, value)
            if self._disk is None:
                return
            if self.flush_every:
                self._pending.update(values)
                if len(self._pending) >= self.flush_every:
                    self._flush_locked()
                return
            started = time.perf_counter()
            self._disk.put_many(values)
            seconds, size = self._m_batch["put"]
            seconds.observe(time.perf_counter() - started)
            size.observe(len(values))

    # Write-behind ---------------------------------------------------------
    def flush(self) -> None:
        """Push buffered write-behind entries to disk (no-op when clean)."""
        with self._lock:
            self._flush_locked()

    def _flush_locked(self) -> None:
        if not self._pending or self._disk is None:
            return
        pending, self._pending = self._pending, {}
        with get_tracer().start_span(
            "cache.flush", attributes={"entries": len(pending)},
            category="cache",
        ):
            started = time.perf_counter()
            self._disk.put_many(pending)
            seconds, size = self._m_batch["flush"]
            seconds.observe(time.perf_counter() - started)
            size.observe(len(pending))

    @property
    def pending_writes(self) -> int:
        """Entries buffered by write-behind but not yet on disk."""
        with self._lock:
            return len(self._pending)

    @contextmanager
    def write_behind(self, flush_every: int):
        """Enable (or tighten) write-behind for the duration of a block.

        Misses coalesce into one disk transaction per ``flush_every``
        entries; the exit path **always** flushes — including when the
        block raises, which is how a failed or cancelled campaign keeps
        its completed evaluations durable.  The previous cadence is
        restored on exit.
        """
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        with self._lock:
            previous = self.flush_every
            self.flush_every = flush_every
        try:
            yield self
        finally:
            with self._lock:
                self.flush_every = previous
                self._flush_locked()

    def _insert_memory(self, key: str, value: Objectives) -> None:
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    # Introspection --------------------------------------------------------
    def __len__(self) -> int:
        """Number of distinct cached evaluations (disk tier wins).

        Write-behind entries count without being flushed: scrape-time
        collectors call this, and a scrape must never force disk I/O
        ahead of the configured cadence.
        """
        with self._lock:
            if self._disk is not None:
                count = len(self._disk)
                if self._pending:
                    on_disk = self._disk.get_many(list(self._pending))
                    count += len(self._pending) - len(on_disk)
                return count
            return len(self._memory)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._memory or key in self._pending:
                return True
            return self._disk is not None and self._disk.get(key) is not None

    def items(self) -> list[tuple[str, Objectives]]:
        """Snapshot of every persisted (key, objectives) pair.

        Flushes the write-behind buffer first so the listing is
        complete; memory-only caches list the LRU tier.  This is the
        source feed of the ``repro cache migrate`` CLI.
        """
        with self._lock:
            if self._disk is not None:
                self._flush_locked()
                return list(self._disk.items())
            return list(self._memory.items())

    def compact(self) -> dict:
        """Rewrite the disk tier dropping dead weight.

        JSONL logs are rewritten to one line per live entry; SQLite
        databases are VACUUMed.  Returns a before/after summary dict.
        """
        with self._lock:
            if self._disk is None:
                raise ValueError("memory-only cache has no disk tier to compact")
            self._flush_locked()
            return self._disk.compact()

    def info(self) -> dict:
        """One JSON-able report of tier sizes, layout, and live stats."""
        with self._lock:
            payload = {
                "backend": self.backend,
                "path": str(self.path) if self.path is not None else None,
                "entries": len(self),
                "memory_entries": len(self._memory),
                "max_memory_entries": self.max_memory_entries,
                "pending_writes": len(self._pending),
                "flush_every": self.flush_every,
                "stats": self.stats.as_dict(),
            }
            if self.path is not None and self.path.exists():
                payload["disk_bytes"] = self.path.stat().st_size
            if isinstance(self._disk, _JsonlStore):
                payload["log_lines"] = self._disk.lines
                payload["stale_lines"] = self._disk.lines - len(self._disk)
            return payload

    def clear_stats(self) -> None:
        with self._lock:
            self.stats = CacheStats()

    def close(self) -> None:
        with self._lock:
            if self._disk is not None:
                self._flush_locked()
                self._disk.close()
                self._disk = None

    def __enter__(self) -> "EvaluationCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: Public names for the built-in disk tiers, now that the backend
#: interface is pluggable (the underscore spellings predate it).
JsonlCacheBackend = _JsonlStore
SqliteCacheBackend = _SqliteStore
