"""Content-addressed persistent evaluation cache.

The MOGA flow spends nearly all of its runtime in objective
evaluations, and the discrete design space means many runs — across
specs, seeds, CLI invocations, and concurrent campaigns — revisit the
same genomes.  This module provides a two-tier cache keyed on a stable
content hash of *everything an evaluation depends on*: the genome, the
:class:`~repro.core.spec.DcimSpec`, and the
:class:`~repro.tech.cells.CellLibrary`.

Tiers:

* an in-memory LRU tier (bounded, always present), and
* an optional persistent disk tier — an append-only JSONL log or a
  SQLite table — that survives process restarts and is shared between
  campaigns.

All public operations are thread-safe; campaign workers share one
cache instance.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import sqlite3
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = [
    "CacheStats",
    "EvaluationCache",
    "evaluation_key",
    "problem_fingerprint",
    "stable_hash",
]

Objectives = tuple[float, ...]

#: Disk-tier backends understood by :class:`EvaluationCache`.
DISK_BACKENDS = ("jsonl", "sqlite")


def stable_hash(payload: object) -> str:
    """SHA-256 of the canonical JSON encoding of ``payload``.

    Canonical means sorted keys and no insignificant whitespace, so two
    structurally equal payloads always hash identically regardless of
    construction order.
    """
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def problem_fingerprint(spec, library) -> dict:
    """JSON-able fingerprint of one evaluation context (spec + library).

    Uses ``dataclasses.asdict`` on the spec so newly added spec fields
    automatically invalidate old cache entries instead of aliasing them.
    """
    cells = {name: (c.area, c.delay, c.energy) for name, c in library.cells.items()}
    return {
        "spec": dataclasses.asdict(spec),
        "library": {"name": library.name, "cells": cells},
    }


def evaluation_key(genome: Sequence[int], spec, library) -> str:
    """Content-addressed cache key for one (genome, spec, library) triple.

    The (spec, library) context is hashed separately and embedded as a
    digest, so per-genome keys can be derived from a precomputed context
    hash (see ``ProblemEvaluator``) and still match this function.
    """
    return stable_hash(
        {
            "genome": list(genome),
            "context": stable_hash(problem_fingerprint(spec, library)),
        }
    )


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance.

    ``hits`` counts both tiers; ``memory_hits``/``disk_hits`` break the
    total down.  ``evictions`` counts LRU entries dropped from the
    memory tier (they stay retrievable from disk when a disk tier is
    configured).
    """

    hits: int = 0
    misses: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from either tier (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "puts": self.puts,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


class _JsonlStore:
    """Append-only JSONL disk tier.

    The whole log is indexed into a dict at open (objective vectors are
    tiny), so lookups never touch the filesystem; puts append one line.
    Duplicate keys are legal — last line wins — which keeps concurrent
    appends from separate processes safe without file locking.
    """

    def __init__(self, path: Path) -> None:
        self.path = path
        self._index: dict[str, Objectives] = {}
        if path.exists():
            with path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    record = json.loads(line)
                    self._index[record["key"]] = tuple(record["objectives"])
        path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = path.open("a", encoding="utf-8")

    def get(self, key: str) -> Objectives | None:
        return self._index.get(key)

    def put(self, key: str, objectives: Objectives) -> None:
        if self._index.get(key) == objectives:
            return
        self._index[key] = objectives
        self._handle.write(
            json.dumps({"key": key, "objectives": list(objectives)}) + "\n"
        )
        self._handle.flush()

    def __len__(self) -> int:
        return len(self._index)

    def items(self) -> Iterator[tuple[str, Objectives]]:
        return iter(self._index.items())

    def close(self) -> None:
        self._handle.close()


class _SqliteStore:
    """SQLite disk tier: one ``evaluations(key, objectives)`` table."""

    def __init__(self, path: Path) -> None:
        self.path = path
        path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(path), check_same_thread=False)
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS evaluations ("
            "key TEXT PRIMARY KEY, objectives TEXT NOT NULL)"
        )
        self._conn.commit()

    def get(self, key: str) -> Objectives | None:
        row = self._conn.execute(
            "SELECT objectives FROM evaluations WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        return tuple(json.loads(row[0]))

    def put(self, key: str, objectives: Objectives) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO evaluations (key, objectives) VALUES (?, ?)",
            (key, json.dumps(list(objectives))),
        )
        self._conn.commit()

    def __len__(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM evaluations").fetchone()[0]

    def items(self) -> Iterator[tuple[str, Objectives]]:
        for key, text in self._conn.execute(
            "SELECT key, objectives FROM evaluations"
        ):
            yield key, tuple(json.loads(text))

    def close(self) -> None:
        self._conn.close()


class EvaluationCache:
    """Two-tier (memory LRU + optional disk) evaluation cache.

    Args:
        path: disk-tier location.  ``None`` keeps the cache memory-only.
        backend: ``"jsonl"`` (append log) or ``"sqlite"``.  Ignored for
            memory-only caches.  Defaults to guessing from the path
            suffix (``.sqlite``/``.db`` -> sqlite, else jsonl).
        max_memory_entries: LRU capacity of the memory tier.
        registry: :class:`~repro.obs.metrics.MetricsRegistry` the cache
            publishes into (defaults to the process global).  Counters
            are mirrored at scrape time through a collector — zero work
            per lookup — and the disk tier's get/put latencies feed
            ``repro_cache_disk_seconds`` (cold path only).

    The cache is agnostic to what produced the key — callers address it
    with :func:`evaluation_key` (or any other stable string).
    """

    #: Distinguishes cache instances in the metrics ``cache=`` label.
    _instance_ids = itertools.count(1)

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        backend: str | None = None,
        max_memory_entries: int = 262_144,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if max_memory_entries < 1:
            raise ValueError("max_memory_entries must be >= 1")
        self.max_memory_entries = max_memory_entries
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._memory: OrderedDict[str, Objectives] = OrderedDict()
        self._disk: _JsonlStore | _SqliteStore | None = None
        if path is not None:
            path = Path(path)
            if backend is None:
                backend = "sqlite" if path.suffix in {".sqlite", ".db"} else "jsonl"
            if backend not in DISK_BACKENDS:
                raise ValueError(
                    f"unknown cache backend {backend!r}; choose from {DISK_BACKENDS}"
                )
            self._disk = (
                _SqliteStore(path) if backend == "sqlite" else _JsonlStore(path)
            )
        self.backend = backend if path is not None else "memory"
        self.path = Path(path) if path is not None else None
        self._init_metrics(registry)

    def _init_metrics(self, registry: MetricsRegistry | None) -> None:
        registry = registry if registry is not None else get_registry()
        label = f"cache-{next(self._instance_ids)}"
        self.metrics_label = label
        labelnames = ("cache", "backend")

        def series(family):
            return family.labels(label, self.backend)

        self._m_hits = series(registry.counter(
            "repro_cache_hits_total", "Cache lookups served (both tiers)",
            labelnames,
        ))
        self._m_misses = series(registry.counter(
            "repro_cache_misses_total", "Cache lookups missed", labelnames,
        ))
        self._m_disk_hits = series(registry.counter(
            "repro_cache_disk_hits_total",
            "Cache lookups served by the disk tier", labelnames,
        ))
        self._m_puts = series(registry.counter(
            "repro_cache_puts_total", "Evaluations stored", labelnames,
        ))
        self._m_evictions = series(registry.counter(
            "repro_cache_evictions_total",
            "Memory-tier LRU evictions", labelnames,
        ))
        self._m_hit_rate = series(registry.gauge(
            "repro_cache_hit_rate",
            "Fraction of lookups served from either tier", labelnames,
        ))
        self._m_entries = series(registry.gauge(
            "repro_cache_entries", "Distinct cached evaluations", labelnames,
        ))
        self._m_disk_seconds = registry.histogram(
            "repro_cache_disk_seconds",
            "Disk-tier operation latency", ("cache", "op"),
        )
        self._m_disk_get = self._m_disk_seconds.labels(label, "get")
        self._m_disk_put = self._m_disk_seconds.labels(label, "put")
        # Collector pattern: CacheStats stays the source of truth and is
        # mirrored only when something scrapes (weakly referenced, so
        # registration never keeps a finished cache alive).
        registry.register_collector(self._collect_metrics)

    def _collect_metrics(self) -> None:
        with self._lock:
            stats = dataclasses.replace(self.stats)
            entries = len(self)
        self._m_hits.set_total(stats.hits)
        self._m_misses.set_total(stats.misses)
        self._m_disk_hits.set_total(stats.disk_hits)
        self._m_puts.set_total(stats.puts)
        self._m_evictions.set_total(stats.evictions)
        self._m_hit_rate.set(stats.hit_rate)
        self._m_entries.set(entries)

    # Core operations ------------------------------------------------------
    def get(self, key: str) -> Objectives | None:
        """Look up one key; promotes disk hits into the memory tier."""
        with self._lock:
            value = self._memory.get(key)
            if value is not None:
                self._memory.move_to_end(key)
                self.stats.hits += 1
                self.stats.memory_hits += 1
                return value
            if self._disk is not None:
                started = time.perf_counter()
                value = self._disk.get(key)
                self._m_disk_get.observe(time.perf_counter() - started)
                if value is not None:
                    self.stats.hits += 1
                    self.stats.disk_hits += 1
                    self._insert_memory(key, value)
                    return value
            self.stats.misses += 1
            return None

    def put(self, key: str, objectives: Iterable[float]) -> None:
        """Store one evaluation in both tiers."""
        value = tuple(float(v) for v in objectives)
        with self._lock:
            self.stats.puts += 1
            self._insert_memory(key, value)
            if self._disk is not None:
                started = time.perf_counter()
                self._disk.put(key, value)
                self._m_disk_put.observe(time.perf_counter() - started)

    def get_many(self, keys: Sequence[str]) -> list[Objectives | None]:
        """Vector lookup, one slot per key (``None`` on miss)."""
        with self._lock:
            return [self.get(key) for key in keys]

    def put_many(self, entries: Mapping[str, Iterable[float]]) -> None:
        with self._lock:
            for key, objectives in entries.items():
                self.put(key, objectives)

    def _insert_memory(self, key: str, value: Objectives) -> None:
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    # Introspection --------------------------------------------------------
    def __len__(self) -> int:
        """Number of distinct cached evaluations (disk tier wins)."""
        with self._lock:
            if self._disk is not None:
                return len(self._disk)
            return len(self._memory)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._memory:
                return True
            return self._disk is not None and self._disk.get(key) is not None

    def clear_stats(self) -> None:
        with self._lock:
            self.stats = CacheStats()

    def close(self) -> None:
        with self._lock:
            if self._disk is not None:
                self._disk.close()
                self._disk = None

    def __enter__(self) -> "EvaluationCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
