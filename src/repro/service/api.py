"""Typed request/response records for the evaluation service.

Campaigns are driven programmatically (:func:`repro.service.campaign.
run_campaign`) or through the job queue; either way the boundary speaks
these dataclasses, and every record round-trips through JSON so requests
can be submitted from the CLI, files, or a network front-end.

Schema v2 (this release) makes the wire format problem-agnostic::

    {"schema_version": 2, "problem": "dcim",
     "specs": [{"wstore": 8192, "precision": "INT8"}], ...}

``problem`` names a :mod:`repro.problems` registry entry, which owns
the per-problem spec validation.  Legacy v1 payloads (no
``schema_version``/``problem`` keys) are upgraded transparently by the
loaders — they resolve to ``problem: "dcim"`` and produce bit-identical
campaign results and identical :meth:`CampaignRequest.fingerprint`
values, so existing request files, caches and registry rows keep
matching.  Loaders ignore unknown keys with a warning instead of
raising, so files written by newer schema versions stay readable.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.core.spec import DcimSpec, DesignPoint
from repro.problems.base import DEFAULT_PROBLEM, filter_unknown_keys
from repro.service.cache import stable_hash

__all__ = [
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "SpecRequest",
    "CampaignRequest",
    "FrontierPoint",
    "CampaignResponse",
]

#: The schema this release writes.
SCHEMA_VERSION = 2

#: Schemas the loaders accept (v1 payloads are upgraded in place).
SUPPORTED_SCHEMA_VERSIONS = (1, 2)


@dataclass(frozen=True)
class SpecRequest:
    """JSON-able mirror of :class:`~repro.core.spec.DcimSpec`.

    This is the wire spec of the ``"dcim"`` problem; other problems
    carry their own spec dataclasses (see the
    :mod:`repro.problems` registry).
    """

    wstore: int
    precision: str
    max_l: int = 64
    max_h: int = 2048
    min_n_factor: int = 4
    max_n: int | None = None

    def to_spec(self) -> DcimSpec:
        """Materialise (and validate) the concrete specification."""
        return DcimSpec(
            wstore=self.wstore,
            precision=self.precision,
            max_l=self.max_l,
            max_h=self.max_h,
            min_n_factor=self.min_n_factor,
            max_n=self.max_n,
        )

    @classmethod
    def from_spec(cls, spec: DcimSpec) -> "SpecRequest":
        return cls(
            wstore=spec.wstore,
            precision=spec.precision.name,
            max_l=spec.max_l,
            max_h=spec.max_h,
            min_n_factor=spec.min_n_factor,
            max_n=spec.max_n,
        )

    @classmethod
    def from_dict(cls, payload: dict) -> "SpecRequest":
        """Tolerant loader: unknown keys are dropped with a warning."""
        return cls(**filter_unknown_keys(dict(payload), cls, "SpecRequest"))


@dataclass(frozen=True)
class CampaignRequest:
    """One multi-spec exploration campaign (schema v2).

    Attributes:
        specs: the specifications to explore (one NSGA-II run each);
            raw dicts are validated through the problem's registry
            entry, so each problem enforces its own spec schema.
        population_size / generations: GA sizing shared by all runs;
            ``None`` resolves to the problem's own default sizing (the
            one ``GET /api/problems`` advertises) at construction, so
            a stored request always carries concrete numbers.
        seed: base GA seed; spec ``i`` runs with ``seed + i``.
        backend: evaluation backend (``serial``/``thread``/``process``).
        workers: campaign-level parallelism (specs explored at once).
        chunk_size: genomes per executor task (``None`` = automatic).
        engine: cost-engine backend (``auto``/``numpy``/``python``);
            all choices return bit-identical objective vectors.
        ga_backend: GA sort/crowding kernel backend
            (``auto``/``numpy``/``python``, see
            :mod:`repro.dse.kernels`); all choices return bit-identical
            campaign results, so it never enters the fingerprint.
        exhaustive_threshold: largest enumerable design space explored
            exhaustively instead of via the GA; ``0`` forces the GA
            everywhere, omitted/``None`` resolves to the library
            default at construction.
        schema_version: wire-format version; v1 payloads are accepted
            and upgraded, so a constructed request always carries
            :data:`SCHEMA_VERSION`.
        problem: :mod:`repro.problems` registry name this campaign
            optimises (default ``"dcim"``).
    """

    specs: tuple
    population_size: int | None = None
    generations: int | None = None
    seed: int = 0
    backend: str = "serial"
    workers: int = 1
    chunk_size: int | None = None
    engine: str = "auto"
    ga_backend: str = "auto"
    exhaustive_threshold: int | None = None
    schema_version: int = SCHEMA_VERSION
    problem: str = DEFAULT_PROBLEM

    def __post_init__(self) -> None:
        if self.schema_version not in SUPPORTED_SCHEMA_VERSIONS:
            raise ValueError(
                f"unsupported schema_version {self.schema_version!r}; "
                f"supported: {list(SUPPORTED_SCHEMA_VERSIONS)}"
            )
        from repro.dse.explorer import DEFAULT_EXHAUSTIVE_THRESHOLD
        from repro.dse.kernels import KERNEL_BACKENDS

        if self.ga_backend not in KERNEL_BACKENDS:
            raise ValueError(
                f"unknown GA kernel backend {self.ga_backend!r}; "
                f"choose from {KERNEL_BACKENDS}"
            )
        # Omitted threshold resolves to the library default, so stored
        # requests always carry the concrete number they ran with.
        if self.exhaustive_threshold is None:
            object.__setattr__(
                self, "exhaustive_threshold", DEFAULT_EXHAUSTIVE_THRESHOLD
            )
        if self.exhaustive_threshold < 0:
            raise ValueError("exhaustive_threshold must be >= 0")
        # Requests are always upgraded to the current schema in memory.
        object.__setattr__(self, "schema_version", SCHEMA_VERSION)
        from repro.problems import get_problem

        try:
            definition = get_problem(self.problem)
        except KeyError as exc:
            raise ValueError(str(exc.args[0])) from None
        # Omitted GA sizing resolves to the problem's own defaults —
        # the numbers GET /api/problems advertises — so a raw HTTP
        # submit and the CLI run the same campaign.
        if self.population_size is None:
            object.__setattr__(
                self, "population_size", definition.sizing.population_size
            )
        if self.generations is None:
            object.__setattr__(
                self, "generations", definition.sizing.generations
            )
        # Tolerate lists and raw dicts from JSON callers; the problem's
        # registry entry validates each spec payload.
        specs = tuple(definition.parse_spec(s) for s in self.specs)
        object.__setattr__(self, "specs", specs)
        if not specs:
            raise ValueError("a campaign needs at least one spec")

    def fingerprint(self) -> str:
        """Stable content hash used for request deduplication.

        ``schema_version`` never participates: the hash identifies the
        *workload*, and a request upgraded across schema bumps must keep
        matching its job-queue dedup entries and registry rows.  For the
        default ``"dcim"`` problem the ``problem`` key is dropped too,
        reproducing the v1-era layout exactly, so fingerprints recorded
        before the v2 schema keep matching as well.
        """
        payload = self.to_dict()
        del payload["schema_version"]
        if self.problem == DEFAULT_PROBLEM:
            del payload["problem"]
        # The GA kernel backend can never change results, so it never
        # hashes; the exhaustive threshold only hashes when it differs
        # from the library default.  Both rules keep fingerprints from
        # before these knobs existed matching.
        del payload["ga_backend"]
        from repro.dse.explorer import DEFAULT_EXHAUSTIVE_THRESHOLD

        if self.exhaustive_threshold == DEFAULT_EXHAUSTIVE_THRESHOLD:
            del payload["exhaustive_threshold"]
        return stable_hash(payload)

    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignRequest":
        """Load a v1 or v2 payload (v1 is upgraded to ``problem: dcim``)."""
        payload = dict(payload)
        version = payload.pop("schema_version", 1)
        problem = payload.pop("problem", DEFAULT_PROBLEM)
        if version not in SUPPORTED_SCHEMA_VERSIONS:
            raise ValueError(
                f"unsupported schema_version {version!r}; "
                f"supported: {list(SUPPORTED_SCHEMA_VERSIONS)}"
            )
        payload = filter_unknown_keys(payload, cls, "CampaignRequest")
        payload["specs"] = tuple(payload.get("specs", ()))
        return cls(schema_version=version, problem=problem, **payload)

    @classmethod
    def from_json(cls, text: str) -> "CampaignRequest":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class FrontierPoint:
    """One merged-frontier design plus its objective vector.

    The ``(precision, n, h, l, k)`` columns describe the underlying
    macro design; problems whose candidates carry more state (e.g. the
    ``"mapping"`` problem's macro count) put it in ``extras``, which is
    serialised only when non-empty so ``"dcim"`` payloads and content
    hashes are byte-identical to the v1 era.
    """

    precision: str
    n: int
    h: int
    l: int
    k: int
    objectives: tuple[float, ...] = ()
    extras: dict = field(default_factory=dict)

    def __hash__(self) -> int:
        # The generated frozen-dataclass hash would choke on the extras
        # dict; hash its canonical JSON instead so points stay usable
        # in sets/dict keys (as they were before extras existed), even
        # when extras values are themselves lists/dicts.  Treat extras
        # as immutable — mutating it in place would desync equality,
        # hashes and the store's content addresses.
        extras_key = (
            json.dumps(self.extras, sort_keys=True, default=str)
            if self.extras
            else ""
        )
        return hash(
            (
                self.precision,
                self.n,
                self.h,
                self.l,
                self.k,
                self.objectives,
                extras_key,
            )
        )

    @classmethod
    def from_design(
        cls, point: DesignPoint, objectives: tuple[float, ...] = ()
    ) -> "FrontierPoint":
        return cls(
            precision=point.precision.name,
            n=point.n,
            h=point.h,
            l=point.l,
            k=point.k,
            objectives=tuple(objectives),
        )

    def to_design(self) -> DesignPoint:
        return DesignPoint(
            precision=self.precision, n=self.n, h=self.h, l=self.l, k=self.k
        )

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["objectives"] = list(self.objectives)
        if not self.extras:
            del payload["extras"]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FrontierPoint":
        payload = filter_unknown_keys(dict(payload), cls, "FrontierPoint")
        payload["objectives"] = tuple(payload.get("objectives", ()))
        payload["extras"] = dict(payload.get("extras", ()))
        return cls(**payload)


@dataclass(frozen=True)
class CampaignResponse:
    """Result record handed back for one campaign request.

    Attributes:
        frontier: the merged cross-architecture Pareto frontier.
        evaluations: unique genomes evaluated across all GA runs,
            including cache-served ones.
        fresh_evaluations: evaluations that actually reached the
            estimation models (cache misses; equals ``evaluations``
            for uncached campaigns).
        per_spec_evaluations: breakdown of ``evaluations`` per spec.
        cache_stats: cache counters (``CacheStats.as_dict`` shape), or
            ``None`` when the campaign ran uncached.
        wall_time_s: end-to-end campaign wall clock.
        engine_backend: which cost-engine backend ran
            (``numpy``/``python``).
        problem: registry name of the problem the campaign optimised.
        strategies: per-spec exploration strategy (``"ga"`` or
            ``"exhaustive"``), in spec input order; empty for records
            written before strategies were tracked.
        ga_backend: resolved GA kernel backend (``numpy``/``python``),
            or ``None`` for pre-kernel records.
    """

    frontier: tuple[FrontierPoint, ...]
    evaluations: int = 0
    fresh_evaluations: int = 0
    per_spec_evaluations: tuple[int, ...] = ()
    cache_stats: dict | None = None
    wall_time_s: float = 0.0
    engine_backend: str = "python"
    problem: str = DEFAULT_PROBLEM
    strategies: tuple[str, ...] = ()
    ga_backend: str | None = None

    def __post_init__(self) -> None:
        frontier = tuple(
            p if isinstance(p, FrontierPoint) else FrontierPoint.from_dict(p)
            for p in self.frontier
        )
        object.__setattr__(self, "frontier", frontier)
        object.__setattr__(
            self, "per_spec_evaluations", tuple(self.per_spec_evaluations)
        )
        object.__setattr__(self, "strategies", tuple(self.strategies))

    def to_dict(self) -> dict:
        # Not asdict(): that would deep-convert the frontier only for
        # the next line to redo it point by point.
        return {
            "frontier": [point.to_dict() for point in self.frontier],
            "evaluations": self.evaluations,
            "fresh_evaluations": self.fresh_evaluations,
            "per_spec_evaluations": list(self.per_spec_evaluations),
            "cache_stats": (
                dict(self.cache_stats) if self.cache_stats is not None else None
            ),
            "wall_time_s": self.wall_time_s,
            "engine_backend": self.engine_backend,
            "problem": self.problem,
            "strategies": list(self.strategies),
            "ga_backend": self.ga_backend,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignResponse":
        payload = filter_unknown_keys(dict(payload), cls, "CampaignResponse")
        payload["frontier"] = tuple(
            FrontierPoint.from_dict(point)
            for point in payload.get("frontier", ())
        )
        return cls(**payload)

    @classmethod
    def from_json(cls, text: str) -> "CampaignResponse":
        return cls.from_dict(json.loads(text))
