"""Typed request/response records for the evaluation service.

Campaigns are driven programmatically (:func:`repro.service.campaign.
run_campaign`) or through the job queue; either way the boundary speaks
these dataclasses, and every record round-trips through JSON so requests
can be submitted from the CLI, files, or — later — a network front-end.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.core.spec import DcimSpec, DesignPoint
from repro.service.cache import stable_hash

__all__ = [
    "SpecRequest",
    "CampaignRequest",
    "FrontierPoint",
    "CampaignResponse",
]


@dataclass(frozen=True)
class SpecRequest:
    """JSON-able mirror of :class:`~repro.core.spec.DcimSpec`."""

    wstore: int
    precision: str
    max_l: int = 64
    max_h: int = 2048
    min_n_factor: int = 4
    max_n: int | None = None

    def to_spec(self) -> DcimSpec:
        """Materialise (and validate) the concrete specification."""
        return DcimSpec(
            wstore=self.wstore,
            precision=self.precision,
            max_l=self.max_l,
            max_h=self.max_h,
            min_n_factor=self.min_n_factor,
            max_n=self.max_n,
        )

    @classmethod
    def from_spec(cls, spec: DcimSpec) -> "SpecRequest":
        return cls(
            wstore=spec.wstore,
            precision=spec.precision.name,
            max_l=spec.max_l,
            max_h=spec.max_h,
            min_n_factor=spec.min_n_factor,
            max_n=spec.max_n,
        )


@dataclass(frozen=True)
class CampaignRequest:
    """One multi-spec exploration campaign.

    Attributes:
        specs: the specifications to explore (one NSGA-II run each).
        population_size / generations: GA sizing shared by all runs.
        seed: base GA seed; spec ``i`` runs with ``seed + i``.
        backend: evaluation backend (``serial``/``thread``/``process``).
        workers: campaign-level parallelism (specs explored at once).
        chunk_size: genomes per executor task (``None`` = automatic).
        engine: cost-engine backend (``auto``/``numpy``/``python``);
            all choices return bit-identical objective vectors.
    """

    specs: tuple[SpecRequest, ...]
    population_size: int = 64
    generations: int = 60
    seed: int = 0
    backend: str = "serial"
    workers: int = 1
    chunk_size: int | None = None
    engine: str = "auto"

    def __post_init__(self) -> None:
        # Tolerate lists and raw dicts from JSON callers.
        specs = tuple(
            s if isinstance(s, SpecRequest) else SpecRequest(**s)
            for s in self.specs
        )
        object.__setattr__(self, "specs", specs)
        if not specs:
            raise ValueError("a campaign needs at least one spec")

    def fingerprint(self) -> str:
        """Stable content hash used for request deduplication."""
        return stable_hash(self.to_dict())

    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignRequest":
        payload = dict(payload)
        payload["specs"] = tuple(
            SpecRequest(**spec) for spec in payload.get("specs", ())
        )
        return cls(**payload)

    @classmethod
    def from_json(cls, text: str) -> "CampaignRequest":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class FrontierPoint:
    """One merged-frontier design plus its objective vector."""

    precision: str
    n: int
    h: int
    l: int
    k: int
    objectives: tuple[float, ...] = ()

    @classmethod
    def from_design(
        cls, point: DesignPoint, objectives: tuple[float, ...] = ()
    ) -> "FrontierPoint":
        return cls(
            precision=point.precision.name,
            n=point.n,
            h=point.h,
            l=point.l,
            k=point.k,
            objectives=tuple(objectives),
        )

    def to_design(self) -> DesignPoint:
        return DesignPoint(
            precision=self.precision, n=self.n, h=self.h, l=self.l, k=self.k
        )

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["objectives"] = list(self.objectives)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FrontierPoint":
        return cls(
            **{**payload, "objectives": tuple(payload.get("objectives", ()))}
        )


@dataclass(frozen=True)
class CampaignResponse:
    """Result record handed back for one campaign request.

    Attributes:
        frontier: the merged cross-architecture Pareto frontier.
        evaluations: unique genomes evaluated across all GA runs,
            including cache-served ones.
        fresh_evaluations: evaluations that actually reached the
            estimation models (cache misses; equals ``evaluations``
            for uncached campaigns).
        per_spec_evaluations: breakdown of ``evaluations`` per spec.
        cache_stats: cache counters (``CacheStats.as_dict`` shape), or
            ``None`` when the campaign ran uncached.
        wall_time_s: end-to-end campaign wall clock.
        engine_backend: which cost-engine backend ran
            (``numpy``/``python``).
    """

    frontier: tuple[FrontierPoint, ...]
    evaluations: int = 0
    fresh_evaluations: int = 0
    per_spec_evaluations: tuple[int, ...] = ()
    cache_stats: dict | None = None
    wall_time_s: float = 0.0
    engine_backend: str = "python"

    def __post_init__(self) -> None:
        frontier = tuple(
            p if isinstance(p, FrontierPoint) else FrontierPoint(**p)
            for p in self.frontier
        )
        object.__setattr__(self, "frontier", frontier)
        object.__setattr__(
            self, "per_spec_evaluations", tuple(self.per_spec_evaluations)
        )

    def to_dict(self) -> dict:
        payload = asdict(self)
        for point in payload["frontier"]:
            point["objectives"] = list(point["objectives"])
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignResponse":
        payload = dict(payload)
        payload["frontier"] = tuple(
            FrontierPoint.from_dict(point)
            for point in payload.get("frontier", ())
        )
        return cls(**payload)

    @classmethod
    def from_json(cls, text: str) -> "CampaignResponse":
        return cls.from_dict(json.loads(text))
