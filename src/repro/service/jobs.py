"""Job queue / background-worker scheduler with request deduplication.

The queue is the serving core the front-ends wrap: campaigns are
*submitted* as :class:`~repro.service.api.CampaignRequest`s, identical
in-flight requests collapse onto one job (content-addressed by the
request fingerprint), and each job carries a status/result record plus
a bounded :class:`~repro.service.events.EventBuffer` that streams the
campaign's progress events.  The queue is problem-agnostic: the default
runner (:func:`~repro.service.campaign.execute_request`) dispatches
each request through its ``problem``'s :mod:`repro.problems` registry
entry, so any registered problem is servable without queue changes.

Execution comes in two flavours that share one scheduler:

* **synchronous** — :meth:`JobQueue.run_next` / :meth:`JobQueue.run_all`
  drain the queue in FIFO order in the calling thread (the testable,
  event-loop-free path), and
* **background** — construct with ``workers=N`` and N daemon worker
  threads drain the queue as jobs arrive; callers poll
  :meth:`~JobQueue.status`, block on :meth:`~JobQueue.wait`, stream
  :meth:`~JobQueue.events_since`, and stop a campaign cooperatively
  with :meth:`~JobQueue.cancel` (the GA stops at its next generation
  boundary).

Finished records survive until explicitly purged — or, with ``ttl_s``
set, until they age out (checked on every submit, on every
:meth:`~JobQueue.jobs`/:meth:`~JobQueue.sweep_expired` read, and by
idle background workers — an idle queue does not retain finished jobs
forever).

With a :class:`~repro.store.runstore.RunStore` attached, every job that
*executes* is also recorded into the persistent run registry at its
terminal transition (done/failed/cancelled), so results outlive both
the TTL and the process.
"""

from __future__ import annotations

import enum
import inspect
import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.obs.log import JsonLogger, get_logger
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import NULL_SPAN, get_tracer, use_span
from repro.service.api import CampaignRequest, CampaignResponse
from repro.service.campaign import execute_request
from repro.service.events import (
    CampaignCancelled,
    CampaignEvent,
    EventBuffer,
    EventKind,
)

__all__ = ["JobStatus", "JobRecord", "JobQueue"]


class JobStatus(str, enum.Enum):
    """Lifecycle of one submitted campaign."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        """True once the job can never run again."""
        return self in (JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED)


@dataclass
class JobRecord:
    """Status/result record for one job.

    Attributes:
        job_id: queue-assigned identifier (``job-<n>``).
        request: the deduplicated campaign request.
        status: current lifecycle state.
        response: the result, once ``DONE``.
        error: failure message, once ``FAILED``.
        submissions: how many submits collapsed onto this job.
        events: bounded progress-event buffer for this job.
        cancel_requested: set by :meth:`JobQueue.cancel`; the running
            campaign polls it between GA generations.
        run_id: registry id once the outcome was recorded into the
            queue's :class:`~repro.store.runstore.RunStore` (``None``
            without a store, or for jobs cancelled before running).
        trace_id: id of the trace this job belongs to (``None`` with
            tracing off).  The queue-wait span is started at submit —
            inside the submitting request's span when one is ambient —
            and the job's run span is parented to it, so one trace
            follows the job across the worker-thread boundary.
        created_at / started_at / finished_at: monotonic timestamps
            (``None`` until the transition happens).
    """

    job_id: str
    request: CampaignRequest
    status: JobStatus = JobStatus.PENDING
    response: CampaignResponse | None = None
    error: str | None = None
    submissions: int = 1
    events: EventBuffer = field(default_factory=EventBuffer)
    cancel_requested: bool = False
    run_id: str | None = None
    trace_id: str | None = None
    #: The open queue-wait span (internal; closed when the job starts
    #: running or reaches a terminal state without running).
    trace_span: object = field(default=None, repr=False, compare=False)
    created_at: float = field(default_factory=time.monotonic)
    started_at: float | None = None
    finished_at: float | None = None


@dataclass
class _QueueStats:
    """Counters plus live gauges for one queue.

    The first block counts lifecycle transitions since construction;
    the gauges (``queue_depth``, ``workers``, ``busy_workers``) reflect
    the current state and are updated under the queue lock.
    """

    submitted: int = 0
    deduplicated: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    purged: int = 0
    recorded: int = 0
    record_errors: int = 0
    queue_depth: int = 0
    workers: int = 0
    busy_workers: int = 0
    #: The owning queue's lock; ``as_dict`` snapshots under it so a
    #: reader never sees a torn view (e.g. completed already bumped but
    #: queue_depth not yet refreshed) while workers transition jobs.
    _lock: threading.RLock | None = field(
        default=None, repr=False, compare=False
    )

    def as_dict(self) -> dict:
        if self._lock is not None:
            with self._lock:
                return self._as_dict_unlocked()
        return self._as_dict_unlocked()

    def _as_dict_unlocked(self) -> dict:
        return {
            "submitted": self.submitted,
            "deduplicated": self.deduplicated,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "purged": self.purged,
            "recorded": self.recorded,
            "record_errors": self.record_errors,
            "queue_depth": self.queue_depth,
            "workers": self.workers,
            "busy_workers": self.busy_workers,
        }


def _accepts_hooks(runner) -> bool:
    """Does ``runner`` take ``observer``/``should_stop`` keywords?

    Custom runners that only accept the request still work — they just
    run without progress events, and cancellation only catches their
    jobs while still pending.
    """
    try:
        parameters = inspect.signature(runner).parameters
    except (TypeError, ValueError):  # builtins, odd callables
        return False
    if any(p.kind is p.VAR_KEYWORD for p in parameters.values()):
        return True
    return "observer" in parameters and "should_stop" in parameters


class JobQueue:
    """Campaign scheduler with content-addressed deduplication.

    Args:
        runner: ``CampaignRequest -> CampaignResponse`` callable;
            defaults to :func:`repro.service.campaign.execute_request`
            bound to the given resources.  Runners accepting
            ``observer``/``should_stop`` keywords get the job's event
            buffer and cancellation flag threaded through.
        library / cache / executor: shared resources handed to the
            default runner.
        workers: background daemon threads draining the queue; ``0``
            (the default) keeps the queue fully synchronous —
            :meth:`run_next`/:meth:`run_all` semantics are unchanged.
        event_buffer_size: retained progress events per job.
        ttl_s: age (seconds since finishing) after which terminal
            records are purged automatically — on submit, on
            :meth:`jobs`/:meth:`sweep_expired` reads, and by idle
            background workers; ``None`` keeps them until
            :meth:`purge` is called.
        store: optional :class:`~repro.store.runstore.RunStore`;
            every executed job's outcome is recorded into it at the
            terminal transition (the job's :attr:`JobRecord.run_id`
            carries the registry id).  Recording failures never take
            the queue down — they are counted in
            ``stats.record_errors``.

    Submitting a request whose fingerprint matches a job that is still
    pending, running, or successfully finished returns the existing job
    id instead of queueing duplicate work; failed and cancelled jobs do
    *not* absorb resubmissions, so callers can retry.
    """

    def __init__(
        self,
        runner=None,
        library=None,
        cache=None,
        executor=None,
        workers: int = 0,
        event_buffer_size: int = 256,
        ttl_s: float | None = None,
        store=None,
        registry: MetricsRegistry | None = None,
        logger: JsonLogger | None = None,
        on_recorded=None,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.store = store
        #: ``(job) -> None`` hook fired after a job's outcome lands in
        #: the run registry (``job.run_id`` is set by then) — the serve
        #: layer uses it to flush per-unit worker rows for the run.
        self.on_recorded = on_recorded
        self._log = logger if logger is not None else get_logger("repro.jobs")
        if runner is None:
            def runner(request, observer=None, should_stop=None):
                return execute_request(
                    request,
                    library=library,
                    cache=cache,
                    executor=executor,
                    observer=observer,
                    should_stop=should_stop,
                )
        self._runner = runner
        self._runner_takes_hooks = _accepts_hooks(runner)
        self._event_buffer_size = event_buffer_size
        self.ttl_s = ttl_s
        self._lock = threading.RLock()
        #: Signalled when work arrives or the queue closes.
        self._work = threading.Condition(self._lock)
        #: Signalled when any job reaches a terminal state.
        self._done = threading.Condition(self._lock)
        self._jobs: dict[str, JobRecord] = {}
        self._by_fingerprint: dict[str, str] = {}
        self._pending: deque[str] = deque()
        self._ids = itertools.count(1)
        self._closed = False
        self.stats = _QueueStats(_lock=self._lock)
        self._init_metrics(registry)
        self._workers: list[threading.Thread] = []
        for n in range(workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"jobqueue-worker-{n}", daemon=True
            )
            thread.start()
            self._workers.append(thread)
        self.stats.workers = len(self._workers)

    # Metrics ---------------------------------------------------------------
    def _init_metrics(self, registry: MetricsRegistry | None) -> None:
        """Mirror the queue's cheap counters into a metrics registry.

        Lifecycle counters already live in ``stats`` (updated under the
        queue lock), so they are exported through a scrape-time
        collector at zero hot-path cost; only the wait/run latency
        histograms are observed directly at the transitions.
        """
        registry = registry if registry is not None else get_registry()
        self._m_submitted = registry.counter(
            "repro_jobs_submitted_total", "Campaign submissions accepted"
        )
        self._m_deduplicated = registry.counter(
            "repro_jobs_deduplicated_total",
            "Submissions collapsed onto an existing job",
        )
        self._m_jobs = registry.counter(
            "repro_jobs_total", "Jobs finished, by terminal status", ("status",)
        )
        self._m_purged = registry.counter(
            "repro_jobs_purged_total", "Terminal records dropped by TTL/purge"
        )
        self._m_recorded = registry.counter(
            "repro_jobs_recorded_total", "Job outcomes persisted to the run registry"
        )
        self._m_record_errors = registry.counter(
            "repro_jobs_record_errors_total", "Run-registry writes that failed"
        )
        self._m_depth = registry.gauge(
            "repro_queue_depth", "Jobs pending (not yet running)"
        )
        self._m_workers = registry.gauge(
            "repro_queue_workers", "Background worker threads"
        )
        self._m_busy = registry.gauge(
            "repro_queue_busy_workers", "Workers currently executing a job"
        )
        self._m_wait_seconds = registry.histogram(
            "repro_job_wait_seconds", "Time a job spent queued before running"
        )
        self._m_run_seconds = registry.histogram(
            "repro_job_run_seconds",
            "Execution time of one job, by terminal status",
            ("status",),
        )
        registry.register_collector(self._collect_metrics)

    def _collect_metrics(self) -> None:
        with self._lock:
            stats = self.stats._as_dict_unlocked()
        self._m_submitted.set_total(stats["submitted"])
        self._m_deduplicated.set_total(stats["deduplicated"])
        self._m_jobs.labels("done").set_total(stats["completed"])
        self._m_jobs.labels("failed").set_total(stats["failed"])
        self._m_jobs.labels("cancelled").set_total(stats["cancelled"])
        self._m_purged.set_total(stats["purged"])
        self._m_recorded.set_total(stats["recorded"])
        self._m_record_errors.set_total(stats["record_errors"])
        self._m_depth.set(stats["queue_depth"])
        self._m_workers.set(stats["workers"])
        self._m_busy.set(stats["busy_workers"])

    # Submission -----------------------------------------------------------
    def submit(self, request: CampaignRequest) -> str:
        """Queue a campaign; returns the (possibly deduplicated) job id."""
        fingerprint = request.fingerprint()
        with self._work:
            if self._closed:
                raise RuntimeError("queue is closed")
            if self.ttl_s is not None:
                self._purge_locked(self.ttl_s)
            self.stats.submitted += 1
            existing_id = self._by_fingerprint.get(fingerprint)
            if existing_id is not None:
                existing = self._jobs[existing_id]
                # A job with a pending cancel request is doomed: absorbing
                # a resubmission into it would silently cancel the retry.
                if (
                    existing.status not in (JobStatus.FAILED, JobStatus.CANCELLED)
                    and not existing.cancel_requested
                ):
                    existing.submissions += 1
                    self.stats.deduplicated += 1
                    return existing_id
            job_id = f"job-{next(self._ids)}"
            job = JobRecord(
                job_id=job_id,
                request=request,
                events=EventBuffer(self._event_buffer_size),
            )
            # The queue-wait span starts here — while the submitting
            # request's span (if any) is still open — so the trace
            # stays alive through the hand-off to a worker thread.
            wait_span = get_tracer().start_span(
                "job.queue_wait",
                attributes={"job_id": job_id},
                root_if_orphan=True,
                category="queue",
            )
            job.trace_span = wait_span
            job.trace_id = wait_span.trace_id or None
            self._jobs[job_id] = job
            self._by_fingerprint[fingerprint] = job_id
            self._pending.append(job_id)
            self._refresh_depth()
            self._work.notify()
            return job_id

    # Inspection -----------------------------------------------------------
    def status(self, job_id: str) -> JobStatus:
        return self._job(job_id).status

    def result(self, job_id: str) -> CampaignResponse:
        """The finished response; raises if the job is not ``DONE``."""
        job = self._job(job_id)
        if job.status is JobStatus.FAILED:
            raise RuntimeError(f"{job_id} failed: {job.error}")
        if job.status is JobStatus.CANCELLED:
            raise RuntimeError(f"{job_id} was cancelled")
        if job.response is None:
            raise RuntimeError(f"{job_id} has not finished (status {job.status.value})")
        return job.response

    def record(self, job_id: str) -> JobRecord:
        return self._job(job_id)

    def jobs(self) -> list[JobRecord]:
        self.sweep_expired()
        with self._lock:
            return list(self._jobs.values())

    def pending_count(self) -> int:
        # queue_depth is kept current under this lock by _refresh_depth.
        with self._lock:
            return self.stats.queue_depth

    def events_since(
        self, job_id: str, cursor: int = 0
    ) -> tuple[list[CampaignEvent], int, bool]:
        """Incremental event read: ``(events, next_cursor, done)``.

        Feed the returned cursor back in to receive only news.  ``done``
        is True once the job's stream carries its terminal event.
        """
        return self._job(job_id).events.since(cursor)

    def wait_events(
        self, job_id: str, cursor: int = 0, timeout: float | None = None
    ) -> tuple[list[CampaignEvent], int, bool]:
        """Blocking :meth:`events_since`: waits up to ``timeout`` for news."""
        return self._job(job_id).events.wait_since(cursor, timeout)

    def _job(self, job_id: str) -> JobRecord:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"unknown job id {job_id!r}") from None

    def _refresh_depth(self) -> None:
        self.stats.queue_depth = sum(
            1
            for job_id in self._pending
            if self._jobs[job_id].status is JobStatus.PENDING
        )

    # Cancellation / waiting / purging --------------------------------------
    def cancel(self, job_id: str) -> JobStatus:
        """Request cancellation; returns the job's status afterwards.

        Pending jobs are cancelled immediately.  Running jobs are
        stopped cooperatively: the flag is polled between GA
        generations, so the campaign winds down at the next boundary
        and the status flips to ``CANCELLED`` shortly after.  Terminal
        jobs are left untouched.
        """
        with self._lock:
            job = self._job(job_id)
            if job.status is JobStatus.PENDING:
                self._finish(
                    job,
                    JobStatus.CANCELLED,
                    event=CampaignEvent(
                        kind=EventKind.CAMPAIGN_CANCELLED,
                        message="cancelled while pending",
                    ),
                )
            elif job.status is JobStatus.RUNNING:
                job.cancel_requested = True
            return job.status

    def wait(self, job_id: str, timeout: float | None = None) -> JobStatus:
        """Block until the job reaches a terminal state; returns it.

        Raises :class:`TimeoutError` when ``timeout`` elapses first.
        Synchronous queues (``workers=0``) only make progress through
        :meth:`run_next`/:meth:`run_all`, so waiting there needs another
        thread driving the queue.
        """
        with self._done:
            job = self._job(job_id)
            if self._done.wait_for(lambda: job.status.terminal, timeout):
                return job.status
        raise TimeoutError(
            f"{job_id} still {job.status.value} after {timeout} s"
        )

    def purge(self, older_than_s: float | None = None) -> int:
        """Drop terminal records finished more than ``older_than_s`` ago.

        ``None`` falls back to the queue's ``ttl_s``; passing ``0``
        drops every terminal record.  Returns how many were removed.
        """
        if older_than_s is None:
            older_than_s = self.ttl_s
        if older_than_s is None:
            raise ValueError("no TTL configured and no age given")
        with self._lock:
            return self._purge_locked(older_than_s)

    def sweep_expired(self) -> int:
        """TTL sweep outside submit: purge aged-out terminal records.

        A no-op (returns 0) without a configured ``ttl_s``.  Called
        automatically from :meth:`jobs`, the HTTP stats endpoint, and
        idle background workers, so finished records age out even on a
        queue that never sees another submit.
        """
        if self.ttl_s is None:
            return 0
        with self._lock:
            return self._purge_locked(self.ttl_s)

    def _purge_locked(self, older_than_s: float) -> int:
        now = time.monotonic()
        doomed = [
            job
            for job in self._jobs.values()
            if job.status.terminal
            and job.finished_at is not None
            and now - job.finished_at >= older_than_s
        ]
        for job in doomed:
            del self._jobs[job.job_id]
            fingerprint = job.request.fingerprint()
            if self._by_fingerprint.get(fingerprint) == job.job_id:
                del self._by_fingerprint[fingerprint]
        if doomed:
            # Lazily queued ids of purged jobs must not dangle.
            self._pending = deque(
                job_id for job_id in self._pending if job_id in self._jobs
            )
            self._refresh_depth()
        self.stats.purged += len(doomed)
        return len(doomed)

    # Execution ------------------------------------------------------------
    def run_next(self) -> JobRecord | None:
        """Execute the oldest pending job; ``None`` when the queue is idle."""
        with self._lock:
            job = self._pop_runnable()
            if job is None:
                return None
        self._execute(job)
        return job

    def run_all(self) -> list[JobRecord]:
        """Drain the queue; returns the jobs executed (in order)."""
        executed = []
        while (job := self.run_next()) is not None:
            executed.append(job)
        return executed

    def _pop_runnable(self) -> JobRecord | None:
        """Pop the oldest still-pending job and mark it RUNNING.

        Jobs cancelled while queued stay in the deque until they reach
        the front; they are skipped here (already terminal).
        """
        while self._pending:
            job = self._jobs[self._pending.popleft()]
            if job.status is JobStatus.PENDING:
                job.status = JobStatus.RUNNING
                job.started_at = time.monotonic()
                self._m_wait_seconds.observe(job.started_at - job.created_at)
                self._refresh_depth()
                return job
        self._refresh_depth()
        return None

    def _finish(
        self,
        job: JobRecord,
        status: JobStatus,
        response: CampaignResponse | None = None,
        error: str | None = None,
        event: CampaignEvent | None = None,
    ) -> None:
        """Terminal transition: record, count, emit, wake waiters."""
        # A job that reaches a terminal state without ever running
        # (cancelled while pending) must still close its queue-wait
        # span, or the trace would stay open forever.  For executed
        # jobs the span was already closed at start (end is idempotent).
        wait_span = job.trace_span
        if wait_span is not None:
            if status is JobStatus.DONE:
                wait_span.end()
            else:
                wait_span.end(status="error", error=error or status.value)
        with self._done:
            job.status = status
            job.response = response
            job.error = error
            job.finished_at = time.monotonic()
            if status is JobStatus.DONE:
                self.stats.completed += 1
            elif status is JobStatus.FAILED:
                self.stats.failed += 1
            elif status is JobStatus.CANCELLED:
                self.stats.cancelled += 1
            if job.started_at is not None:
                self._m_run_seconds.labels(status.value).observe(
                    job.finished_at - job.started_at
                )
            self._refresh_depth()
            self._done.notify_all()
        if event is not None and not job.events.closed:
            job.events.append(event)

    def _record_run(
        self,
        job: JobRecord,
        status: JobStatus,
        response: CampaignResponse | None = None,
        error: str | None = None,
    ) -> None:
        """Persist an executed job's outcome into the run registry."""
        if self.store is None:
            return
        try:
            if status is JobStatus.DONE:
                record = self.store.record_response(response, job.request)
            else:
                record = self.store.record_failure(
                    status.value, error or "", job.request
                )
            job.run_id = record.run_id
            with self._lock:
                self.stats.recorded += 1
        except Exception:  # recording must never take the queue down
            with self._lock:
                self.stats.record_errors += 1
            return
        if self.on_recorded is not None:
            try:
                self.on_recorded(job)
            except Exception:  # same contract as recording itself
                with self._lock:
                    self.stats.record_errors += 1

    def _execute(self, job: JobRecord) -> None:
        """Run one RUNNING job to a terminal state (no lock held)."""
        # Start the run span *before* closing the queue-wait span: a
        # trace completes when its open-span count returns to zero, so
        # the two must overlap to keep the trace alive across the
        # wait -> run transition.
        wait_span = job.trace_span if job.trace_span is not None else NULL_SPAN
        run_span = get_tracer().start_span(
            "job.run",
            attributes={
                "job_id": job.job_id,
                "problem": job.request.problem,
                "specs": len(job.request.specs),
            },
            parent=wait_span,
            category="queue",
        )
        wait_span.end()
        self._log.debug(
            "job_started",
            job_id=job.job_id,
            trace_id=job.trace_id,
            problem=job.request.problem,
            specs=len(job.request.specs),
        )

        def observer(event: CampaignEvent) -> None:
            # Terminal events close the stream and wake watchers, who
            # immediately ask for the result — so only _finish may emit
            # them, *after* the status/response transition is recorded.
            if not event.terminal:
                job.events.append(event)

        try:
            # contextvars do not follow threads; the run span is made
            # ambient here, in the worker thread, so the campaign
            # below attaches its spans to this job's trace.
            with use_span(run_span):
                if self._runner_takes_hooks:
                    response = self._runner(
                        job.request,
                        observer=observer,
                        should_stop=lambda: job.cancel_requested,
                    )
                else:
                    response = self._runner(job.request)
        except CampaignCancelled as exc:
            self._record_run(job, JobStatus.CANCELLED, error=str(exc))
            run_span.end(status="error", error=str(exc))
            self._finish(
                job,
                JobStatus.CANCELLED,
                event=CampaignEvent(
                    kind=EventKind.CAMPAIGN_CANCELLED, message=str(exc)
                ),
            )
        except Exception as exc:  # a failed campaign must not kill the queue
            error = f"{type(exc).__name__}: {exc}"
            self._record_run(job, JobStatus.FAILED, error=error)
            run_span.end(status="error", error=error)
            self._finish(
                job,
                JobStatus.FAILED,
                error=error,
                event=CampaignEvent(
                    kind=EventKind.CAMPAIGN_FAILED, message=error
                ),
            )
        else:
            stats = response.cache_stats or {}
            lookups = stats.get("hits", 0) + stats.get("misses", 0)
            self._record_run(job, JobStatus.DONE, response=response)
            if job.run_id is not None:
                run_span.set_attribute("run_id", job.run_id)
            run_span.end()
            self._finish(
                job,
                JobStatus.DONE,
                response=response,
                event=CampaignEvent(
                    kind=EventKind.CAMPAIGN_DONE,
                    evaluations=response.evaluations,
                    front_size=len(response.frontier),
                    cache_hit_rate=(
                        stats.get("hits", 0) / lookups if lookups else None
                    ),
                    wall_time_s=response.wall_time_s,
                ),
            )
        duration = None
        if job.started_at is not None and job.finished_at is not None:
            duration = round(job.finished_at - job.started_at, 6)
        self._log.info(
            "job_finished",
            job_id=job.job_id,
            trace_id=job.trace_id,
            status=job.status.value,
            duration_s=duration,
            error=job.error,
        )

    # Background workers ----------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            with self._work:
                job = None
                while not self._closed:
                    job = self._pop_runnable()
                    if job is not None:
                        break
                    # With a TTL configured, idle workers wake up each
                    # TTL period (min 100 ms, so ttl_s=0 cannot spin)
                    # and sweep aged-out terminal records — an idle
                    # queue must not retain finished jobs forever.
                    # Without one, block until work arrives.
                    tick = None if self.ttl_s is None else max(self.ttl_s, 0.1)
                    if not self._work.wait(tick) and self.ttl_s is not None:
                        self._purge_locked(self.ttl_s)
                if job is None:  # closed; abandon whatever is still queued
                    return
                self.stats.busy_workers += 1
            try:
                self._execute(job)
            finally:
                with self._lock:
                    self.stats.busy_workers -= 1

    def close(self, wait: bool = True) -> None:
        """Stop accepting submissions and shut the workers down.

        Workers finish the job they are executing (and any still-pending
        ones are left PENDING); ``wait=True`` joins them.  Idempotent;
        a ``workers=0`` queue closes instantly.
        """
        with self._work:
            self._closed = True
            self._work.notify_all()
        if wait:
            for thread in self._workers:
                thread.join()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
