"""A small job queue/scheduler with request deduplication.

The queue is the serving core the async front-ends of later PRs will
wrap: campaigns are *submitted* as :class:`~repro.service.api.
CampaignRequest`s, identical in-flight requests collapse onto one job
(content-addressed by the request fingerprint), and each job carries a
status/result record that survives until explicitly purged.

Execution is deliberately synchronous — :meth:`JobQueue.run_next` /
:meth:`JobQueue.run_all` drain the queue in FIFO order — so the
scheduling semantics stay testable without event loops; the shared
cache and executor do the heavy lifting underneath.
"""

from __future__ import annotations

import enum
import itertools
import threading
from dataclasses import dataclass, field

from repro.service.api import CampaignRequest, CampaignResponse
from repro.service.campaign import execute_request

__all__ = ["JobStatus", "JobRecord", "JobQueue"]


class JobStatus(str, enum.Enum):
    """Lifecycle of one submitted campaign."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class JobRecord:
    """Status/result record for one job.

    Attributes:
        job_id: queue-assigned identifier (``job-<n>``).
        request: the deduplicated campaign request.
        status: current lifecycle state.
        response: the result, once ``DONE``.
        error: failure message, once ``FAILED``.
        submissions: how many submits collapsed onto this job.
    """

    job_id: str
    request: CampaignRequest
    status: JobStatus = JobStatus.PENDING
    response: CampaignResponse | None = None
    error: str | None = None
    submissions: int = 1


@dataclass
class _QueueStats:
    submitted: int = 0
    deduplicated: int = 0
    completed: int = 0
    failed: int = 0


class JobQueue:
    """FIFO campaign queue with content-addressed deduplication.

    Args:
        runner: ``CampaignRequest -> CampaignResponse`` callable;
            defaults to :func:`repro.service.campaign.execute_request`
            bound to the given resources.
        library / cache / executor: shared resources handed to the
            default runner.

    Submitting a request whose fingerprint matches a job that is still
    pending, running, or successfully finished returns the existing job
    id instead of queueing duplicate work; failed jobs do *not* absorb
    resubmissions, so callers can retry.
    """

    def __init__(self, runner=None, library=None, cache=None, executor=None) -> None:
        if runner is None:
            runner = lambda request: execute_request(
                request, library=library, cache=cache, executor=executor
            )
        self._runner = runner
        self._lock = threading.RLock()
        self._jobs: dict[str, JobRecord] = {}
        self._by_fingerprint: dict[str, str] = {}
        self._pending: list[str] = []
        self._ids = itertools.count(1)
        self.stats = _QueueStats()

    # Submission -----------------------------------------------------------
    def submit(self, request: CampaignRequest) -> str:
        """Queue a campaign; returns the (possibly deduplicated) job id."""
        fingerprint = request.fingerprint()
        with self._lock:
            self.stats.submitted += 1
            existing_id = self._by_fingerprint.get(fingerprint)
            if existing_id is not None:
                existing = self._jobs[existing_id]
                if existing.status is not JobStatus.FAILED:
                    existing.submissions += 1
                    self.stats.deduplicated += 1
                    return existing_id
            job_id = f"job-{next(self._ids)}"
            self._jobs[job_id] = JobRecord(job_id=job_id, request=request)
            self._by_fingerprint[fingerprint] = job_id
            self._pending.append(job_id)
            return job_id

    # Inspection -----------------------------------------------------------
    def status(self, job_id: str) -> JobStatus:
        return self._job(job_id).status

    def result(self, job_id: str) -> CampaignResponse:
        """The finished response; raises if the job is not ``DONE``."""
        job = self._job(job_id)
        if job.status is JobStatus.FAILED:
            raise RuntimeError(f"{job_id} failed: {job.error}")
        if job.response is None:
            raise RuntimeError(f"{job_id} has not finished (status {job.status.value})")
        return job.response

    def record(self, job_id: str) -> JobRecord:
        return self._job(job_id)

    def jobs(self) -> list[JobRecord]:
        with self._lock:
            return list(self._jobs.values())

    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    def _job(self, job_id: str) -> JobRecord:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"unknown job id {job_id!r}") from None

    # Execution ------------------------------------------------------------
    def run_next(self) -> JobRecord | None:
        """Execute the oldest pending job; ``None`` when the queue is idle."""
        with self._lock:
            if not self._pending:
                return None
            job = self._jobs[self._pending.pop(0)]
            job.status = JobStatus.RUNNING
        try:
            response = self._runner(job.request)
        except Exception as exc:  # a failed campaign must not kill the queue
            with self._lock:
                job.status = JobStatus.FAILED
                job.error = f"{type(exc).__name__}: {exc}"
                self.stats.failed += 1
            return job
        with self._lock:
            job.status = JobStatus.DONE
            job.response = response
            self.stats.completed += 1
        return job

    def run_all(self) -> list[JobRecord]:
        """Drain the queue; returns the jobs executed (in order)."""
        executed = []
        while (job := self.run_next()) is not None:
            executed.append(job)
        return executed
