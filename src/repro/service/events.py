"""Typed, JSON-able progress events for streaming campaigns.

A running campaign narrates itself as a sequence of
:class:`CampaignEvent` records: one ``SPEC_STARTED``/``SPEC_DONE`` pair
per specification, one ``GENERATION_DONE`` per completed GA generation
in between, and exactly one terminal event (``CAMPAIGN_DONE``,
``CAMPAIGN_FAILED`` or ``CAMPAIGN_CANCELLED``) at the end.  Every event
round-trips through JSON, so the same stream serves in-process
observers, the job queue's per-job buffers, and the HTTP front-end.

:class:`EventBuffer` is the bounded, thread-safe fan-out primitive the
job queue attaches to each job: producers append, consumers read
incrementally by cursor (``since``) or block until news arrives
(``wait_since``).  When the buffer overflows, the *oldest* events are
dropped and counted — late subscribers lose history, never liveness,
and the terminal event is always retained once it lands.
"""

from __future__ import annotations

import enum
import json
import threading
from collections import deque
from dataclasses import asdict, dataclass, replace
from typing import Callable, Iterable

__all__ = [
    "EventKind",
    "CampaignEvent",
    "CampaignObserver",
    "EventBuffer",
    "CampaignCancelled",
]


class CampaignCancelled(RuntimeError):
    """Raised when a campaign is stopped cooperatively mid-run."""


class EventKind(str, enum.Enum):
    """What a :class:`CampaignEvent` announces."""

    SPEC_STARTED = "spec_started"
    GENERATION_DONE = "generation_done"
    SPEC_DONE = "spec_done"
    CAMPAIGN_DONE = "campaign_done"
    CAMPAIGN_FAILED = "campaign_failed"
    CAMPAIGN_CANCELLED = "campaign_cancelled"

    @property
    def terminal(self) -> bool:
        """True for the three end-of-stream kinds."""
        return self in (
            EventKind.CAMPAIGN_DONE,
            EventKind.CAMPAIGN_FAILED,
            EventKind.CAMPAIGN_CANCELLED,
        )


@dataclass(frozen=True)
class CampaignEvent:
    """One progress announcement from a running campaign.

    Only the fields that make sense for the event's kind are populated;
    the rest stay ``None`` so every event shares one JSON schema.

    Attributes:
        kind: what happened.
        seq: position in the job's event stream (stamped by
            :class:`EventBuffer`; ``-1`` until buffered).
        spec_index: 0-based index of the spec within the campaign.
        spec: human-readable spec label (``"<wstore>:<precision>"``).
        generation: completed generations for the spec (on
            ``GENERATION_DONE``/``SPEC_DONE``).
        generations: configured generation budget per spec.
        evaluations: unique genomes evaluated so far (per spec for
            spec-scoped events, campaign total on ``CAMPAIGN_DONE``).
        front_size: current rank-0 front size (merged frontier size on
            ``CAMPAIGN_DONE``).
        cache_hit_rate: shared evaluation-cache hit rate over the
            campaign's time window when the campaign runs cached (a
            cache shared across a server includes concurrent campaigns'
            lookups), else the GA's own memoisation rate.
        wall_time_s: end-to-end campaign wall clock (terminal events).
        message: failure/cancellation detail.
    """

    kind: EventKind
    seq: int = -1
    spec_index: int | None = None
    spec: str | None = None
    generation: int | None = None
    generations: int | None = None
    evaluations: int | None = None
    front_size: int | None = None
    cache_hit_rate: float | None = None
    wall_time_s: float | None = None
    message: str | None = None

    def __post_init__(self) -> None:
        # Tolerate the raw string from JSON payloads.
        if not isinstance(self.kind, EventKind):
            object.__setattr__(self, "kind", EventKind(self.kind))

    @property
    def terminal(self) -> bool:
        return self.kind.terminal

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["kind"] = self.kind.value
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignEvent":
        return cls(**payload)

    @classmethod
    def from_json(cls, text: str) -> "CampaignEvent":
        return cls.from_dict(json.loads(text))

    def describe(self) -> str:
        """One-line human rendering (used by ``repro watch``)."""
        prefix = f"[{self.spec}] " if self.spec else ""
        if self.kind is EventKind.SPEC_STARTED:
            return f"{prefix}spec started ({self.generations} generations)"
        if self.kind is EventKind.GENERATION_DONE:
            hit = (
                f", cache hit {self.cache_hit_rate:.0%}"
                if self.cache_hit_rate is not None
                else ""
            )
            return (
                f"{prefix}generation {self.generation}/{self.generations}: "
                f"{self.evaluations} evaluations, front {self.front_size}{hit}"
            )
        if self.kind is EventKind.SPEC_DONE:
            return (
                f"{prefix}spec done after {self.generation} generations: "
                f"{self.evaluations} evaluations, front {self.front_size}"
            )
        if self.kind is EventKind.CAMPAIGN_DONE:
            return (
                f"campaign done: {self.front_size} frontier designs, "
                f"{self.evaluations} evaluations, "
                f"{self.wall_time_s:.2f} s"
            )
        if self.kind is EventKind.CAMPAIGN_FAILED:
            return f"campaign failed: {self.message}"
        return f"campaign cancelled: {self.message or 'stop requested'}"


#: Campaign-level progress callback.  May be invoked from several worker
#: threads at once, so implementations must be thread-safe
#: (:meth:`EventBuffer.append` is).
CampaignObserver = Callable[[CampaignEvent], None]


class EventBuffer:
    """Bounded, cursor-addressed event log for one job.

    Producers call :meth:`append`; each event is stamped with a
    monotonically increasing ``seq``.  Consumers poll
    :meth:`since`/:meth:`wait_since` with the next sequence number they
    want — reads never consume, so any number of watchers can stream
    the same job independently.

    The buffer keeps at most ``maxlen`` events: overflow drops the
    oldest (counted in :attr:`dropped`).  A terminal event closes the
    buffer — further appends are discarded and all waiters wake up.
    """

    def __init__(self, maxlen: int = 256) -> None:
        if maxlen < 1:
            raise ValueError(f"maxlen must be >= 1, got {maxlen}")
        self.maxlen = maxlen
        self._events: deque[CampaignEvent] = deque()
        self._cond = threading.Condition()
        self._next_seq = 0
        self.dropped = 0
        self._closed = False

    @property
    def closed(self) -> bool:
        """True once a terminal event has been buffered."""
        with self._cond:
            return self._closed

    def __len__(self) -> int:
        with self._cond:
            return len(self._events)

    def append(self, event: CampaignEvent) -> int:
        """Stamp and buffer ``event``; returns its sequence number.

        Events arriving after the stream closed are dropped (returns
        ``-1``) — the terminal event is by definition the last word.
        """
        with self._cond:
            if self._closed:
                return -1
            event = replace(event, seq=self._next_seq)
            self._next_seq += 1
            self._events.append(event)
            if len(self._events) > self.maxlen:
                self._events.popleft()
                self.dropped += 1
            if event.terminal:
                self._closed = True
            self._cond.notify_all()
            return event.seq

    def since(self, cursor: int = 0) -> tuple[list[CampaignEvent], int, bool]:
        """Events with ``seq >= cursor``, the next cursor, and closed-ness.

        Feeding the returned cursor back in yields only news, so a
        polling consumer sees every retained event exactly once.  A
        cursor older than the retention window silently skips the
        dropped events (check :attr:`dropped`).
        """
        with self._cond:
            events = [e for e in self._events if e.seq >= cursor]
            return events, self._next_seq, self._closed

    def wait_since(
        self, cursor: int = 0, timeout: float | None = None
    ) -> tuple[list[CampaignEvent], int, bool]:
        """Like :meth:`since`, but blocks until there is news.

        Returns as soon as an event with ``seq >= cursor`` exists or the
        stream closes; on timeout it returns whatever is there (possibly
        nothing).  The three-tuple is read atomically, so ``closed=True``
        guarantees the returned events include everything up to and
        including the terminal one (within the retention window).
        """
        with self._cond:
            self._cond.wait_for(
                lambda: self._closed or self._next_seq > cursor, timeout
            )
            events = [e for e in self._events if e.seq >= cursor]
            return events, self._next_seq, self._closed

    def replay(self) -> Iterable[CampaignEvent]:
        """Snapshot of every retained event, oldest first."""
        with self._cond:
            return list(self._events)
