"""Asyncio and HTTP front-ends over the campaign job queue.

Two entry points, both backed by one worker-driven
:class:`~repro.service.jobs.JobQueue` (and therefore one shared
:class:`~repro.service.cache.EvaluationCache` as the cross-request
dedup layer):

* :class:`AsyncCampaignService` — the asyncio face.  ``await
  submit/status/result/cancel`` plus an ``async for`` stream of
  :class:`~repro.service.events.CampaignEvent`s per job.  Blocking
  queue waits are pushed onto worker threads with
  :func:`asyncio.to_thread`, so the event loop never stalls on a
  campaign.

* :class:`CampaignHTTPServer` — a stdlib-only (``http.server``)
  JSON-over-HTTP server so campaigns are drivable over a socket::

      POST /api/campaigns                 submit (body: CampaignRequest
                                          v2; v1 payloads are upgraded)
      GET  /api/campaigns                 list jobs
      GET  /api/campaigns/<id>            status record
      GET  /api/campaigns/<id>/result     CampaignResponse (409 until done)
      GET  /api/campaigns/<id>/events     ?cursor=N&wait=SECONDS long-poll
      POST /api/campaigns/<id>/cancel     cooperative cancellation
      GET  /api/problems                  registered problem catalogue
      GET  /api/runs                      recorded runs
                                          (?status=&problem=&limit=&offset=)
      GET  /api/runs/<id>                 one registry row
      GET  /api/runs/<id>/front           recorded merged frontier
      GET  /api/compare?a=..&b=..         front-quality indicators
      GET  /api/stats                     queue counters/gauges
      GET  /api/traces                    finished traces (?limit=N)
      GET  /api/traces/<id>               one trace with its spans
      GET  /api/metrics                   metrics registry as JSON
      GET  /metrics                       Prometheus text exposition
      GET  /healthz                       liveness
      GET  /api/healthz                   readiness (version, uptime,
                                          queue depth, worker counts)

  Started with a :class:`~repro.service.distributed.WorkCoordinator`
  (``repro serve --workers-remote``), the distributed-execution
  protocol mounts alongside::

      POST /api/workers                   worker handshake/registration
      GET  /api/workers                   workers table
      POST /api/workers/<id>/heartbeat    renew leases, learn lost units
      POST /api/units/lease               lease the next work unit
      POST /api/units/<id>/result         submit a unit outcome
                                          (idempotent on the unit id)

  and with a shared ``cache``, the batched remote-cache envelope::

      GET  /api/cache                     cache info
      POST /api/cache/get_many            {"keys": [...]}
      POST /api/cache/put_many            {"entries": {key: [objs]}}

  The ``/api/runs`` family answers 404 unless the server was given a
  :class:`~repro.store.runstore.RunStore` (the same instance the queue
  records into).  Every non-2xx answer carries a structured JSON error
  envelope ``{"error": {"code": ..., "message": ...}}``.

  With an :class:`~repro.obs.admission.AdmissionController` attached,
  submissions pass through budget/rate/queue-bound guards first:
  oversized requests answer ``413`` and over-rate clients (keyed by the
  ``X-Client-Id`` header, else the remote address) or a full queue
  answer ``429`` with a ``Retry-After`` hint.  Every request is counted
  in ``repro_http_requests_total{route,method,status}`` and timed in
  ``repro_http_request_seconds{route}``.

  Requests (other than health/scrape/trace-inspection paths) run under
  a ``http.request`` span: an incoming W3C ``traceparent`` header joins
  the caller's trace, the response echoes the request span's
  ``traceparent``, and finished traces are browsable at
  ``/api/traces``.  :class:`CampaignClient` injects ``traceparent``
  from its ambient span automatically.

:class:`CampaignClient` is the matching ``urllib``-based client used by
``repro submit`` / ``repro watch``.
"""

from __future__ import annotations

import asyncio
import json
import random
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import AsyncIterator, Iterator
from urllib import request as _urllib_request
from urllib.error import HTTPError, URLError
from urllib.parse import parse_qs, quote as _quote, urlparse

from repro.obs.admission import AdmissionController, AdmissionError
from repro.obs.log import JsonLogger, get_logger
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import (
    Tracer,
    current_span,
    format_traceparent,
    get_tracer,
    parse_traceparent,
    reset_current_span,
    set_current_span,
)
from repro.service.api import CampaignRequest, CampaignResponse, FrontierPoint
from repro.service.events import CampaignEvent
from repro.service.jobs import JobQueue, JobStatus

__all__ = [
    "AsyncCampaignService",
    "CampaignHTTPServer",
    "CampaignClient",
    "serve",
]

#: Upper bound on one long-poll, so handler threads always cycle.
MAX_LONG_POLL_S = 30.0


class AsyncCampaignService:
    """Asyncio wrapper around a background-worker :class:`JobQueue`.

    Args:
        queue: an existing queue to front (left open on close);
            when omitted the service owns a fresh one built from the
            remaining arguments and closes it with the service.
        workers: background worker threads for an owned queue.
        library / cache / executor: shared resources for the owned
            queue's default runner.
        event_buffer_size / ttl_s: forwarded to the owned queue.
        store: optional :class:`~repro.store.runstore.RunStore`; an
            owned queue records every campaign into it, and the
            ``runs``/``run``/``run_front``/``compare`` coroutines
            query it (off-loop, like everything else).  Defaults to
            the fronted queue's store when one is attached.

    Use as an async context manager::

        async with AsyncCampaignService(workers=2, cache=cache) as svc:
            job_id = await svc.submit(request)
            async for event in svc.events(job_id):
                print(event.describe())
            response = await svc.result(job_id)
    """

    def __init__(
        self,
        queue: JobQueue | None = None,
        *,
        workers: int = 2,
        library=None,
        cache=None,
        executor=None,
        event_buffer_size: int = 256,
        ttl_s: float | None = None,
        store=None,
    ) -> None:
        if queue is None:
            if workers < 1:
                raise ValueError("an owned queue needs workers >= 1")
            queue = JobQueue(
                library=library,
                cache=cache,
                executor=executor,
                workers=workers,
                event_buffer_size=event_buffer_size,
                ttl_s=ttl_s,
                store=store,
            )
            self._own_queue = True
        else:
            self._own_queue = False
        self.queue = queue
        self.store = store if store is not None else queue.store

    async def submit(self, request: CampaignRequest) -> str:
        """Queue a campaign; returns the (possibly deduplicated) job id."""
        return await asyncio.to_thread(self.queue.submit, request)

    async def status(self, job_id: str) -> JobStatus:
        return await asyncio.to_thread(self.queue.status, job_id)

    async def result(
        self, job_id: str, timeout: float | None = None
    ) -> CampaignResponse:
        """Wait for the job to finish and return its response.

        Raises :class:`TimeoutError` when ``timeout`` elapses first and
        :class:`RuntimeError` when the job failed or was cancelled.
        """
        await asyncio.to_thread(self.queue.wait, job_id, timeout)
        return await asyncio.to_thread(self.queue.result, job_id)

    async def cancel(self, job_id: str) -> JobStatus:
        """Request cooperative cancellation; returns the current status."""
        return await asyncio.to_thread(self.queue.cancel, job_id)

    async def events(
        self, job_id: str, cursor: int = 0, poll_s: float = 1.0
    ) -> AsyncIterator[CampaignEvent]:
        """Stream a job's progress events until its terminal event.

        Each iteration long-polls the job's buffer on a worker thread,
        yields whatever arrived, and stops once the stream closes.
        ``cursor`` resumes an interrupted stream.
        """
        while True:
            events, cursor, done = await asyncio.to_thread(
                self.queue.wait_events, job_id, cursor, poll_s
            )
            for event in events:
                yield event
            if done:
                return

    # Problem discovery ----------------------------------------------------
    async def problems(self) -> list[dict]:
        """Discovery payloads of every registered problem."""
        from repro.problems import problem_catalog

        # First call imports/registers the built-ins: keep it off-loop.
        return await asyncio.to_thread(problem_catalog)

    # Run registry ---------------------------------------------------------
    def _require_store(self):
        if self.store is None:
            raise RuntimeError("no run store attached to this service")
        return self.store

    async def runs(
        self,
        limit: int | None = None,
        status: str | None = None,
        offset: int = 0,
        problem: str | None = None,
    ):
        """Recorded runs, newest first (requires an attached store)."""
        store = self._require_store()
        return await asyncio.to_thread(
            store.list_runs, limit, status, offset, problem
        )

    async def run(self, run_id: str):
        """One registry row by id."""
        store = self._require_store()
        return await asyncio.to_thread(store.get_run, run_id)

    async def run_front(self, run_id: str):
        """A recorded run's merged frontier."""
        store = self._require_store()
        return await asyncio.to_thread(store.front, run_id)

    async def compare(self, ref_a: str, ref_b: str):
        """Front-quality indicators between two recorded runs."""
        from repro.store.analytics import compare_runs

        store = self._require_store()
        return await asyncio.to_thread(compare_runs, store, ref_a, ref_b)

    async def close(self) -> None:
        """Shut down an owned queue (a fronted queue is left running)."""
        if self._own_queue:
            await asyncio.to_thread(self.queue.close)

    async def __aenter__(self) -> "AsyncCampaignService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


# HTTP server ---------------------------------------------------------------


#: Default error codes per HTTP status (overridable per raise site).
_DEFAULT_ERROR_CODES = {
    400: "bad_request",
    404: "not_found",
    405: "method_not_allowed",
    409: "conflict",
    413: "too_large",
    429: "too_many_requests",
    500: "internal",
    503: "unavailable",
}


class _ApiError(Exception):
    """Maps a handler failure onto an HTTP status + error envelope.

    Every failure answer has the shape
    ``{"error": {"code": <machine-readable>, "message": <human>}}``;
    ``headers`` ride along on the response (e.g. ``Retry-After``).
    """

    def __init__(
        self,
        status: int,
        message: str,
        code: str | None = None,
        headers: dict[str, str] | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code or _DEFAULT_ERROR_CODES.get(status, "error")
        self.headers = headers or {}

    def envelope(self) -> dict:
        return {"error": {"code": self.code, "message": str(self)}}


class _RawResponse:
    """A non-JSON answer (the Prometheus text exposition)."""

    def __init__(self, body: bytes, content_type: str) -> None:
        self.body = body
        self.content_type = content_type


def _job_payload(record) -> dict:
    return {
        "job_id": record.job_id,
        "problem": record.request.problem,
        "status": record.status.value,
        "submissions": record.submissions,
        "error": record.error,
        "run_id": record.run_id,
    }


class _CampaignHandler(BaseHTTPRequestHandler):
    """Routes the JSON API onto the server's job queue."""

    server: "CampaignHTTPServer"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    # Dispatch -------------------------------------------------------------
    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    #: Paths that never start a request span: health probes, scrape /
    #: trace-inspection endpoints, and the distributed-protocol polling
    #: traffic (lease/heartbeat/cache batches fire continuously) would
    #: otherwise flood the trace ring.  Unit evaluations are traced
    #: through the coordinator's ``unit.evaluate`` spans instead.
    _UNTRACED_PREFIXES = (
        "/healthz",
        "/metrics",
        "/api/healthz",
        "/api/traces",
        "/api/workers",
        "/api/units",
        "/api/cache",
    )

    def _dispatch(self, method: str) -> None:
        started = time.perf_counter()
        # The matched route *template* (set at the match sites in
        # _route) keeps metric label cardinality bounded — raw paths
        # with job/run ids would mint a new series per request.
        self._route_template = "<unmatched>"
        headers: dict[str, str] = {}
        span, token = None, None
        plain_path = self.path.split("?", 1)[0]
        if not plain_path.startswith(self._UNTRACED_PREFIXES):
            # Join the caller's trace when it sent a W3C ``traceparent``
            # header; otherwise this request roots a fresh trace.
            remote = parse_traceparent(self.headers.get("traceparent"))
            span = self.server.tracer.start_root(
                "http.request",
                attributes={"method": method},
                parent_context=remote,
                category="http",
            )
            token = set_current_span(span)
        try:
            try:
                payload, status = self._route(method)
            except _ApiError as exc:
                payload, status = exc.envelope(), exc.status
                headers = exc.headers
            except Exception as exc:  # defensive: a handler bug must answer
                error = _ApiError(500, f"{type(exc).__name__}: {exc}")
                payload, status = error.envelope(), error.status
            if isinstance(payload, _RawResponse):
                body, content_type = payload.body, payload.content_type
            else:
                body = json.dumps(payload).encode("utf-8")
                content_type = "application/json"
            if span is not None and span.context is not None:
                headers.setdefault(
                    "traceparent", format_traceparent(span.context)
                )
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for name, value in headers.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
            elapsed = time.perf_counter() - started
            self.server.observe_request(
                self._route_template, method, status, elapsed
            )
            if span is not None:
                span.set_attributes(
                    route=self._route_template, status=status
                )
                span.end(status="error" if status >= 500 else "ok")
        finally:
            if token is not None:
                reset_current_span(token)
            if span is not None:
                span.end()  # idempotent; closes the span on write errors

    def _route(self, method: str) -> tuple[dict, int]:
        queue = self.server.queue
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = parse_qs(url.query)

        if method == "GET" and parts == ["healthz"]:
            self._route_template = "/healthz"
            return {"status": "ok"}, 200
        if method == "GET" and parts == ["api", "healthz"]:
            self._route_template = "/api/healthz"
            return self._healthz(), 200
        if parts[:2] == ["api", "workers"]:
            return self._workers_route(method, parts[2:], url)
        if parts[:2] == ["api", "units"]:
            return self._units_route(method, parts[2:], url)
        if parts[:2] == ["api", "cache"]:
            return self._cache_route(method, parts[2:], url)
        if method == "GET" and parts == ["metrics"]:
            self._route_template = "/metrics"
            text = self.server.registry.render_prometheus()
            return _RawResponse(
                text.encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            ), 200
        if method == "GET" and parts == ["api", "metrics"]:
            self._route_template = "/api/metrics"
            return self.server.registry.to_dict(), 200
        if method == "GET" and parts == ["api", "stats"]:
            self._route_template = "/api/stats"
            queue.sweep_expired()  # stats reads tick the TTL sweep
            return queue.stats.as_dict(), 200
        if method == "GET" and parts == ["api", "problems"]:
            self._route_template = "/api/problems"
            from repro.problems import problem_catalog

            return {"problems": problem_catalog()}, 200
        if method == "GET" and parts[:2] == ["api", "traces"]:
            tail = parts[2:]
            if not tail:
                self._route_template = "/api/traces"
                try:
                    limit_text = query.get("limit", [None])[0]
                    limit = int(limit_text) if limit_text is not None else 50
                except ValueError as exc:
                    raise _ApiError(400, f"bad query parameter: {exc}") from None
                return {"traces": self._trace_list(limit)}, 200
            if len(tail) == 1:
                self._route_template = "/api/traces/<id>"
                return self._trace(tail[0]), 200
            raise _ApiError(404, f"unknown traces path {url.path!r}")
        if method == "GET" and parts[:2] == ["api", "runs"]:
            tail = parts[2:]
            self._route_template = (
                "/api/runs" if not tail
                else "/api/runs/<id>/front" if tail[1:] == ["front"]
                else "/api/runs/<id>"
            )
            return self._runs(tail, query)
        if method == "GET" and parts == ["api", "compare"]:
            self._route_template = "/api/compare"
            return self._compare(query), 200
        if parts[:2] != ["api", "campaigns"]:
            raise _ApiError(404, f"unknown path {url.path!r}")

        if len(parts) == 2:
            self._route_template = "/api/campaigns"
            if method == "POST":
                return self._submit(), 200
            return {"jobs": [_job_payload(j) for j in queue.jobs()]}, 200

        job_id = parts[2]
        tail = parts[3:]
        try:
            if not tail:
                self._route_template = "/api/campaigns/<id>"
                if method != "GET":
                    raise _ApiError(405, "status is GET-only")
                return _job_payload(queue.record(job_id)), 200
            if tail == ["result"] and method == "GET":
                self._route_template = "/api/campaigns/<id>/result"
                return self._result(job_id)
            if tail == ["events"] and method == "GET":
                self._route_template = "/api/campaigns/<id>/events"
                return self._events(job_id, query), 200
            if tail == ["cancel"] and method == "POST":
                self._route_template = "/api/campaigns/<id>/cancel"
                status = queue.cancel(job_id)
                return {"job_id": job_id, "status": status.value}, 200
        except KeyError:
            raise _ApiError(404, f"unknown job id {job_id!r}") from None
        raise _ApiError(404, f"unknown path {url.path!r}")

    # Endpoints ------------------------------------------------------------
    def _submit(self) -> dict:
        from repro.problems import SpecValidationError

        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b""
        try:
            request = CampaignRequest.from_json(raw.decode("utf-8"))
        except json.JSONDecodeError as exc:
            raise _ApiError(
                400, f"request body is not valid JSON: {exc}", "invalid_json"
            ) from None
        except SpecValidationError as exc:
            raise _ApiError(400, str(exc), "invalid_spec") from None
        except Exception as exc:
            raise _ApiError(
                400, f"bad campaign request: {exc}", "invalid_request"
            ) from None
        admission = self.server.admission
        if admission is not None:
            client_id = (
                self.headers.get("X-Client-Id") or self.client_address[0]
            )
            try:
                admission.admit(
                    request, client_id, self.server.queue.pending_count()
                )
            except AdmissionError as exc:
                raise _ApiError(
                    exc.status, str(exc), exc.code, headers=exc.headers
                ) from None
        try:
            job_id = self.server.queue.submit(request)
        except RuntimeError as exc:  # queue closed
            raise _ApiError(503, str(exc)) from None
        return _job_payload(self.server.queue.record(job_id))

    def _result(self, job_id: str) -> tuple[dict, int]:
        queue = self.server.queue
        status = queue.status(job_id)
        if status in (JobStatus.PENDING, JobStatus.RUNNING):
            raise _ApiError(
                409, f"{job_id} is still {status.value}", "not_ready"
            )
        if status is not JobStatus.DONE:
            record = queue.record(job_id)
            raise _ApiError(
                409,
                record.error or f"{job_id} was {status.value}",
                f"campaign_{status.value}",
            )
        return queue.result(job_id).to_dict(), 200

    def _store(self):
        store = self.server.store
        if store is None:
            raise _ApiError(404, "no run store configured", "no_store")
        return store

    def _runs(self, tail: list[str], query: dict) -> tuple[dict, int]:
        store = self._store()
        if not tail:
            status = query.get("status", [None])[0]
            problem = query.get("problem", [None])[0]
            try:
                limit_text = query.get("limit", [None])[0]
                limit = int(limit_text) if limit_text is not None else None
                offset = int(query.get("offset", ["0"])[0])
            except ValueError as exc:
                raise _ApiError(400, f"bad query parameter: {exc}") from None
            try:
                records = store.list_runs(
                    limit=limit, status=status, offset=offset, problem=problem
                )
            except ValueError as exc:  # e.g. negative offset
                raise _ApiError(400, str(exc)) from None
            return {
                "runs": [r.to_dict() for r in records],
                "limit": limit,
                "offset": offset,
            }, 200
        run_id = tail[0]
        try:
            if len(tail) == 1:
                return store.get_run(run_id).to_dict(), 200
            if tail[1:] == ["front"]:
                front = store.front(run_id)
                return {
                    "run_id": run_id,
                    "front": [p.to_dict() for p in front],
                }, 200
        except KeyError:
            raise _ApiError(404, f"unknown run id {run_id!r}") from None
        raise _ApiError(404, f"unknown runs path {'/'.join(tail)!r}")

    def _compare(self, query: dict) -> dict:
        from repro.store.analytics import compare_runs

        store = self._store()
        ref_a = query.get("a", [None])[0]
        ref_b = query.get("b", [None])[0]
        if not ref_a or not ref_b:
            raise _ApiError(400, "compare needs ?a=RUN&b=RUN")
        try:
            comparison = compare_runs(store, ref_a, ref_b)
        except KeyError as exc:
            raise _ApiError(404, str(exc)) from None
        except ValueError as exc:
            raise _ApiError(409, str(exc), "not_comparable") from None
        return comparison.to_dict()

    def _trace_list(self, limit: int) -> list[dict]:
        """Finished traces: the in-memory ring first, store rows after.

        The ring holds what this process finished recently; the store
        (when attached) remembers persisted traces across restarts.
        Ring entries win on trace-id collisions.
        """
        listed: list[dict] = []
        seen: set[str] = set()
        for record in self.server.tracer.finished():
            listed.append(record.to_dict(include_spans=False))
            seen.add(record.trace_id)
        store = self.server.store
        if store is not None and hasattr(store, "trace_list"):
            try:
                stored = store.trace_list(limit=limit + len(seen))
            except Exception:  # noqa: BLE001 — listing must not 500 on store issues
                stored = []
            for row in stored:
                if row.get("trace_id") not in seen:
                    listed.append(row)
        listed.sort(key=lambda r: r.get("start_time") or 0.0, reverse=True)
        return listed[: max(0, limit)]

    def _trace(self, trace_id: str) -> dict:
        record = self.server.tracer.get(trace_id)
        if record is not None:
            return record.to_dict(include_spans=True)
        store = self.server.store
        if store is not None and hasattr(store, "trace_spans"):
            spans = store.trace_spans(trace_id)
            if spans:
                start = min(s["start_time"] for s in spans)
                end = max(s["start_time"] + s["duration_s"] for s in spans)
                roots = [s for s in spans if not s.get("parent_id")]
                return {
                    "trace_id": trace_id,
                    "name": roots[0]["name"] if roots else spans[0]["name"],
                    "start_time": start,
                    "duration_s": end - start,
                    "status": (
                        "error"
                        if any(s.get("status") == "error" for s in spans)
                        else "ok"
                    ),
                    "span_count": len(spans),
                    "spans": spans,
                }
        raise _ApiError(404, f"unknown trace id {trace_id!r}")

    def _events(self, job_id: str, query: dict) -> dict:
        try:
            cursor = int(query.get("cursor", ["0"])[0])
            wait_s = float(query.get("wait", ["0"])[0])
        except ValueError as exc:
            raise _ApiError(400, f"bad query parameter: {exc}") from None
        wait_s = max(0.0, min(wait_s, MAX_LONG_POLL_S))
        if wait_s:
            events, cursor, done = self.server.queue.wait_events(
                job_id, cursor, wait_s
            )
        else:
            events, cursor, done = self.server.queue.events_since(job_id, cursor)
        return {
            "events": [event.to_dict() for event in events],
            "cursor": cursor,
            "done": done,
        }

    # Distributed execution ------------------------------------------------
    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw.decode("utf-8"))
        except json.JSONDecodeError as exc:
            raise _ApiError(
                400, f"request body is not valid JSON: {exc}", "invalid_json"
            ) from None
        if not isinstance(payload, dict):
            raise _ApiError(400, "request body must be a JSON object")
        return payload

    def _healthz(self) -> dict:
        """Readiness: version, uptime, queue depth, worker counts.

        The worker handshake and smoke scripts poll this instead of
        sleeping; unlike ``/healthz`` it only answers once the queue is
        actually constructed and serving.
        """
        import repro

        payload = {
            "status": "ok",
            "version": repro.__version__,
            "uptime_s": round(time.monotonic() - self.server.started_at, 3),
            "queue_depth": self.server.queue.pending_count(),
            "workers": self.server.queue.stats.workers,
        }
        coordinator = self.server.coordinator
        if coordinator is not None:
            payload["distributed"] = coordinator.stats()
        return payload

    def _coordinator(self):
        coordinator = self.server.coordinator
        if coordinator is None:
            raise _ApiError(
                404,
                "this server has no work coordinator "
                "(start it with --workers-remote)",
                "no_coordinator",
            )
        return coordinator

    def _workers_route(self, method: str, tail: list[str], url) -> tuple[dict, int]:
        coordinator = self._coordinator()
        if not tail:
            if method == "POST":
                self._route_template = "/api/workers"
                payload = self._read_json()
                return coordinator.register_worker(
                    worker_id=payload.get("worker_id"),
                    meta=payload.get("meta"),
                ), 200
            self._route_template = "/api/workers"
            return {"workers": coordinator.workers_info()}, 200
        if len(tail) == 2 and tail[1] == "heartbeat" and method == "POST":
            self._route_template = "/api/workers/<id>/heartbeat"
            payload = self._read_json()
            return coordinator.heartbeat(
                tail[0], list(payload.get("units") or ())
            ), 200
        raise _ApiError(404, f"unknown workers path {url.path!r}")

    def _units_route(self, method: str, tail: list[str], url) -> tuple[dict, int]:
        coordinator = self._coordinator()
        if tail == ["lease"] and method == "POST":
            self._route_template = "/api/units/lease"
            payload = self._read_json()
            worker_id = payload.get("worker_id")
            if not worker_id:
                raise _ApiError(400, "lease needs a worker_id")
            unit = coordinator.lease(worker_id)
            return {"unit": unit, "retry_after_s": None if unit else 0.5}, 200
        if len(tail) == 2 and tail[1] == "result" and method == "POST":
            self._route_template = "/api/units/<id>/result"
            payload = self._read_json()
            worker_id = payload.get("worker_id")
            if not worker_id:
                raise _ApiError(400, "result submission needs a worker_id")
            return coordinator.submit_result(worker_id, tail[0], payload), 200
        raise _ApiError(404, f"unknown units path {url.path!r}")

    def _cache_route(self, method: str, tail: list[str], url) -> tuple[dict, int]:
        cache = self.server.cache
        if cache is None:
            raise _ApiError(
                404, "this server has no shared cache", "no_cache"
            )
        if not tail and method == "GET":
            self._route_template = "/api/cache"
            return cache.info(), 200
        if tail == ["get_many"] and method == "POST":
            self._route_template = "/api/cache/get_many"
            keys = self._read_json().get("keys")
            if not isinstance(keys, list):
                raise _ApiError(400, "get_many needs a JSON list of keys")
            hits = cache.get_many([str(key) for key in keys])
            found = {
                key: list(value)
                for key, value in zip(keys, hits)
                if value is not None
            }
            return {"found": found, "entries": len(cache)}, 200
        if tail == ["put_many"] and method == "POST":
            self._route_template = "/api/cache/put_many"
            entries = self._read_json().get("entries")
            if not isinstance(entries, dict):
                raise _ApiError(
                    400, "put_many needs a JSON object of key -> objectives"
                )
            try:
                cache.put_many(
                    {
                        str(key): tuple(float(v) for v in values)
                        for key, values in entries.items()
                    }
                )
            except (TypeError, ValueError) as exc:
                raise _ApiError(
                    400, f"bad objectives payload: {exc}"
                ) from None
            return {"stored": len(entries), "entries": len(cache)}, 200
        raise _ApiError(404, f"unknown cache path {url.path!r}")


class CampaignHTTPServer(ThreadingHTTPServer):
    """Stdlib HTTP/JSON front-end bound to one job queue.

    Args:
        address: ``(host, port)``; port ``0`` binds an ephemeral port
            (read it back from :attr:`port`).
        queue: the worker-backed queue to serve; the server never owns
            it — close the queue separately.
        verbose: log requests to stderr (quiet by default).
        store: optional :class:`~repro.store.runstore.RunStore` behind
            the ``/api/runs`` and ``/api/compare`` endpoints (defaults
            to the queue's store, so recorded runs are immediately
            queryable).
        registry: metrics registry served at ``/metrics`` and
            ``/api/metrics`` (defaults to the process global — the one
            the queue/cache/executors report into).
        admission: optional
            :class:`~repro.obs.admission.AdmissionController` applied
            to every submission.
        logger: structured request logger (defaults to the shared
            ``repro.http`` JSON-lines logger).
        tracer: span tracer for request tracing and the ``/api/traces``
            endpoints (defaults to the process-global tracer).
        coordinator: optional
            :class:`~repro.service.distributed.WorkCoordinator`; mounts
            the ``/api/workers`` + ``/api/units`` protocol so external
            ``repro worker`` processes can lease and evaluate units.
        cache: optional :class:`~repro.service.cache.EvaluationCache`
            served over ``/api/cache`` as the workers' shared dedup
            layer (the ``remote`` cache backend's other half).
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        queue: JobQueue,
        verbose: bool = False,
        store=None,
        registry: MetricsRegistry | None = None,
        admission: AdmissionController | None = None,
        logger: JsonLogger | None = None,
        tracer: Tracer | None = None,
        coordinator=None,
        cache=None,
    ) -> None:
        super().__init__(address, _CampaignHandler)
        self.queue = queue
        self.verbose = verbose
        self.store = store if store is not None else queue.store
        self.registry = registry if registry is not None else get_registry()
        self.admission = admission
        self.logger = logger if logger is not None else get_logger("repro.http")
        self.tracer = tracer if tracer is not None else get_tracer()
        self.coordinator = coordinator
        self.cache = cache
        self.started_at = time.monotonic()
        self._m_requests = self.registry.counter(
            "repro_http_requests_total",
            "HTTP requests served, by route template",
            ("route", "method", "status"),
        )
        self._m_request_seconds = self.registry.histogram(
            "repro_http_request_seconds",
            "End-to-end HTTP request latency",
            ("route",),
        )

    def observe_request(
        self, route: str, method: str, status: int, elapsed_s: float
    ) -> None:
        """Count/time one handled request (called from handler threads)."""
        self._m_requests.labels(route, method, str(status)).inc()
        self._m_request_seconds.labels(route).observe(elapsed_s)
        self.logger.info(
            "request",
            route=route,
            method=method,
            status=status,
            duration_s=round(elapsed_s, 6),
        )

    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_in_background(self) -> threading.Thread:
        """Run ``serve_forever`` on a daemon thread (returns the thread)."""
        thread = threading.Thread(
            target=self.serve_forever, name="campaign-http", daemon=True
        )
        thread.start()
        return thread


def serve(
    host: str = "127.0.0.1",
    port: int = 8000,
    queue: JobQueue | None = None,
    *,
    workers: int = 2,
    library=None,
    cache=None,
    executor=None,
    event_buffer_size: int = 256,
    ttl_s: float | None = None,
    store=None,
    verbose: bool = False,
    registry: MetricsRegistry | None = None,
    admission: AdmissionController | None = None,
    logger: JsonLogger | None = None,
    tracer: Tracer | None = None,
    coordinator=None,
) -> CampaignHTTPServer:
    """Build a ready-to-run HTTP server (queue included unless given).

    With ``store`` set, an owned queue records every campaign into it
    and the ``/api/runs`` endpoints serve the registry.  ``registry``,
    ``admission`` and ``logger`` configure the operations layer
    (``/metrics``, admission control, request logging).  The caller
    drives ``server.serve_forever()`` (or ``serve_in_background()``)
    and is responsible for closing the queue on shutdown —
    :func:`repro.cli.main`'s ``repro serve`` shows the full lifecycle.

    With a ``coordinator``
    (:class:`~repro.service.distributed.WorkCoordinator`), an owned
    queue runs campaigns through
    :class:`~repro.service.distributed.DistributedRunner` — external
    ``repro worker`` processes lease the units over ``/api/workers`` /
    ``/api/units`` — and, with a store attached, per-unit worker rows
    are flushed into ``RunStore.record_work_units`` once each run is
    recorded.  The ``cache`` (when given) is additionally served over
    ``/api/cache`` so workers can share it as their dedup layer.
    """
    if queue is None:
        runner = None
        on_recorded = None
        if coordinator is not None:
            from repro.service.distributed import DistributedRunner

            runner = DistributedRunner(coordinator)
            if store is not None and hasattr(store, "record_work_units"):
                def on_recorded(job, _store=store, _coord=coordinator):
                    if job.run_id is None:
                        return
                    rows = _coord.take_unit_rows(job.request.fingerprint())
                    if rows:
                        _store.record_work_units(job.run_id, rows)
        queue = JobQueue(
            runner=runner,
            library=library,
            cache=cache,
            executor=executor,
            workers=max(1, workers),
            event_buffer_size=event_buffer_size,
            ttl_s=ttl_s,
            store=store,
            registry=registry,
            logger=logger,
            on_recorded=on_recorded,
        )
    return CampaignHTTPServer(
        (host, port),
        queue,
        verbose=verbose,
        store=store,
        registry=registry,
        admission=admission,
        logger=logger,
        tracer=tracer,
        coordinator=coordinator,
        cache=cache,
    )


# HTTP client ---------------------------------------------------------------


class CampaignClient:
    """Minimal ``urllib`` client for :class:`CampaignHTTPServer`.

    Every method raises :class:`RuntimeError` on non-2xx answers,
    carrying the server's structured error envelope (code + message).

    With ``retries > 0``, *transient* transport failures (connection
    refused/reset, timeouts — anything surfacing as ``URLError`` or
    ``TimeoutError`` rather than an HTTP status) are retried with
    exponential backoff and jitter before giving up; HTTP error
    answers are never retried (the server spoke — repeating a POST
    could duplicate work).  The final failure carries the attempt
    count and the last underlying error.

    Args:
        base_url: server root, e.g. ``http://127.0.0.1:8000``.
        timeout: per-request socket timeout in seconds.
        retries: additional attempts after the first failure.
        backoff_s: initial sleep before the first retry; doubles per
            attempt up to ``backoff_cap_s``, with up to 25% random
            jitter so a fleet of workers does not retry in lockstep.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        retries: int = 0,
        backoff_s: float = 0.1,
        backoff_cap_s: float = 2.0,
        _sleep=time.sleep,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self._sleep = _sleep

    @staticmethod
    def _error_detail(raw: bytes) -> str:
        """Flatten an error envelope (or legacy string) for the message."""
        try:
            error = json.loads(raw.decode("utf-8")).get("error", "")
        except Exception:
            return ""
        if isinstance(error, dict):
            code = error.get("code", "error")
            message = error.get("message", "")
            return f"{code}: {message}" if message else str(code)
        return str(error)

    def _call(self, method: str, path: str, payload: dict | None = None) -> dict:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        # Propagate the caller's ambient span so the server's request
        # trace joins ours instead of rooting a disconnected one.
        span = current_span()
        if span is not None:
            traceparent = format_traceparent(span.context)
            if traceparent:
                headers["traceparent"] = traceparent
        req = _urllib_request.Request(
            f"{self.base_url}{path}",
            data=body,
            method=method,
            headers=headers,
        )
        attempts = self.retries + 1
        last_error: Exception | None = None
        for attempt in range(attempts):
            if attempt:
                delay = min(
                    self.backoff_s * (2 ** (attempt - 1)), self.backoff_cap_s
                )
                self._sleep(delay * (1.0 + random.random() * 0.25))
            try:
                with _urllib_request.urlopen(
                    req, timeout=self.timeout
                ) as answer:
                    return json.loads(answer.read().decode("utf-8"))
            except HTTPError as exc:
                # The server answered: a real status, never retried.
                detail = self._error_detail(exc.read())
                raise RuntimeError(
                    f"{method} {path} failed: HTTP {exc.code}"
                    + (f" ({detail})" if detail else "")
                ) from None
            except (URLError, TimeoutError, ConnectionError) as exc:
                last_error = exc
        raise RuntimeError(
            f"{method} {path} failed after {attempts} attempt"
            f"{'s' if attempts != 1 else ''}: {last_error}"
        ) from last_error

    def submit(self, request: CampaignRequest) -> str:
        """Submit a campaign; returns the job id."""
        return self._call("POST", "/api/campaigns", request.to_dict())["job_id"]

    def status(self, job_id: str) -> dict:
        return self._call("GET", f"/api/campaigns/{job_id}")

    def result(self, job_id: str) -> CampaignResponse:
        payload = self._call("GET", f"/api/campaigns/{job_id}/result")
        return CampaignResponse.from_dict(payload)

    def cancel(self, job_id: str) -> dict:
        return self._call("POST", f"/api/campaigns/{job_id}/cancel")

    def events(
        self, job_id: str, cursor: int = 0, wait_s: float = 0.0
    ) -> tuple[list[CampaignEvent], int, bool]:
        payload = self._call(
            "GET",
            f"/api/campaigns/{job_id}/events?cursor={cursor}&wait={wait_s}",
        )
        events = [CampaignEvent.from_dict(e) for e in payload["events"]]
        return events, payload["cursor"], payload["done"]

    def watch(
        self, job_id: str, cursor: int = 0, poll_s: float = 2.0
    ) -> Iterator[CampaignEvent]:
        """Long-poll the event stream until the terminal event."""
        while True:
            events, cursor, done = self.events(job_id, cursor, wait_s=poll_s)
            yield from events
            if done:
                return

    def problems(self) -> list[dict]:
        """The server's registered problem catalogue."""
        return self._call("GET", "/api/problems")["problems"]

    def runs(
        self,
        limit: int | None = None,
        status: str | None = None,
        offset: int = 0,
        problem: str | None = None,
    ) -> list[dict]:
        """Recorded runs (registry rows as dicts), newest first."""
        params = []
        if limit is not None:
            params.append(f"limit={limit}")
        if status is not None:
            params.append(f"status={status}")
        if offset:
            params.append(f"offset={offset}")
        if problem is not None:
            params.append(f"problem={_quote(problem)}")
        tail = f"?{'&'.join(params)}" if params else ""
        return self._call("GET", f"/api/runs{tail}")["runs"]

    def run(self, run_id: str) -> dict:
        """One registry row."""
        return self._call("GET", f"/api/runs/{run_id}")

    def run_front(self, run_id: str) -> list[FrontierPoint]:
        """A recorded run's merged frontier."""
        payload = self._call("GET", f"/api/runs/{run_id}/front")
        return [FrontierPoint.from_dict(p) for p in payload["front"]]

    def compare(self, ref_a: str, ref_b: str) -> dict:
        """Front-quality indicators between two recorded runs."""
        return self._call(
            "GET", f"/api/compare?a={_quote(ref_a)}&b={_quote(ref_b)}"
        )

    def traces(self, limit: int | None = None) -> list[dict]:
        """Finished traces (summary dicts), newest first."""
        tail = f"?limit={limit}" if limit is not None else ""
        return self._call("GET", f"/api/traces{tail}")["traces"]

    def trace(self, trace_id: str) -> dict:
        """One finished trace with its full span list."""
        return self._call("GET", f"/api/traces/{_quote(trace_id)}")

    def stats(self) -> dict:
        return self._call("GET", "/api/stats")

    def metrics(self) -> dict:
        """The server's metrics registry as JSON."""
        return self._call("GET", "/api/metrics")

    def metrics_text(self) -> str:
        """The raw Prometheus text exposition from ``/metrics``."""
        req = _urllib_request.Request(f"{self.base_url}/metrics")
        with _urllib_request.urlopen(req, timeout=self.timeout) as answer:
            return answer.read().decode("utf-8")

    def healthy(self) -> bool:
        try:
            return self._call("GET", "/healthz").get("status") == "ok"
        except Exception:
            return False

    def health(self) -> dict:
        """The full ``/api/healthz`` readiness payload."""
        return self._call("GET", "/api/healthz")

    # Distributed execution -------------------------------------------------
    def register_worker(
        self, worker_id: str | None = None, meta: dict | None = None
    ) -> dict:
        """Worker handshake; returns id + lease terms."""
        payload: dict = {}
        if worker_id:
            payload["worker_id"] = worker_id
        if meta:
            payload["meta"] = meta
        return self._call("POST", "/api/workers", payload)

    def workers(self) -> list[dict]:
        """The coordinator's workers table."""
        return self._call("GET", "/api/workers")["workers"]

    def worker_heartbeat(self, worker_id: str, unit_ids: list[str]) -> dict:
        """Renew leases; the answer lists ``renewed`` and ``lost`` units."""
        return self._call(
            "POST",
            f"/api/workers/{_quote(worker_id)}/heartbeat",
            {"units": list(unit_ids)},
        )

    def lease_unit(self, worker_id: str) -> dict | None:
        """Lease the next work unit (``None`` when the queue is empty)."""
        answer = self._call(
            "POST", "/api/units/lease", {"worker_id": worker_id}
        )
        return answer.get("unit")

    def submit_unit_result(
        self, worker_id: str, unit_id: str, payload: dict
    ) -> dict:
        """Report a unit outcome (idempotent on the unit id)."""
        body = dict(payload)
        body["worker_id"] = worker_id
        return self._call(
            "POST", f"/api/units/{_quote(unit_id)}/result", body
        )

    # Remote cache ----------------------------------------------------------
    def cache_info(self) -> dict:
        """The server-side shared cache's info payload."""
        return self._call("GET", "/api/cache")

    def cache_get_many(self, keys: list[str]) -> dict:
        """Batched lookup against the server's shared cache."""
        return self._call("POST", "/api/cache/get_many", {"keys": keys})

    def cache_put_many(self, entries: dict) -> dict:
        """Batched store into the server's shared cache."""
        return self._call("POST", "/api/cache/put_many", {"entries": entries})
