"""Distributed campaign execution: coordinator-side work units & leases.

One campaign shards into *work units* — one per spec, each a complete
single-spec :class:`~repro.service.api.CampaignRequest` whose seed is
rebased to ``seed + spec_index``, exactly the seed the in-process
:func:`~repro.service.campaign.run_campaign` hands that spec.  Worker
processes (:mod:`repro.service.worker`) lease units over the HTTP JSON
envelope, evaluate them through the ordinary campaign machinery, and
report their per-spec fronts back; the coordinator concatenates the
fronts in spec order and runs the same single
:func:`~repro.core.pareto.pareto_front` merge the in-process path uses,
so the assembled response is **bit-identical** to a local run of the
same request.

Fault tolerance is lease-based: a unit lease lasts ``lease_ttl_s`` and
is renewed by worker heartbeats; when a worker dies (or just stops
heartbeating) the lease expires and the unit is requeued, up to
``max_attempts`` total leases, after which the campaign fails with a
structured error naming the unit and its last error.  Result submission
is idempotent — units are content-addressed (a stable hash of the
campaign fingerprint plus the unit's own request payload), and the
first completed result wins; a late duplicate from a slow worker whose
lease was already reassigned is acknowledged and dropped.

The coordinator plugs into the existing :class:`~repro.service.jobs.
JobQueue` as a *runner* (:class:`DistributedRunner`), so submission,
deduplication, event streaming, cancellation, TTL purging and run
recording all behave exactly as for in-process execution.
"""

from __future__ import annotations

import enum
import itertools
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable

from repro.obs.log import JsonLogger, get_logger
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import format_traceparent, get_tracer
from repro.problems import get_problem
from repro.service.api import CampaignRequest, CampaignResponse, FrontierPoint
from repro.service.cache import stable_hash
from repro.service.events import CampaignCancelled, CampaignEvent, EventKind

__all__ = [
    "DistributedRunner",
    "UnitStatus",
    "WorkCoordinator",
    "WorkUnit",
    "DEFAULT_LEASE_TTL_S",
    "DEFAULT_MAX_ATTEMPTS",
]

DEFAULT_LEASE_TTL_S = 30.0
DEFAULT_MAX_ATTEMPTS = 3

#: A worker whose last heartbeat is older than this many lease TTLs is
#: reported as ``lost`` in the workers table (purely cosmetic — actual
#: failover is per-lease, not per-worker).
_LOST_AFTER_TTLS = 3.0

#: Completed campaigns whose per-unit rows have not been collected yet
#: (see :meth:`WorkCoordinator.take_unit_rows`); bounded so abandoned
#: rows cannot grow without limit.
_MAX_STASHED_CAMPAIGNS = 64


class UnitStatus(str, enum.Enum):
    PENDING = "pending"
    LEASED = "leased"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (
            UnitStatus.DONE, UnitStatus.FAILED, UnitStatus.CANCELLED
        )


@dataclass
class WorkUnit:
    """One leasable shard of a campaign: a single-spec sub-request.

    ``unit_id`` is a content hash of the parent campaign's fingerprint
    plus this unit's own request payload — resubmitting the same
    campaign mints the same ids, and result submission is keyed (and
    deduplicated) by it.
    """

    unit_id: str
    campaign_id: str
    spec_index: int
    label: str
    request_payload: dict
    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    status: UnitStatus = UnitStatus.PENDING
    attempts: int = 0
    worker_id: str | None = None
    lease_deadline: float | None = None
    result: dict | None = None
    error: str | None = None
    wall_time_s: float = 0.0
    evaluations: int = 0

    def descriptor(self) -> dict:
        """The JSON shape a worker receives when it leases this unit."""
        return {
            "unit_id": self.unit_id,
            "campaign_id": self.campaign_id,
            "spec_index": self.spec_index,
            "spec": self.label,
            "attempt": self.attempts,
            "request": self.request_payload,
        }

    def row(self) -> dict:
        """The JSON shape recorded into ``RunStore.record_work_units``."""
        return {
            "unit_id": self.unit_id,
            "spec_index": self.spec_index,
            "spec": self.label,
            "worker_id": self.worker_id,
            "attempts": self.attempts,
            "status": self.status.value,
            "wall_time_s": self.wall_time_s,
            "evaluations": self.evaluations,
            "error": self.error,
        }


@dataclass
class _WorkerEntry:
    worker_id: str
    registered_at: float
    last_seen: float
    meta: dict = field(default_factory=dict)
    units_done: int = 0
    units_failed: int = 0
    leases: int = 0


@dataclass
class _Campaign:
    campaign_id: str
    request: CampaignRequest
    fingerprint: str
    units: list[WorkUnit]
    observer: Callable[[CampaignEvent], None] | None = None
    span: object | None = None
    traceparent: str | None = None
    cancelled: bool = False
    failure: str | None = None


class WorkCoordinator:
    """Thread-safe lease/heartbeat/result hub for distributed campaigns.

    The HTTP layer calls the worker-facing methods from handler
    threads; :class:`DistributedRunner` calls :meth:`execute` from a
    job-queue worker thread and blocks until the campaign's units all
    complete (or fail / are cancelled).  Lease expiry is checked on
    every worker interaction and on every wait tick of the blocked
    runner, so no extra sweeper thread is needed.
    """

    def __init__(
        self,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        registry: MetricsRegistry | None = None,
        logger: JsonLogger | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if lease_ttl_s <= 0:
            raise ValueError("lease_ttl_s must be > 0")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.lease_ttl_s = float(lease_ttl_s)
        self.max_attempts = int(max_attempts)
        self._clock = clock
        self._log = logger if logger is not None else get_logger("repro.distributed")
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._campaigns: dict[str, _Campaign] = {}
        self._units: dict[str, WorkUnit] = {}
        self._queue: deque[str] = deque()
        self._workers: dict[str, _WorkerEntry] = {}
        self._unit_rows: OrderedDict[str, list[dict]] = OrderedDict()
        self._ids = itertools.count(1)
        self._worker_ids = itertools.count(1)
        self._init_metrics(registry)

    # Metrics ---------------------------------------------------------------
    def _init_metrics(self, registry: MetricsRegistry | None) -> None:
        registry = registry if registry is not None else get_registry()
        self._m_leased = registry.counter(
            "repro_units_leased_total", "Work-unit leases granted"
        )
        self._m_units = registry.counter(
            "repro_units_total",
            "Work units finished, by terminal status",
            ("status",),
        )
        self._m_requeued = registry.counter(
            "repro_units_requeued_total",
            "Work units put back on the queue (expiry or worker failure)",
        )
        self._m_expired = registry.counter(
            "repro_lease_expired_total", "Unit leases that timed out"
        )
        self._m_duplicates = registry.counter(
            "repro_unit_duplicate_results_total",
            "Result submissions dropped as idempotent duplicates",
        )
        self._m_pending = registry.gauge(
            "repro_units_pending", "Work units waiting for a lease"
        )
        self._m_inflight = registry.gauge(
            "repro_units_leased", "Work units currently leased out"
        )
        self._m_workers = registry.gauge(
            "repro_workers_registered", "Worker processes ever registered"
        )
        self._m_unit_seconds = registry.histogram(
            "repro_unit_run_seconds",
            "Worker-side wall time of one completed unit",
        )
        registry.register_collector(self._collect_metrics)

    def _collect_metrics(self) -> None:
        with self._lock:
            pending = sum(
                1 for u in self._units.values() if u.status is UnitStatus.PENDING
            )
            leased = sum(
                1 for u in self._units.values() if u.status is UnitStatus.LEASED
            )
            workers = len(self._workers)
        self._m_pending.set(pending)
        self._m_inflight.set(leased)
        self._m_workers.set(workers)

    # Worker-facing API (called from HTTP handler threads) ------------------
    def register_worker(
        self, worker_id: str | None = None, meta: dict | None = None
    ) -> dict:
        """Handshake: admit (or re-admit) a worker, return its lease terms."""
        now = self._clock()
        with self._lock:
            if not worker_id:
                worker_id = f"worker-{next(self._worker_ids)}"
            entry = self._workers.get(worker_id)
            if entry is None:
                entry = _WorkerEntry(
                    worker_id=worker_id, registered_at=now, last_seen=now
                )
                self._workers[worker_id] = entry
            entry.last_seen = now
            if meta:
                entry.meta.update(meta)
        self._log.info("worker_registered", worker_id=worker_id)
        return {
            "worker_id": worker_id,
            "lease_ttl_s": self.lease_ttl_s,
            "max_attempts": self.max_attempts,
        }

    def heartbeat(self, worker_id: str, unit_ids: list[str]) -> dict:
        """Renew a worker's leases; tell it which units it no longer owns.

        A unit lands in ``lost`` when its lease already expired and was
        reassigned, or its campaign was cancelled — the worker should
        abandon that evaluation at the next generation boundary.
        """
        with self._cond:
            self._touch(worker_id)
            self._expire_locked()
            now = self._clock()
            renewed: list[str] = []
            lost: list[str] = []
            for unit_id in unit_ids:
                unit = self._units.get(unit_id)
                if (
                    unit is not None
                    and unit.status is UnitStatus.LEASED
                    and unit.worker_id == worker_id
                ):
                    unit.lease_deadline = now + self.lease_ttl_s
                    renewed.append(unit_id)
                else:
                    lost.append(unit_id)
        return {
            "renewed": renewed,
            "lost": lost,
            "lease_ttl_s": self.lease_ttl_s,
        }

    def lease(self, worker_id: str) -> dict | None:
        """Grant the next pending unit to ``worker_id`` (or ``None``)."""
        event = None
        with self._cond:
            self._touch(worker_id)
            self._expire_locked()
            unit = None
            while self._queue:
                candidate = self._units.get(self._queue.popleft())
                if candidate is not None and candidate.status is UnitStatus.PENDING:
                    unit = candidate
                    break
            if unit is None:
                return None
            now = self._clock()
            unit.status = UnitStatus.LEASED
            unit.attempts += 1
            unit.worker_id = worker_id
            unit.lease_deadline = now + self.lease_ttl_s
            entry = self._workers.get(worker_id)
            if entry is not None:
                entry.leases += 1
            self._m_leased.inc()
            campaign = self._campaigns.get(unit.campaign_id)
            descriptor = unit.descriptor()
            descriptor["lease_ttl_s"] = self.lease_ttl_s
            if campaign is not None and campaign.traceparent:
                descriptor["traceparent"] = campaign.traceparent
            if unit.attempts == 1 and campaign is not None:
                event = (
                    campaign.observer,
                    CampaignEvent(
                        kind=EventKind.SPEC_STARTED,
                        spec_index=unit.spec_index,
                        spec=unit.label,
                        generations=unit.request_payload.get("generations"),
                    ),
                )
        self._log.info(
            "unit_leased",
            unit_id=unit.unit_id,
            worker_id=worker_id,
            spec=unit.label,
            attempt=unit.attempts,
        )
        self._emit(event)
        return descriptor

    def submit_result(self, worker_id: str, unit_id: str, payload: dict) -> dict:
        """Accept one unit outcome; idempotent on the content-addressed id.

        ``payload["status"]`` is ``"done"`` (with a ``front`` list and
        counters) or ``"failed"`` (with an ``error``); failures requeue
        the unit until its attempt budget runs out.
        """
        status = payload.get("status", "done")
        event = None
        with self._cond:
            self._touch(worker_id)
            unit = self._units.get(unit_id)
            if unit is None:
                return {"accepted": False, "reason": "unknown_unit"}
            if unit.status is UnitStatus.DONE:
                self._m_duplicates.inc()
                return {"accepted": False, "duplicate": True}
            if unit.status is UnitStatus.CANCELLED:
                return {"accepted": False, "reason": "cancelled"}
            campaign = self._campaigns.get(unit.campaign_id)
            entry = self._workers.get(worker_id)
            if status == "done":
                # First completed result wins — even from a worker whose
                # lease expired meanwhile (the computation is
                # deterministic, so any completion is *the* result).
                unit.status = UnitStatus.DONE
                unit.result = payload
                unit.worker_id = worker_id
                unit.error = None
                unit.wall_time_s = float(payload.get("wall_time_s") or 0.0)
                unit.evaluations = int(payload.get("evaluations") or 0)
                if entry is not None:
                    entry.units_done += 1
                self._m_units.labels("done").inc()
                self._m_unit_seconds.observe(unit.wall_time_s)
                if campaign is not None and campaign.span is not None:
                    get_tracer().record_span(
                        "unit.evaluate",
                        unit.wall_time_s,
                        attributes={
                            "unit_id": unit.unit_id,
                            "spec": unit.label,
                            "worker_id": worker_id,
                            "attempt": unit.attempts,
                            "evaluations": unit.evaluations,
                        },
                        parent=campaign.span,
                        category="distributed",
                    )
                if campaign is not None:
                    event = (
                        campaign.observer,
                        CampaignEvent(
                            kind=EventKind.SPEC_DONE,
                            spec_index=unit.spec_index,
                            spec=unit.label,
                            generation=payload.get("generations_run"),
                            generations=unit.request_payload.get("generations"),
                            evaluations=unit.evaluations,
                            front_size=len(payload.get("front") or ()),
                        ),
                    )
            else:
                error = payload.get("error") or "worker reported failure"
                if entry is not None:
                    entry.units_failed += 1
                self._requeue_locked(unit, f"worker {worker_id}: {error}")
            self._cond.notify_all()
        self._log.info(
            "unit_result",
            unit_id=unit_id,
            worker_id=worker_id,
            status=status,
            unit_status=unit.status.value,
        )
        self._emit(event)
        return {"accepted": True, "status": unit.status.value}

    def workers_info(self) -> list[dict]:
        """Rows for the ``/api/workers`` endpoint and dashboard table."""
        with self._lock:
            now = self._clock()
            rows = []
            for entry in self._workers.values():
                leased = sum(
                    1
                    for u in self._units.values()
                    if u.status is UnitStatus.LEASED
                    and u.worker_id == entry.worker_id
                )
                age = now - entry.last_seen
                state = (
                    "lost"
                    if age > _LOST_AFTER_TTLS * self.lease_ttl_s
                    else "active" if leased else "idle"
                )
                rows.append(
                    {
                        "worker_id": entry.worker_id,
                        "state": state,
                        "last_seen_s": round(age, 3),
                        "units_leased": leased,
                        "leases": entry.leases,
                        "units_done": entry.units_done,
                        "units_failed": entry.units_failed,
                        **entry.meta,
                    }
                )
            return rows

    def stats(self) -> dict:
        with self._lock:
            return {
                "campaigns": len(self._campaigns),
                "units_pending": sum(
                    1
                    for u in self._units.values()
                    if u.status is UnitStatus.PENDING
                ),
                "units_leased": sum(
                    1
                    for u in self._units.values()
                    if u.status is UnitStatus.LEASED
                ),
                "workers": len(self._workers),
                "lease_ttl_s": self.lease_ttl_s,
                "max_attempts": self.max_attempts,
            }

    # Internals -------------------------------------------------------------
    def _touch(self, worker_id: str) -> None:
        entry = self._workers.get(worker_id)
        if entry is None:
            # Tolerate workers that skip the handshake (e.g. after a
            # coordinator restart): admit them on first contact.
            entry = _WorkerEntry(
                worker_id=worker_id,
                registered_at=self._clock(),
                last_seen=self._clock(),
            )
            self._workers[worker_id] = entry
        entry.last_seen = self._clock()

    def _expire_locked(self) -> None:
        now = self._clock()
        for unit in list(self._units.values()):
            if (
                unit.status is UnitStatus.LEASED
                and unit.lease_deadline is not None
                and unit.lease_deadline < now
            ):
                self._m_expired.inc()
                self._requeue_locked(
                    unit,
                    f"lease expired after {self.lease_ttl_s:g}s "
                    f"on worker {unit.worker_id}",
                )

    def _requeue_locked(self, unit: WorkUnit, reason: str) -> None:
        """Return a lost/failed unit to the queue, or exhaust it."""
        unit.error = reason
        unit.lease_deadline = None
        if unit.attempts >= unit.max_attempts:
            unit.status = UnitStatus.FAILED
            self._m_units.labels("failed").inc()
            campaign = self._campaigns.get(unit.campaign_id)
            if campaign is not None and campaign.failure is None:
                campaign.failure = (
                    f"work unit {unit.unit_id[:12]} (spec {unit.label!r}, "
                    f"index {unit.spec_index}) failed after "
                    f"{unit.attempts} attempts; last error: {reason}"
                )
            self._log.warning(
                "unit_exhausted", unit_id=unit.unit_id, error=reason
            )
        else:
            unit.status = UnitStatus.PENDING
            unit.worker_id = None
            self._queue.append(unit.unit_id)
            self._m_requeued.inc()
            self._log.info(
                "unit_requeued",
                unit_id=unit.unit_id,
                attempts=unit.attempts,
                reason=reason,
            )
        self._cond.notify_all()

    def _emit(self, pending_event) -> None:
        if pending_event is None:
            return
        observer, event = pending_event
        if observer is None:
            return
        try:
            observer(event)
        except Exception:  # observers must never take the coordinator down
            pass

    def _decompose(
        self, campaign_id: str, request: CampaignRequest, fingerprint: str
    ) -> list[WorkUnit]:
        definition = get_problem(request.problem)
        base = request.to_dict()
        units: list[WorkUnit] = []
        for i, spec_payload in enumerate(base["specs"]):
            unit_request = dict(base)
            unit_request["specs"] = [spec_payload]
            # The seed rebase reproduces run_campaign's per-spec seeding
            # (spec i explores with seed + i); the worker's single-spec
            # run then uses seed + 0 = seed + i.  This is the entire
            # parity contract on the worker side.
            unit_request["seed"] = request.seed + i
            unit_request["workers"] = 1
            content = {
                k: v for k, v in unit_request.items() if k != "schema_version"
            }
            unit_id = stable_hash(
                {
                    "campaign": fingerprint,
                    "spec_index": i,
                    "unit": content,
                }
            )
            units.append(
                WorkUnit(
                    unit_id=unit_id,
                    campaign_id=campaign_id,
                    spec_index=i,
                    label=definition.request_label(request.specs[i]),
                    request_payload=unit_request,
                    max_attempts=self.max_attempts,
                )
            )
        return units

    def _cancel_locked(self, campaign: _Campaign) -> None:
        campaign.cancelled = True
        for unit in campaign.units:
            if not unit.status.terminal:
                # Leased units are cancelled too: the worker learns via
                # its next heartbeat (the unit shows up as lost) and
                # abandons the evaluation; a result that still arrives
                # is acknowledged and dropped.
                unit.status = UnitStatus.CANCELLED
                unit.lease_deadline = None
                self._m_units.labels("cancelled").inc()
        self._cond.notify_all()

    def _cleanup_locked(self, campaign: _Campaign) -> None:
        for unit in campaign.units:
            self._units.pop(unit.unit_id, None)
        self._campaigns.pop(campaign.campaign_id, None)
        self._unit_rows[campaign.fingerprint] = [
            unit.row() for unit in campaign.units
        ]
        while len(self._unit_rows) > _MAX_STASHED_CAMPAIGNS:
            self._unit_rows.popitem(last=False)

    def take_unit_rows(self, fingerprint: str) -> list[dict]:
        """Pop the per-unit rows of a finished campaign (for the store)."""
        with self._lock:
            return self._unit_rows.pop(fingerprint, [])

    # Campaign-facing API ---------------------------------------------------
    def execute(
        self,
        request: CampaignRequest,
        observer: Callable[[CampaignEvent], None] | None = None,
        should_stop: Callable[[], bool] | None = None,
    ) -> CampaignResponse:
        """Run one campaign across the connected workers (blocking).

        Registers the campaign's units, waits for workers to drain
        them (expiring/requeueing leases on every tick), and assembles
        the merged front.  Raises
        :class:`~repro.service.events.CampaignCancelled` when
        ``should_stop`` fires, :class:`RuntimeError` when a unit runs
        out of attempts.
        """
        fingerprint = request.fingerprint()
        tracer = get_tracer()
        span = tracer.start_span(
            "campaign.distributed",
            attributes={
                "problem": request.problem,
                "specs": len(request.specs),
                "lease_ttl_s": self.lease_ttl_s,
            },
            root_if_orphan=True,
            category="distributed",
        )
        started = time.perf_counter()
        with self._cond:
            campaign_id = f"dc-{next(self._ids)}"
            campaign = _Campaign(
                campaign_id=campaign_id,
                request=request,
                fingerprint=fingerprint,
                units=self._decompose(campaign_id, request, fingerprint),
                observer=observer,
                span=span,
                traceparent=format_traceparent(span.context),
            )
            self._campaigns[campaign_id] = campaign
            for unit in campaign.units:
                self._units[unit.unit_id] = unit
                self._queue.append(unit.unit_id)
            self._cond.notify_all()
        self._log.info(
            "campaign_registered",
            campaign_id=campaign_id,
            units=len(campaign.units),
            fingerprint=fingerprint[:12],
        )
        # Wait ticks double as the lease-expiry sweep; a quarter TTL
        # bounds how stale an expired lease can go unnoticed while
        # staying responsive to cancellation.
        tick = max(0.05, min(self.lease_ttl_s / 4.0, 0.5))
        try:
            with self._cond:
                while True:
                    self._expire_locked()
                    if should_stop is not None and should_stop():
                        self._cancel_locked(campaign)
                    if campaign.cancelled or campaign.failure is not None:
                        break
                    if all(
                        u.status is UnitStatus.DONE for u in campaign.units
                    ):
                        break
                    self._cond.wait(tick)
                if campaign.failure is not None and not campaign.cancelled:
                    # Fail fast: release whatever is still queued/leased.
                    failure = campaign.failure
                    self._cancel_locked(campaign)
                    campaign.failure = failure
        finally:
            with self._cond:
                self._cleanup_locked(campaign)
        wall_time = time.perf_counter() - started
        if campaign.failure is not None:
            span.end(status="error", error=campaign.failure)
            raise RuntimeError(campaign.failure)
        if campaign.cancelled:
            done = sum(
                1 for u in campaign.units if u.status is UnitStatus.DONE
            )
            message = (
                f"campaign cancelled after {done}/{len(campaign.units)} units"
            )
            span.end(status="error", error=message)
            raise CampaignCancelled(message)
        response = self._assemble(campaign, wall_time)
        span.set_attributes(
            evaluations=response.evaluations,
            front_size=len(response.frontier),
            units=len(campaign.units),
        )
        span.end()
        self._emit(
            (
                observer,
                CampaignEvent(
                    kind=EventKind.CAMPAIGN_DONE,
                    evaluations=response.evaluations,
                    front_size=len(response.frontier),
                    wall_time_s=wall_time,
                ),
            )
        )
        return response

    def _assemble(self, campaign: _Campaign, wall_time: float) -> CampaignResponse:
        """Merge per-unit fronts exactly like the in-process campaign.

        Concatenate the per-spec fronts in spec order, run **one**
        :func:`~repro.core.pareto.pareto_front` pass over the union,
        and stable-sort by objective 0 — the same algorithm (and the
        same float values, since JSON round-trips doubles exactly) as
        :func:`~repro.dse.explorer.merge_exploration_results`, so the
        frontier is bit-identical to the in-process path.
        """
        from repro.core.pareto import pareto_front

        points: list[FrontierPoint] = []
        objectives: list[tuple[float, ...]] = []
        per_spec: list[int] = []
        strategies: list[str] = []
        engine_backend = "python"
        ga_backend = None
        cache_totals: dict[str, float] | None = {}
        for unit in campaign.units:
            result = unit.result or {}
            for payload in result.get("front") or ():
                point = FrontierPoint.from_dict(payload)
                points.append(point)
                objectives.append(tuple(point.objectives))
            per_spec.append(int(result.get("evaluations") or 0))
            strategies.append(result.get("strategy") or "ga")
            engine_backend = result.get("engine_backend") or engine_backend
            ga_backend = result.get("ga_backend") or ga_backend
            stats = result.get("cache_stats")
            if stats is None:
                cache_totals = None
            elif cache_totals is not None:
                for key, value in stats.items():
                    if key == "hit_rate":
                        continue
                    cache_totals[key] = cache_totals.get(key, 0) + value
        if cache_totals is not None:
            lookups = cache_totals.get("hits", 0) + cache_totals.get("misses", 0)
            cache_totals["hit_rate"] = round(
                cache_totals.get("hits", 0) / lookups if lookups else 0.0, 4
            )
        if points:
            merged = pareto_front(list(zip(points, objectives)), objectives)
            merged.sort(key=lambda po: po[1][0])
            frontier = tuple(point for point, _ in merged)
        else:
            frontier = ()
        evaluations = sum(per_spec)
        fresh = (
            evaluations
            if cache_totals is None
            else int(cache_totals.get("misses", 0))
        )
        return CampaignResponse(
            frontier=frontier,
            evaluations=evaluations,
            fresh_evaluations=fresh,
            per_spec_evaluations=tuple(per_spec),
            cache_stats=cache_totals,
            wall_time_s=wall_time,
            engine_backend=engine_backend,
            problem=campaign.request.problem,
            strategies=tuple(strategies),
            ga_backend=ga_backend,
        )


class DistributedRunner:
    """Adapter that lets a :class:`~repro.service.jobs.JobQueue` hand
    campaigns to a :class:`WorkCoordinator` instead of running them
    in-process.  The signature carries the queue's ``observer`` /
    ``should_stop`` hooks, so event streaming and cancellation work
    unchanged.
    """

    def __init__(self, coordinator: WorkCoordinator) -> None:
        self.coordinator = coordinator

    def __call__(
        self,
        request: CampaignRequest,
        observer: Callable[[CampaignEvent], None] | None = None,
        should_stop: Callable[[], bool] | None = None,
    ) -> CampaignResponse:
        return self.coordinator.execute(
            request, observer=observer, should_stop=should_stop
        )
