"""Multi-spec DSE campaigns over a shared cache and executor.

A *campaign* explores many :class:`~repro.core.spec.DcimSpec`s — e.g.
every candidate precision for an application, or a Wstore sweep — and
merges the per-spec Pareto fronts into one cross-architecture frontier.
All runs share one :class:`~repro.service.cache.EvaluationCache` and one
batch executor, so overlapping design spaces are evaluated once no
matter how many specs (or repeated campaigns) touch them.

Spec-level sharding uses threads: each worker thread drives its own
NSGA-II run while the genome-level batches fan out through the shared
(serial/thread/process) executor underneath.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import dataclasses
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.spec import DcimSpec, DesignPoint
from repro.dse.explorer import (
    DEFAULT_EXHAUSTIVE_THRESHOLD,
    DesignSpaceExplorer,
    ExplorationResult,
    merge_exploration_results,
)
from repro.dse.kernels import resolve_kernel_backend
from repro.dse.nsga2 import GenerationProgress, NSGA2Config
from repro.model.engine import ENGINE_BACKENDS, resolve_backend
from repro.obs.metrics import get_registry
from repro.obs.trace import (
    NULL_SPAN,
    get_tracer,
    set_current_span,
    use_span,
)
from repro.problems import DEFAULT_PROBLEM, get_problem
from repro.service.api import CampaignRequest, CampaignResponse
from repro.service.cache import CacheStats, EvaluationCache
from repro.service.events import (
    CampaignCancelled,
    CampaignEvent,
    CampaignObserver,
    EventKind,
)
from repro.service.executor import BatchExecutor, make_executor
from repro.tech.cells import CellLibrary

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "run_campaign",
    "execute_request",
    "spec_label",
]


@dataclass(frozen=True)
class CampaignConfig:
    """Knobs of one campaign run.

    Attributes:
        nsga2: GA hyper-parameters shared by every spec.
        seed: base seed; spec ``i`` explores with ``seed + i`` so runs
            are reproducible yet decorrelated.
        workers: how many specs are explored concurrently.
        backend: genome-level evaluation backend
            (``serial``/``thread``/``process``); ignored when an
            executor instance is passed to :func:`run_campaign`.
        chunk_size: genomes per executor task (``None`` lets the pool
            size chunks itself); ignored with a caller-provided
            executor.
        engine: cost-engine backend (``auto``/``numpy``/``python``)
            used inside every problem; bit-identical across choices.
        problem: :mod:`repro.problems` registry name; every spec of the
            campaign is explored through that entry's problem factory.
        exhaustive_threshold: largest enumerable design space that is
            explored exhaustively instead of via the GA (see
            :meth:`~repro.dse.explorer.DesignSpaceExplorer.explore_auto`);
            ``0`` or ``None`` forces the GA for every spec.
        cache_flush_every: write-behind cadence for the campaign's
            shared cache — misses coalesce into one disk transaction
            per N entries for the campaign's duration, with a
            guaranteed flush at the end (also on failure or
            cancellation).  ``None``/``0`` (default) keeps the cache's
            own write policy.  Pure I/O scheduling: never changes
            results, never enters the campaign fingerprint.
        cache_backend: cache spec string used to *build* the campaign's
            evaluation cache when :func:`run_campaign` is not handed a
            cache instance — ``"memory"``, a cache file path, or
            ``"remote:http://host:port"`` for a coordinator's shared
            dedup layer (see
            :func:`~repro.service.cache_backends.make_cache`).
            ``None`` (default) keeps the campaign uncached unless a
            cache is passed in.  Caching is pure dedup — it never
            changes results — so this stays out of the campaign
            fingerprint unconditionally.
    """

    nsga2: NSGA2Config = field(default_factory=NSGA2Config)
    seed: int = 0
    workers: int = 1
    backend: str = "serial"
    chunk_size: int | None = None
    engine: str = "auto"
    problem: str = DEFAULT_PROBLEM
    exhaustive_threshold: int | None = DEFAULT_EXHAUSTIVE_THRESHOLD
    cache_flush_every: int | None = None
    cache_backend: str | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1 when given")
        if self.cache_flush_every is not None and self.cache_flush_every < 0:
            raise ValueError("cache_flush_every must be >= 0 when given")
        if self.exhaustive_threshold is not None and self.exhaustive_threshold < 0:
            raise ValueError("exhaustive_threshold must be >= 0 when given")
        if self.engine not in ENGINE_BACKENDS:
            raise ValueError(
                f"unknown engine backend {self.engine!r}; "
                f"choose from {ENGINE_BACKENDS}"
            )
        try:
            get_problem(self.problem)
        except KeyError as exc:
            raise ValueError(str(exc.args[0])) from None


@dataclass
class CampaignResult:
    """Everything one campaign produced.

    Attributes:
        results: per-spec exploration outcomes, in input order.
        merged_points: the cross-architecture non-dominated frontier.
        merged_objectives: matching normalised objective rows.
        evaluations: unique genomes evaluated across all GA runs —
            including those served by the cache (each run's counter is
            cache-agnostic).
        cache_stats: snapshot of the shared cache counters for this
            campaign (``None`` when uncached).
        wall_time_s: end-to-end wall clock.
        engine_backend: which cost-engine backend ran
            (``numpy``/``python``).
        run_id: registry id assigned when the campaign was recorded
            into a :class:`~repro.store.runstore.RunStore` (``None``
            for unrecorded campaigns).
        problem: :mod:`repro.problems` registry name the campaign
            optimised (decides how ``merged_points`` flatten into
            frontier records).
        strategies: per-spec exploration strategy (``"ga"`` or
            ``"exhaustive"``), in spec input order.
        ga_backend: resolved GA kernel backend
            (``numpy``/``python``) that ran the sort/crowding kernels.
    """

    results: list[ExplorationResult]
    merged_points: list[DesignPoint]
    merged_objectives: np.ndarray
    evaluations: int = 0
    cache_stats: CacheStats | None = None
    wall_time_s: float = 0.0
    engine_backend: str = "python"
    run_id: str | None = None
    problem: str = DEFAULT_PROBLEM
    strategies: tuple[str, ...] = ()
    ga_backend: str | None = None

    @property
    def fresh_evaluations(self) -> int:
        """Objective evaluations actually computed (cache hits excluded).

        Each GA run looks every unique genome up exactly once, so the
        campaign's cache misses are exactly the evaluations that reached
        the estimation models.  Without a cache, every evaluation is
        fresh.
        """
        if self.cache_stats is None:
            return self.evaluations
        return self.cache_stats.misses

    def to_response(self) -> CampaignResponse:
        """Flatten into the JSON-able API record."""
        definition = get_problem(self.problem)
        frontier = tuple(
            definition.frontier_point(point, tuple(row))
            for point, row in zip(self.merged_points, self.merged_objectives)
        )
        return CampaignResponse(
            frontier=frontier,
            evaluations=self.evaluations,
            fresh_evaluations=self.fresh_evaluations,
            per_spec_evaluations=tuple(r.evaluations for r in self.results),
            cache_stats=self.cache_stats.as_dict() if self.cache_stats else None,
            wall_time_s=self.wall_time_s,
            engine_backend=self.engine_backend,
            problem=self.problem,
            strategies=self.strategies,
            ga_backend=self.ga_backend,
        )


def spec_label(spec: DcimSpec) -> str:
    """The ``"<wstore>:<precision>"`` label events identify a spec by.

    This is the ``"dcim"`` labelling; generic campaigns label specs
    through their problem definition's ``spec_label``.
    """
    return f"{spec.wstore}:{spec.precision.name}"


def _campaign_fingerprint(specs: list, config: CampaignConfig) -> str:
    """Content hash of a programmatic campaign (mirrors
    :meth:`~repro.service.api.CampaignRequest.fingerprint` in spirit —
    identical workloads share it).  Like the request fingerprint, the
    default ``"dcim"`` problem hashes the pre-v2 config layout so
    registry rows recorded before the schema upgrade keep matching.
    The GA kernel backend never enters the hash (it cannot change
    results), and the exhaustive threshold only does when it differs
    from the default — so rows recorded before these knobs existed keep
    matching too.  ``cache_flush_every`` and ``cache_backend`` are pure
    I/O/dedup plumbing and stay out unconditionally.
    """
    from repro.service.cache import stable_hash

    config_payload = dataclasses.asdict(config)
    if config.problem == DEFAULT_PROBLEM:
        del config_payload["problem"]
    del config_payload["nsga2"]["backend"]
    del config_payload["cache_flush_every"]
    del config_payload["cache_backend"]
    if config.exhaustive_threshold == DEFAULT_EXHAUSTIVE_THRESHOLD:
        del config_payload["exhaustive_threshold"]
    return stable_hash(
        {
            "specs": [dataclasses.asdict(spec) for spec in specs],
            "config": config_payload,
        }
    )


def run_campaign(
    specs: list,
    config: CampaignConfig | None = None,
    library: CellLibrary | None = None,
    cache: EvaluationCache | None = None,
    executor: BatchExecutor | None = None,
    observer: CampaignObserver | None = None,
    should_stop: Callable[[], bool] | None = None,
    store=None,
    run_name: str | None = None,
) -> CampaignResult:
    """Explore ``specs`` concurrently and merge their Pareto fronts.

    Args:
        specs: the specifications to explore (one GA run each) —
            concrete spec objects of ``config.problem``'s registry
            entry (:class:`~repro.core.spec.DcimSpec` for the default
            ``"dcim"`` problem).
        config: campaign sizing/backing (defaults everywhere).
        library: shared normalised cell library.
        cache: shared evaluation cache; campaigns that pass the same
            instance (or the same on-disk path) dedupe work across
            invocations.
        executor: genome-level batch backend; built from
            ``config.backend`` when omitted (and closed on exit — a
            caller-provided executor is left open for reuse).
        observer: called with a :class:`~repro.service.events.
            CampaignEvent` as the campaign progresses (spec started /
            generation done / spec done / campaign done).  With
            ``workers > 1`` events arrive from several threads, so the
            observer must be thread-safe.  Attaching one never changes
            the result: observers fire between generations, outside all
            rng draws.
        should_stop: cooperative cancellation hook, polled before each
            spec and between GA generations.  Once it returns True the
            in-flight GA runs stop at their next generation boundary and
            the campaign raises :class:`~repro.service.events.
            CampaignCancelled` instead of returning a result.
        store: optional :class:`~repro.store.runstore.RunStore`; when
            given, the campaign's outcome (including a cancellation) is
            recorded after the run.  Recording is write-only — attaching
            a store never changes the result — and the assigned run id
            lands in :attr:`CampaignResult.run_id`.  A store write
            failure never discards the computed result: it is reported
            as a :class:`RuntimeWarning` and ``run_id`` stays ``None``.
        run_name: human label for the recorded run.
    """
    if not specs:
        raise ValueError("a campaign needs at least one spec")
    config = config or CampaignConfig()
    library = library or CellLibrary.default()
    own_cache = cache is None and config.cache_backend is not None
    if own_cache:
        from repro.service.cache_backends import make_cache

        cache = make_cache(config.cache_backend)
    definition = get_problem(config.problem)
    # Resolve the backends first: a resolution failure must not leak a
    # freshly spawned worker pool.
    engine_backend = resolve_backend(config.engine)
    ga_backend = resolve_kernel_backend(config.nsga2.backend)
    own_executor = executor is None
    executor = executor or make_executor(config.backend, chunk_size=config.chunk_size)
    explorer = DesignSpaceExplorer(
        library,
        config.nsga2,
        cache=cache,
        executor=executor,
        engine=config.engine,
        problem_factory=lambda spec: definition.make_problem(
            spec, library=library, engine=config.engine
        ),
        exhaustive_threshold=config.exhaustive_threshold,
    )
    stats_before = dataclasses.replace(cache.stats) if cache is not None else None

    # One span for the whole campaign: a child when something above us
    # (the job queue's run span) is already tracing, a fresh trace root
    # when run standalone (`repro campaign`).  Span work happens outside
    # all rng draws, so attaching a tracer keeps runs bit-identical.
    tracer = get_tracer()
    campaign_span = tracer.start_span(
        "campaign",
        attributes={
            "problem": config.problem,
            "specs": len(specs),
            "backend": getattr(executor, "name", config.backend),
            "workers": config.workers,
        },
        root_if_orphan=True,
        category="campaign",
    )

    # Resolve metric handles once per campaign; observers fire between
    # generations, outside all rng draws, so instrumenting here keeps
    # the run bit-identical (the ProgressObserver contract).
    registry = get_registry()
    m_generations = registry.counter(
        "repro_campaign_generations_total",
        "GA generations completed across campaigns",
        ("problem", "ga_backend"),
    ).labels(config.problem, ga_backend)
    m_generation_seconds = registry.histogram(
        "repro_campaign_generation_seconds",
        "Wall time of one GA generation",
        ("problem", "ga_backend"),
    ).labels(config.problem, ga_backend)
    m_front_size = registry.gauge(
        "repro_campaign_front_size",
        "Pareto front size reported by the most recent generation",
        ("problem", "ga_backend"),
    ).labels(config.problem, ga_backend)
    m_campaigns = registry.counter(
        "repro_campaigns_total",
        "Campaigns finished, by outcome",
        ("problem", "status", "ga_backend"),
    )
    m_campaign_seconds = registry.histogram(
        "repro_campaign_seconds",
        "End-to-end campaign wall time",
        ("problem", "ga_backend"),
    ).labels(config.problem, ga_backend)

    def emit(event: CampaignEvent) -> None:
        if observer is not None:
            observer(event)

    def hit_rate(progress: GenerationProgress | None = None) -> float | None:
        # The shared evaluation cache's rate over this campaign's time
        # window (counter deltas since the campaign started).  With the
        # cache shared across a server, lookups from campaigns running
        # concurrently in the same window are included — this reports
        # how the shared dedup layer is doing, not a per-campaign
        # measurement.  Uncached campaigns fall back to the GA's own
        # memoisation rate.
        if cache is not None:
            hits = cache.stats.hits - stats_before.hits
            misses = cache.stats.misses - stats_before.misses
            total = hits + misses
            return hits / total if total else 0.0
        return progress.cache_hit_rate if progress is not None else None

    def explore_one(i: int, spec: DcimSpec) -> ExplorationResult | None:
        if should_stop is not None and should_stop():
            return None
        label = definition.spec_label(spec)
        # Small enumerable spaces skip the GA entirely: exhaustive
        # enumeration is exact and (batched) cheaper.  An exhaustive
        # spec emits no GENERATION_DONE events and reports 0
        # generations in its SPEC_* events.
        strategy = explorer.select_strategy(spec)
        spec_generations = (
            0 if strategy == "exhaustive" else config.nsga2.generations
        )
        with tracer.span(
            "spec",
            attributes={"index": i, "spec": label, "strategy": strategy},
            parent=campaign_span,
            category="campaign",
        ) as spec_span:
            return _explore_spec(i, spec, label, strategy, spec_span)

    def _explore_spec(
        i: int, spec: DcimSpec, label: str, strategy: str, spec_span
    ) -> ExplorationResult | None:
        emit(
            CampaignEvent(
                kind=EventKind.SPEC_STARTED,
                spec_index=i,
                spec=label,
                generations=(
                    0 if strategy == "exhaustive" else config.nsga2.generations
                ),
            )
        )
        if strategy == "exhaustive":
            with tracer.span("spec.exhaustive", category="campaign"):
                result = explorer.explore_exhaustive(
                    spec, should_stop=should_stop
                )
            if result.stopped_early:
                spec_span.set_attribute("stopped", True)
                return None
            emit(
                CampaignEvent(
                    kind=EventKind.SPEC_DONE,
                    spec_index=i,
                    spec=label,
                    generation=0,
                    generations=0,
                    evaluations=result.evaluations,
                    front_size=len(result),
                    cache_hit_rate=hit_rate(),
                )
            )
            return result
        last_tick = time.perf_counter()
        # One span per GA generation.  The GA loop is a black box from
        # here, but its observer fires at every generation boundary
        # (outside all rng draws), so the observer closes the finished
        # generation's span and opens — and makes ambient — the next
        # one; executor chunks and cache batches started inside the
        # loop then attach to the right generation automatically.
        gen_holder = [
            tracer.start_span(
                "generation",
                attributes={"generation": 0},
                parent=spec_span,
                category="campaign",
            )
        ]
        set_current_span(gen_holder[0])

        def ga_observer(progress: GenerationProgress) -> None:
            nonlocal last_tick
            now = time.perf_counter()
            m_generations.inc()
            m_generation_seconds.observe(now - last_tick)
            m_front_size.set(progress.front_size)
            last_tick = now
            done_span = gen_holder[0]
            done_span.set_attributes(
                generation=progress.generation,
                evaluations=progress.evaluations,
                front_size=progress.front_size,
            )
            done_span.end()
            next_span = tracer.start_span(
                "generation",
                attributes={"generation": progress.generation + 1},
                parent=spec_span,
                category="campaign",
            )
            gen_holder[0] = next_span
            set_current_span(next_span)
            if observer is not None:
                emit(
                    CampaignEvent(
                        kind=EventKind.GENERATION_DONE,
                        spec_index=i,
                        spec=label,
                        generation=progress.generation,
                        generations=progress.generations,
                        evaluations=progress.evaluations,
                        front_size=progress.front_size,
                        cache_hit_rate=hit_rate(progress),
                    )
                )

        try:
            result = explorer.explore(
                spec,
                seed=config.seed + i,
                observer=ga_observer,
                should_stop=should_stop,
            )
        except BaseException as exc:
            gen_holder[0].end(
                status="error", error=f"{type(exc).__name__}: {exc}"
            )
            raise
        finally:
            # Whatever happened, the ambient span must not leak past
            # this spec into the caller's context.
            set_current_span(spec_span)
        # The span opened after the last observer tick covers the GA's
        # wind-down (final front assembly), not a generation.
        tail_span = gen_holder[0]
        if tail_span is not NULL_SPAN:
            tail_span.name = "spec.finalize"
            tail_span.attributes.pop("generation", None)
        tail_span.end()
        if result.stopped_early:
            spec_span.set_attribute("stopped", True)
            return None
        emit(
            CampaignEvent(
                kind=EventKind.SPEC_DONE,
                spec_index=i,
                spec=label,
                generation=result.generations_run,
                generations=config.nsga2.generations,
                evaluations=result.evaluations,
                front_size=len(result),
                cache_hit_rate=hit_rate(),
            )
        )
        return result

    def explore_in_worker(i: int, spec: DcimSpec) -> ExplorationResult | None:
        # contextvars do not follow threads: spec worker threads start
        # from an empty context, so the campaign span is re-activated
        # explicitly on each side of the pool boundary.
        with use_span(campaign_span):
            return explore_one(i, spec)

    started = time.perf_counter()
    try:
        with contextlib.ExitStack() as stack:
            if cache is not None and config.cache_flush_every:
                # Write-behind for the campaign's duration: misses
                # coalesce into one disk transaction per flush window,
                # and the context's exit flushes even when a spec fails
                # or the campaign is cancelled mid-flight — completed
                # evaluations always land on disk.
                stack.enter_context(
                    cache.write_behind(config.cache_flush_every)
                )
            if config.workers == 1 or len(specs) == 1:
                with use_span(campaign_span):
                    maybe_results = [
                        explore_one(i, spec) for i, spec in enumerate(specs)
                    ]
            else:
                with concurrent.futures.ThreadPoolExecutor(
                    max_workers=min(config.workers, len(specs))
                ) as pool:
                    futures = [
                        pool.submit(explore_in_worker, i, spec)
                        for i, spec in enumerate(specs)
                    ]
                    maybe_results = [f.result() for f in futures]
    except BaseException as exc:
        campaign_span.end(status="error", error=f"{type(exc).__name__}: {exc}")
        raise
    finally:
        if own_executor:
            executor.close()
        if own_cache:
            cache.close()
    wall_time = time.perf_counter() - started

    labels = [definition.spec_label(spec) for spec in specs]
    if any(result is None for result in maybe_results) or (
        should_stop is not None and should_stop()
    ):
        done = sum(result is not None for result in maybe_results)
        message = f"campaign cancelled after {done}/{len(specs)} specs"
        campaign_span.end(status="error", error=message)
        m_campaigns.labels(config.problem, "cancelled", ga_backend).inc()
        if store is not None:
            _record_safely(
                store.record_failure,
                "cancelled",
                message,
                specs=labels,
                name=run_name,
                fingerprint=_campaign_fingerprint(specs, config),
                problem=config.problem,
            )
        raise CampaignCancelled(message)
    results: list[ExplorationResult] = maybe_results

    m_campaigns.labels(config.problem, "done", ga_backend).inc()
    m_campaign_seconds.observe(wall_time)
    merged_points, merged_objs = merge_exploration_results(results)
    emit(
        CampaignEvent(
            kind=EventKind.CAMPAIGN_DONE,
            evaluations=sum(r.evaluations for r in results),
            front_size=len(merged_points),
            cache_hit_rate=hit_rate(),
            wall_time_s=wall_time,
        )
    )
    stats = None
    if cache is not None:
        assert stats_before is not None
        stats = CacheStats(
            hits=cache.stats.hits - stats_before.hits,
            misses=cache.stats.misses - stats_before.misses,
            memory_hits=cache.stats.memory_hits - stats_before.memory_hits,
            disk_hits=cache.stats.disk_hits - stats_before.disk_hits,
            puts=cache.stats.puts - stats_before.puts,
            evictions=cache.stats.evictions - stats_before.evictions,
        )
    campaign_result = CampaignResult(
        results=results,
        merged_points=merged_points,
        merged_objectives=merged_objs,
        evaluations=sum(r.evaluations for r in results),
        cache_stats=stats,
        wall_time_s=wall_time,
        engine_backend=engine_backend,
        problem=config.problem,
        strategies=tuple(r.strategy for r in results),
        ga_backend=ga_backend,
    )
    if store is not None:
        record = _record_safely(
            store.record_response,
            campaign_result.to_response(),
            specs=labels,
            name=run_name,
            fingerprint=_campaign_fingerprint(specs, config),
        )
        if record is not None:
            campaign_result.run_id = record.run_id
    if campaign_result.run_id is not None:
        # Link the trace to the recorded run; the trace sink picks the
        # attribute up when persisting rows into ``trace_spans``.
        campaign_span.set_attribute("run_id", campaign_result.run_id)
    campaign_span.set_attributes(
        evaluations=campaign_result.evaluations,
        front_size=len(merged_points),
    )
    campaign_span.end()
    return campaign_result


def _record_safely(record_fn, *args, **kwargs):
    """Run one store write; a failure must not discard the campaign.

    Returns the :class:`~repro.store.runstore.RunRecord` or ``None``
    (with a :class:`RuntimeWarning`) when the write failed — e.g. a
    locked database or a full disk.
    """
    import warnings

    try:
        return record_fn(*args, **kwargs)
    except Exception as exc:
        warnings.warn(
            f"campaign ran but recording it failed: "
            f"{type(exc).__name__}: {exc}",
            RuntimeWarning,
            stacklevel=3,
        )
        return None


def execute_request(
    request: CampaignRequest,
    library: CellLibrary | None = None,
    cache: EvaluationCache | None = None,
    executor: BatchExecutor | None = None,
    observer: CampaignObserver | None = None,
    should_stop: Callable[[], bool] | None = None,
) -> CampaignResponse:
    """Run one API-level campaign request end to end.

    This is the entry point the job queue (and any network front-end)
    drives: a pure ``CampaignRequest -> CampaignResponse`` function,
    optionally narrating progress through ``observer`` and stopping
    cooperatively when ``should_stop`` returns True (by raising
    :class:`~repro.service.events.CampaignCancelled`).  The request's
    ``problem`` picks the :mod:`repro.problems` registry entry that
    materialises the specs and builds the GA problems.
    """
    definition = get_problem(request.problem)
    specs = [definition.to_spec(spec) for spec in request.specs]
    config = CampaignConfig(
        nsga2=NSGA2Config(
            population_size=request.population_size,
            generations=request.generations,
            backend=request.ga_backend,
        ),
        seed=request.seed,
        workers=request.workers,
        backend=request.backend,
        chunk_size=request.chunk_size,
        engine=request.engine,
        problem=request.problem,
        exhaustive_threshold=request.exhaustive_threshold,
    )
    result = run_campaign(
        specs,
        config,
        library=library,
        cache=cache,
        executor=executor,
        observer=observer,
        should_stop=should_stop,
    )
    return result.to_response()
