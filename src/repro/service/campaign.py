"""Multi-spec DSE campaigns over a shared cache and executor.

A *campaign* explores many :class:`~repro.core.spec.DcimSpec`s — e.g.
every candidate precision for an application, or a Wstore sweep — and
merges the per-spec Pareto fronts into one cross-architecture frontier.
All runs share one :class:`~repro.service.cache.EvaluationCache` and one
batch executor, so overlapping design spaces are evaluated once no
matter how many specs (or repeated campaigns) touch them.

Spec-level sharding uses threads: each worker thread drives its own
NSGA-II run while the genome-level batches fan out through the shared
(serial/thread/process) executor underneath.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.spec import DcimSpec, DesignPoint
from repro.dse.explorer import DesignSpaceExplorer, ExplorationResult
from repro.dse.nsga2 import NSGA2Config
from repro.model.engine import ENGINE_BACKENDS, resolve_backend
from repro.service.api import CampaignRequest, CampaignResponse, FrontierPoint
from repro.service.cache import CacheStats, EvaluationCache
from repro.service.executor import BatchExecutor, make_executor
from repro.tech.cells import CellLibrary

__all__ = ["CampaignConfig", "CampaignResult", "run_campaign", "execute_request"]


@dataclass(frozen=True)
class CampaignConfig:
    """Knobs of one campaign run.

    Attributes:
        nsga2: GA hyper-parameters shared by every spec.
        seed: base seed; spec ``i`` explores with ``seed + i`` so runs
            are reproducible yet decorrelated.
        workers: how many specs are explored concurrently.
        backend: genome-level evaluation backend
            (``serial``/``thread``/``process``); ignored when an
            executor instance is passed to :func:`run_campaign`.
        chunk_size: genomes per executor task (``None`` lets the pool
            size chunks itself); ignored with a caller-provided
            executor.
        engine: cost-engine backend (``auto``/``numpy``/``python``)
            used inside every problem; bit-identical across choices.
    """

    nsga2: NSGA2Config = field(default_factory=NSGA2Config)
    seed: int = 0
    workers: int = 1
    backend: str = "serial"
    chunk_size: int | None = None
    engine: str = "auto"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1 when given")
        if self.engine not in ENGINE_BACKENDS:
            raise ValueError(
                f"unknown engine backend {self.engine!r}; "
                f"choose from {ENGINE_BACKENDS}"
            )


@dataclass
class CampaignResult:
    """Everything one campaign produced.

    Attributes:
        results: per-spec exploration outcomes, in input order.
        merged_points: the cross-architecture non-dominated frontier.
        merged_objectives: matching normalised objective rows.
        evaluations: unique genomes evaluated across all GA runs —
            including those served by the cache (each run's counter is
            cache-agnostic).
        cache_stats: snapshot of the shared cache counters for this
            campaign (``None`` when uncached).
        wall_time_s: end-to-end wall clock.
        engine_backend: which cost-engine backend ran
            (``numpy``/``python``).
    """

    results: list[ExplorationResult]
    merged_points: list[DesignPoint]
    merged_objectives: np.ndarray
    evaluations: int = 0
    cache_stats: CacheStats | None = None
    wall_time_s: float = 0.0
    engine_backend: str = "python"

    @property
    def fresh_evaluations(self) -> int:
        """Objective evaluations actually computed (cache hits excluded).

        Each GA run looks every unique genome up exactly once, so the
        campaign's cache misses are exactly the evaluations that reached
        the estimation models.  Without a cache, every evaluation is
        fresh.
        """
        if self.cache_stats is None:
            return self.evaluations
        return self.cache_stats.misses

    def to_response(self) -> CampaignResponse:
        """Flatten into the JSON-able API record."""
        frontier = tuple(
            FrontierPoint.from_design(point, tuple(row))
            for point, row in zip(self.merged_points, self.merged_objectives)
        )
        return CampaignResponse(
            frontier=frontier,
            evaluations=self.evaluations,
            fresh_evaluations=self.fresh_evaluations,
            per_spec_evaluations=tuple(r.evaluations for r in self.results),
            cache_stats=self.cache_stats.as_dict() if self.cache_stats else None,
            wall_time_s=self.wall_time_s,
            engine_backend=self.engine_backend,
        )


def _merge(results: list[ExplorationResult]) -> tuple[list[DesignPoint], np.ndarray]:
    """Cross-architecture merge, keeping the objective rows alongside.

    Same dominance filter as :meth:`DesignSpaceExplorer.merge_fronts`
    (one :func:`~repro.core.pareto.pareto_front` call over the
    concatenated fronts), but carrying the objective rows through and
    sorting by area like :class:`ExplorationResult` does.
    """
    points: list[DesignPoint] = []
    objectives: list[tuple[float, ...]] = []
    for result in results:
        points.extend(result.points)
        objectives.extend(map(tuple, result.objectives))
    if not points:
        return [], np.empty((0, 0))
    from repro.core.pareto import pareto_front

    merged = pareto_front(list(zip(points, objectives)), objectives)
    merged.sort(key=lambda po: po[1][0])
    merged_points = [p for p, _ in merged]
    merged_objs = np.array([o for _, o in merged], dtype=float)
    return merged_points, merged_objs


def run_campaign(
    specs: list[DcimSpec],
    config: CampaignConfig | None = None,
    library: CellLibrary | None = None,
    cache: EvaluationCache | None = None,
    executor: BatchExecutor | None = None,
) -> CampaignResult:
    """Explore ``specs`` concurrently and merge their Pareto fronts.

    Args:
        specs: the specifications to explore (one GA run each).
        config: campaign sizing/backing (defaults everywhere).
        library: shared normalised cell library.
        cache: shared evaluation cache; campaigns that pass the same
            instance (or the same on-disk path) dedupe work across
            invocations.
        executor: genome-level batch backend; built from
            ``config.backend`` when omitted (and closed on exit — a
            caller-provided executor is left open for reuse).
    """
    if not specs:
        raise ValueError("a campaign needs at least one spec")
    config = config or CampaignConfig()
    library = library or CellLibrary.default()
    # Resolve the engine first: a resolution failure must not leak a
    # freshly spawned worker pool.
    engine_backend = resolve_backend(config.engine)
    own_executor = executor is None
    executor = executor or make_executor(config.backend, chunk_size=config.chunk_size)
    explorer = DesignSpaceExplorer(
        library, config.nsga2, cache=cache, executor=executor, engine=config.engine
    )
    stats_before = dataclasses.replace(cache.stats) if cache is not None else None

    started = time.perf_counter()
    try:
        if config.workers == 1 or len(specs) == 1:
            results = [
                explorer.explore(spec, seed=config.seed + i)
                for i, spec in enumerate(specs)
            ]
        else:
            with concurrent.futures.ThreadPoolExecutor(
                max_workers=min(config.workers, len(specs))
            ) as pool:
                futures = [
                    pool.submit(explorer.explore, spec, config.seed + i)
                    for i, spec in enumerate(specs)
                ]
                results = [f.result() for f in futures]
    finally:
        if own_executor:
            executor.close()
    wall_time = time.perf_counter() - started

    merged_points, merged_objs = _merge(results)
    stats = None
    if cache is not None:
        assert stats_before is not None
        stats = CacheStats(
            hits=cache.stats.hits - stats_before.hits,
            misses=cache.stats.misses - stats_before.misses,
            memory_hits=cache.stats.memory_hits - stats_before.memory_hits,
            disk_hits=cache.stats.disk_hits - stats_before.disk_hits,
            puts=cache.stats.puts - stats_before.puts,
            evictions=cache.stats.evictions - stats_before.evictions,
        )
    return CampaignResult(
        results=results,
        merged_points=merged_points,
        merged_objectives=merged_objs,
        evaluations=sum(r.evaluations for r in results),
        cache_stats=stats,
        wall_time_s=wall_time,
        engine_backend=engine_backend,
    )


def execute_request(
    request: CampaignRequest,
    library: CellLibrary | None = None,
    cache: EvaluationCache | None = None,
    executor: BatchExecutor | None = None,
) -> CampaignResponse:
    """Run one API-level campaign request end to end.

    This is the entry point the job queue (and any future network
    front-end) drives: a pure ``CampaignRequest -> CampaignResponse``
    function.
    """
    specs = [spec.to_spec() for spec in request.specs]
    config = CampaignConfig(
        nsga2=NSGA2Config(
            population_size=request.population_size,
            generations=request.generations,
        ),
        seed=request.seed,
        workers=request.workers,
        backend=request.backend,
        chunk_size=request.chunk_size,
        engine=request.engine,
    )
    result = run_campaign(
        specs, config, library=library, cache=cache, executor=executor
    )
    return result.to_response()
