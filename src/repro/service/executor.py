"""Pluggable batch evaluators for objective evaluation.

Three backends implement one ``evaluate_batch(problem, genomes)``
interface:

* :class:`SerialExecutor` — in-process loop (zero overhead, the
  baseline),
* :class:`ThreadPoolExecutor` — shared-memory workers; useful once the
  estimation models call into native code or the cache disk tier
  dominates,
* :class:`ProcessPoolExecutor` — true parallel CPython workers; the
  problem object is pickled once per chunk.

All backends chunk the genome list so per-task overhead is amortised,
and all preserve input order, which keeps GA runs bit-identical across
backends.  Task granularity is the *chunk*, not the genome: each task
calls the problem's ``evaluate_batch`` once, which hands the whole
chunk to the vectorised :class:`repro.model.engine.CostEngine` — so
parallelism multiplies the batch speedup instead of fragmenting it.
:class:`ProblemEvaluator` binds a backend and an optional
:class:`~repro.service.cache.EvaluationCache` to one problem, exposing
the ``evaluate_batch(genomes)`` hook that :func:`repro.dse.nsga2.nsga2`
injects.
"""

from __future__ import annotations

import concurrent.futures
import math
import os
import threading
import time
from typing import Callable, Protocol, Sequence

from repro.obs.metrics import get_registry
from repro.obs.trace import current_span, get_tracer
from repro.service.cache import EvaluationCache, GenomeKeyer

__all__ = [
    "BatchExecutor",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "ProblemEvaluator",
    "make_executor",
    "chunked",
    "EXECUTOR_BACKENDS",
]

Genome = tuple[int, ...]
Objectives = tuple[float, ...]

#: Backend names accepted by :func:`make_executor` and the CLI.
EXECUTOR_BACKENDS = ("serial", "thread", "process")


def chunked(items: Sequence, size: int) -> list[Sequence]:
    """Split ``items`` into consecutive chunks of at most ``size``."""
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    return [items[i : i + size] for i in range(0, len(items), size)]


def _evaluate_chunk(problem, genomes: Sequence[Genome]) -> list[Objectives]:
    """Worker entry point; module-level so process pools can pickle it.

    One call per chunk: batch-capable problems (``DcimProblem``) ship
    the whole chunk to their cost engine in a single evaluation.
    """
    batch = getattr(problem, "evaluate_batch", None)
    if batch is not None:
        return list(batch(genomes))
    return [problem.evaluate(genome) for genome in genomes]


def _evaluate_chunk_timed(
    problem, genomes: Sequence[Genome]
) -> tuple[float, list[Objectives]]:
    """:func:`_evaluate_chunk` plus its worker-side wall time.

    Module-level and returning plain picklable data, so process pools
    can measure the chunk *where it ran* — the parent observes the
    elapsed time into its own registry (child-side counters would be
    lost with the worker process).
    """
    started = time.perf_counter()
    results = _evaluate_chunk(problem, genomes)
    return time.perf_counter() - started, results


class _ExecutorMetrics:
    """Per-executor metric handles, re-resolved when the registry swaps.

    Families are looked up once per registry identity (not per batch),
    keeping the hot path at two attribute reads plus one identity
    check; :func:`~repro.obs.metrics.set_registry` (e.g. the overhead
    benchmark flipping to the null registry) invalidates the handles.
    """

    __slots__ = ("_registry", "evaluations", "chunk_seconds", "pool_rebuilds")

    def __init__(self) -> None:
        self._registry = None

    def resolve(self, backend: str) -> "_ExecutorMetrics":
        registry = get_registry()
        if registry is not self._registry:
            self._registry = registry
            self.evaluations = registry.counter(
                "repro_evaluations_total",
                "Genomes evaluated through the batch executors",
                ("backend",),
            ).labels(backend)
            self.chunk_seconds = registry.histogram(
                "repro_eval_chunk_seconds",
                "Worker-side latency of one evaluation chunk",
                ("backend",),
            ).labels(backend)
            self.pool_rebuilds = registry.counter(
                "repro_executor_pool_rebuilds_total",
                "Worker pools rebuilt after a BrokenExecutor failure",
                ("backend",),
            ).labels(backend)
        return self


class BatchExecutor(Protocol):
    """Anything that can evaluate many genomes against one problem."""

    name: str

    def evaluate_batch(
        self, problem, genomes: Sequence[Genome]
    ) -> list[Objectives]:
        """Objective vectors for ``genomes``, in input order."""
        ...

    def close(self) -> None:
        """Release worker resources (idempotent)."""
        ...


class SerialExecutor:
    """Evaluate genome chunks in the calling thread.

    By default the whole batch is one engine chunk (the optimal serial
    granularity); an explicit ``chunk_size`` is honoured so chunking
    behaviour can be exercised and benchmarked on any backend.
    """

    name = "serial"

    def __init__(self, chunk_size: int | None = None) -> None:
        self.chunk_size = chunk_size
        self._metrics = _ExecutorMetrics()

    def evaluate_batch(
        self, problem, genomes: Sequence[Genome]
    ) -> list[Objectives]:
        metrics = self._metrics.resolve(self.name)
        if self.chunk_size is None or len(genomes) <= self.chunk_size:
            chunks = [genomes]
        else:
            chunks = chunked(list(genomes), self.chunk_size)
        tracer, trace_parent = get_tracer(), current_span()
        results: list[Objectives] = []
        chunk_times: list[float] = []
        end_times: list[float] | None = (
            [] if trace_parent is not None else None
        )
        for chunk in chunks:
            elapsed, fresh = _evaluate_chunk_timed(problem, chunk)
            chunk_times.append(elapsed)
            results.extend(fresh)
            if end_times is not None:
                # One float per chunk is the entire hot-loop tracing
                # cost; the series records each span back-dated to its
                # true wall-clock slot.
                end_times.append(time.time())
        # One instrument transaction per batch, not per chunk: the
        # histogram still records every per-chunk latency, but the
        # lock/call overhead is paid once.  Chunk spans batch the same
        # way.
        if end_times:
            tracer.record_span_series(
                "executor.chunk",
                chunk_times,
                end_times,
                parent=trace_parent,
                category="executor",
                attributes={"backend": self.name},
                per_span=("genomes", [len(c) for c in chunks]),
            )
        metrics.chunk_seconds.observe_many(chunk_times)
        metrics.evaluations.inc(len(results))
        return results

    def close(self) -> None:
        pass


class _PoolExecutor:
    """Shared chunk-scatter/order-preserving-gather logic for pools."""

    name = "pool"
    _pool_factory: Callable[..., concurrent.futures.Executor]

    def __init__(
        self, workers: int | None = None, chunk_size: int | None = None
    ) -> None:
        self.workers = workers or max(os.cpu_count() or 2, 2)
        self.chunk_size = chunk_size
        self._pool: concurrent.futures.Executor | None = None
        self._pool_lock = threading.Lock()
        self._metrics = _ExecutorMetrics()

    def _ensure_pool(self) -> concurrent.futures.Executor:
        # Campaign workers share one executor; without the lock two
        # threads could each create a pool and leak the loser's workers.
        with self._pool_lock:
            if self._pool is None:
                self._pool = self._pool_factory(max_workers=self.workers)
            return self._pool

    def _rebuild_pool(self) -> None:
        """Drop a broken pool so the next batch spawns fresh workers."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
                self._pool = None

    def _chunk_size_for(self, n: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        # Aim for a few chunks per worker so stragglers even out, while
        # keeping chunks large enough to amortise submission overhead.
        return max(1, math.ceil(n / (4 * self.workers)))

    def _scatter_gather(
        self, problem, chunks: list, timed: bool
    ) -> tuple[list[float], list[float] | None, list[Objectives]]:
        """Submit every chunk and gather results in input order.

        The timed wrapper measures each chunk where it ran (worker
        side); the parent records it — process-pool children would
        lose any metrics (or spans) they created themselves.
        """
        pool = self._ensure_pool()
        futures = [
            pool.submit(_evaluate_chunk_timed, problem, chunk)
            for chunk in chunks
        ]
        results: list[Objectives] = []
        chunk_times: list[float] = []
        end_times: list[float] | None = [] if timed else None
        for future in futures:
            elapsed, fresh = future.result()
            chunk_times.append(elapsed)
            results.extend(fresh)
            if end_times is not None:
                # End time = arrival at the parent; the series record
                # back-dates by the worker-side elapsed time.
                end_times.append(time.time())
        return chunk_times, end_times, results

    def evaluate_batch(
        self, problem, genomes: Sequence[Genome]
    ) -> list[Objectives]:
        if not genomes:
            return []
        metrics = self._metrics.resolve(self.name)
        tracer, trace_parent = get_tracer(), current_span()
        chunks = chunked(list(genomes), self._chunk_size_for(len(genomes)))
        if len(chunks) == 1:
            elapsed, results = _evaluate_chunk_timed(problem, chunks[0])
            metrics.chunk_seconds.observe(elapsed)
            metrics.evaluations.inc(len(chunks[0]))
            if trace_parent is not None:
                tracer.record_span(
                    "executor.chunk",
                    elapsed,
                    attributes={
                        "backend": self.name, "genomes": len(chunks[0]),
                    },
                    parent=trace_parent,
                    category="executor",
                )
            return results
        try:
            chunk_times, end_times, results = self._scatter_gather(
                problem, chunks, timed=trace_parent is not None
            )
        except concurrent.futures.BrokenExecutor as exc:
            # A worker died mid-chunk (OOM kill, hard crash): the pool
            # is unusable and *every* outstanding future raises.  The
            # evaluation is deterministic, so rebuild the pool and
            # retry the whole batch once; a second death is structural
            # and surfaces as a structured failure instead of a hang.
            metrics.pool_rebuilds.inc()
            self._rebuild_pool()
            try:
                chunk_times, end_times, results = self._scatter_gather(
                    problem, chunks, timed=trace_parent is not None
                )
            except concurrent.futures.BrokenExecutor as retry_exc:
                self.close()
                raise RuntimeError(
                    f"{self.name} executor pool died evaluating a batch "
                    f"of {len(genomes)} genomes in {len(chunks)} chunks, "
                    f"and again after rebuilding the pool: "
                    f"{type(retry_exc).__name__}: {retry_exc or exc}"
                ) from retry_exc
        if end_times:
            tracer.record_span_series(
                "executor.chunk",
                chunk_times,
                end_times,
                parent=trace_parent,
                category="executor",
                attributes={"backend": self.name},
                per_span=("genomes", [len(c) for c in chunks]),
            )
        metrics.chunk_seconds.observe_many(chunk_times)
        metrics.evaluations.inc(len(results))
        return results

    def close(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ThreadPoolExecutor(_PoolExecutor):
    """Thread-pool backend (shared memory, no pickling)."""

    name = "thread"
    _pool_factory = staticmethod(concurrent.futures.ThreadPoolExecutor)


class ProcessPoolExecutor(_PoolExecutor):
    """Process-pool backend (true parallelism; problem pickled per chunk)."""

    name = "process"
    _pool_factory = staticmethod(concurrent.futures.ProcessPoolExecutor)


def make_executor(
    backend: str = "serial",
    workers: int | None = None,
    chunk_size: int | None = None,
) -> BatchExecutor:
    """Construct a batch executor by backend name."""
    if backend == "serial":
        return SerialExecutor(chunk_size)
    if backend == "thread":
        return ThreadPoolExecutor(workers, chunk_size)
    if backend == "process":
        return ProcessPoolExecutor(workers, chunk_size)
    raise ValueError(
        f"unknown executor backend {backend!r}; choose from {EXECUTOR_BACKENDS}"
    )


class ProblemEvaluator:
    """Cache-aware batch evaluator bound to one problem.

    This is the object :func:`repro.dse.nsga2.nsga2` accepts as its
    ``evaluator``: a single ``evaluate_batch(genomes)`` call per
    generation that

    1. deduplicates the batch,
    2. serves whatever the shared cache already knows through **one**
       :meth:`~repro.service.cache.EvaluationCache.get_many`,
    3. ships only the genuinely new genomes to the executor backend, and
    4. writes fresh results back through **one**
       :meth:`~repro.service.cache.EvaluationCache.put_many`.

    So a generation costs one batched disk read plus one batched disk
    transaction, never one round trip per genome.

    Args:
        problem: the problem instance (must offer ``evaluate`` or
            ``evaluate_batch``).
        cache: shared evaluation cache; ``None`` disables caching.
        executor: batch backend; defaults to :class:`SerialExecutor`.
        key_fn: maps a genome to a cache key.  Defaults to a
            :class:`~repro.service.cache.GenomeKeyer` over the
            problem's ``spec``/``library`` attributes (the
            :class:`~repro.dse.problem.DcimProblem` shape) — the
            context is hashed once, per-genome keys are one hashlib
            update, and the keys are bit-identical to
            :func:`~repro.service.cache.evaluation_key`.  Problems
            without those attributes run uncached unless a key
            function is supplied.
    """

    def __init__(
        self,
        problem,
        cache: EvaluationCache | None = None,
        executor: BatchExecutor | None = None,
        key_fn: Callable[[Genome], str] | None = None,
    ) -> None:
        self.problem = problem
        self.cache = cache
        self.executor = executor or SerialExecutor()
        if key_fn is None and cache is not None:
            key_fn = self._default_key_fn(problem)
            if key_fn is None:
                self.cache = None
        self.key_fn = key_fn
        #: Genomes actually evaluated (cache misses) through this evaluator.
        self.evaluated = 0

    @staticmethod
    def _default_key_fn(problem) -> Callable[[Genome], str] | None:
        spec = getattr(problem, "spec", None)
        library = getattr(problem, "library", None)
        if spec is None or library is None:
            return None
        return GenomeKeyer.for_problem(spec, library)

    def evaluate_batch(self, genomes: Sequence[Genome]) -> list[Objectives]:
        """Objective vectors for ``genomes``, in input order."""
        unique: dict[Genome, Objectives | None] = dict.fromkeys(genomes)
        pending: list[Genome] = []
        pending_keys: list[str] = []
        if self.cache is not None and self.key_fn is not None:
            order = list(unique)
            keys = [self.key_fn(genome) for genome in order]
            for genome, key, hit in zip(order, keys, self.cache.get_many(keys)):
                if hit is not None:
                    unique[genome] = hit
                else:
                    pending.append(genome)
                    pending_keys.append(key)
        else:
            pending = list(unique)
        if pending:
            fresh = self.executor.evaluate_batch(self.problem, pending)
            self.evaluated += len(pending)
            updates: dict[str, Objectives] = {}
            for i, (genome, objectives) in enumerate(zip(pending, fresh)):
                objectives = tuple(objectives)
                unique[genome] = objectives
                if pending_keys:
                    updates[pending_keys[i]] = objectives
            if updates and self.cache is not None:
                self.cache.put_many(updates)
        return [unique[genome] for genome in genomes]

    def close(self) -> None:
        self.executor.close()
