"""Evaluation service: cached, batched, parallel DSE campaigns.

The service layer turns the per-run, in-memory evaluation loop of the
MOGA explorer into shared infrastructure:

* :mod:`repro.service.cache` — content-addressed persistent evaluation
  cache (memory LRU + JSONL/SQLite disk tier, hit/miss statistics),
* :mod:`repro.service.executor` — pluggable serial / thread-pool /
  process-pool batch evaluators behind one ``evaluate_batch`` interface,
* :mod:`repro.service.campaign` — multi-spec campaign runner that
  shards specs across workers and merges fronts into one
  cross-architecture frontier,
* :mod:`repro.service.jobs` — job queue / background-worker scheduler
  with request deduplication, per-job status/result records, streaming
  progress events and cooperative cancellation,
* :mod:`repro.service.events` — typed, JSON-able campaign progress
  events and the bounded per-job event buffer,
* :mod:`repro.service.server` — asyncio front-end
  (:class:`~repro.service.server.AsyncCampaignService`) plus a
  stdlib-only HTTP/JSON server and client,
* :mod:`repro.service.distributed` — coordinator that shards campaigns
  into leasable per-spec work units (TTL leases, heartbeats, bounded
  retry, idempotent result submission),
* :mod:`repro.service.worker` — the ``repro worker`` loop that leases,
  evaluates and submits units over the HTTP protocol,
* :mod:`repro.service.cache_backends` — pluggable storage backends for
  the evaluation cache (memory/JSONL/SQLite/remote-over-HTTP),
* :mod:`repro.service.api` — typed, JSON round-trippable
  request/response records.
"""

from repro.service.api import (
    SCHEMA_VERSION,
    CampaignRequest,
    CampaignResponse,
    FrontierPoint,
    SpecRequest,
)
from repro.service.cache import (
    CacheBackend,
    CacheStats,
    EvaluationCache,
    JsonlCacheBackend,
    MemoryCacheBackend,
    SqliteCacheBackend,
    evaluation_key,
    stable_hash,
)
from repro.service.cache_backends import RemoteCacheBackend, make_cache
from repro.service.campaign import (
    CampaignConfig,
    CampaignResult,
    execute_request,
    run_campaign,
)
from repro.service.events import (
    CampaignCancelled,
    CampaignEvent,
    EventBuffer,
    EventKind,
)
from repro.service.executor import (
    EXECUTOR_BACKENDS,
    BatchExecutor,
    ProblemEvaluator,
    ProcessPoolExecutor,
    SerialExecutor,
    ThreadPoolExecutor,
    make_executor,
)
from repro.service.distributed import DistributedRunner, WorkCoordinator
from repro.service.jobs import JobQueue, JobRecord, JobStatus
from repro.service.server import (
    AsyncCampaignService,
    CampaignClient,
    CampaignHTTPServer,
    serve,
)
from repro.service.worker import CampaignWorker, worker_cache

__all__ = [
    "SCHEMA_VERSION",
    "CampaignCancelled",
    "CampaignEvent",
    "EventBuffer",
    "EventKind",
    "AsyncCampaignService",
    "CampaignClient",
    "CampaignHTTPServer",
    "serve",
    "CacheBackend",
    "CacheStats",
    "EvaluationCache",
    "JsonlCacheBackend",
    "MemoryCacheBackend",
    "SqliteCacheBackend",
    "RemoteCacheBackend",
    "make_cache",
    "evaluation_key",
    "stable_hash",
    "WorkCoordinator",
    "DistributedRunner",
    "CampaignWorker",
    "worker_cache",
    "BatchExecutor",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "ProblemEvaluator",
    "make_executor",
    "EXECUTOR_BACKENDS",
    "CampaignConfig",
    "CampaignResult",
    "run_campaign",
    "execute_request",
    "JobQueue",
    "JobRecord",
    "JobStatus",
    "SpecRequest",
    "CampaignRequest",
    "CampaignResponse",
    "FrontierPoint",
]
