"""Evaluation service: cached, batched, parallel DSE campaigns.

The service layer turns the per-run, in-memory evaluation loop of the
MOGA explorer into shared infrastructure:

* :mod:`repro.service.cache` — content-addressed persistent evaluation
  cache (memory LRU + JSONL/SQLite disk tier, hit/miss statistics),
* :mod:`repro.service.executor` — pluggable serial / thread-pool /
  process-pool batch evaluators behind one ``evaluate_batch`` interface,
* :mod:`repro.service.campaign` — multi-spec campaign runner that
  shards specs across workers and merges fronts into one
  cross-architecture frontier,
* :mod:`repro.service.jobs` — job queue with request deduplication and
  per-job status/result records,
* :mod:`repro.service.api` — typed, JSON round-trippable
  request/response records.
"""

from repro.service.api import (
    CampaignRequest,
    CampaignResponse,
    FrontierPoint,
    SpecRequest,
)
from repro.service.cache import (
    CacheStats,
    EvaluationCache,
    evaluation_key,
    stable_hash,
)
from repro.service.campaign import (
    CampaignConfig,
    CampaignResult,
    execute_request,
    run_campaign,
)
from repro.service.executor import (
    EXECUTOR_BACKENDS,
    BatchExecutor,
    ProblemEvaluator,
    ProcessPoolExecutor,
    SerialExecutor,
    ThreadPoolExecutor,
    make_executor,
)
from repro.service.jobs import JobQueue, JobRecord, JobStatus

__all__ = [
    "CacheStats",
    "EvaluationCache",
    "evaluation_key",
    "stable_hash",
    "BatchExecutor",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "ProblemEvaluator",
    "make_executor",
    "EXECUTOR_BACKENDS",
    "CampaignConfig",
    "CampaignResult",
    "run_campaign",
    "execute_request",
    "JobQueue",
    "JobRecord",
    "JobStatus",
    "SpecRequest",
    "CampaignRequest",
    "CampaignResponse",
    "FrontierPoint",
]
