"""Worker process for distributed campaigns.

``repro worker --url http://coordinator:8000`` connects to a serving
coordinator (``repro serve --workers-remote``), performs the handshake
(``GET /api/healthz`` + ``POST /api/workers``), then loops: lease a
work unit, evaluate it through the ordinary
:func:`~repro.service.campaign.run_campaign` machinery, submit the
per-spec front back, repeat.  A daemon heartbeat thread renews the
worker's leases at a third of the lease TTL; units the coordinator
reports as *lost* (lease expired and reassigned, or campaign
cancelled) are abandoned at the next generation boundary through the
campaign's ``should_stop`` hook.

Results are deterministic, so the worker needs no coordination beyond
the lease: the unit's request payload carries the spec and the rebased
seed, and the evaluation is bit-identical wherever it runs.  The
evaluation cache defaults to the coordinator's own dedup layer (the
``remote`` backend speaking ``/api/cache`` — a genome any worker
evaluated is a cache hit for every other worker) and can instead be a
local file or memory-only.
"""

from __future__ import annotations

import threading
import time

from repro.obs.log import JsonLogger, get_logger
from repro.obs.trace import get_tracer, parse_traceparent, use_span
from repro.problems import get_problem
from repro.service.api import CampaignRequest
from repro.service.cache import EvaluationCache
from repro.service.campaign import CampaignConfig, run_campaign
from repro.service.events import CampaignCancelled
from repro.tech.cells import CellLibrary

__all__ = ["CampaignWorker", "worker_cache"]


def worker_cache(
    spec: str | None, base_url: str, **kwargs
) -> EvaluationCache | None:
    """Build a worker's evaluation cache from its ``--cache`` spec.

    ``"remote"`` (the default) shares the coordinator's dedup layer
    over ``/api/cache``; ``"memory"`` is process-local; ``"none"``
    disables caching; anything else is a local cache file path.
    """
    from repro.service.cache_backends import RemoteCacheBackend, make_cache

    if spec == "none":
        return None
    if spec is None or spec == "remote":
        return EvaluationCache(
            backend=RemoteCacheBackend(base_url), **kwargs
        )
    return make_cache(spec, **kwargs)


class CampaignWorker:
    """One lease/evaluate/report loop against a coordinator.

    Args:
        url: coordinator base URL.
        cache: shared evaluation cache (see :func:`worker_cache`);
            ``None`` evaluates uncached.
        worker_id: stable identity to register under; ``None`` lets
            the coordinator assign one.
        poll_s: idle sleep between lease attempts when no work is
            available.
        max_units: stop after completing this many units (``None`` =
            run forever).
        exit_idle_s: stop after this long without leasing a unit
            (``None`` = wait forever); how the example and smoke
            workers terminate once a campaign drains.
        library: normalised cell library (defaults to the bundled one —
            workers must share the coordinator's library for cache keys
            and results to line up).
        client: a pre-built :class:`~repro.service.server.
            CampaignClient` (tests inject one; normally built from
            ``url`` with retries enabled).
    """

    def __init__(
        self,
        url: str,
        cache: EvaluationCache | None = None,
        worker_id: str | None = None,
        poll_s: float = 0.5,
        max_units: int | None = None,
        exit_idle_s: float | None = None,
        library: CellLibrary | None = None,
        logger: JsonLogger | None = None,
        client=None,
    ) -> None:
        from repro.service.server import CampaignClient

        self.url = url.rstrip("/")
        self.client = client or CampaignClient(self.url, retries=4)
        self.cache = cache
        self.worker_id = worker_id
        self.poll_s = poll_s
        self.max_units = max_units
        self.exit_idle_s = exit_idle_s
        self.library = library or CellLibrary.default()
        self._log = logger if logger is not None else get_logger("repro.worker")
        self.lease_ttl_s = 30.0
        self.units_done = 0
        self.units_failed = 0
        self.units_lost = 0
        self._stopped = threading.Event()
        self._active_lock = threading.Lock()
        self._active_units: set[str] = set()
        self._lost_units: set[str] = set()
        self._heartbeat_thread: threading.Thread | None = None

    # Lifecycle -------------------------------------------------------------
    def stop(self) -> None:
        """Ask the loop (and any in-flight evaluation) to wind down."""
        self._stopped.set()

    def handshake(self) -> dict:
        """Health-check the coordinator and register this worker."""
        health = self.client.health()
        if health.get("status") != "ok":
            raise RuntimeError(f"coordinator unhealthy: {health}")
        answer = self.client.register_worker(
            worker_id=self.worker_id,
            meta={"host": _hostname(), "pid": _pid()},
        )
        self.worker_id = answer["worker_id"]
        self.lease_ttl_s = float(answer.get("lease_ttl_s") or self.lease_ttl_s)
        self._log.info(
            "worker_handshake",
            worker_id=self.worker_id,
            coordinator=self.url,
            version=health.get("version"),
            lease_ttl_s=self.lease_ttl_s,
        )
        return answer

    def run(self) -> dict:
        """Drain units until stopped / idle-timeout / unit budget.

        Returns a summary dict (units done/failed/lost).
        """
        self.handshake()
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop, name="worker-heartbeat", daemon=True
        )
        self._heartbeat_thread.start()
        last_lease = time.monotonic()
        errors = 0
        try:
            while not self._stopped.is_set():
                if (
                    self.max_units is not None
                    and self.units_done >= self.max_units
                ):
                    break
                try:
                    unit = self.client.lease_unit(self.worker_id)
                    errors = 0
                except Exception as exc:
                    # The client already retried with backoff; repeated
                    # hard failures mean the coordinator is gone.
                    errors += 1
                    self._log.warning(
                        "lease_error", error=str(exc), consecutive=errors
                    )
                    if errors >= 5:
                        raise RuntimeError(
                            f"coordinator unreachable: {exc}"
                        ) from exc
                    unit = None
                if unit is None:
                    if (
                        self.exit_idle_s is not None
                        and time.monotonic() - last_lease > self.exit_idle_s
                    ):
                        break
                    self._stopped.wait(self.poll_s)
                    continue
                last_lease = time.monotonic()
                self._evaluate_unit(unit)
        finally:
            self._stopped.set()
        summary = {
            "worker_id": self.worker_id,
            "units_done": self.units_done,
            "units_failed": self.units_failed,
            "units_lost": self.units_lost,
        }
        self._log.info("worker_exit", **summary)
        return summary

    # Heartbeats ------------------------------------------------------------
    def _heartbeat_loop(self) -> None:
        while not self._stopped.is_set():
            interval = max(0.05, self.lease_ttl_s / 3.0)
            self._stopped.wait(interval)
            if self._stopped.is_set():
                return
            with self._active_lock:
                active = list(self._active_units)
            if not active:
                continue
            try:
                answer = self.client.worker_heartbeat(self.worker_id, active)
            except Exception as exc:
                self._log.warning("heartbeat_error", error=str(exc))
                continue
            lost = set(answer.get("lost") or ())
            if lost:
                with self._active_lock:
                    self._lost_units |= lost
                self._log.info("units_lost", units=sorted(lost))

    def _unit_lost(self, unit_id: str) -> bool:
        with self._active_lock:
            return unit_id in self._lost_units

    # Evaluation ------------------------------------------------------------
    def _evaluate_unit(self, unit: dict) -> None:
        unit_id = unit["unit_id"]
        with self._active_lock:
            self._active_units.add(unit_id)
            self._lost_units.discard(unit_id)
        tracer = get_tracer()
        span = tracer.start_root(
            "worker.unit",
            attributes={
                "unit_id": unit_id,
                "spec": unit.get("spec"),
                "worker_id": self.worker_id,
                "attempt": unit.get("attempt"),
            },
            parent_context=parse_traceparent(unit.get("traceparent")),
            category="distributed",
        )
        started = time.perf_counter()
        try:
            with use_span(span):
                payload = self._run_unit(unit_id, unit["request"])
        except CampaignCancelled:
            # Lost lease (or worker shutdown): nothing to report — the
            # coordinator already reassigned or cancelled the unit.
            self.units_lost += 1
            span.end(status="error", error="lease lost")
            self._log.info("unit_abandoned", unit_id=unit_id)
            with self._active_lock:
                self._active_units.discard(unit_id)
                self._lost_units.discard(unit_id)
            return
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
            span.end(status="error", error=error)
            self.units_failed += 1
            payload = {"status": "failed", "error": error}
        else:
            payload["wall_time_s"] = time.perf_counter() - started
            span.set_attributes(
                evaluations=payload.get("evaluations"),
                front_size=len(payload.get("front") or ()),
            )
            span.end()
        finally:
            with self._active_lock:
                self._active_units.discard(unit_id)
                self._lost_units.discard(unit_id)
        try:
            answer = self.client.submit_unit_result(
                self.worker_id, unit_id, payload
            )
        except Exception as exc:
            # The lease will expire and the unit will be requeued; the
            # next completion is idempotent on the unit id.
            self._log.warning(
                "submit_error", unit_id=unit_id, error=str(exc)
            )
            return
        if payload.get("status") == "done" and answer.get("accepted"):
            self.units_done += 1
        self._log.info(
            "unit_submitted",
            unit_id=unit_id,
            status=payload.get("status"),
            accepted=answer.get("accepted"),
            duplicate=answer.get("duplicate"),
        )

    def _run_unit(self, unit_id: str, request_payload: dict) -> dict:
        """Evaluate one single-spec unit; returns the result payload.

        The unit request already carries the rebased seed, so the
        worker runs a plain one-spec campaign and reports that spec's
        *unmerged* front — merging across specs happens once, at the
        coordinator, exactly like the in-process path.
        """
        request = CampaignRequest.from_dict(dict(request_payload))
        definition = get_problem(request.problem)
        specs = [definition.to_spec(spec) for spec in request.specs]
        from repro.dse.nsga2 import NSGA2Config

        config = CampaignConfig(
            nsga2=NSGA2Config(
                population_size=request.population_size,
                generations=request.generations,
                backend=request.ga_backend,
            ),
            seed=request.seed,
            workers=1,
            backend=request.backend,
            chunk_size=request.chunk_size,
            engine=request.engine,
            problem=request.problem,
            exhaustive_threshold=request.exhaustive_threshold,
        )
        result = run_campaign(
            specs,
            config,
            library=self.library,
            cache=self.cache,
            should_stop=lambda: (
                self._stopped.is_set() or self._unit_lost(unit_id)
            ),
        )
        exploration = result.results[0]
        front = [
            definition.frontier_point(point, tuple(row)).to_dict()
            for point, row in zip(exploration.points, exploration.objectives)
        ]
        return {
            "status": "done",
            "front": front,
            "evaluations": exploration.evaluations,
            "generations_run": exploration.generations_run,
            "strategy": exploration.strategy,
            "engine_backend": result.engine_backend,
            "ga_backend": result.ga_backend,
            "cache_stats": (
                result.cache_stats.as_dict()
                if result.cache_stats is not None
                else None
            ),
        }


def _hostname() -> str:
    import socket

    try:
        return socket.gethostname()
    except Exception:
        return "unknown"


def _pid() -> int:
    import os

    return os.getpid()
