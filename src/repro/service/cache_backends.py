"""Cache backends beyond the built-in disk tiers.

The interesting one is :class:`RemoteCacheBackend`: a
:class:`~repro.service.cache.CacheBackend` that speaks batched
``get_many``/``put_many`` over a coordinator's ``/api/cache`` JSON
endpoints, so N worker processes share **one** dedup layer — a genome
any worker evaluated is a cache hit for every other worker.  Fronted
by the :class:`~repro.service.cache.EvaluationCache` memory LRU, each
generation costs the worker one HTTP round trip for lookups and one
for stores, mirroring the batch-first disk tiers.

:func:`make_cache` turns the CLI's cache spec strings into configured
caches: ``memory``, a file path (jsonl/sqlite by suffix), or
``remote:http://host:port``.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from repro.service.cache import EvaluationCache, Objectives

__all__ = ["RemoteCacheBackend", "make_cache"]

#: Spec prefix selecting the remote backend (``remote:http://...``).
_REMOTE_PREFIX = "remote:"


class RemoteCacheBackend:
    """Batch-first cache tier speaking the server's JSON envelope.

    Talks to the ``POST /api/cache/get_many`` / ``put_many`` endpoints
    of a :class:`~repro.service.server.CampaignHTTPServer` started with
    a shared cache.  Transient connection errors retry with exponential
    backoff through the underlying
    :class:`~repro.service.server.CampaignClient`.

    ``items()`` is deliberately unsupported — enumerating a remote
    dedup layer over HTTP is an anti-pattern; run ``repro cache``
    tooling against the server's own cache file instead.
    """

    name = "remote"

    def __init__(
        self,
        url: str,
        timeout: float = 30.0,
        retries: int = 3,
        client=None,
    ) -> None:
        from repro.service.server import CampaignClient

        self.url = url.rstrip("/")
        self._client = client or CampaignClient(
            self.url, timeout=timeout, retries=retries
        )
        #: Server-reported entry count, refreshed by every round trip —
        #: so ``len()`` (metrics collectors scrape it) never does I/O.
        self._entries_hint = 0

    def get(self, key: str) -> Objectives | None:
        return self.get_many([key]).get(key)

    def get_many(self, keys: Sequence[str]) -> dict[str, Objectives]:
        if not keys:
            return {}
        answer = self._client.cache_get_many(list(keys))
        self._entries_hint = int(answer.get("entries") or self._entries_hint)
        return {
            key: tuple(values)
            for key, values in (answer.get("found") or {}).items()
        }

    def put(self, key: str, objectives: Objectives) -> None:
        self.put_many({key: objectives})

    def put_many(self, entries: Mapping[str, Objectives]) -> None:
        if not entries:
            return
        answer = self._client.cache_put_many(
            {key: list(values) for key, values in entries.items()}
        )
        self._entries_hint = int(answer.get("entries") or self._entries_hint)

    def compact(self) -> dict:
        return {"backend": self.name, "url": self.url}

    def __len__(self) -> int:
        return self._entries_hint

    def items(self) -> Iterator[tuple[str, Objectives]]:
        raise NotImplementedError(
            "RemoteCacheBackend does not enumerate entries; "
            "inspect the server's cache file directly"
        )

    def close(self) -> None:
        pass


def make_cache(
    spec: str | None,
    *,
    flush_every: int | None = None,
    registry=None,
) -> EvaluationCache:
    """Build an :class:`EvaluationCache` from a CLI cache spec.

    * ``None`` / ``""`` / ``"memory"`` — memory-only cache;
    * ``"remote:http://host:port"`` (or a bare ``http(s)://`` URL) —
      the server-shared :class:`RemoteCacheBackend`;
    * anything else — a local cache file (jsonl or sqlite by suffix).
    """
    if not spec or spec == "memory":
        return EvaluationCache(flush_every=flush_every, registry=registry)
    if spec.startswith(_REMOTE_PREFIX):
        spec = spec[len(_REMOTE_PREFIX):]
    if spec.startswith(("http://", "https://")):
        return EvaluationCache(
            backend=RemoteCacheBackend(spec),
            flush_every=flush_every,
            registry=registry,
        )
    return EvaluationCache(spec, flush_every=flush_every, registry=registry)
