"""Pareto dominance, front extraction and front quality metrics.

Implements Eq. (1) of the paper (Pareto dominance in a minimisation
context) plus the utilities the explorer and the distillation step rely
on: non-dominated filtering, hypervolume (for front-quality ablations)
and knee-point selection.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TypeVar

import numpy as np

__all__ = [
    "dominates",
    "dominance_matrix",
    "dominated_flags",
    "pareto_mask",
    "pareto_front",
    "hypervolume",
    "knee_point",
    "normalize_objectives",
]

T = TypeVar("T")

#: Candidate rows per broadcasting block in :func:`dominated_flags`.
#: Bounds the ``(n, chunk, m)`` comparison intermediates to a few tens
#: of MB no matter how large the front grows.
_DOMINANCE_CHUNK = 1024


def dominates(u: Sequence[float], v: Sequence[float]) -> bool:
    """Eq. (1): ``u`` Pareto-dominates ``v`` (all <=, at least one <).

    Both vectors are minimised component-wise and must share a length.
    """
    if len(u) != len(v):
        raise ValueError(f"objective vectors differ in length: {len(u)} vs {len(v)}")
    not_worse = all(a <= b for a, b in zip(u, v))
    strictly_better = any(a < b for a, b in zip(u, v))
    return not_worse and strictly_better


def dominance_matrix(objectives: np.ndarray) -> np.ndarray:
    """Full ``(n, n)`` boolean matrix with ``D[i, j] = row i dominates row j``.

    One O(M·N²) broadcast instead of N² Python-level comparisons; this
    is the array kernel the GA's non-dominated sort
    (:mod:`repro.dse.kernels`) and :func:`pareto_mask` are built on.
    The diagonal is always False (nothing dominates itself — equal rows
    have no strictly-better component).
    """
    points = np.asarray(objectives, dtype=float)
    if points.ndim != 2:
        raise ValueError(f"expected a 2-D objective array, got shape {points.shape}")
    left = points[:, None, :]
    right = points[None, :, :]
    return (left <= right).all(axis=2) & (left < right).any(axis=2)


def dominated_flags(objectives: np.ndarray) -> np.ndarray:
    """Boolean vector: row ``j`` is strictly dominated by some other row.

    Evaluates the dominance matrix in column blocks of
    :data:`_DOMINANCE_CHUNK` candidates, so memory stays bounded for
    large merged fronts while small inputs still run as one broadcast.
    """
    points = np.asarray(objectives, dtype=float)
    if points.ndim != 2:
        raise ValueError(f"expected a 2-D objective array, got shape {points.shape}")
    n = len(points)
    dominated = np.zeros(n, dtype=bool)
    for start in range(0, n, _DOMINANCE_CHUNK):
        block = points[start:start + _DOMINANCE_CHUNK]
        left = points[:, None, :]
        right = block[None, :, :]
        beats = (left <= right).all(axis=2) & (left < right).any(axis=2)
        dominated[start:start + _DOMINANCE_CHUNK] = beats.any(axis=0)
    return dominated


def pareto_mask(objectives: np.ndarray) -> np.ndarray:
    """Boolean mask of non-dominated rows of an ``(n, m)`` objective array.

    Duplicate rows are all kept (none strictly dominates its twin).
    Built on :func:`dominated_flags`: a dominated dominator changes
    nothing (dominance is transitive, so anything it beats is also
    beaten by a non-dominated row), which is why one vectorised pass
    replaces the old row-by-row elimination loop exactly.
    """
    return ~dominated_flags(objectives)


def pareto_front(
    items: Sequence[T], objectives: Sequence[Sequence[float]]
) -> list[T]:
    """Return the non-dominated subset of ``items``.

    Args:
        items: candidate objects.
        objectives: one minimised objective vector per item.
    """
    if len(items) != len(objectives):
        raise ValueError("items and objectives must have the same length")
    if not items:
        return []
    mask = pareto_mask(np.asarray(objectives, dtype=float))
    return [item for item, keep in zip(items, mask) if keep]


def normalize_objectives(objectives: np.ndarray) -> np.ndarray:
    """Scale each objective column to [0, 1] (constant columns become 0)."""
    points = np.asarray(objectives, dtype=float)
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    return (points - lo) / span


def hypervolume(objectives: np.ndarray, reference: Sequence[float]) -> float:
    """Hypervolume dominated by a front w.r.t. a reference point.

    Exact inclusion-exclusion-free sweep for 2-D fronts; Monte-Carlo-free
    recursive slicing (WFG-style) for higher dimensions.  All objectives
    minimised; points beyond the reference are clipped out.
    """
    points = np.asarray(objectives, dtype=float)
    ref = np.asarray(reference, dtype=float)
    if points.ndim != 2 or points.shape[1] != len(ref):
        raise ValueError("objectives and reference dimensionality mismatch")
    points = points[(points < ref).all(axis=1)]
    if len(points) == 0:
        return 0.0
    points = points[pareto_mask(points)]
    if points.shape[1] == 1:
        return float(ref[0] - points[:, 0].min())
    if points.shape[1] == 2:
        order = np.argsort(points[:, 0])
        pts = points[order]
        volume = 0.0
        prev_y = ref[1]
        for x, y in pts:
            volume += (ref[0] - x) * (prev_y - y)
            prev_y = y
        return float(volume)
    # WFG-style recursive slicing on the last objective.
    order = np.argsort(points[:, -1])
    pts = points[order]
    volume = 0.0
    for i, point in enumerate(pts):
        upper = ref[-1] if i == len(pts) - 1 else pts[i + 1, -1]
        slab = upper - point[-1]
        if slab <= 0:
            continue
        slice_pts = pts[: i + 1, :-1]
        volume += slab * hypervolume(slice_pts, ref[:-1])
    return float(volume)


def knee_point(objectives: np.ndarray) -> int:
    """Index of the knee of a front: closest to the normalised ideal point.

    A common automatic trade-off pick when the user gives no preference.
    """
    points = np.asarray(objectives, dtype=float)
    if points.ndim != 2 or len(points) == 0:
        raise ValueError("need a non-empty 2-D objective array")
    unit = normalize_objectives(points)
    distance = np.linalg.norm(unit, axis=1)
    return int(np.argmin(distance))
