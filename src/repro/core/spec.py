"""User specification and concrete design points.

A :class:`DcimSpec` is what the user gives the compiler (Fig. 4, "User
Defined" inputs): the number of stored weights ``Wstore``, a computing
precision, and the design-space bounds the paper applies during
exploration (``N > 4*Bw``, ``L <= 64``, ``H <= 2048``).

A :class:`DesignPoint` is one concrete candidate: an architecture
template plus its parameters ``(N, H, L, k)``.  It knows how to evaluate
its own estimation model and physical metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.precision import Precision, parse_precision
from repro.model.floating import fp_macro_cost, fp_weights_stored, validate_fp_params
from repro.model.integer import int_macro_cost, int_weights_stored, validate_int_params
from repro.model.macro import MacroCost
from repro.model.metrics import MacroMetrics, evaluate_macro
from repro.tech.cells import CellLibrary
from repro.tech.technology import Technology

__all__ = ["DcimSpec", "DesignPoint", "INT_ARCH", "FP_ARCH"]

#: Architecture template names.
INT_ARCH = "int-mul"
FP_ARCH = "fp-prealign"


@dataclass(frozen=True)
class DcimSpec:
    """Application requirements handed to the compiler.

    Attributes:
        wstore: number of weights the macro must store.
        precision: computing precision (``Precision`` or name).
        max_l: upper bound on compute-unit sharing ``L`` (paper: 64).
        max_h: upper bound on column height ``H`` (paper: 2048).
        min_n_factor: lower bound factor for columns: ``N > min_n_factor
            * Bw`` (paper: 4), which avoids degenerate narrow arrays.
        max_n: optional upper bound on the column count ``N`` (the paper
            leaves N unbounded above; a physical die budget may not).
    """

    wstore: int
    precision: Precision
    max_l: int = 64
    max_h: int = 2048
    min_n_factor: int = 4
    max_n: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "precision", parse_precision(self.precision))
        if self.wstore < 1:
            raise ValueError(f"wstore must be >= 1, got {self.wstore}")
        if self.max_l < 1 or self.max_h < 1 or self.min_n_factor < 0:
            raise ValueError("spec bounds must be positive")
        if self.max_n is not None and self.max_n < self.min_n:
            raise ValueError(
                f"max_n={self.max_n} conflicts with the lower bound N>={self.min_n}"
            )

    @classmethod
    def for_weights(cls, count: int, precision: Precision | str, **bounds) -> "DcimSpec":
        """Spec for an arbitrary weight count, rounded up to a power of two.

        The exponent-encoded design space requires a power-of-two
        ``Wstore``; real layers rarely oblige, so this rounds up (the
        surplus rows/columns are padding the mapper accounts for).
        """
        import math

        if count < 1:
            raise ValueError(f"weight count must be >= 1, got {count}")
        wstore = 1 << max(math.ceil(math.log2(count)), 0)
        return cls(wstore=wstore, precision=precision, **bounds)

    @property
    def arch(self) -> str:
        """Architecture template implied by the precision."""
        return FP_ARCH if self.precision.is_float else INT_ARCH

    @property
    def min_n(self) -> int:
        """Smallest admissible column count ``N``."""
        return self.min_n_factor * self.precision.weight_bits + 1

    @property
    def sram_bits(self) -> int:
        """Required SRAM capacity: ``Wstore * Bw`` bits."""
        return self.wstore * self.precision.weight_bits


@dataclass(frozen=True)
class DesignPoint:
    """One concrete DCIM design: an architecture plus its parameters.

    Attributes:
        precision: the computing precision.
        n: column count.
        h: column height.
        l: weights per compute unit.
        k: input bits per cycle.
    """

    precision: Precision
    n: int
    h: int
    l: int
    k: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "precision", parse_precision(self.precision))
        self.validate()

    # Structure -----------------------------------------------------------
    @property
    def arch(self) -> str:
        """Architecture template name."""
        return FP_ARCH if self.precision.is_float else INT_ARCH

    @property
    def wstore(self) -> int:
        """Weights stored by this design."""
        p = self.precision
        if p.is_float:
            return fp_weights_stored(self.n, self.h, self.l, p.mantissa_bits)
        return int_weights_stored(self.n, self.h, self.l, p.bits)

    @property
    def sram_bits(self) -> int:
        """SRAM bit-cells in the array."""
        return self.n * self.h * self.l

    def validate(self) -> None:
        """Check architecture constraints; raises ``ValueError`` if broken."""
        p = self.precision
        if p.is_float:
            validate_fp_params(
                self.n, self.h, self.l, self.k, p.exponent_bits, p.mantissa_bits
            )
        else:
            validate_int_params(self.n, self.h, self.l, self.k, p.bits, p.bits)

    def satisfies(self, spec: DcimSpec) -> bool:
        """True when this design meets a spec's storage and bounds."""
        return (
            self.precision == spec.precision
            and self.wstore == spec.wstore
            and self.l <= spec.max_l
            and self.h <= spec.max_h
            and self.n >= spec.min_n
            and (spec.max_n is None or self.n <= spec.max_n)
        )

    # Evaluation -----------------------------------------------------------
    def macro_cost(self, lib: CellLibrary | None = None) -> MacroCost:
        """Evaluate the estimation model (Tables V/VI) for this design."""
        lib = lib or CellLibrary.default()
        p = self.precision
        if p.is_float:
            return fp_macro_cost(
                lib,
                n=self.n,
                h=self.h,
                l=self.l,
                k=self.k,
                be=p.exponent_bits,
                bm=p.mantissa_bits,
            )
        return int_macro_cost(
            lib, n=self.n, h=self.h, l=self.l, k=self.k, bx=p.bits, bw=p.bits
        )

    def metrics(
        self, tech: Technology, lib: CellLibrary | None = None
    ) -> MacroMetrics:
        """Physical metrics of this design on a technology node."""
        return evaluate_macro(self.macro_cost(lib), tech)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.arch} {self.precision.name} N={self.n} H={self.h} "
            f"L={self.l} k={self.k} Wstore={self.wstore}"
        )
