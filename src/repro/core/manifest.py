"""Artifact manifests: persist a compilation to a workspace directory.

``write_artifacts`` lays a compilation result out the way a tapeout
workspace would: RTL files, the testbench, the DEF layout, the cell
library, reports, and a ``manifest.json`` that records the spec, the
chosen design and its metrics so a later session (or another tool) can
reload the design without re-running the explorer.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.core.precision import parse_precision
from repro.core.spec import DcimSpec, DesignPoint
from repro.core.compiler import CompilationResult
from repro.reporting.power import full_report
from repro.rtl.generator import write_bundle
from repro.tech.cells import CellLibrary
from repro.tech.liberty import dump_library
from repro.tech.technology import Technology

__all__ = [
    "design_to_dict",
    "design_from_dict",
    "spec_to_dict",
    "spec_from_dict",
    "write_artifacts",
    "load_manifest",
]

MANIFEST_VERSION = 1


def design_to_dict(design: DesignPoint) -> dict:
    """JSON-able description of a design point."""
    return {
        "precision": design.precision.name,
        "n": design.n,
        "h": design.h,
        "l": design.l,
        "k": design.k,
    }


def design_from_dict(data: dict) -> DesignPoint:
    """Inverse of :func:`design_to_dict` (validates on construction)."""
    return DesignPoint(
        precision=parse_precision(data["precision"]),
        n=int(data["n"]),
        h=int(data["h"]),
        l=int(data["l"]),
        k=int(data["k"]),
    )


def spec_to_dict(spec: DcimSpec) -> dict:
    """JSON-able description of a specification."""
    return {
        "wstore": spec.wstore,
        "precision": spec.precision.name,
        "max_l": spec.max_l,
        "max_h": spec.max_h,
        "min_n_factor": spec.min_n_factor,
        "max_n": spec.max_n,
    }


def spec_from_dict(data: dict) -> DcimSpec:
    """Inverse of :func:`spec_to_dict`."""
    return DcimSpec(
        wstore=int(data["wstore"]),
        precision=parse_precision(data["precision"]),
        max_l=int(data["max_l"]),
        max_h=int(data["max_h"]),
        min_n_factor=int(data["min_n_factor"]),
        max_n=None if data.get("max_n") is None else int(data["max_n"]),
    )


def write_artifacts(
    result: CompilationResult,
    out_dir: str | Path,
    tech: Technology,
    library: CellLibrary | None = None,
) -> Path:
    """Write the full artifact tree for a compilation.

    Returns the manifest path.  Layout::

        out_dir/
          manifest.json      spec + design + metrics + file index
          rtl/*.v, *.f       generated Verilog (when present)
          rtl/tb_*.v         self-checking testbench (integer designs)
          layout.def         mock-P&R DEF dump (when present)
          cells.lib          the cell library used
          reports/macro.rpt  area/timing/power report
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    files: list[str] = []

    if result.rtl is not None:
        for path in write_bundle(result.rtl, out / "rtl"):
            files.append(str(path.relative_to(out)))
        if not result.selected.precision.is_float:
            from repro.rtl.testbench import generate_int_testbench

            tb_path = out / "rtl" / f"tb_{result.rtl.top}.v"
            tb_path.write_text(generate_int_testbench(result.rtl))
            files.append(str(tb_path.relative_to(out)))
    if result.layout is not None:
        (out / "layout.def").write_text(result.layout.def_text)
        files.append("layout.def")

    (out / "cells.lib").write_text(dump_library(library or CellLibrary.default()))
    files.append("cells.lib")

    reports = out / "reports"
    reports.mkdir(exist_ok=True)
    (reports / "macro.rpt").write_text(
        full_report(result.selected.macro_cost(library), tech) + "\n"
    )
    files.append("reports/macro.rpt")

    manifest = {
        "version": MANIFEST_VERSION,
        "tool": "sega-dcim-repro",
        "spec": spec_to_dict(result.spec),
        "design": design_to_dict(result.selected),
        "metrics": dataclasses.asdict(result.metrics),
        "technology": tech.name,
        "frontier_size": len(result.exploration.points),
        "frontier": [design_to_dict(p) for p in result.exploration.points],
        "files": files,
    }
    manifest_path = out / "manifest.json"
    manifest_path.write_text(json.dumps(manifest, indent=2) + "\n")
    return manifest_path


def load_manifest(path: str | Path) -> dict:
    """Load a manifest and re-hydrate its design objects.

    Returns the raw dict with ``spec`` and ``design`` replaced by live
    :class:`DcimSpec` / :class:`DesignPoint` objects (and ``frontier``
    by design points).

    Raises:
        ValueError: on an unsupported manifest version.
    """
    data = json.loads(Path(path).read_text())
    if data.get("version") != MANIFEST_VERSION:
        raise ValueError(
            f"unsupported manifest version {data.get('version')!r}"
        )
    data["spec"] = spec_from_dict(data["spec"])
    data["design"] = design_from_dict(data["design"])
    data["frontier"] = [design_from_dict(d) for d in data["frontier"]]
    return data
