"""Core public types of the SEGA-DCIM reproduction."""

from repro.core.pareto import (
    dominates,
    hypervolume,
    knee_point,
    normalize_objectives,
    pareto_front,
    pareto_mask,
)
from repro.core.precision import STANDARD_PRECISIONS, Precision, parse_precision
from repro.core.spec import FP_ARCH, INT_ARCH, DcimSpec, DesignPoint

__all__ = [
    "Precision",
    "parse_precision",
    "STANDARD_PRECISIONS",
    "DcimSpec",
    "DesignPoint",
    "INT_ARCH",
    "FP_ARCH",
    "dominates",
    "pareto_mask",
    "pareto_front",
    "hypervolume",
    "knee_point",
    "normalize_objectives",
]
