"""Computing-precision descriptions used throughout SEGA-DCIM.

The paper supports integer precisions (INT2, INT4, INT8, INT16) and
floating-point precisions (FP8, FP16, FP32, BF16).  A precision fixes the
bit-level parameters that drive both the estimation models and the RTL
generator:

``Bx``
    bit-width of the input operand fed to the DCIM array.  For integer
    formats this is the integer width; for floating-point formats it is
    the mantissa datapath width ``BM`` (the aligned mantissa is what the
    array computes on).
``Bw``
    bit-width of the stored weight.  For floating-point formats the
    weights are stored as pre-aligned mantissas of width ``BM``.
``BE`` / ``BM``
    exponent width and mantissa datapath width for floating-point
    formats.  ``BM`` counts the stored mantissa field plus the implicit
    leading (hidden) bit, because the pre-aligned array operates on the
    full significand.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Precision", "parse_precision", "STANDARD_PRECISIONS"]


@dataclass(frozen=True)
class Precision:
    """A computing precision supported by the compiler.

    Attributes:
        name: canonical name such as ``"INT8"`` or ``"BF16"``.
        is_float: ``True`` for floating-point formats.
        bits: total storage width of one operand (e.g. 16 for BF16).
        exponent_bits: exponent field width ``BE`` (0 for integers).
        mantissa_bits: mantissa *datapath* width ``BM`` including the
            hidden bit (0 for integers).
    """

    name: str
    is_float: bool
    bits: int
    exponent_bits: int = 0
    mantissa_bits: int = 0

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise ValueError(f"precision bits must be positive, got {self.bits}")
        if self.is_float:
            if self.exponent_bits <= 0 or self.mantissa_bits <= 0:
                raise ValueError(
                    f"float precision {self.name!r} needs exponent and mantissa bits"
                )
        elif self.exponent_bits or self.mantissa_bits:
            raise ValueError(
                f"integer precision {self.name!r} cannot carry exponent/mantissa bits"
            )

    @property
    def input_bits(self) -> int:
        """``Bx``: width of the operand entering the DCIM array."""
        return self.mantissa_bits if self.is_float else self.bits

    @property
    def weight_bits(self) -> int:
        """``Bw``: width of the stored weight (aligned mantissa for FP)."""
        return self.mantissa_bits if self.is_float else self.bits

    @property
    def mantissa_field_bits(self) -> int:
        """Stored mantissa field width (excluding the hidden bit)."""
        return self.mantissa_bits - 1 if self.is_float else 0

    @property
    def kind(self) -> str:
        """``"float"`` or ``"int"``."""
        return "float" if self.is_float else "int"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


def _int(bits: int) -> Precision:
    return Precision(name=f"INT{bits}", is_float=False, bits=bits)


def _float(name: str, bits: int, be: int, mantissa_field: int) -> Precision:
    return Precision(
        name=name,
        is_float=True,
        bits=bits,
        exponent_bits=be,
        mantissa_bits=mantissa_field + 1,  # plus the hidden bit
    )


#: The eight precisions evaluated in the paper (Section IV).
STANDARD_PRECISIONS: dict[str, Precision] = {
    p.name: p
    for p in (
        _int(2),
        _int(4),
        _int(8),
        _int(16),
        # FP8 follows the E4M3 variant (4 exponent, 3 mantissa field bits).
        _float("FP8", 8, be=4, mantissa_field=3),
        # IEEE-754 half: 5 exponent, 10 mantissa field bits.
        _float("FP16", 16, be=5, mantissa_field=10),
        # bfloat16: 8 exponent, 7 mantissa field bits.
        _float("BF16", 16, be=8, mantissa_field=7),
        # IEEE-754 single: 8 exponent, 23 mantissa field bits.
        _float("FP32", 32, be=8, mantissa_field=23),
    )
}


def parse_precision(spec: str | Precision) -> Precision:
    """Resolve a precision from its name.

    Accepts an existing :class:`Precision` unchanged, a standard name such
    as ``"INT8"`` / ``"bf16"``, or a generic ``INT<n>`` form for custom
    integer widths.

    Raises:
        ValueError: if the name cannot be interpreted.
    """
    if isinstance(spec, Precision):
        return spec
    name = spec.strip().upper()
    if name in STANDARD_PRECISIONS:
        return STANDARD_PRECISIONS[name]
    if name.startswith("INT"):
        try:
            bits = int(name[3:])
        except ValueError:
            raise ValueError(f"unknown precision {spec!r}") from None
        if bits < 1:
            raise ValueError(f"integer precision must be >= 1 bit, got {spec!r}")
        return _int(bits)
    raise ValueError(
        f"unknown precision {spec!r}; expected one of "
        f"{sorted(STANDARD_PRECISIONS)} or INT<n>"
    )
