"""SEGA-DCIM compiler orchestration (the full Fig. 4 pipeline).

``SegaDcim.compile`` runs the end-to-end flow:

1. **Explore** — NSGA-II (or exhaustive enumeration for small spaces)
   produces the Pareto frontier for the user spec.
2. **Distill** — physical requirements filter the frontier; a selection
   strategy picks one design (or the user picks from ``distilled``).
3. **Generate** — the template-based generator emits the Verilog
   bundle and the mock P&R flow produces the layout record.
4. **Verify** (optional) — a scaled-down gate-level twin of the chosen
   architecture is simulated against the golden model; template
   correctness at small sizes carries to all sizes because the
   templates are purely structural in the parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.spec import DcimSpec, DesignPoint
from repro.dse.distill import Requirements, distill, select
from repro.dse.explorer import DesignSpaceExplorer, ExplorationResult
from repro.dse.nsga2 import NSGA2Config
from repro.layout.pnr import LayoutResult, PnrFlow
from repro.model.metrics import MacroMetrics
from repro.rtl.generator import RtlBundle, generate_rtl
from repro.reporting.tables import ascii_table, format_si
from repro.tech.cells import CellLibrary
from repro.tech.pdk import GENERIC28
from repro.tech.technology import Technology

__all__ = ["CompilationResult", "SegaDcim"]


@dataclass
class CompilationResult:
    """Everything the compiler produced for one specification."""

    spec: DcimSpec
    exploration: ExplorationResult
    distilled: list[tuple[DesignPoint, MacroMetrics]]
    selected: DesignPoint
    metrics: MacroMetrics
    rtl: RtlBundle | None = None
    layout: LayoutResult | None = None
    verification: object | None = None
    extras: dict = field(default_factory=dict)

    def summary(self) -> str:
        """Human-readable report of the chosen design."""
        m = self.metrics
        rows = [
            ("architecture", self.selected.arch),
            ("precision", self.selected.precision.name),
            ("Wstore", format_si(self.spec.wstore)),
            ("N / H / L / k", f"{self.selected.n} / {self.selected.h} / "
                              f"{self.selected.l} / {self.selected.k}"),
            ("SRAM bits", format_si(self.selected.sram_bits, "b")),
            ("layout area", f"{m.layout_area_mm2:.4f} mm2"),
            ("clock period", f"{m.delay_ns:.3f} ns"),
            ("peak throughput", f"{m.tops:.2f} TOPS"),
            ("energy efficiency", f"{m.tops_per_watt:.1f} TOPS/W"),
            ("area efficiency", f"{m.tops_per_mm2:.2f} TOPS/mm2"),
            ("Pareto frontier size", len(self.exploration.points)),
            ("designs after distillation", len(self.distilled)),
        ]
        return ascii_table(["metric", "value"], rows)


class SegaDcim:
    """The design space exploration-guided automatic DCIM compiler.

    Args:
        tech: technology node (defaults to the calibrated ``generic28``).
        library: normalised standard-cell library (Table III default).
        config: NSGA-II hyper-parameters.
    """

    def __init__(
        self,
        tech: Technology = GENERIC28,
        library: CellLibrary | None = None,
        config: NSGA2Config | None = None,
    ) -> None:
        self.tech = tech
        self.library = library or CellLibrary.default()
        self.explorer = DesignSpaceExplorer(self.library, config)
        self.pnr = PnrFlow(tech)

    # Individual stages ------------------------------------------------------
    def explore(
        self, spec: DcimSpec, seed: int | None = None, exhaustive: bool = False
    ) -> ExplorationResult:
        """Stage 1: produce the Pareto frontier for a specification."""
        if exhaustive:
            return self.explorer.explore_exhaustive(spec)
        return self.explorer.explore(spec, seed)

    def generate(self, design: DesignPoint) -> RtlBundle:
        """Stage 3a: emit the Verilog bundle for a chosen design."""
        return generate_rtl(design)

    def place_and_route(self, design: DesignPoint) -> LayoutResult:
        """Stage 3b: run the mock P&R flow for a chosen design."""
        return self.pnr.run(design, self.library)

    def verify(self, design: DesignPoint, trials: int = 5) -> object:
        """Stage 4: gate-level equivalence on a scaled-down twin.

        The twin keeps ``L``, ``k`` and the precision but shrinks ``N``
        and ``H`` to simulation-friendly sizes; the templates are purely
        structural in ``N`` and ``H``, so small-size equivalence
        exercises every distinct gate pattern of the full design.

        Floating-point designs verify the complete pre-align ->
        mantissa-MAC -> INT-to-FP path on a one-group twin.
        """
        from repro.netlist.verify import verify_fp_datapath, verify_int_macro

        p = design.precision
        if p.is_float:
            return verify_fp_datapath(
                h=min(design.h, 8),
                be=p.exponent_bits,
                bm=p.mantissa_bits,
                trials=trials,
            )
        bw = p.weight_bits
        twin = DesignPoint(
            precision=p,
            n=min(design.n, 2 * bw),
            h=min(design.h, 8),
            l=min(design.l, 4),
            k=design.k,
        )
        return verify_int_macro(twin, trials=trials)

    # End-to-end ---------------------------------------------------------------
    def compile(
        self,
        spec: DcimSpec,
        requirements: Requirements | None = None,
        strategy: str = "knee",
        seed: int | None = 0,
        exhaustive: bool = False,
        generate: bool = True,
        layout: bool = True,
        verify: bool = False,
    ) -> CompilationResult:
        """Run the full explore -> distill -> generate pipeline.

        Args:
            spec: the user specification.
            requirements: physical budgets for distillation.
            strategy: selection strategy (see
                :data:`repro.dse.distill.SELECTION_STRATEGIES`).
            seed: GA seed for reproducibility.
            exhaustive: enumerate instead of running the GA.
            generate: emit the RTL bundle.
            layout: run the mock P&R flow.
            verify: run scaled gate-level verification.

        Raises:
            ValueError: when no design satisfies the requirements.
        """
        exploration = self.explore(spec, seed=seed, exhaustive=exhaustive)
        distilled = distill(
            exploration.points, self.tech, requirements, self.library
        )
        selected, metrics = select(distilled, strategy)
        result = CompilationResult(
            spec=spec,
            exploration=exploration,
            distilled=distilled,
            selected=selected,
            metrics=metrics,
        )
        if generate:
            result.rtl = self.generate(selected)
            from repro.rtl.lint import lint_bundle

            lint = lint_bundle(result.rtl)
            result.extras["lint"] = lint
            if not lint.passed:
                raise RuntimeError(
                    f"generated bundle failed lint: {lint.errors[:3]}"
                )
        if layout:
            result.layout = self.place_and_route(selected)
        if verify:
            result.verification = self.verify(selected)
        return result

    def compile_mixed(
        self,
        wstore: int,
        precisions: list,
        requirements: Requirements | None = None,
        strategy: str = "knee",
        seed: int | None = 0,
        exhaustive: bool = False,
        **spec_kwargs,
    ) -> CompilationResult:
        """Explore several precisions and distill one merged frontier.

        This is the paper's "high-quality Pareto-frontier set containing
        both integer and floating-point solutions": each precision's
        architecture is explored separately, the fronts compete in one
        *metric-space* dominance filter (normalised objectives are not
        comparable across precisions because an op means different work),
        and distillation/selection run on the merged set.

        The chosen design's own precision determines the generated
        architecture.  The merged frontier is exposed via
        ``result.extras["mixed_frontier"]`` as (design, metrics) pairs.

        Raises:
            ValueError: with no precisions, or when no design satisfies
                the requirements.
        """
        if not precisions:
            raise ValueError("need at least one precision")
        merged: list[tuple[DesignPoint, MacroMetrics]] = []
        explorations = []
        for i, precision in enumerate(precisions):
            spec = DcimSpec(wstore=wstore, precision=precision, **spec_kwargs)
            exploration = self.explore(
                spec,
                seed=None if seed is None else seed + i,
                exhaustive=exhaustive,
            )
            explorations.append(exploration)
            merged.extend(distill(exploration.points, self.tech, None, self.library))
        # Cross-precision dominance on physical metrics (all minimised)
        # plus a *capability* dimension: a floating-point design offers
        # numeric range an integer design cannot, so it must not be
        # dominated by a smaller INT macro of equal speed.  Capability is
        # ranked float-over-int, then by operand bits.
        from repro.core.pareto import pareto_front

        def capability(point: DesignPoint) -> float:
            p = point.precision
            return (1000.0 if p.is_float else 0.0) + p.bits

        objectives = [
            (
                m.layout_area_mm2,
                m.delay_ns,
                m.energy_per_pass_nj,
                -m.tops,
                -capability(point),
            )
            for point, m in merged
        ]
        frontier = pareto_front(merged, objectives)
        requirements = requirements or Requirements()
        admitted = [pm for pm in frontier if requirements.admits(pm[1])]
        selected, metrics = select(admitted, strategy)
        chosen_exploration = next(
            e for e in explorations
            if e.spec.precision == selected.precision
        )
        result = CompilationResult(
            spec=chosen_exploration.spec,
            exploration=chosen_exploration,
            distilled=admitted,
            selected=selected,
            metrics=metrics,
        )
        result.extras["mixed_frontier"] = frontier
        result.extras["explorations"] = explorations
        result.rtl = self.generate(selected)
        result.layout = self.place_and_route(selected)
        return result
