"""A DEF-flavoured textual dump of layout results.

Real flows exchange placements as DEF; this writer keeps the DEF shape
(DESIGN / DIEAREA / COMPONENTS sections, database units) so downstream
tooling has something structured to parse, plus a matching reader for
round-trips.
"""

from __future__ import annotations

import re

from repro.layout.floorplan import Floorplan
from repro.layout.geometry import Placement, Rect

__all__ = ["dump_def", "load_def", "DBU_PER_MICRON"]

#: Database units per micron (standard choice).
DBU_PER_MICRON = 1000

_DESIGN_RE = re.compile(r"DESIGN\s+(\S+)\s*;")
_DIE_RE = re.compile(r"DIEAREA\s+\(\s*(-?\d+)\s+(-?\d+)\s*\)\s+\(\s*(-?\d+)\s+(-?\d+)\s*\)\s*;")
_COMP_RE = re.compile(
    r"-\s+(\S+)\s+BLOCK\s+\+\s+PLACED\s+\(\s*(-?\d+)\s+(-?\d+)\s*\)\s+"
    r"SIZE\s+\(\s*(\d+)\s+(\d+)\s*\)\s*;"
)


def _dbu(value: float) -> int:
    return round(value * DBU_PER_MICRON)


def dump_def(name: str, floorplan: Floorplan) -> str:
    """Serialise a floorplan as DEF-flavoured text."""
    lines = [
        "VERSION 5.8 ;",
        f"DESIGN {name} ;",
        f"UNITS DISTANCE MICRONS {DBU_PER_MICRON} ;",
        f"DIEAREA ( {_dbu(floorplan.die.x)} {_dbu(floorplan.die.y)} ) "
        f"( {_dbu(floorplan.die.x2)} {_dbu(floorplan.die.y2)} ) ;",
        f"COMPONENTS {len(floorplan.placements)} ;",
    ]
    for p in floorplan.placements:
        lines.append(
            f"  - {p.name} BLOCK + PLACED ( {_dbu(p.rect.x)} {_dbu(p.rect.y)} ) "
            f"SIZE ( {_dbu(p.rect.w)} {_dbu(p.rect.h)} ) ;"
        )
    lines.append("END COMPONENTS")
    lines.append("END DESIGN")
    return "\n".join(lines) + "\n"


def load_def(text: str) -> tuple[str, Floorplan]:
    """Parse DEF-flavoured text back into (design name, floorplan).

    Raises:
        ValueError: if mandatory sections are missing.
    """
    design = _DESIGN_RE.search(text)
    if design is None:
        raise ValueError("missing DESIGN statement")
    die = _DIE_RE.search(text)
    if die is None:
        raise ValueError("missing DIEAREA statement")
    x1, y1, x2, y2 = (int(v) / DBU_PER_MICRON for v in die.groups())
    placements = [
        Placement(
            name,
            Rect(
                int(px) / DBU_PER_MICRON,
                int(py) / DBU_PER_MICRON,
                int(w) / DBU_PER_MICRON,
                int(h) / DBU_PER_MICRON,
            ),
        )
        for name, px, py, w, h in _COMP_RE.findall(text)
    ]
    return design.group(1), Floorplan(
        die=Rect(x1, y1, x2 - x1, y2 - y1), placements=placements
    )
