"""Slicing-tree floorplanner.

A deterministic area-driven slicing floorplan: blocks are recursively
bipartitioned into area-balanced groups, and the enclosing rectangle is
sliced (alternating vertical/horizontal, always across the long side)
proportionally to group area.  Every block receives a rectangle of
exactly its requested area inside the die, with no overlaps — the role
Innovus's floorplanning step plays for the macro's three part groups
(memory array, compute components, digital peripherals).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.layout.geometry import Placement, Rect

__all__ = ["Block", "Floorplan", "slicing_floorplan"]


@dataclass(frozen=True)
class Block:
    """A block to place: a name and its required area (um^2)."""

    name: str
    area: float

    def __post_init__(self) -> None:
        if self.area <= 0:
            raise ValueError(f"block {self.name!r} needs positive area")


@dataclass(frozen=True)
class Floorplan:
    """The result: a die rectangle and one placement per block."""

    die: Rect
    placements: list[Placement]

    @property
    def utilization(self) -> float:
        """Placed area over die area."""
        return sum(p.rect.area for p in self.placements) / self.die.area

    def placement(self, name: str) -> Placement:
        """Look up a placement by block name."""
        for p in self.placements:
            if p.name == name:
                return p
        raise KeyError(f"no block named {name!r}")


def _partition(blocks: list[Block]) -> tuple[list[Block], list[Block]]:
    """Greedy area-balanced bipartition (largest-first)."""
    left: list[Block] = []
    right: list[Block] = []
    area_l = area_r = 0.0
    for block in sorted(blocks, key=lambda b: b.area, reverse=True):
        if area_l <= area_r:
            left.append(block)
            area_l += block.area
        else:
            right.append(block)
            area_r += block.area
    return left, right


def _place(blocks: list[Block], region: Rect, out: list[Placement]) -> None:
    if len(blocks) == 1:
        out.append(Placement(blocks[0].name, region))
        return
    left, right = _partition(blocks)
    frac = sum(b.area for b in left) / sum(b.area for b in blocks)
    if region.w >= region.h:  # slice across the long side
        cut = region.w * frac
        _place(left, Rect(region.x, region.y, cut, region.h), out)
        _place(right, Rect(region.x + cut, region.y, region.w - cut, region.h), out)
    else:
        cut = region.h * frac
        _place(left, Rect(region.x, region.y, region.w, cut), out)
        _place(right, Rect(region.x, region.y + cut, region.w, region.h - cut), out)


def slicing_floorplan(
    blocks: list[Block],
    utilization: float = 0.75,
    aspect: float = 1.5,
) -> Floorplan:
    """Floorplan ``blocks`` into a fresh die.

    Args:
        blocks: blocks with their cell areas (um^2).
        utilization: placed-area / die-area target; the die is sized as
            ``sum(areas) / utilization``.
        aspect: die width / height (Fig. 6's macros are ~1.5).

    Returns:
        A :class:`Floorplan` whose placements exactly tile a
        ``utilization`` fraction of the die.

    Raises:
        ValueError: for an empty block list or bad parameters.
    """
    if not blocks:
        raise ValueError("need at least one block")
    if not 0 < utilization <= 1:
        raise ValueError(f"utilization must be in (0, 1], got {utilization}")
    if aspect <= 0:
        raise ValueError(f"aspect must be positive, got {aspect}")
    total = sum(b.area for b in blocks)
    die_area = total / utilization
    height = (die_area / aspect) ** 0.5
    width = die_area / height
    die = Rect(0.0, 0.0, width, height)
    # Blocks are placed inside a shrunken core so the die keeps the
    # utilization margin around and between groups.
    core_scale = utilization**0.5
    core = Rect(
        die.w * (1 - core_scale) / 2,
        die.h * (1 - core_scale) / 2,
        die.w * core_scale,
        die.h * core_scale,
    )
    placements: list[Placement] = []
    _place(list(blocks), core, placements)
    # The slicing proportions guarantee each leaf rect area ~ block area
    # scaled by core/total; rescale check happens in tests.
    return Floorplan(die=die, placements=placements)
