"""Mock place-and-route flow — the Innovus substitute.

The paper hands the generated netlists to Cadence Innovus for synthesis
and P&R; here a deterministic flow produces the same *artifacts*: a die,
per-group placements (memory array / DCIM compute components / digital
peripherals, the three generation parts of Section III-C), a DEF dump
and the final area report whose numbers track the estimation model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.spec import DesignPoint
from repro.layout.def_writer import dump_def
from repro.layout.floorplan import Block, Floorplan, slicing_floorplan
from repro.tech.cells import CellLibrary
from repro.tech.technology import Technology

__all__ = ["LayoutResult", "PnrFlow", "PART_GROUPS"]

#: Section III-C's three generation parts mapped onto the cost-model
#: breakdown components.
PART_GROUPS: dict[str, tuple[str, ...]] = {
    "memory_array": ("sram",),
    "compute_components": ("weight_select", "multiply", "adder_tree"),
    "digital_peripherals": (
        "accumulator",
        "fusion",
        "input_buffer",
        "prealign",
        "exponent_regs",
        "int_to_fp",
    ),
}


@dataclass(frozen=True)
class LayoutResult:
    """Outcome of the mock P&R flow for one design.

    Attributes:
        design: the implemented design point.
        floorplan: die + placements of the three part groups.
        width_um / height_um: die dimensions.
        area_mm2: die area (the number Fig. 6 reports).
        cell_area_mm2: summed standard-cell area before utilisation.
        utilization: achieved placement utilisation.
        wirelength_mm: half-perimeter wirelength proxy over group pins.
        def_text: the DEF-flavoured dump.
    """

    design: DesignPoint
    floorplan: Floorplan
    width_um: float
    height_um: float
    area_mm2: float
    cell_area_mm2: float
    utilization: float
    wirelength_mm: float
    def_text: str

    def group_area_mm2(self, group: str) -> float:
        """Layout area of one part group in mm^2."""
        return self.floorplan.placement(group).rect.area * 1e-6 / self.utilization


class PnrFlow:
    """Deterministic floorplan + area roll-up standing in for Innovus.

    Args:
        tech: technology providing gate area and target utilisation.
        aspect: die aspect ratio (Fig. 6 macros are ~1.5).
    """

    def __init__(self, tech: Technology, aspect: float = 1.5) -> None:
        if aspect <= 0:
            raise ValueError("aspect must be positive")
        self.tech = tech
        self.aspect = aspect

    def run(
        self, design: DesignPoint, library: CellLibrary | None = None
    ) -> LayoutResult:
        """Produce the layout record for one design point."""
        cost = design.macro_cost(library)
        blocks = []
        for group, components in PART_GROUPS.items():
            area_norm = sum(
                cost.breakdown[c].area for c in components if c in cost.breakdown
            )
            if area_norm > 0:
                blocks.append(Block(group, self.tech.area_um2(area_norm)))
        floorplan = slicing_floorplan(
            blocks, utilization=self.tech.utilization, aspect=self.aspect
        )
        # Wirelength proxy: half-perimeter between every pair of group
        # centres, weighted equally — enough to compare floorplans.
        centers = [p.rect.center for p in floorplan.placements]
        wirelength_um = 0.0
        for i in range(len(centers)):
            for j in range(i + 1, len(centers)):
                wirelength_um += abs(centers[i][0] - centers[j][0]) + abs(
                    centers[i][1] - centers[j][1]
                )
        die = floorplan.die
        name = f"{design.arch.replace('-', '_')}_{design.precision.name.lower()}"
        return LayoutResult(
            design=design,
            floorplan=floorplan,
            width_um=die.w,
            height_um=die.h,
            area_mm2=die.area * 1e-6,
            cell_area_mm2=self.tech.area_mm2(cost.area),
            utilization=floorplan.utilization,
            wirelength_mm=wirelength_um * 1e-3,
            def_text=dump_def(name, floorplan),
        )
