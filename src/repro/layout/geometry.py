"""Planar geometry for the layout substrate."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Rect", "Placement"]


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle (micrometre coordinates).

    Attributes:
        x, y: lower-left corner.
        w, h: width and height (must be positive).
    """

    x: float
    y: float
    w: float
    h: float

    def __post_init__(self) -> None:
        if self.w <= 0 or self.h <= 0:
            raise ValueError(f"rectangle needs positive dimensions: {self}")

    @property
    def area(self) -> float:
        """Area in um^2."""
        return self.w * self.h

    @property
    def x2(self) -> float:
        """Right edge."""
        return self.x + self.w

    @property
    def y2(self) -> float:
        """Top edge."""
        return self.y + self.h

    @property
    def center(self) -> tuple[float, float]:
        """Centre point."""
        return (self.x + self.w / 2, self.y + self.h / 2)

    @property
    def aspect(self) -> float:
        """Width / height."""
        return self.w / self.h

    def overlaps(self, other: "Rect") -> bool:
        """True when the interiors intersect (edge contact is fine)."""
        eps = 1e-9
        return not (
            self.x2 <= other.x + eps
            or other.x2 <= self.x + eps
            or self.y2 <= other.y + eps
            or other.y2 <= self.y + eps
        )

    def contains(self, other: "Rect") -> bool:
        """True when ``other`` lies fully inside (with tolerance)."""
        eps = 1e-6
        return (
            other.x >= self.x - eps
            and other.y >= self.y - eps
            and other.x2 <= self.x2 + eps
            and other.y2 <= self.y2 + eps
        )


@dataclass(frozen=True)
class Placement:
    """One placed block."""

    name: str
    rect: Rect
