"""Physical verification substitutes: DRC and LVS checks.

The paper's technology files include "DRC rules, LVS rules, etc."; the
mock flow implements the corresponding *checks* at floorplan
granularity:

* **DRC** — geometric rules on the layout: blocks inside the die,
  no overlaps, minimum block dimension, minimum spacing between blocks
  and to the die edge, die utilisation within the legal window.
* **LVS** — layout-vs-schematic: the placed part groups must match the
  groups implied by the design's cost-model breakdown (the "schematic"
  of the mock flow), with matching areas.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.layout.pnr import LayoutResult, PART_GROUPS

__all__ = ["DrcRules", "CheckReport", "run_drc", "run_lvs"]


@dataclass(frozen=True)
class DrcRules:
    """Geometric rule deck for the floorplan-level DRC.

    Attributes:
        min_dimension_um: smallest legal block width/height.
        min_spacing_um: required clearance between blocks (0 allows
            abutment, which the slicing floorplan produces by design).
        min_utilization / max_utilization: legal die-usage window.
    """

    min_dimension_um: float = 1.0
    min_spacing_um: float = 0.0
    min_utilization: float = 0.3
    max_utilization: float = 0.95


@dataclass
class CheckReport:
    """Outcome of a DRC or LVS run."""

    check: str
    violations: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when no violations were found."""
        return not self.violations

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "CLEAN" if self.passed else f"{len(self.violations)} violations"
        return f"{self.check}: {status}"


def run_drc(layout: LayoutResult, rules: DrcRules | None = None) -> CheckReport:
    """Run the floorplan DRC on a P&R result."""
    rules = rules or DrcRules()
    report = CheckReport("DRC")
    die = layout.floorplan.die
    placements = layout.floorplan.placements
    for p in placements:
        if not die.contains(p.rect):
            report.violations.append(f"{p.name}: outside die")
        if min(p.rect.w, p.rect.h) < rules.min_dimension_um:
            report.violations.append(
                f"{p.name}: dimension {min(p.rect.w, p.rect.h):.2f}um below "
                f"minimum {rules.min_dimension_um}um"
            )
    for i, a in enumerate(placements):
        for b in placements[i + 1 :]:
            if a.rect.overlaps(b.rect):
                report.violations.append(f"{a.name} overlaps {b.name}")
            elif rules.min_spacing_um > 0:
                dx = max(b.rect.x - a.rect.x2, a.rect.x - b.rect.x2, 0.0)
                dy = max(b.rect.y - a.rect.y2, a.rect.y - b.rect.y2, 0.0)
                if 0 < max(dx, dy) < rules.min_spacing_um and min(dx, dy) == 0:
                    report.violations.append(
                        f"{a.name}/{b.name}: spacing {max(dx, dy):.2f}um below "
                        f"{rules.min_spacing_um}um"
                    )
    utilization = layout.utilization
    if not rules.min_utilization <= utilization <= rules.max_utilization:
        report.violations.append(
            f"die utilization {utilization:.2f} outside "
            f"[{rules.min_utilization}, {rules.max_utilization}]"
        )
    return report


def run_lvs(layout: LayoutResult) -> CheckReport:
    """Layout-vs-schematic on the part-group granularity.

    The "schematic" is the estimation-model breakdown of the design:
    every non-empty part group must be placed, no extra blocks may
    exist, and each placed area must match the schematic area scaled by
    the achieved utilisation.
    """
    report = CheckReport("LVS")
    cost = layout.design.macro_cost()
    tech_area = layout.cell_area_mm2 * 1e6  # um^2 of all cells
    expected_groups = {}
    for group, components in PART_GROUPS.items():
        area_norm = sum(
            cost.breakdown[c].area for c in components if c in cost.breakdown
        )
        if area_norm > 0:
            expected_groups[group] = area_norm / cost.area * tech_area
    placed = {p.name: p.rect.area for p in layout.floorplan.placements}
    for group in expected_groups:
        if group not in placed:
            report.violations.append(f"schematic group {group!r} not placed")
    for group in placed:
        if group not in expected_groups:
            report.violations.append(f"layout block {group!r} not in schematic")
    for group in expected_groups.keys() & placed.keys():
        expected = expected_groups[group]
        got = placed[group]
        if abs(got - expected) > 0.02 * expected:
            report.violations.append(
                f"{group}: placed area {got:.0f}um2 vs schematic "
                f"{expected:.0f}um2"
            )
    return report
