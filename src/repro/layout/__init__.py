"""Layout substrate: floorplanning, DEF dumps, mock P&R."""

from repro.layout.checks import CheckReport, DrcRules, run_drc, run_lvs
from repro.layout.def_writer import DBU_PER_MICRON, dump_def, load_def
from repro.layout.floorplan import Block, Floorplan, slicing_floorplan
from repro.layout.geometry import Placement, Rect
from repro.layout.pnr import PART_GROUPS, LayoutResult, PnrFlow

__all__ = [
    "Rect",
    "DrcRules",
    "CheckReport",
    "run_drc",
    "run_lvs",
    "Placement",
    "Block",
    "Floorplan",
    "slicing_floorplan",
    "dump_def",
    "load_def",
    "DBU_PER_MICRON",
    "PnrFlow",
    "LayoutResult",
    "PART_GROUPS",
]
