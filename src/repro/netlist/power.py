"""Toggle-based dynamic power measurement.

The analytical energy model charges every gate once per evaluation
scaled by a global activity factor; real dynamic power depends on
actual switching.  This module *measures* switching: it drives a
gate-level netlist with random stimulus, counts output toggles per
primitive, and weights them with per-primitive energies — the
simulation-based power sign-off step of a real flow, and a
cross-validation target for the Table III energy composition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netlist.ir import Netlist
from repro.netlist.simulate import GateSimulator

__all__ = ["GATE_ENERGIES", "PowerMeasurement", "measure_power"]

#: Per-primitive switching energies in NOR units (same provenance as the
#: STA's GATE_DELAYS: Table III-class single-stage gates at 1.0, XOR a
#: two-stage structure, MUX2 per Table III, DFF per Table III).
GATE_ENERGIES: dict[str, float] = {
    "NOT": 0.6,
    "AND": 1.0,
    "OR": 1.0,
    "NOR": 1.0,
    "XOR": 1.6,
    "MUX2": 3.0,
}
DFF_ENERGY = 9.6


@dataclass(frozen=True)
class PowerMeasurement:
    """Result of one toggle-counting run.

    Attributes:
        vectors: random input vectors applied.
        energy_norm: total measured switching energy (NOR units).
        energy_per_vector: average per input vector.
        activity: mean output toggles per gate per vector — directly
            comparable to the Technology.activity factor the analytical
            model assumes.
        toggles: total gate output toggles.
    """

    vectors: int
    energy_norm: float
    energy_per_vector: float
    activity: float
    toggles: int


def measure_power(
    netlist: Netlist,
    vectors: int = 100,
    seed: int = 0,
    clocked: bool = False,
    density: float = 0.5,
) -> PowerMeasurement:
    """Drive random stimulus and measure switching energy.

    Args:
        netlist: design under measurement.
        vectors: random input vectors to apply.
        seed: RNG seed.
        clocked: step the clock after each vector (sequential designs);
            otherwise purely combinational evaluation.
        density: probability of each input bit being 1; the paper's
            "10 % sparsity" operating point corresponds to low density.

    Raises:
        ValueError: if the netlist has no inputs to stimulate, or on a
            density outside [0, 1].
    """
    if not netlist.inputs:
        raise ValueError("netlist has no input buses")
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    sim = GateSimulator(netlist, count_toggles=True)
    rng = np.random.default_rng(seed)
    widths = {name: len(bus) for name, bus in netlist.inputs.items()}
    sim.reset_toggles()
    for _ in range(vectors):
        for name, width in widths.items():
            bits = rng.random(width) < density
            value = 0
            for i, bit in enumerate(bits):
                if bit:
                    value |= 1 << i
            sim.set_bus(name, value)
        if clocked:
            sim.step()
        else:
            sim.eval()
    energy = 0.0
    total_toggles = 0
    for gate, count in zip(netlist.gates, sim.gate_toggles):
        energy += GATE_ENERGIES[gate.kind] * count
        total_toggles += count
    for count in sim.dff_toggles:
        energy += DFF_ENERGY * count
        total_toggles += count
    n_cells = len(netlist.gates) + len(netlist.dffs)
    activity = total_toggles / (n_cells * vectors) if n_cells else 0.0
    return PowerMeasurement(
        vectors=vectors,
        energy_norm=energy,
        energy_per_vector=energy / vectors,
        activity=activity,
        toggles=total_toggles,
    )
