"""Event-driven two-value simulator for gate-level netlists.

Stands in for the commercial logic simulator of a real flow.  The
combinational fabric is levelised once (topological order); ``eval``
propagates input changes through the ordered gates, and ``step`` clocks
every DFF simultaneously, then re-evaluates.
"""

from __future__ import annotations

from repro.netlist.ir import Netlist

__all__ = ["GateSimulator"]

_EVAL = {
    "NOT": lambda v: 1 - v[0],
    "AND": lambda v: v[0] & v[1],
    "OR": lambda v: v[0] | v[1],
    "NOR": lambda v: 1 - (v[0] | v[1]),
    "XOR": lambda v: v[0] ^ v[1],
    "MUX2": lambda v: v[2] if v[0] else v[1],
}


class GateSimulator:
    """Simulates one :class:`~repro.netlist.ir.Netlist`.

    Raises:
        ValueError: if the combinational fabric contains a cycle (only
            DFFs may close loops).
    """

    def __init__(self, netlist: Netlist, count_toggles: bool = False) -> None:
        self.netlist = netlist
        self.values = [0] * netlist.n_nets
        self.values[netlist.ONE] = 1
        #: Per-gate output-toggle counters (enabled by ``count_toggles``);
        #: the power-measurement substrate reads these.
        self.count_toggles = count_toggles
        self.gate_toggles = [0] * len(netlist.gates)
        self.dff_toggles = [0] * len(netlist.dffs)
        self._order = self._levelize()
        self._eval_all()

    def _levelize(self) -> list[int]:
        """Topological order of gate indices (Kahn's algorithm)."""
        gates = self.netlist.gates
        consumers: dict[int, list[int]] = {}
        indegree = [0] * len(gates)
        driven_by: dict[int, int] = {g.output: i for i, g in enumerate(gates)}
        if len(driven_by) != len(gates):
            raise ValueError("multiple drivers on one net")
        for i, gate in enumerate(gates):
            for net in gate.inputs:
                if net in driven_by:
                    consumers.setdefault(net, []).append(i)
                    indegree[i] += 1
        ready = [i for i, deg in enumerate(indegree) if deg == 0]
        order: list[int] = []
        while ready:
            i = ready.pop()
            order.append(i)
            for j in consumers.get(gates[i].output, ()):
                indegree[j] -= 1
                if indegree[j] == 0:
                    ready.append(j)
        if len(order) != len(gates):
            raise ValueError("combinational cycle detected")
        return order

    # Stimulus ---------------------------------------------------------------
    def set_bus(self, name: str, value: int) -> None:
        """Drive a named input bus with an unsigned integer."""
        try:
            bus = self.netlist.inputs[name]
        except KeyError:
            raise KeyError(f"no input bus {name!r}") from None
        if value < 0 or value >= (1 << len(bus)):
            raise ValueError(
                f"value {value} does not fit input {name!r} ({len(bus)} bits)"
            )
        for i, net in enumerate(bus):
            self.values[net] = (value >> i) & 1

    def get_bus(self, name: str) -> int:
        """Read a named output bus as an unsigned integer."""
        try:
            bus = self.netlist.outputs[name]
        except KeyError:
            raise KeyError(f"no output bus {name!r}") from None
        return sum(self.values[net] << i for i, net in enumerate(bus))

    def peek(self, nets: list[int]) -> int:
        """Read an arbitrary LSB-first net list as an integer."""
        return sum(self.values[net] << i for i, net in enumerate(nets))

    # Execution ---------------------------------------------------------------
    def _eval_all(self) -> None:
        gates = self.netlist.gates
        values = self.values
        if self.count_toggles:
            toggles = self.gate_toggles
            for i in self._order:
                gate = gates[i]
                new = _EVAL[gate.kind]([values[net] for net in gate.inputs])
                if new != values[gate.output]:
                    toggles[i] += 1
                    values[gate.output] = new
            return
        for i in self._order:
            gate = gates[i]
            values[gate.output] = _EVAL[gate.kind](
                [values[net] for net in gate.inputs]
            )

    def eval(self) -> None:
        """Propagate current input values through the combinational fabric."""
        self._eval_all()

    def step(self, cycles: int = 1) -> None:
        """Advance ``cycles`` clock edges (latch all DFFs, then settle)."""
        for _ in range(cycles):
            self.eval()
            latched = []
            for dff in self.netlist.dffs:
                if dff.clear is not None and self.values[dff.clear]:
                    latched.append(0)
                else:
                    latched.append(self.values[dff.d])
            for index, (dff, value) in enumerate(zip(self.netlist.dffs, latched)):
                if self.count_toggles and self.values[dff.q] != value:
                    self.dff_toggles[index] += 1
                self.values[dff.q] = value
            self.eval()

    def reset_toggles(self) -> None:
        """Zero the toggle counters (power-measurement windows)."""
        self.gate_toggles = [0] * len(self.netlist.gates)
        self.dff_toggles = [0] * len(self.netlist.dffs)

    def reset_state(self) -> None:
        """Zero every flip-flop output and re-evaluate."""
        for dff in self.netlist.dffs:
            self.values[dff.q] = 0
        self.eval()
