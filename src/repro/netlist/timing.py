"""Static timing analysis over gate-level netlists.

A miniature STA engine: every primitive gets a delay (NOR-normalised,
derived from the Table III cells), arrival times propagate through the
levelised fabric, and the worst register-to-register / input-to-output
path is reported with its gate trace.

This provides an independent check of the analytical delay models of
``repro.model`` — the cost model predicts component delays from
composition rules; the STA *measures* them on the actual gate netlist.
The two use different decompositions (the cost model's FA is one cell,
the netlist builds it from XOR/AND/OR), so agreement is expected within
a small constant factor, which the validation bench pins down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.ir import Netlist

__all__ = ["GATE_DELAYS", "TimingReport", "analyze_timing"]

#: Per-primitive delays in NOR units.  NOT/NOR/OR/AND are single-stage
#: CMOS (≈1 NOR); XOR is a two-stage structure; MUX2 matches Table III.
GATE_DELAYS: dict[str, float] = {
    "NOT": 0.6,
    "AND": 1.0,
    "OR": 1.0,
    "NOR": 1.0,
    "XOR": 1.6,
    "MUX2": 2.2,
}


@dataclass(frozen=True)
class TimingReport:
    """Result of one STA run.

    Attributes:
        critical_delay: worst arrival time at any timing endpoint
            (DFF d-pin or primary output), NOR units.
        critical_path: gate indices along the worst path, source first.
        endpoint: net id of the worst endpoint.
        arrival: per-net arrival times (list indexed by net id).
    """

    critical_delay: float
    critical_path: tuple[int, ...]
    endpoint: int
    arrival: list[float]

    @property
    def logic_depth(self) -> int:
        """Gates on the critical path."""
        return len(self.critical_path)


def analyze_timing(
    netlist: Netlist, delays: dict[str, float] | None = None
) -> TimingReport:
    """Compute arrival times and the critical path of a netlist.

    Timing startpoints are primary inputs, constants and DFF outputs
    (arrival 0); endpoints are DFF inputs and primary outputs.  DFF
    clk->q delay is folded into the startpoint (zero, matching the cost
    model's "DFF delay N/A" convention).

    Raises:
        ValueError: on combinational cycles (via levelisation).
    """
    delays = delays or GATE_DELAYS
    # Levelise (same algorithm as the simulator; duplicated to keep the
    # two engines independent and separately testable).
    gates = netlist.gates
    driven_by = {g.output: i for i, g in enumerate(gates)}
    consumers: dict[int, list[int]] = {}
    indegree = [0] * len(gates)
    for i, gate in enumerate(gates):
        for net in gate.inputs:
            if net in driven_by:
                consumers.setdefault(net, []).append(i)
                indegree[i] += 1
    ready = [i for i, deg in enumerate(indegree) if deg == 0]
    order: list[int] = []
    while ready:
        i = ready.pop()
        order.append(i)
        for j in consumers.get(gates[i].output, ()):
            indegree[j] -= 1
            if indegree[j] == 0:
                ready.append(j)
    if len(order) != len(gates):
        raise ValueError("combinational cycle detected")

    arrival = [0.0] * netlist.n_nets
    through: list[int | None] = [None] * netlist.n_nets  # worst driver gate
    for i in order:
        gate = gates[i]
        worst = max((arrival[net] for net in gate.inputs), default=0.0)
        arrival[gate.output] = worst + delays[gate.kind]
        through[gate.output] = i

    endpoints = [dff.d for dff in netlist.dffs]
    for bus in netlist.outputs.values():
        endpoints.extend(bus)
    if not endpoints:
        endpoints = [g.output for g in gates] or [0]
    worst_net = max(endpoints, key=lambda net: arrival[net])

    # Trace the path back through worst-arrival fan-ins.
    path: list[int] = []
    net = worst_net
    while through[net] is not None:
        gate_index = through[net]
        path.append(gate_index)
        gate = gates[gate_index]
        net = max(gate.inputs, key=lambda n: arrival[n], default=None)
        if net is None:  # pragma: no cover - gates always have inputs
            break
    return TimingReport(
        critical_delay=arrival[worst_net],
        critical_path=tuple(reversed(path)),
        endpoint=worst_net,
        arrival=arrival,
    )
