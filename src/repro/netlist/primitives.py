"""Composite gate-level building blocks (adders, muxes, shifters).

These mirror the logic modules of paper Table II at the bit level:
ripple-carry adders from HA/FA gate patterns, mux trees, and barrel
shifters built from MUX2 levels.  All buses are LSB-first net lists.
"""

from __future__ import annotations

from repro.netlist.ir import Netlist

__all__ = [
    "half_adder",
    "full_adder",
    "ripple_adder",
    "mux2_bus",
    "mux_tree",
    "barrel_shifter_right",
    "constant_shift_left",
    "zero_extend",
    "nor_multiplier",
    "ripple_subtractor",
    "greater_than",
]


def half_adder(nl: Netlist, a: int, b: int) -> tuple[int, int]:
    """(sum, carry) = a + b."""
    return nl.add_gate("XOR", a, b), nl.add_gate("AND", a, b)


def full_adder(nl: Netlist, a: int, b: int, cin: int) -> tuple[int, int]:
    """(sum, carry) = a + b + cin."""
    s1 = nl.add_gate("XOR", a, b)
    total = nl.add_gate("XOR", s1, cin)
    c1 = nl.add_gate("AND", a, b)
    c2 = nl.add_gate("AND", s1, cin)
    return total, nl.add_gate("OR", c1, c2)


def zero_extend(nl: Netlist, bus: list[int], width: int) -> list[int]:
    """Pad a bus with constant-0 nets up to ``width``."""
    if width < len(bus):
        raise ValueError(f"cannot zero-extend {len(bus)} bits down to {width}")
    return list(bus) + [nl.ZERO] * (width - len(bus))


def resize(nl: Netlist, bus: list[int], width: int) -> list[int]:
    """Zero-extend or truncate a bus to exactly ``width`` bits.

    Truncation is only sound when the value provably fits ``width``
    (e.g. conservative adder-tree growth bits that are always zero).
    """
    if width <= len(bus):
        return list(bus[:width])
    return zero_extend(nl, bus, width)


def ripple_adder(nl: Netlist, a: list[int], b: list[int], width: int | None = None) -> list[int]:
    """Unsigned ripple-carry sum of two buses.

    Output width defaults to ``max(len(a), len(b)) + 1`` (no overflow);
    pass ``width`` to truncate or extend.
    """
    out_w = width if width is not None else max(len(a), len(b)) + 1
    av = zero_extend(nl, a, out_w)
    bv = zero_extend(nl, b, out_w)
    result = []
    carry = None
    for i in range(out_w):
        if carry is None:
            s, carry = half_adder(nl, av[i], bv[i])
        else:
            s, carry = full_adder(nl, av[i], bv[i], carry)
        result.append(s)
    return result


def ripple_subtractor(nl: Netlist, a: list[int], b: list[int]) -> tuple[list[int], int]:
    """Unsigned ``a - b``: (difference, borrow).

    Implemented as ``a + ~b + 1``; ``borrow`` is 1 when ``a < b``.
    """
    width = max(len(a), len(b))
    av = zero_extend(nl, a, width)
    bv = zero_extend(nl, b, width)
    diff = []
    carry = nl.ONE  # +1 of the two's complement
    for i in range(width):
        nb = nl.add_gate("NOT", bv[i])
        s, carry = full_adder(nl, av[i], nb, carry)
        diff.append(s)
    borrow = nl.add_gate("NOT", carry)
    return diff, borrow


def greater_than(nl: Netlist, a: list[int], b: list[int]) -> int:
    """Net that is 1 when unsigned ``a > b`` (comparator = subtractor)."""
    _, borrow = ripple_subtractor(nl, b, a)  # b - a borrows iff b < a
    return borrow


def mux2_bus(nl: Netlist, sel: int, a: list[int], b: list[int]) -> list[int]:
    """Per-bit 2:1 mux: ``sel ? b : a`` (buses zero-extended to match)."""
    width = max(len(a), len(b))
    av = zero_extend(nl, a, width)
    bv = zero_extend(nl, b, width)
    return [nl.add_gate("MUX2", sel, av[i], bv[i]) for i in range(width)]


def mux_tree(nl: Netlist, sel: list[int], choices: list[list[int]]) -> list[int]:
    """N:1 bus mux from MUX2 levels; ``sel`` is LSB-first binary."""
    if not choices:
        raise ValueError("mux tree needs at least one choice")
    level = list(choices)
    for bit in sel:
        if len(level) == 1:
            break
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(mux2_bus(nl, bit, level[i], level[i + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def barrel_shifter_right(nl: Netlist, value: list[int], amount: list[int]) -> list[int]:
    """Logical right shift of ``value`` by the binary ``amount`` bus."""
    current = list(value)
    width = len(value)
    for stage, bit in enumerate(amount):
        shift = 1 << stage
        shifted = current[shift:] + [nl.ZERO] * min(shift, width)
        shifted = shifted[:width]
        current = mux2_bus(nl, bit, current, shifted)
    return current


def constant_shift_left(nl: Netlist, value: list[int], amount: int) -> list[int]:
    """Shift left by a constant: pure wiring (zero nets appended)."""
    if amount < 0:
        raise ValueError("shift amount must be >= 0")
    return [nl.ZERO] * amount + list(value)


def nor_multiplier(nl: Netlist, din: list[int], wbit: int) -> list[int]:
    """1-bit x k-bit multiply as k NOR gates (Fig. 5).

    ``product = NOR(~din, ~wbit) = din AND wbit`` per bit.
    """
    wbit_b = nl.add_gate("NOT", wbit)
    out = []
    for bit in din:
        bit_b = nl.add_gate("NOT", bit)
        out.append(nl.add_gate("NOR", bit_b, wbit_b))
    return out


def constant_bus(nl: Netlist, value: int, width: int) -> list[int]:
    """A bus hard-wired to ``value`` using the constant nets."""
    if not 0 <= value < (1 << width):
        raise ValueError(f"value {value} does not fit {width} bits")
    return [nl.ONE if (value >> i) & 1 else nl.ZERO for i in range(width)]


def barrel_shifter_left(nl: Netlist, value: list[int], amount: list[int]) -> list[int]:
    """Logical left shift of ``value`` by the binary ``amount`` bus.

    Output width equals the input width (bits shifted past the MSB are
    dropped, as in the fixed-width RTL).
    """
    current = list(value)
    width = len(value)
    for stage, bit in enumerate(amount):
        shift = 1 << stage
        shifted = ([nl.ZERO] * min(shift, width) + current)[:width]
        current = mux2_bus(nl, bit, current, shifted)
    return current
