"""Gate-level structural netlist IR.

The template generator's Verilog is for the downstream flow; to *verify*
the architecture without a commercial simulator, the same blocks are
also built as flat gate-level netlists over a tiny primitive set
(NOT/AND/OR/NOR/XOR/MUX2 plus DFF) and executed by
:mod:`repro.netlist.simulate`.

Nets are integer ids; buses are lists of net ids, LSB first.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Gate", "Dff", "Netlist", "GATE_KINDS"]

#: Supported combinational primitives and their arities.
GATE_KINDS: dict[str, int] = {
    "NOT": 1,
    "AND": 2,
    "OR": 2,
    "NOR": 2,
    "XOR": 2,
    "MUX2": 3,  # inputs (sel, a, b): out = sel ? b : a
}


@dataclass(frozen=True)
class Gate:
    """One combinational gate: ``kind(inputs) -> output``."""

    kind: str
    inputs: tuple[int, ...]
    output: int

    def __post_init__(self) -> None:
        arity = GATE_KINDS.get(self.kind)
        if arity is None:
            raise ValueError(f"unknown gate kind {self.kind!r}")
        if len(self.inputs) != arity:
            raise ValueError(
                f"{self.kind} expects {arity} inputs, got {len(self.inputs)}"
            )


@dataclass(frozen=True)
class Dff:
    """One D flip-flop with synchronous clear: ``q <= clear ? 0 : d``."""

    d: int
    q: int
    clear: int | None = None


@dataclass
class Netlist:
    """A flat gate-level design.

    Net 0 is constant 0 and net 1 is constant 1.  Input and output buses
    are named, LSB-first lists of net ids.
    """

    name: str
    n_nets: int = 2  # constants 0 and 1 pre-allocated
    gates: list[Gate] = field(default_factory=list)
    dffs: list[Dff] = field(default_factory=list)
    inputs: dict[str, list[int]] = field(default_factory=dict)
    outputs: dict[str, list[int]] = field(default_factory=dict)

    ZERO = 0
    ONE = 1

    # Net management --------------------------------------------------------
    def new_net(self) -> int:
        """Allocate one fresh net."""
        net = self.n_nets
        self.n_nets += 1
        return net

    def new_bus(self, width: int) -> list[int]:
        """Allocate ``width`` fresh nets (LSB first)."""
        if width < 1:
            raise ValueError(f"bus width must be >= 1, got {width}")
        return [self.new_net() for _ in range(width)]

    def input_bus(self, name: str, width: int) -> list[int]:
        """Declare a named input bus."""
        if name in self.inputs or name in self.outputs:
            raise ValueError(f"duplicate port name {name!r}")
        bus = self.new_bus(width)
        self.inputs[name] = bus
        return bus

    def output_bus(self, name: str, nets: list[int]) -> None:
        """Mark existing nets as a named output bus."""
        if name in self.inputs or name in self.outputs:
            raise ValueError(f"duplicate port name {name!r}")
        self.outputs[name] = list(nets)

    # Construction -----------------------------------------------------------
    def add_gate(self, kind: str, *inputs: int) -> int:
        """Add a gate driving a fresh net; returns that net."""
        out = self.new_net()
        self.gates.append(Gate(kind, tuple(inputs), out))
        return out

    def add_dff(self, d: int, clear: int | None = None) -> int:
        """Add a flip-flop fed by ``d``; returns the ``q`` net."""
        q = self.new_net()
        self.dffs.append(Dff(d, q, clear))
        return q

    # Reporting --------------------------------------------------------------
    def gate_count(self, kind: str | None = None) -> int:
        """Number of gates, optionally filtered by kind."""
        if kind is None:
            return len(self.gates)
        return sum(1 for g in self.gates if g.kind == kind)

    def stats(self) -> dict[str, int]:
        """Instance counts per primitive (plus DFFs and nets)."""
        out: dict[str, int] = {kind: 0 for kind in GATE_KINDS}
        for gate in self.gates:
            out[gate.kind] += 1
        out["DFF"] = len(self.dffs)
        out["nets"] = self.n_nets
        return out
