"""Import structural Verilog (the export dialect) back into the IR.

Closes the netlist loop: a netlist exported with
:func:`repro.netlist.export.netlist_to_verilog` — or any flat module
using the ``prim_*`` cells and the same net-array convention — can be
parsed back into a :class:`~repro.netlist.ir.Netlist` and re-simulated.
The round-trip property (export -> import -> identical simulation) is
part of the test suite.
"""

from __future__ import annotations

import re

from repro.netlist.ir import Dff, Gate, Netlist

__all__ = ["verilog_to_netlist"]

_MODULE_RE = re.compile(r"module\s+(\w+)\s*\(([^)]*)\)\s*;")
_DECL_RE = re.compile(
    r"^\s*(input|output)\s+(?:\[(\d+):0\]\s+)?(\w+)\s*;", re.M
)
_WIRE_RE = re.compile(r"^\s*wire\s+\[(\d+):0\]\s+n\s*;", re.M)
_ALIAS_IN_RE = re.compile(
    r"^\s*assign\s+n\[(\d+)\]\s*=\s*(\w+)(?:\[(\d+)\])?\s*;", re.M
)
_ALIAS_OUT_RE = re.compile(
    r"^\s*assign\s+(\w+)(?:\[(\d+)\])?\s*=\s*n\[(\d+)\]\s*;", re.M
)
_GATE_RE = re.compile(
    r"^\s*prim_(\w+)\s+\w+\s*\(([^;]*)\)\s*;", re.M
)
_PIN_RE = re.compile(r"\.(\w+)\(([^)]*)\)")

_GATE_PINS = {
    "not": ("NOT", ("a",)),
    "and": ("AND", ("a", "b")),
    "or": ("OR", ("a", "b")),
    "nor": ("NOR", ("a", "b")),
    "xor": ("XOR", ("a", "b")),
    "mux2": ("MUX2", ("s", "a", "b")),
}


def _net_ref(token: str) -> int | None:
    token = token.strip()
    match = re.fullmatch(r"n\[(\d+)\]", token)
    if match:
        return int(match.group(1))
    if token == "1'b0":
        return Netlist.ZERO
    if token == "1'b1":
        return Netlist.ONE
    return None


def verilog_to_netlist(source: str) -> Netlist:
    """Parse one exported structural module back into a Netlist.

    Raises:
        ValueError: when the source does not follow the export dialect
            (single module, one flat ``n`` wire array, prim_* cells).
    """
    header = _MODULE_RE.search(source)
    if header is None:
        raise ValueError("no module header found")
    name = header.group(1)

    wire = _WIRE_RE.search(source)
    if wire is None:
        raise ValueError("missing flat net array 'wire [..:0] n;'")
    n_nets = int(wire.group(1)) + 1

    netlist = Netlist(name)
    netlist.n_nets = n_nets

    # Port declarations with widths.
    widths: dict[str, int] = {}
    directions: dict[str, str] = {}
    for direction, msb, port in _DECL_RE.findall(source):
        widths[port] = int(msb) + 1 if msb else 1
        directions[port] = direction

    # Input aliases: n[<id>] = port[idx]  ->  input bus mapping.
    input_nets: dict[str, dict[int, int]] = {}
    for net_id, port, index in _ALIAS_IN_RE.findall(source):
        if port in ("1'b0", "1'b1"):
            continue
        if directions.get(port) != "input":
            continue
        input_nets.setdefault(port, {})[int(index) if index else 0] = int(net_id)
    for port, lanes in input_nets.items():
        bus = [lanes[i] for i in range(widths[port])]
        netlist.inputs[port] = bus

    # Output aliases: port[idx] = n[<id>].
    output_nets: dict[str, dict[int, int]] = {}
    for port, index, net_id in _ALIAS_OUT_RE.findall(source):
        if directions.get(port) != "output":
            continue
        output_nets.setdefault(port, {})[int(index) if index else 0] = int(net_id)
    for port, lanes in output_nets.items():
        netlist.outputs[port] = [lanes[i] for i in range(widths[port])]

    # Gates and flops.
    for kind_token, pin_blob in _GATE_RE.findall(source):
        pins = {pin: value for pin, value in _PIN_RE.findall(pin_blob)}
        if kind_token == "dff":
            d = _net_ref(pins["d"])
            q = _net_ref(pins["q"])
            clr_token = pins.get("clr", "1'b0").strip()
            clr = None if clr_token == "1'b0" else _net_ref(clr_token)
            if d is None or q is None:
                raise ValueError(f"malformed dff pins: {pins}")
            netlist.dffs.append(Dff(d=d, q=q, clear=clr))
            continue
        if kind_token not in _GATE_PINS:
            raise ValueError(f"unknown primitive prim_{kind_token}")
        kind, order = _GATE_PINS[kind_token]
        inputs = []
        for pin in order:
            ref = _net_ref(pins[pin])
            if ref is None:
                raise ValueError(f"malformed pin .{pin}({pins[pin]})")
            inputs.append(ref)
        out = _net_ref(pins["y"])
        if out is None:
            raise ValueError(f"malformed output pin .y({pins['y']})")
        netlist.gates.append(Gate(kind, tuple(inputs), out))
    return netlist
