"""Export a gate-level netlist as structural Verilog.

Bridges the verification substrate and the RTL flow: the gate-level IR
used by the simulator can be dumped as a flat structural Verilog module
over a tiny primitive-cell library (emitted alongside), so the exact
netlist that passed equivalence checking can be handed to an external
tool.
"""

from __future__ import annotations

from repro.netlist.ir import GATE_KINDS, Netlist

__all__ = ["netlist_to_verilog", "PRIMITIVE_LIBRARY_VERILOG"]

#: Behavioural definitions of the primitive cells the export references.
PRIMITIVE_LIBRARY_VERILOG = """\
// Primitive cell library for exported gate-level netlists.
module prim_not (input a, output y);          assign y = ~a;          endmodule
module prim_and (input a, b, output y);       assign y = a & b;       endmodule
module prim_or  (input a, b, output y);       assign y = a | b;       endmodule
module prim_nor (input a, b, output y);       assign y = ~(a | b);    endmodule
module prim_xor (input a, b, output y);       assign y = a ^ b;       endmodule
module prim_mux2 (input s, a, b, output y);   assign y = s ? b : a;   endmodule
module prim_dff (input clk, clr, d, output reg q);
  always @(posedge clk) q <= clr ? 1'b0 : d;
endmodule
"""

_CELL_NAMES = {kind: f"prim_{kind.lower()}" for kind in GATE_KINDS}
_PIN_ORDERS = {
    "NOT": ("a",),
    "AND": ("a", "b"),
    "OR": ("a", "b"),
    "NOR": ("a", "b"),
    "XOR": ("a", "b"),
    "MUX2": ("s", "a", "b"),
}


def netlist_to_verilog(netlist: Netlist, module_name: str | None = None) -> str:
    """Render a :class:`Netlist` as one flat structural Verilog module.

    Nets become ``n<i>`` wires; input/output buses keep their names; a
    ``clk`` port is added when the netlist contains flip-flops.
    """
    name = module_name or netlist.name
    has_dffs = bool(netlist.dffs)
    ports: list[str] = []
    decls: list[str] = []
    body: list[str] = []

    if has_dffs:
        ports.append("clk")
        decls.append("  input clk;")
    for bus_name, nets in netlist.inputs.items():
        ports.append(bus_name)
        width = f"[{len(nets) - 1}:0] " if len(nets) > 1 else ""
        decls.append(f"  input {width}{bus_name};")
    for bus_name, nets in netlist.outputs.items():
        ports.append(bus_name)
        width = f"[{len(nets) - 1}:0] " if len(nets) > 1 else ""
        decls.append(f"  output {width}{bus_name};")

    decls.append(f"  wire [{netlist.n_nets - 1}:0] n;")
    body.append("  assign n[0] = 1'b0;")
    body.append("  assign n[1] = 1'b1;")
    for bus_name, nets in netlist.inputs.items():
        for i, net in enumerate(nets):
            index = f"[{i}]" if len(nets) > 1 else ""
            body.append(f"  assign n[{net}] = {bus_name}{index};")
    for bus_name, nets in netlist.outputs.items():
        for i, net in enumerate(nets):
            index = f"[{i}]" if len(nets) > 1 else ""
            body.append(f"  assign {bus_name}{index} = n[{net}];")

    for g_index, gate in enumerate(netlist.gates):
        cell = _CELL_NAMES[gate.kind]
        pins = ", ".join(
            f".{pin}(n[{net}])"
            for pin, net in zip(_PIN_ORDERS[gate.kind], gate.inputs)
        )
        body.append(f"  {cell} g{g_index} ({pins}, .y(n[{gate.output}]));")
    for d_index, dff in enumerate(netlist.dffs):
        clr = f"n[{dff.clear}]" if dff.clear is not None else "1'b0"
        body.append(
            f"  prim_dff r{d_index} (.clk(clk), .clr({clr}), "
            f".d(n[{dff.d}]), .q(n[{dff.q}]));"
        )

    lines = [f"module {name} ({', '.join(ports)});"]
    lines.extend(decls)
    lines.extend(body)
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
