"""Equivalence checks: gate-level netlists vs. golden models.

Randomised functional verification of every gate-level block against
the behavioural reference — the role a commercial simulator plus a
testbench plays in the authors' flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.spec import DesignPoint
from repro.func.formats import max_unsigned
from repro.func.macro_model import IntMacroModel
from repro.model.logic import clog2
from repro.netlist.builders import (
    build_adder_tree,
    build_compute_unit,
    build_int_macro,
    build_prealign,
    build_shift_accumulator,
)
from repro.netlist.simulate import GateSimulator

__all__ = [
    "VerificationReport",
    "verify_compute_unit",
    "verify_adder_tree",
    "verify_shift_accumulator",
    "verify_prealign",
    "verify_int_macro",
]


@dataclass
class VerificationReport:
    """Outcome of one randomised equivalence run."""

    block: str
    trials: int
    mismatches: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every trial matched the golden model."""
        return not self.mismatches

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "PASS" if self.passed else f"FAIL ({len(self.mismatches)})"
        return f"{self.block}: {status} over {self.trials} trials"


def verify_compute_unit(l: int, k: int, trials: int = 50, seed: int = 0) -> VerificationReport:
    """Compute unit: product == din * selected weight bit."""
    report = VerificationReport(f"compute_unit(l={l}, k={k})", trials)
    sim = GateSimulator(build_compute_unit(l, k))
    rng = np.random.default_rng(seed)
    for _ in range(trials):
        weights = int(rng.integers(0, 2**l))
        sel = int(rng.integers(0, l))
        din = int(rng.integers(0, 2**k))
        sim.set_bus("weights", weights)
        sim.set_bus("sel", sel)
        sim.set_bus("din", din)
        sim.eval()
        expected = din if (weights >> sel) & 1 else 0
        got = sim.get_bus("product")
        if got != expected:
            report.mismatches.append(
                f"w={weights:0{l}b} sel={sel} din={din}: got {got}, want {expected}"
            )
    return report


def verify_adder_tree(h: int, k: int, trials: int = 50, seed: int = 0) -> VerificationReport:
    """Adder tree: total == sum of the h operands."""
    report = VerificationReport(f"adder_tree(h={h}, k={k})", trials)
    sim = GateSimulator(build_adder_tree(h, k))
    rng = np.random.default_rng(seed)
    for _ in range(trials):
        terms = rng.integers(0, 2**k, size=h)
        packed = 0
        for i, t in enumerate(terms):
            packed |= int(t) << (i * k)
        sim.set_bus("terms", packed)
        sim.eval()
        got = sim.get_bus("total")
        expected = int(terms.sum())
        if got != expected:
            report.mismatches.append(f"terms={terms}: got {got}, want {expected}")
    return report


def verify_shift_accumulator(
    bx: int, k: int, h: int, trials: int = 20, seed: int = 0
) -> VerificationReport:
    """Shift accumulator over full passes of ``bx/k`` cycles."""
    report = VerificationReport(f"shift_accumulator(bx={bx}, k={k}, h={h})", trials)
    sim = GateSimulator(build_shift_accumulator(bx, k, h))
    rng = np.random.default_rng(seed)
    cycles = bx // k
    in_max = (2**k - 1) * h  # adder-tree output bound
    in_cap = 2 ** (k + clog2(h)) - 1
    for _ in range(trials):
        # Clear, then stream one pass.
        sim.set_bus("clear", 1)
        sim.step()
        sim.set_bus("clear", 0)
        expected = 0
        for _c in range(cycles):
            partial = int(rng.integers(0, min(in_max, in_cap) + 1))
            sim.set_bus("partial", partial)
            sim.step()
            expected = (expected << k) + partial
        got = sim.get_bus("acc")
        if got != expected:
            report.mismatches.append(f"got {got}, want {expected}")
    return report


def verify_prealign(
    h: int, be: int, bm: int, trials: int = 30, seed: int = 0
) -> VerificationReport:
    """Pre-alignment: max exponent + truncating right shifts."""
    report = VerificationReport(f"prealign(h={h}, be={be}, bm={bm})", trials)
    sim = GateSimulator(build_prealign(h, be, bm))
    rng = np.random.default_rng(seed)
    for _ in range(trials):
        exps = rng.integers(0, 2**be, size=h)
        mants = rng.integers(0, 2**bm, size=h)
        packed_e = 0
        packed_m = 0
        for i in range(h):
            packed_e |= int(exps[i]) << (i * be)
            packed_m |= int(mants[i]) << (i * bm)
        sim.set_bus("exponents", packed_e)
        sim.set_bus("mantissas", packed_m)
        sim.eval()
        xemax = int(exps.max())
        if sim.get_bus("xemax") != xemax:
            report.mismatches.append(
                f"xemax: got {sim.get_bus('xemax')}, want {xemax}"
            )
            continue
        got = sim.get_bus("aligned")
        for i in range(h):
            lane = (got >> (i * bm)) & max_unsigned(bm)
            expected = int(mants[i]) >> (xemax - int(exps[i]))
            if lane != expected:
                report.mismatches.append(
                    f"lane {i}: got {lane}, want {expected}"
                )
    return report


def verify_int_macro(
    design: DesignPoint, trials: int = 10, seed: int = 0
) -> VerificationReport:
    """Full small macro vs. the behavioural :class:`IntMacroModel`.

    Streams ``Bx/k``-cycle passes with random weights/inputs/selection
    and compares every fused output word.
    """
    p = design.precision
    if p.is_float:
        raise ValueError("verify_int_macro needs an integer design")
    bx = bw = p.bits
    report = VerificationReport(f"int_macro({design.describe()})", trials)
    netlist = build_int_macro(design.n, design.h, design.l, design.k, bx, bw)
    sim = GateSimulator(netlist)
    model = IntMacroModel(design)
    rng = np.random.default_rng(seed)
    groups = design.n // bw
    out_w = bw + bx + clog2(design.h)
    cycles = bx // design.k
    for _ in range(trials):
        sel = int(rng.integers(0, design.l))
        # One (H, groups) weight matrix for the selected set; other sets
        # random (they must not disturb the result).
        w_sets = rng.integers(0, 2**bw, size=(design.l, design.h, groups))
        x = rng.integers(0, 2**bx, size=design.h)
        model.weights = w_sets.astype(np.int64)
        expected = model.matvec(x, sel=sel)
        # Pack weights column-major: column c = (group g, bit j) with
        # c = g*bw + j; its bank holds, for each row, bit j of the L
        # weight sets at (row, g).
        packed_w = 0
        bit_index = 0
        for g in range(groups):
            for j in range(bw):
                for row in range(design.h):
                    for li in range(design.l):
                        bit = (int(w_sets[li, row, g]) >> j) & 1
                        packed_w |= bit << bit_index
                        bit_index += 1
        sim.set_bus("weights", packed_w)
        sim.set_bus("sel", sel)
        sim.set_bus("clear", 1)
        sim.step()
        sim.set_bus("clear", 0)
        for c in range(cycles):
            packed_din = 0
            shift = bx - (c + 1) * design.k
            for row in range(design.h):
                slice_v = (int(x[row]) >> shift) & max_unsigned(design.k)
                packed_din |= slice_v << (row * design.k)
            sim.set_bus("din", packed_din)
            sim.step()
        got_all = sim.get_bus("y")
        for g in range(groups):
            got = (got_all >> (g * out_w)) & max_unsigned(out_w)
            if got != int(expected[g]):
                report.mismatches.append(
                    f"group {g}: got {got}, want {int(expected[g])}"
                )
    return report


def verify_int2fp(br: int, be: int, trials: int = 40, seed: int = 0) -> VerificationReport:
    """INT-to-FP converter vs the functional model (RTL-exact)."""
    from repro.func.int2fp_model import int_to_fp
    from repro.netlist.builders import build_int2fp

    report = VerificationReport(f"int2fp(br={br}, be={be})", trials)
    sim = GateSimulator(build_int2fp(br, be))
    rng = np.random.default_rng(seed)
    for t in range(trials):
        value = 0 if t == 0 else int(rng.integers(0, 2**br))  # cover zero
        base = int(rng.integers(0, 2**be))
        sim.set_bus("value", value)
        sim.set_bus("base_exp", base)
        sim.eval()
        expected = int_to_fp(value, base, br)
        got_m = sim.get_bus("mantissa")
        got_e = sim.get_bus("exponent")
        got_z = sim.get_bus("is_zero")
        if (got_m, got_e, bool(got_z)) != (
            expected.mantissa, expected.exponent, expected.is_zero
        ):
            report.mismatches.append(
                f"value={value} base={base}: got (m={got_m}, e={got_e}, "
                f"z={got_z}), want (m={expected.mantissa}, "
                f"e={expected.exponent}, z={expected.is_zero})"
            )
    return report


def verify_fp_datapath(
    h: int, be: int, bm: int, trials: int = 8, seed: int = 0
) -> VerificationReport:
    """End-to-end FP path: prealign -> mantissa MAC -> INT-to-FP.

    Drives positive floats through the three gate-level stages (the
    array stage as a one-group, single-pass integer macro with
    ``k = BM``) and checks the fused integer and the converter fields
    against the functional models.  Signs are handled outside the array
    by sign-magnitude in the full macro, so positive stimulus covers
    the datapath logic.
    """
    from repro.func.formats import FloatFormat
    from repro.func.int2fp_model import int_to_fp
    from repro.func.prealign_model import prealign
    from repro.netlist.builders import build_int2fp, build_int_macro

    fmt = FloatFormat("fmt", exponent_bits=be, mantissa_bits=bm)
    report = VerificationReport(f"fp_datapath(h={h}, be={be}, bm={bm})", trials)
    align_sim = GateSimulator(build_prealign(h, be, bm))
    macro_sim = GateSimulator(build_int_macro(bm, h, 1, bm, bm, bm))
    br = bm + bm + clog2(h)
    convert_sim = GateSimulator(build_int2fp(br, be + 1))
    rng = np.random.default_rng(seed)
    for _ in range(trials):
        x = rng.uniform(0.01, 8.0, size=h)
        w = rng.uniform(0.01, 8.0, size=h)
        # Offline weight alignment (done in software in the real flow).
        wa = prealign(w, fmt)
        xf = [fmt.encode(float(v)) for v in x]
        packed_e = packed_m = 0
        for i, fields in enumerate(xf):
            packed_e |= fields.exponent << (i * be)
            packed_m |= fields.significand << (i * bm)
        align_sim.set_bus("exponents", packed_e)
        align_sim.set_bus("mantissas", packed_m)
        align_sim.eval()
        xemax = align_sim.get_bus("xemax")
        aligned = align_sim.get_bus("aligned")
        # Expected alignment from the functional model.
        xa = prealign(x, fmt)
        if xemax != xa.max_exponent:
            report.mismatches.append(f"xemax {xemax} != {xa.max_exponent}")
            continue
        # Mantissa MAC: one pass, k = bm.
        packed_w = 0
        bit_index = 0
        for j in range(bm):  # column j stores weight-mantissa bit j
            for row in range(h):
                packed_w |= ((int(wa.mantissas[row]) >> j) & 1) << bit_index
                bit_index += 1
        macro_sim.set_bus("weights", packed_w)
        macro_sim.set_bus("sel", 0)
        macro_sim.set_bus("clear", 1)
        macro_sim.step()
        macro_sim.set_bus("clear", 0)
        macro_sim.set_bus("din", aligned)
        macro_sim.step()
        fused = macro_sim.get_bus("y")
        expected_acc = int(np.dot(xa.mantissas, wa.mantissas))
        if fused != expected_acc:
            report.mismatches.append(f"acc {fused} != {expected_acc}")
            continue
        # INT-to-FP conversion with the shared exponent base.
        base = xa.max_exponent + wa.max_exponent
        convert_sim.set_bus("value", fused)
        convert_sim.set_bus("base_exp", base)
        convert_sim.eval()
        expected_fields = int_to_fp(fused, base, br)
        if convert_sim.get_bus("mantissa") != expected_fields.mantissa or (
            convert_sim.get_bus("exponent") != expected_fields.exponent
        ):
            report.mismatches.append(
                f"convert: got (m={convert_sim.get_bus('mantissa')}, "
                f"e={convert_sim.get_bus('exponent')}), want "
                f"(m={expected_fields.mantissa}, e={expected_fields.exponent})"
            )
    return report
