"""Gate-level netlist builders for the DCIM datapath.

Each builder constructs a :class:`~repro.netlist.ir.Netlist` for one
architecture block with the *same semantics* as the RTL templates and
the behavioural model, so the three views can be cross-verified.  Weight
storage appears as input buses (the SRAM read path is hard-wired; write
timing is not part of the compute semantics), and the input buffer is
driven one slice per cycle by the testbench.
"""

from __future__ import annotations

from repro.model.logic import clog2
from repro.netlist.ir import Netlist
from repro.netlist.primitives import (
    barrel_shifter_right,
    constant_shift_left,
    greater_than,
    mux2_bus,
    mux_tree,
    nor_multiplier,
    resize,
    ripple_adder,
    ripple_subtractor,
    zero_extend,
)

__all__ = [
    "build_compute_unit",
    "build_adder_tree",
    "build_shift_accumulator",
    "build_result_fusion",
    "build_column",
    "build_int_macro",
    "build_prealign",
]


def _selection(nl: Netlist, weights: list[int], sel: list[int]) -> int:
    """L:1 selection gate: pick one weight bit."""
    if len(weights) == 1:
        return weights[0]
    choice = mux_tree(nl, sel, [[w] for w in weights])
    return choice[0]


def build_compute_unit(l: int, k: int) -> Netlist:
    """Compute unit (Fig. 5): selection gate + k-NOR multiplier.

    Ports: ``weights`` (L), ``sel`` (log2 L), ``din`` (k) -> ``product`` (k).
    """
    nl = Netlist(f"cu_l{l}_k{k}")
    weights = nl.input_bus("weights", l)
    selw = max(clog2(l), 1)
    sel = nl.input_bus("sel", selw)
    din = nl.input_bus("din", k)
    wbit = _selection(nl, weights, sel)
    product = nor_multiplier(nl, din, wbit)
    nl.output_bus("product", product)
    return nl


def _adder_tree(nl: Netlist, operands: list[list[int]]) -> list[int]:
    """Reduce operand buses pairwise with ripple adders."""
    level = list(operands)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(ripple_adder(nl, level[i], level[i + 1]))
        if len(level) % 2:
            nxt.append(zero_extend(nl, level[-1], len(level[-1]) + 1))
        level = nxt
    return level[0]


def build_adder_tree(h: int, k: int) -> Netlist:
    """Adder tree: ``terms`` (h*k) -> ``total`` (k + clog2 h)."""
    nl = Netlist(f"tree_h{h}_k{k}")
    terms = nl.input_bus("terms", h * k)
    operands = [terms[i * k : (i + 1) * k] for i in range(h)]
    total = _adder_tree(nl, operands)
    nl.output_bus("total", total[: k + clog2(h)])
    return nl


def build_shift_accumulator(bx: int, k: int, h: int) -> Netlist:
    """Shift accumulator: ``acc <= clear ? 0 : (acc << k) + partial``.

    Ports: ``partial`` (k + clog2 h), ``clear`` (1) -> ``acc`` (bx + clog2 h).
    """
    nl = Netlist(f"accu_b{bx}_k{k}_h{h}")
    in_w = k + clog2(h)
    acc_w = bx + clog2(h)
    partial = nl.input_bus("partial", in_w)
    clear = nl.input_bus("clear", 1)[0]
    # Registers first (their q nets feed the adder), d patched after.
    placeholder_d = [nl.new_net() for _ in range(acc_w)]
    q = [nl.add_dff(d, clear) for d in placeholder_d]
    shifted = constant_shift_left(nl, q, k)[:acc_w]
    nxt = ripple_adder(nl, shifted, partial, width=acc_w)
    # Patch: alias each placeholder d to the computed next-state net by
    # inserting buffers (NOT-NOT would cost gates; instead rewrite DFFs).
    nl.dffs = [
        type(dff)(d=new_d, q=dff.q, clear=dff.clear)
        for dff, new_d in zip(nl.dffs, nxt)
    ]
    nl.output_bus("acc", q)
    return nl


def build_result_fusion(bw: int, bx: int, h: int) -> Netlist:
    """Result fusion: ``columns`` (bw * colw) -> ``fused`` (bw + colw).

    Column ``j`` is weighted by ``2^j`` with wiring, then summed.
    """
    nl = Netlist(f"fusion_w{bw}_b{bx}_h{h}")
    col_w = bx + clog2(h)
    out_w = bw + col_w
    columns = nl.input_bus("columns", bw * col_w)
    shifted = [
        constant_shift_left(nl, columns[j * col_w : (j + 1) * col_w], j)
        for j in range(bw)
    ]
    total = _adder_tree(nl, shifted)
    nl.output_bus("fused", resize(nl, total, out_w))
    return nl


def _column_fabric(
    nl: Netlist,
    weights: list[int],
    sel: list[int],
    din: list[int],
    h: int,
    l: int,
    k: int,
) -> list[int]:
    """Compute units + adder tree for one column; returns the tree bus."""
    products = []
    for row in range(h):
        w_bank = weights[row * l : (row + 1) * l]
        wbit = _selection(nl, w_bank, sel)
        products.append(nor_multiplier(nl, din[row * k : (row + 1) * k], wbit))
    return _adder_tree(nl, products)[: k + clog2(h)]


def build_column(h: int, l: int, k: int, bx: int) -> Netlist:
    """One clocked column: units -> tree -> shift accumulator.

    Ports: ``weights`` (h*l), ``sel``, ``din`` (h*k per cycle),
    ``clear`` -> ``acc`` (bx + clog2 h).
    """
    nl = Netlist(f"column_h{h}_l{l}_k{k}_b{bx}")
    weights = nl.input_bus("weights", h * l)
    sel = nl.input_bus("sel", max(clog2(l), 1))
    din = nl.input_bus("din", h * k)
    clear = nl.input_bus("clear", 1)[0]
    tree = _column_fabric(nl, weights, sel, din, h, l, k)
    acc_w = bx + clog2(h)
    placeholder_d = [nl.new_net() for _ in range(acc_w)]
    q = [nl.add_dff(d, clear) for d in placeholder_d]
    shifted = constant_shift_left(nl, q, k)[:acc_w]
    nxt = ripple_adder(nl, shifted, tree, width=acc_w)
    nl.dffs = [
        type(dff)(d=new_d, q=dff.q, clear=dff.clear)
        for dff, new_d in zip(nl.dffs, nxt)
    ]
    nl.output_bus("acc", q)
    return nl


def build_int_macro(n: int, h: int, l: int, k: int, bx: int, bw: int) -> Netlist:
    """A complete (small) integer macro at gate level.

    Ports: ``weights`` (n*h*l, column-major: column c's bank at offset
    ``c*h*l``), ``sel``, ``din`` (h*k, one slice per cycle), ``clear``
    -> ``y`` (groups * (bw + bx + clog2 h)).

    Intended for verification-sized parameters; a 64K-weight instance
    would be millions of gates.
    """
    if n % bw:
        raise ValueError("n must be a multiple of bw")
    nl = Netlist(f"macro_n{n}_h{h}_l{l}_k{k}")
    weights = nl.input_bus("weights", n * h * l)
    sel = nl.input_bus("sel", max(clog2(l), 1))
    din = nl.input_bus("din", h * k)
    clear = nl.input_bus("clear", 1)[0]
    acc_w = bx + clog2(h)
    col_accs: list[list[int]] = []
    for c in range(n):
        bank = weights[c * h * l : (c + 1) * h * l]
        tree = _column_fabric(nl, bank, sel, din, h, l, k)
        placeholder_d = [nl.new_net() for _ in range(acc_w)]
        q = [nl.add_dff(d, clear) for d in placeholder_d]
        shifted = constant_shift_left(nl, q, k)[:acc_w]
        nxt = ripple_adder(nl, shifted, tree, width=acc_w)
        start = len(nl.dffs) - acc_w
        for offset, new_d in enumerate(nxt):
            dff = nl.dffs[start + offset]
            nl.dffs[start + offset] = type(dff)(d=new_d, q=dff.q, clear=dff.clear)
        col_accs.append(q)
    out_w = bw + acc_w
    y_nets: list[int] = []
    for g in range(n // bw):
        shifted = [
            constant_shift_left(nl, col_accs[g * bw + j], j) for j in range(bw)
        ]
        fused = _adder_tree(nl, shifted)
        y_nets.extend(resize(nl, fused, out_w))
    nl.output_bus("y", y_nets)
    return nl


def build_prealign(h: int, be: int, bm: int) -> Netlist:
    """FP pre-alignment at gate level.

    Ports: ``exponents`` (h*be), ``mantissas`` (h*bm) ->
    ``aligned`` (h*bm), ``xemax`` (be).
    """
    nl = Netlist(f"prealign_h{h}_e{be}_m{bm}")
    exponents = nl.input_bus("exponents", h * be)
    mantissas = nl.input_bus("mantissas", h * bm)
    exp_buses = [exponents[i * be : (i + 1) * be] for i in range(h)]
    # Max tree: pairwise comparator + mux.
    level = list(exp_buses)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            a, b = level[i], level[i + 1]
            a_gt = greater_than(nl, a, b)
            nxt.append(mux2_bus(nl, a_gt, b, a))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    xemax = level[0]
    stages = clog2(bm) + 1
    aligned: list[int] = []
    for i in range(h):
        offset, _ = ripple_subtractor(nl, xemax, exp_buses[i])
        mant = mantissas[i * bm : (i + 1) * bm]
        shifted = barrel_shifter_right(nl, mant, offset[:stages])
        # Offsets beyond the shifter range flush the mantissa to zero.
        overflow = nl.ZERO
        for bit in offset[stages:]:
            overflow = nl.add_gate("OR", overflow, bit)
        aligned.extend(mux2_bus(nl, overflow, shifted, [nl.ZERO] * bm))
    nl.output_bus("aligned", aligned)
    nl.output_bus("xemax", xemax)
    return nl


def build_int2fp(br: int, be: int) -> Netlist:
    """INT-to-FP converter at gate level (leading-one detect + normalise).

    Ports: ``value`` (br), ``base_exp`` (be) -> ``mantissa`` (br),
    ``exponent`` (be + 2), ``is_zero`` (1).  Semantics match
    :func:`repro.func.int2fp_model.int_to_fp`.
    """
    from repro.netlist.primitives import barrel_shifter_left, constant_bus

    if br < 1 or be < 1:
        raise ValueError("int2fp needs br >= 1 and be >= 1")
    nl = Netlist(f"int2fp_r{br}_e{be}")
    value = nl.input_bus("value", br)
    base_exp = nl.input_bus("base_exp", be)
    posw = max(clog2(br + 1), 1)
    expw = be + 2

    # Priority scan from the MSB: capture the first set bit's index and
    # the left-shift amount that normalises it to the MSB.
    found = nl.ZERO
    lead = constant_bus(nl, 0, posw)
    amount = constant_bus(nl, 0, posw)
    for i in range(br - 1, -1, -1):
        not_found = nl.add_gate("NOT", found)
        take = nl.add_gate("AND", value[i], not_found)
        lead = mux2_bus(nl, take, lead, constant_bus(nl, i, posw))
        amount = mux2_bus(nl, take, amount, constant_bus(nl, br - 1 - i, posw))
        found = nl.add_gate("OR", found, value[i])
    is_zero = nl.add_gate("NOT", found)

    shifted = barrel_shifter_left(nl, value, amount)
    mantissa = mux2_bus(nl, is_zero, shifted, constant_bus(nl, 0, br))
    exp_sum = ripple_adder(
        nl, zero_extend(nl, base_exp, expw), zero_extend(nl, lead, expw), width=expw
    )
    exponent = mux2_bus(nl, is_zero, exp_sum, constant_bus(nl, 0, expw))
    nl.output_bus("mantissa", mantissa)
    nl.output_bus("exponent", exponent)
    nl.output_bus("is_zero", [is_zero])
    return nl
