"""Gate-level netlist IR, simulator and verification for SEGA-DCIM."""

from repro.netlist.builders import (
    build_adder_tree,
    build_column,
    build_compute_unit,
    build_int2fp,
    build_int_macro,
    build_prealign,
    build_result_fusion,
    build_shift_accumulator,
)
from repro.netlist.export import PRIMITIVE_LIBRARY_VERILOG, netlist_to_verilog
from repro.netlist.importer import verilog_to_netlist
from repro.netlist.timing import GATE_DELAYS, TimingReport, analyze_timing
from repro.netlist.ir import Dff, Gate, GATE_KINDS, Netlist
from repro.netlist.simulate import GateSimulator
from repro.netlist.verify import (
    VerificationReport,
    verify_adder_tree,
    verify_compute_unit,
    verify_fp_datapath,
    verify_int2fp,
    verify_int_macro,
    verify_prealign,
    verify_shift_accumulator,
)

__all__ = [
    "netlist_to_verilog",
    "PRIMITIVE_LIBRARY_VERILOG",
    "verilog_to_netlist",
    "analyze_timing",
    "TimingReport",
    "GATE_DELAYS",
    "Netlist",
    "Gate",
    "Dff",
    "GATE_KINDS",
    "GateSimulator",
    "build_compute_unit",
    "build_adder_tree",
    "build_shift_accumulator",
    "build_result_fusion",
    "build_column",
    "build_int_macro",
    "build_prealign",
    "build_int2fp",
    "VerificationReport",
    "verify_compute_unit",
    "verify_adder_tree",
    "verify_shift_accumulator",
    "verify_prealign",
    "verify_int2fp",
    "verify_int_macro",
    "verify_fp_datapath",
]
