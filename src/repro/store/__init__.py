"""Run registry & Pareto analytics: a persistent store for campaigns.

The serving stack (:mod:`repro.service`) executes many campaigns whose
results would otherwise evaporate when the process exits.  This package
records, compares, and guards them over time:

* :mod:`repro.store.runstore` — the SQLite-backed :class:`RunStore`
  (WAL, thread-safe) recording every campaign: request fingerprint,
  spec provenance, content-addressed front rows, timing/cache stats,
  and terminal status, plus named baselines,
* :mod:`repro.store.analytics` — front-quality indicators between any
  two recorded runs (hypervolume, additive epsilon-indicator, mutual
  coverage, front diff, knee drift),
* :mod:`repro.store.gate` — the regression gate comparing a run against
  a named baseline and failing with a structured report when front
  quality degrades beyond tolerance.

Recording is opt-in everywhere (``run_campaign(..., store=...)``,
``JobQueue(store=...)``, ``repro campaign --store PATH``) and never
changes a campaign's result.
"""

from repro.store.analytics import (
    FrontComparison,
    compare_fronts,
    compare_runs,
    epsilon_indicator,
    front_coverage,
    knee_drift,
    union_hypervolumes,
)
from repro.store.gate import GateConfig, GateReport, check_regression
from repro.store.runstore import (
    MetricsSnapshot,
    RunRecord,
    RunStore,
    point_hash,
)

__all__ = [
    "RunStore",
    "RunRecord",
    "MetricsSnapshot",
    "point_hash",
    "FrontComparison",
    "compare_fronts",
    "compare_runs",
    "epsilon_indicator",
    "front_coverage",
    "knee_drift",
    "union_hypervolumes",
    "GateConfig",
    "GateReport",
    "check_regression",
]
